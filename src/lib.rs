//! parfait-repro — umbrella crate for the Parfait (SOSP 2024)
//! reproduction.
//!
//! Re-exports every subsystem so examples, integration tests, and
//! downstream users can depend on a single crate:
//!
//! * [`ipr`] — the theory of information-preserving refinement;
//! * [`riscv`] — RV32IM ISA, assembler, and the Riscette machine;
//! * [`littlec`] — the C-like language and compiler pipeline;
//! * [`crypto`] — SHA-256, BLAKE2s, HMAC, P-256 ECDSA;
//! * [`rtl`] / [`cores`] / [`soc`] — cycle-accurate hardware;
//! * [`starling`] — software verification (IPR by lockstep);
//! * [`knox2`] — hardware verification (functional-physical simulation);
//! * [`hsms`] — the four case-study HSMs.

#![forbid(unsafe_code)]

pub use parfait as ipr;
pub use parfait_cores as cores;
pub use parfait_crypto as crypto;
pub use parfait_hsms as hsms;
pub use parfait_knox2 as knox2;
pub use parfait_littlec as littlec;
pub use parfait_riscv as riscv;
pub use parfait_rtl as rtl;
pub use parfait_soc as soc;
pub use parfait_starling as starling;
