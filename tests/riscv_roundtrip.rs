//! Encoder/decoder round-trip properties for the RV32IM model.
//!
//! `encode(decode(word)) == word` must hold for every word the
//! toolchain can emit — checked exhaustively over the assembled
//! production firmware at both ends of the optimization range, which
//! exercises every instruction class the firmwares use — and for every
//! *decodable* word at all, checked by property test over random
//! words. Undecodable words must be rejected, not mangled: the
//! assembly-layer lint recovers control flow by decoding the text
//! section, so a decoder that silently guessed would undermine it.

use proptest::prelude::*;

use parfait_littlec::codegen::OptLevel;
use parfait_pipeline::apps::StdApp;
use parfait_riscv::decode::decode;
use parfait_riscv::encode::encode;

/// Every word of every production firmware decodes, and re-encodes to
/// the identical word.
#[test]
fn production_firmware_words_roundtrip() {
    let mut words = 0usize;
    for app in StdApp::ALL {
        for opt in [OptLevel::O0, OptLevel::O2] {
            let program = parfait_littlec::frontend(&app.source()).unwrap();
            let asm = parfait_littlec::compile(&program, opt).unwrap();
            let prog = parfait_riscv::assemble(&asm).unwrap();
            for (i, &word) in prog.text.iter().enumerate() {
                let addr = prog.text_base + 4 * i as u32;
                let instr = decode(word).unwrap_or_else(|e| {
                    panic!("{} {opt}: undecodable word at {addr:#010x}: {e}", app.slug())
                });
                assert_eq!(
                    encode(instr),
                    word,
                    "{} {opt}: {addr:#010x}: `{instr}` re-encodes differently",
                    app.slug()
                );
                words += 1;
            }
        }
    }
    assert!(words > 1000, "expected substantial firmware coverage, got {words} words");
}

/// Known-illegal encodings are rejected loudly.
#[test]
fn illegal_encodings_are_rejected() {
    let illegal = [
        0x0000_0000u32, // all zeros (defined illegal in RISC-V)
        0xFFFF_FFFF,    // all ones
        0x0000_2063,    // branch with reserved funct3 = 2
        0x0000_707F,    // opcode 0x7f: not a base-ISA major opcode
        0x8000_405B,    // reserved major opcode 0x5b
        0x0FF0_000F,    // non-canonical fence (fields our Fence can't carry)
    ];
    for word in illegal {
        assert!(decode(word).is_err(), "{word:#010x} must not decode");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4096, .. ProptestConfig::default() })]

    /// Any word that decodes at all must re-encode to itself: the
    /// decoder never normalizes, truncates, or aliases fields.
    #[test]
    fn decodable_words_roundtrip(word: u32) {
        if let Ok(instr) = decode(word) {
            prop_assert_eq!(encode(instr), word, "`{}` loses bits", instr);
        }
    }
}
