//! Assembly-circuit synchronization (§5.4) on the password hasher:
//! stepping Riscette against the cycle-level cores during `handle`.

use parfait::lockstep::Codec;
use parfait_hsms::hasher::{HasherCodec, HasherCommand};
use parfait_hsms::platform::{make_soc, Cpu};
use parfait_knox2::sync::{run_until_decode, sync_handle_execution, SyncPolicy, SyncWhen};
use parfait_rtl::Circuit;
use parfait_soc::host;

mod common;

fn prepared_soc(cpu: Cpu) -> parfait_soc::Soc {
    let fw = common::hasher_fw();
    let codec = HasherCodec;
    let secret = codec.encode_state(&parfait_hsms::hasher::HasherState { secret: [9; 32] });
    let mut soc = make_soc(cpu, fw, &secret);
    // Feed one Hash command; the SoC will reach handle.
    let cmd = codec.encode_command(&HasherCommand::Hash { message: [5; 32] });
    host::send_bytes(&mut soc, &cmd, 10_000_000).unwrap();
    soc
}

fn sync_on(cpu: Cpu, when: SyncWhen) -> parfait_knox2::SyncStats {
    let mut soc = prepared_soc(cpu);
    let handle_addr = soc.firmware().address_of("handle").unwrap();
    run_until_decode(&mut soc, handle_addr, 50_000_000).unwrap();
    sync_handle_execution(&mut soc, &SyncPolicy { registers: when, max_instructions: 100_000_000 })
        .unwrap_or_else(|e| panic!("{e}"))
}

#[test]
fn sync_passes_on_ibex() {
    let stats = sync_on(Cpu::Ibex, SyncWhen::ControlAndMem);
    assert!(stats.instructions > 10_000, "instructions: {}", stats.instructions);
    assert!(stats.sync_points > 1_000);
    assert!(stats.cycles >= stats.instructions);
}

#[test]
fn sync_passes_on_pico() {
    let stats = sync_on(Cpu::Pico, SyncWhen::ControlAndMem);
    assert!(stats.instructions > 10_000);
    // The multi-cycle core needs several cycles per instruction.
    assert!(stats.cycles > 3 * stats.instructions);
}

#[test]
fn sync_policies_trade_checks_for_coverage() {
    let every = sync_on(Cpu::Ibex, SyncWhen::EveryInstruction);
    let fig11 = sync_on(Cpu::Ibex, SyncWhen::ControlAndMem);
    let never = sync_on(Cpu::Ibex, SyncWhen::Never);
    assert!(every.component_checks > fig11.component_checks);
    assert!(fig11.component_checks > never.component_checks);
    assert_eq!(every.instructions, fig11.instructions);
    assert_eq!(fig11.instructions, never.instructions);
}

#[test]
fn both_platforms_agree_on_instruction_count() {
    // Porting the platform (§8.1): the same firmware retires the same
    // instruction stream on both CPUs; only cycle counts differ.
    let i = sync_on(Cpu::Ibex, SyncWhen::Never);
    let p = sync_on(Cpu::Pico, SyncWhen::Never);
    assert_eq!(i.instructions, p.instructions);
    assert!(p.cycles > i.cycles);
}

#[test]
fn sync_detects_microarchitectural_divergence() {
    // Tamper with the ISA snapshot (stand-in for a pipeline hazard: the
    // hardware and the ISA model disagree on a register value).
    use parfait_knox2::sync::snapshot_isa_machine;
    let mut soc = prepared_soc(Cpu::Ibex);
    let handle_addr = soc.firmware().address_of("handle").unwrap();
    run_until_decode(&mut soc, handle_addr, 50_000_000).unwrap();
    let mut isa = snapshot_isa_machine(&soc);
    isa.regs[10] ^= 4; // corrupt a0 (the state pointer)
                       // Drive the comparison manually: the first register sync must fail.
                       // (sync_handle_execution snapshots internally, so emulate its loop.)
    let mut diverged = false;
    for _ in 0..10_000 {
        soc.tick();
        if let Some((_, pc)) = soc.core.last_retired() {
            if isa.pc == pc {
                isa.step().unwrap();
                if soc.core.regs()[10].v != isa.regs[10] {
                    diverged = true;
                    break;
                }
            } else {
                diverged = true;
                break;
            }
        }
    }
    assert!(diverged, "corrupted ISA state must be detected");
}
