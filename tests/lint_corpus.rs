//! Seeded-violation corpus for parfait-lint.
//!
//! Each case is a small handler with one deliberate constant-time
//! violation; the test asserts the analyzer fires *exactly* the
//! expected rule at the expected layer(s). The asm-only cases patch a
//! leak into the assembly of a clean program, modeling a bug
//! introduced below the IR (where only [`parfait_analyzer::lint_asm`]
//! can see it). Finally, the production firmwares must lint clean at
//! both layers — the analyzer's false-positive budget on real code is
//! zero.

use parfait_analyzer::{lint_asm, lint_source, Layer, LintReport, RuleId};
use parfait_littlec::codegen::OptLevel;
use parfait_pipeline::apps::StdApp;
use parfait_telemetry::Telemetry;

fn lint(src: &str, opt: OptLevel) -> LintReport {
    lint_source(src, opt, &Telemetry::disabled()).expect("corpus case must be analyzable")
}

/// Assert the report fires exactly `expect` at the IR layer and
/// exactly `expect` at the asm layer.
fn assert_rules(report: &LintReport, expect: RuleId) {
    assert_eq!(report.rules_at(Layer::Ir), vec![expect], "IR layer: {:#?}", report.findings);
    assert_eq!(report.rules_at(Layer::Asm), vec![expect], "asm layer: {:#?}", report.findings);
}

#[test]
fn case_secret_branch() {
    for opt in [OptLevel::O0, OptLevel::O2] {
        let r = lint(
            "void handle(u8* state, u8* cmd, u8* resp) {
                if (state[0]) { resp[0] = 1; } else { resp[0] = 2; }
            }",
            opt,
        );
        assert_rules(&r, RuleId::SecretBranch);
    }
}

#[test]
fn case_secret_table_lookup() {
    let r = lint(
        "const u8 SBOX[16] = {9, 4, 10, 11, 13, 1, 8, 5, 6, 2, 0, 3, 12, 14, 15, 7};
        void handle(u8* state, u8* cmd, u8* resp) {
            resp[0] = SBOX[state[0] & 15];
        }",
        OptLevel::O2,
    );
    assert_rules(&r, RuleId::SecretIndex);
}

#[test]
fn case_early_exit_compare() {
    // The classic memcmp bug: return at the first mismatching byte.
    // Both the mismatch branch and the loop's data-dependent exit are
    // secret-dependent control flow.
    let r = lint(
        "void handle(u8* state, u8* cmd, u8* resp) {
            u32 i = 0;
            u32 ok = 1;
            while (i < 16) {
                if (state[i] != cmd[i]) { ok = 0; break; }
                i = i + 1;
            }
            resp[0] = (u8)ok;
        }",
        OptLevel::O2,
    );
    assert_rules(&r, RuleId::SecretBranch);
}

#[test]
fn case_secret_loop_bound() {
    let r = lint(
        "void handle(u8* state, u8* cmd, u8* resp) {
            u32 n = state[0] & 31;
            u32 acc = 0;
            u32 i = 0;
            while (i < n) { acc = acc + cmd[i]; i = i + 1; }
            resp[0] = (u8)acc;
        }",
        OptLevel::O2,
    );
    assert_rules(&r, RuleId::SecretBranch);
}

#[test]
fn case_division_by_secret() {
    let r = lint(
        "void handle(u8* state, u8* cmd, u8* resp) {
            u32 d = state[0] | 1;
            resp[0] = (u8)(cmd[0] / d);
        }",
        OptLevel::O2,
    );
    assert_rules(&r, RuleId::SecretLatency);
}

#[test]
fn case_remainder_by_secret() {
    let r = lint(
        "void handle(u8* state, u8* cmd, u8* resp) {
            u32 m = state[0] | 1;
            resp[0] = (u8)(cmd[0] % m);
        }",
        OptLevel::O2,
    );
    assert_rules(&r, RuleId::SecretLatency);
}

#[test]
fn case_secret_store_index() {
    let r = lint(
        "static u8 scratch[16];
        void handle(u8* state, u8* cmd, u8* resp) {
            scratch[state[0] & 15] = cmd[0];
            resp[0] = scratch[0];
        }",
        OptLevel::O2,
    );
    assert_rules(&r, RuleId::SecretIndex);
}

/// A clean program used as the substrate for the asm-patching cases.
const CLEAN_SRC: &str = "void handle(u8* state, u8* cmd, u8* resp) {
    u32 s = state[0];
    u32 m = 0 - (cmd[0] & 1);
    resp[0] = (u8)(s & m);
}";

/// Compile `CLEAN_SRC`, then insert `patch` right after the `handle:`
/// label — a leak introduced below the IR.
fn patched_asm_report(patch: &str) -> Vec<parfait_analyzer::Finding> {
    let program = parfait_littlec::frontend(CLEAN_SRC).unwrap();
    // The IR layer sees nothing wrong with the clean source.
    let ir = parfait_littlec::ir::lower(&program).unwrap();
    assert!(parfait_analyzer::lint_ir(&ir, "handle").unwrap().is_empty());
    let asm = parfait_littlec::compile(&program, OptLevel::O2).unwrap();
    assert!(asm.contains("handle:"), "expected a handle: label in:\n{asm}");
    let patched = asm.replacen("handle:", &format!("handle:\n{patch}"), 1);
    let prog = parfait_riscv::assemble(&patched).expect("patched assembly must assemble");
    lint_asm(&prog, "handle").unwrap()
}

#[test]
fn case_asm_only_secret_branch() {
    // A compiler bug model: a branch on a secret byte spliced into the
    // entry, converging immediately so the rest of the code is intact.
    let findings = patched_asm_report("    lbu t0, 0(a0)\n    bne t0, x0, .Lct_patch\n.Lct_patch:");
    let rules: Vec<RuleId> = findings.iter().map(|f| f.rule).collect();
    assert_eq!(rules, vec![RuleId::SecretBranch], "{findings:#?}");
    assert!(findings[0].diagnostic.message.contains("bne"), "{findings:#?}");
}

#[test]
fn case_asm_only_secret_indexed_load() {
    // A secret byte used as an index into the public command buffer.
    let findings = patched_asm_report("    lbu t0, 0(a0)\n    add t0, a1, t0\n    lbu t1, 0(t0)");
    let rules: Vec<RuleId> = findings.iter().map(|f| f.rule).collect();
    assert_eq!(rules, vec![RuleId::SecretIndex], "{findings:#?}");
}

#[test]
fn case_asm_only_secret_shift_amount() {
    // PicoRV32's serial shifter makes the shift *amount* a latency
    // operand (its contract declares `shift: operand(shift-chunks)`),
    // so a secret-derived amount is a CT-LATENCY sink — a rule the
    // lint only has because it derives applicability from the cores'
    // contracts rather than a baked-in div/rem table.
    let findings = patched_asm_report("    lbu t0, 0(a0)\n    li t1, 1\n    sll t1, t1, t0");
    let rules: Vec<RuleId> = findings.iter().map(|f| f.rule).collect();
    assert_eq!(rules, vec![RuleId::SecretLatency], "{findings:#?}");
    assert!(findings[0].diagnostic.message.contains("shift amount"), "{findings:#?}");
}

#[test]
fn case_negative_control_secret_shifted_by_immediate() {
    // The shifted *value* being secret is fine on every supported
    // core: latency tracks the amount, and an immediate amount is
    // public by construction.
    let findings = patched_asm_report("    lbu t0, 0(a0)\n    slli t0, t0, 3\n    sll t0, t0, x0");
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn case_asm_only_callee_saved_clobber() {
    // The pure ABI fault that is invisible to every dynamic stage on
    // an output-equivalent workload: an s-register grabbed as scratch
    // without a save/restore.
    let findings = patched_asm_report("    li s3, 42");
    let rules: Vec<RuleId> = findings.iter().map(|f| f.rule).collect();
    assert_eq!(rules, vec![RuleId::CalleeSaved], "{findings:#?}");
    assert!(findings[0].diagnostic.message.contains("`s3`"), "{findings:#?}");
}

/// The contract-derived applicability table must coincide with the
/// historical baked-in one (div/rem variable-latency; loads and stores
/// address-traced) everywhere the old lint had an opinion — that, plus
/// the corpus and production cases in this file keeping their exact
/// verdicts, is the lint-under-contract ≡ lint-before argument. The
/// one extension is Shift, which the old table missed and Pico's
/// serial shifter makes real.
#[test]
fn contract_model_matches_the_historical_rule_table() {
    use parfait_cores::InstrClass;
    let m = parfait_analyzer::latency_model();
    assert!(m.variable_latency(InstrClass::Div));
    assert!(m.variable_latency(InstrClass::Shift));
    assert!(m.addr_trace(InstrClass::Load));
    assert!(m.addr_trace(InstrClass::Store));
    for class in [InstrClass::Alu, InstrClass::Mul, InstrClass::Branch, InstrClass::Jump] {
        assert!(!m.variable_latency(class), "{class} must not be a latency sink");
        assert!(!m.addr_trace(class), "{class} must not be an address sink");
    }
}

#[test]
fn case_negative_control_masked_select() {
    for opt in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
        let r = lint(CLEAN_SRC, opt);
        assert!(r.is_clean(), "{opt:?}: {:#?}", r.findings);
    }
}

/// The sparse asm analyzer (cross-pass memoized summaries, the
/// production default) and its threaded variant must produce findings
/// byte-identical to the dense oracle that recomputes every function
/// on every pass — over the whole seeded-violation corpus, clean
/// controls included.
#[test]
fn sparse_and_threaded_asm_lint_match_dense_oracle_on_corpus() {
    let corpus: &[&str] = &[
        "void handle(u8* state, u8* cmd, u8* resp) {
            if (state[0]) { resp[0] = 1; } else { resp[0] = 2; }
        }",
        "const u8 SBOX[16] = {9, 4, 10, 11, 13, 1, 8, 5, 6, 2, 0, 3, 12, 14, 15, 7};
        void handle(u8* state, u8* cmd, u8* resp) {
            resp[0] = SBOX[state[0] & 15];
        }",
        "void handle(u8* state, u8* cmd, u8* resp) {
            u32 i = 0;
            u32 ok = 1;
            while (i < 16) {
                if (state[i] != cmd[i]) { ok = 0; break; }
                i = i + 1;
            }
            resp[0] = (u8)ok;
        }",
        "void handle(u8* state, u8* cmd, u8* resp) {
            u32 d = state[0] | 1;
            resp[0] = (u8)(cmd[0] / d);
        }",
        "static u8 scratch[16];
        void handle(u8* state, u8* cmd, u8* resp) {
            scratch[state[0] & 15] = cmd[0];
            resp[0] = scratch[0];
        }",
        CLEAN_SRC,
    ];
    for (i, src) in corpus.iter().enumerate() {
        for opt in [OptLevel::O0, OptLevel::O2] {
            let program = parfait_littlec::frontend(src).unwrap();
            let asm = parfait_littlec::compile(&program, opt).unwrap();
            let prog = parfait_riscv::assemble(&asm).unwrap();
            let dense = parfait_analyzer::lint_asm_dense(&prog, "handle").unwrap();
            let sparse = lint_asm(&prog, "handle").unwrap();
            assert_eq!(sparse, dense, "case {i} {opt:?}: sparse != dense");
            for threads in [2, 8] {
                let par = parfait_analyzer::lint_asm_threaded(&prog, "handle", threads).unwrap();
                assert_eq!(par, dense, "case {i} {opt:?}: threaded({threads}) != dense");
            }
        }
    }
}

/// The production firmwares are constant-time by construction (FPS
/// verifies this dynamically); the static analyzer must agree with
/// zero findings at both layers.
#[test]
fn production_hasher_lints_clean() {
    for opt in [OptLevel::O0, OptLevel::O2] {
        let r = lint(&StdApp::Hasher.source(), opt);
        assert!(r.is_clean(), "hasher {opt:?}: {:#?}", r.findings);
    }
}

#[test]
fn production_totp_lints_clean() {
    for opt in [OptLevel::O0, OptLevel::O2] {
        let r = lint(&StdApp::Totp.source(), opt);
        assert!(r.is_clean(), "totp {opt:?}: {:#?}", r.findings);
    }
}

#[test]
fn production_ecdsa_lints_clean() {
    // O2 only: the O0 image is large and the abstract interpreter's
    // per-instruction states make it the slow spot.
    let r = lint(&StdApp::Ecdsa.source(), OptLevel::O2);
    assert!(r.is_clean(), "ecdsa O2: {:#?}", r.findings);
    assert!(r.ir_insts > 0 && r.asm_instrs > 0);
}
