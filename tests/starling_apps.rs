//! Starling software verification (§4) of the two case-study apps.
//!
//! This is the paper's Table 3 activity: discharging the lockstep
//! obligations between the F*-style spec and the `handle`
//! implementation, plus translation validation through the compiler
//! pipeline, plus an end-to-end spec≈asm world-equivalence check.

use parfait::StateMachine;
use parfait_hsms::ecdsa::{EcdsaCodec, EcdsaCommand, EcdsaResponse, EcdsaSpec, EcdsaState};
use parfait_hsms::firmware::{ecdsa_app_source, hasher_app_source};
use parfait_hsms::hasher::{HasherCodec, HasherCommand, HasherResponse, HasherSpec, HasherState};
use parfait_hsms::{ecdsa, hasher};
use parfait_littlec::codegen::OptLevel;
use parfait_starling::{verify_app, StarlingConfig};

#[test]
fn starling_verifies_password_hasher() {
    let config = StarlingConfig {
        state_size: hasher::STATE_SIZE,
        command_size: hasher::COMMAND_SIZE,
        response_size: hasher::RESPONSE_SIZE,
        adversarial_inputs: 12,
        ..StarlingConfig::default()
    };
    let states = vec![
        HasherSpec.init(),
        HasherState { secret: [0xAB; 32] },
        HasherState { secret: [0xFF; 32] },
    ];
    let commands = vec![
        HasherCommand::Initialize { secret: [0x11; 32] },
        HasherCommand::Hash { message: [0x22; 32] },
        HasherCommand::Hash { message: [0x00; 32] },
    ];
    let responses = vec![HasherResponse::Initialized, HasherResponse::Hashed([9; 32])];
    let report = verify_app(
        &HasherCodec,
        &HasherSpec,
        &hasher_app_source(),
        &config,
        &states,
        &commands,
        &responses,
    )
    .unwrap_or_else(|e| panic!("{e}"));
    assert!(report.lockstep_cases >= 3 * 18);
    assert!(report.validation_cases > 0);
}

#[test]
fn starling_catches_hasher_logic_bug() {
    // Integer-overflow-flavoured logic bug: digest truncated by one byte.
    let buggy = hasher_app_source().replace(
        "for (u32 i = 0; i < 32; i = i + 1) {\n            resp[1 + i] = digest[i];",
        "for (u32 i = 0; i < 31; i = i + 1) {\n            resp[1 + i] = digest[i];",
    );
    assert_ne!(buggy, hasher_app_source());
    let config = StarlingConfig {
        state_size: hasher::STATE_SIZE,
        command_size: hasher::COMMAND_SIZE,
        response_size: hasher::RESPONSE_SIZE,
        adversarial_inputs: 2,
        ..StarlingConfig::default()
    };
    let err = verify_app(
        &HasherCodec,
        &HasherSpec,
        &buggy,
        &config,
        &[HasherState { secret: [0xAB; 32] }],
        &[HasherCommand::Hash { message: [0x22; 32] }],
        &[HasherResponse::Initialized],
    )
    .unwrap_err();
    let msg = format!("{err}");
    assert!(msg.contains("lockstep"), "{msg}");
}

#[test]
fn starling_verifies_ecdsa_signer() {
    // The ECDSA app is expensive to execute (each Sign is a full scalar
    // multiplication at every pipeline level), so the Starling run is
    // configured with a small but targeted case set; the broader Sign
    // behaviour is covered by the dedicated differential tests and the
    // Knox2 run.
    let config = StarlingConfig {
        state_size: ecdsa::STATE_SIZE,
        command_size: ecdsa::COMMAND_SIZE,
        response_size: ecdsa::RESPONSE_SIZE,
        adversarial_inputs: 4,
        opt_levels: vec![OptLevel::O2],
        ..StarlingConfig::default()
    };
    let states = vec![EcdsaState { prf_key: [7; 32], prf_counter: 3, sig_key: [9; 32] }];
    let commands = vec![EcdsaCommand::Initialize { prf_key: [1; 32], sig_key: [2; 32] }];
    let responses = vec![
        EcdsaResponse::Initialized,
        EcdsaResponse::Signature(Some([5; 64])),
        EcdsaResponse::Signature(None),
    ];
    let report = verify_app(
        &EcdsaCodec,
        &EcdsaSpec,
        &ecdsa_app_source(),
        &config,
        &states,
        &commands,
        &responses,
    )
    .unwrap_or_else(|e| panic!("{e}"));
    assert!(report.lockstep_cases > 0);
}

#[test]
fn ecdsa_sign_lockstep_at_asm_level() {
    // One full Sign through the lockstep simulation at the assembly
    // level: the compiled handle must track the spec step exactly.
    use parfait::lockstep::Codec;
    let program = parfait_littlec::frontend(&ecdsa_app_source()).unwrap();
    let asm = parfait_littlec::validate::asm_machine(
        &program,
        OptLevel::O2,
        ecdsa::STATE_SIZE,
        ecdsa::COMMAND_SIZE,
        ecdsa::RESPONSE_SIZE,
    )
    .unwrap();
    let codec = EcdsaCodec;
    let spec = EcdsaSpec;
    let st = EcdsaState { prf_key: [4; 32], prf_counter: 0, sig_key: [6; 32] };
    let cmd = EcdsaCommand::Sign { msg: [0x5A; 32] };
    let (st2, want) = spec.step(&st, &cmd);
    let (got_state, got_resp) =
        asm.step(&codec.encode_state(&st), &codec.encode_command(&cmd)).unwrap();
    assert_eq!(got_state, codec.encode_state(&st2));
    assert_eq!(got_resp, codec.encode_response(Some(&want)));
    match want {
        EcdsaResponse::Signature(Some(_)) => {}
        other => panic!("expected a real signature, got {other:?}"),
    }
}

#[test]
fn ecdsa_counter_saturation_lockstep() {
    // The counter-exhausted path must be byte-identical to the spec.
    use parfait::lockstep::Codec;
    let program = parfait_littlec::frontend(&ecdsa_app_source()).unwrap();
    let interp = parfait_littlec::interp::Interp::new(&program);
    let codec = EcdsaCodec;
    let spec = EcdsaSpec;
    let st = EcdsaState { prf_key: [4; 32], prf_counter: u64::MAX, sig_key: [6; 32] };
    let cmd = EcdsaCommand::Sign { msg: [0x5A; 32] };
    let (st2, want) = spec.step(&st, &cmd);
    assert_eq!(want, EcdsaResponse::Signature(None));
    let (got_state, got_resp) = interp
        .step(&codec.encode_state(&st), &codec.encode_command(&cmd), ecdsa::RESPONSE_SIZE)
        .unwrap();
    assert_eq!(got_state, codec.encode_state(&st2), "counter must not wrap");
    assert_eq!(got_resp, codec.encode_response(Some(&want)));
}
