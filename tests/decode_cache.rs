//! Differential tests for the pre-decoded instruction cache
//! (`parfait_riscv::predecode`): a SoC running from the shared decode
//! cache must be cycle-for-cycle identical to one decoding live off
//! the bus — same wire outputs, same FPS verdicts and statistics — at
//! every checker thread count, and SoCs instantiated from the same
//! firmware image must share one cache (the mutation harness builds
//! hundreds of worlds per image; re-decoding the ROM for each would
//! swamp the runs it benchmarks).

mod common;

use std::sync::Arc;

use common::{cfg, cmd, project, standard_script, token_fps, RunOutcome, TokenFps, TOKEN_LC};
use parfait_cores::{Core, IbexCore};
use parfait_hsms::platform::{make_soc, Cpu};
use parfait_hsms::syssw;
use parfait_knox2::{check_fps_parallel, check_fps_traced, CircuitEmulator, FpsObserver, HostOp};
use parfait_riscv::predecode::DecodeCache;
use parfait_rtl::Circuit;
use parfait_soc::{Firmware, Soc, ROM_BASE};

/// A token-HSM SoC with the decode cache explicitly disabled — the
/// live bus-fetch + decode path, regardless of `PARFAIT_DECODE_CACHE`.
fn make_soc_uncached(fw: Firmware, initial_state: &[u8]) -> Soc {
    let fram = syssw::initial_fram(initial_state);
    let core: Box<dyn Core> = Box::new(IbexCore::with_fault(ROM_BASE, None));
    let mut soc = Soc::new_with_decode_cache(core, fw, &fram, None);
    soc.fram.set_taint(syssw::FLAG_OFFSET, 4, false);
    soc
}

/// One FPS run over explicitly cached or uncached worlds (both the
/// real SoC and the emulator's dummy SoC use the same mode).
fn run_fps(fps: &TokenFps, cached: bool, threads: usize, script: &[HostOp]) -> RunOutcome {
    let (mut real, dummy) = if cached {
        (
            make_soc(Cpu::Ibex, fps.fw.clone(), &fps.secret_state),
            make_soc(Cpu::Ibex, fps.fw.clone(), &fps.dummy_state),
        )
    } else {
        (
            make_soc_uncached(fps.fw.clone(), &fps.secret_state),
            make_soc_uncached(fps.fw.clone(), &fps.dummy_state),
        )
    };
    let mut emu = CircuitEmulator::new(dummy, &fps.spec, fps.secret_state.clone(), common::CMD);
    let obs = FpsObserver::default();
    let result = if threads <= 1 {
        check_fps_traced(&mut real, &mut emu, &cfg(), &project, script, &obs)
    } else {
        check_fps_parallel(&mut real, &mut emu, &cfg(), &project, script, &obs, threads)
    };
    RunOutcome {
        result,
        final_state: project(&real),
        spec_state: emu.spec_state.clone(),
        spec_responses: emu.spec_responses.clone(),
    }
}

/// The cached and uncached worlds must agree on everything except
/// wall/cpu timing.
fn assert_identical(cached: &RunOutcome, fresh: &RunOutcome, label: &str) {
    let a = cached.result.as_ref().unwrap_or_else(|e| panic!("{label}: cached failed: {e}"));
    let b = fresh.result.as_ref().unwrap_or_else(|e| panic!("{label}: uncached failed: {e}"));
    assert_eq!(a.cycles, b.cycles, "{label}: cycles");
    assert_eq!(a.commands, b.commands, "{label}: commands");
    assert_eq!(a.spec_queries, b.spec_queries, "{label}: spec queries");
    assert_eq!(cached.final_state, fresh.final_state, "{label}: real-world final state");
    assert_eq!(cached.spec_state, fresh.spec_state, "{label}: ideal-world spec state");
    assert_eq!(cached.spec_responses, fresh.spec_responses, "{label}: spec responses");
}

#[test]
fn cached_fps_matches_fresh_decode_at_all_thread_counts() {
    // Segment at every quiescent boundary so the parallel runs
    // exercise multi-segment forking of cache-sharing snapshots.
    std::env::set_var("PARFAIT_SEGMENT_CYCLES", "1");
    let fps = token_fps();
    let script = standard_script();
    for threads in [1, 2, 8] {
        let cached = run_fps(fps, true, threads, &script);
        let fresh = run_fps(fps, false, threads, &script);
        assert_identical(&cached, &fresh, &format!("standard@{threads}"));
    }
}

#[test]
fn cached_fps_matches_fresh_decode_on_hostile_io() {
    std::env::set_var("PARFAIT_SEGMENT_CYCLES", "1");
    let fps = token_fps();
    // Garbage and idle between commands: boundaries land mid-frame, so
    // cached and uncached runs must agree even about partial traffic.
    let script = vec![
        HostOp::Garbage(vec![0xFF, 0x00, 0xA5]),
        HostOp::Command(cmd(3, 5)),
        HostOp::Idle(977),
        HostOp::Command(cmd(2, 10)),
        HostOp::Garbage(vec![1]),
        HostOp::Command(cmd(3, 0)),
    ];
    for threads in [1, 2, 8] {
        let cached = run_fps(fps, true, threads, &script);
        let fresh = run_fps(fps, false, threads, &script);
        assert_identical(&cached, &fresh, &format!("hostile@{threads}"));
    }
}

#[test]
fn cached_and_uncached_socs_tick_cycle_identically() {
    let fps = token_fps();
    let mut cached = make_soc(Cpu::Ibex, fps.fw.clone(), &fps.secret_state);
    let mut fresh = make_soc_uncached(fps.fw.clone(), &fps.secret_state);
    for cycle in 0..50_000u32 {
        assert_eq!(
            cached.get_output().observable(),
            fresh.get_output().observable(),
            "outputs diverge at cycle {cycle}"
        );
        cached.tick();
        fresh.tick();
    }
    assert_eq!(cached.core.pc(), fresh.core.pc(), "final pc");
    assert_eq!(cached.fault(), fresh.fault(), "final fault");
}

#[test]
fn socs_from_one_image_share_one_predecoded_cache() {
    // A unique image for this test (an extra nop in the handler), so
    // concurrent tests in this binary can't touch its registry entry.
    let fps = TokenFps::build(TOKEN_LC, None, None, |a| {
        a.replacen("handle:", "handle:\n    addi x0, x0, 0", 1)
    });
    let cache = DecodeCache::shared(ROM_BASE, &fps.fw.rom);
    let count = Arc::strong_count(&cache);
    // The mutation harness's pattern: many worlds from one image.
    let socs: Vec<Soc> =
        (0..4).map(|_| make_soc(Cpu::Ibex, fps.fw.clone(), &fps.secret_state)).collect();
    assert_eq!(
        Arc::strong_count(&cache),
        count + socs.len(),
        "every SoC must hold the one shared cache, not a private copy"
    );
    drop(socs);
    // A tampered image must get its own cache, never alias this one.
    let mut tampered = fps.fw.rom.clone();
    let last = tampered.len() - 1;
    tampered[last] ^= 0x01;
    let other = DecodeCache::shared(ROM_BASE, &tampered);
    assert!(!Arc::ptr_eq(&cache, &other), "tampered image aliased the clean cache");
}
