//! Shared test fixture: the tiny "token counter" HSM used by the attack
//! catalog and the parallel-checker differential tests. Each SoC run
//! takes only thousands of cycles, so whole FPS checks stay fast.
//!
//! The token HSM: state = [secret(4 LE), counter(4 LE)]; commands are
//! [tag, arg(4 LE)]:
//!   tag 1: set secret := arg           → resp [1, 0...]
//!   tag 2: counter += arg              → resp [2, counter]
//!   tag 3: prove knowledge: resp [3, (secret*2654435761 + counter) ^ arg]
//!   else:  resp [0xff, 0...]
#![allow(dead_code)]

use std::sync::OnceLock;

use parfait::lockstep::Codec;
use parfait::machine::FnMachine;
use parfait_hsms::firmware::hasher_app_source;
use parfait_hsms::platform::{build_firmware, build_firmware_parts, make_soc, AppSizes, Cpu};
use parfait_hsms::syssw;
use parfait_knox2::{
    check_fps_parallel, check_fps_traced, CircuitEmulator, FpsConfig, FpsFailure, FpsObserver,
    FpsReport, HostOp,
};
use parfait_littlec::codegen::OptLevel;
use parfait_littlec::validate::asm_machine;
use parfait_riscv::model::AsmStateMachine;
use parfait_soc::{Firmware, Soc};

pub const STATE: usize = 8;
pub const CMD: usize = 5;
pub const RESP: usize = 5;

pub const TOKEN_LC: &str = "
    u32 ld32(u8* p) {
        return p[0] | (p[1] << 8) | (p[2] << 16) | (p[3] << 24);
    }
    void st32(u8* p, u32 v) {
        p[0] = (u8)v;
        p[1] = (u8)(v >> 8);
        p[2] = (u8)(v >> 16);
        p[3] = (u8)(v >> 24);
    }
    void handle(u8* state, u8* cmd, u8* resp) {
        for (u32 i = 0; i < 5; i = i + 1) { resp[i] = 0; }
        u32 arg = ld32(cmd + 1);
        u32 tag = cmd[0];
        if (tag == 1) {
            st32(state, arg);
            resp[0] = 1;
            return;
        }
        if (tag == 2) {
            u32 c = ld32(state + 4) + arg;
            st32(state + 4, c);
            resp[0] = 2;
            st32(resp + 1, c);
            return;
        }
        if (tag == 3) {
            u32 secret = ld32(state);
            u32 c = ld32(state + 4);
            resp[0] = 3;
            st32(resp + 1, (secret * 2654435761 + c) ^ arg);
            return;
        }
        resp[0] = 0xff;
    }
";

/// The token spec as a state machine over (secret, counter).
pub fn token_spec() -> FnMachine<(u32, u32), Vec<u8>, Vec<u8>> {
    FnMachine {
        init: (0, 0),
        step: |s, c| {
            let mut resp = vec![0u8; RESP];
            if c.len() != CMD {
                resp[0] = 0xFF;
                return (*s, resp);
            }
            let arg = u32::from_le_bytes([c[1], c[2], c[3], c[4]]);
            match c[0] {
                1 => {
                    resp[0] = 1;
                    ((arg, s.1), resp)
                }
                2 => {
                    let c2 = s.1.wrapping_add(arg);
                    resp[0] = 2;
                    resp[1..5].copy_from_slice(&c2.to_le_bytes());
                    ((s.0, c2), resp)
                }
                3 => {
                    resp[0] = 3;
                    let v = s.0.wrapping_mul(2654435761).wrapping_add(s.1) ^ arg;
                    resp[1..5].copy_from_slice(&v.to_le_bytes());
                    (*s, resp)
                }
                _ => {
                    resp[0] = 0xFF;
                    (*s, resp)
                }
            }
        },
    }
}

pub struct TokenCodec;

impl Codec for TokenCodec {
    type Spec = FnMachine<(u32, u32), Vec<u8>, Vec<u8>>;
    type CI = Vec<u8>;
    type RI = Vec<u8>;
    type SI = Vec<u8>;

    fn encode_command(&self, c: &Vec<u8>) -> Vec<u8> {
        c.clone()
    }
    fn decode_command(&self, c: &Vec<u8>) -> Option<Vec<u8>> {
        (c.len() == CMD && matches!(c[0], 1..=3)).then(|| c.clone())
    }
    fn encode_response(&self, r: Option<&Vec<u8>>) -> Vec<u8> {
        match r {
            Some(v) => v.clone(),
            None => {
                let mut e = vec![0u8; RESP];
                e[0] = 0xFF;
                e
            }
        }
    }
    fn decode_response(&self, r: &Vec<u8>) -> Vec<u8> {
        r.clone()
    }
    fn encode_state(&self, s: &(u32, u32)) -> Vec<u8> {
        let mut out = Vec::with_capacity(8);
        out.extend_from_slice(&s.0.to_le_bytes());
        out.extend_from_slice(&s.1.to_le_bytes());
        out
    }
}

/// A token-HSM [`parfait_pipeline::AppPipeline`]: the whole seven-stage
/// proof pipeline over the tiny fixture, so pipeline- and serve-level
/// tests run in seconds. `slug` names the cache entries; `source` is
/// the littlec implementation (default [`TOKEN_LC`]; any
/// behavior-preserving variant pairs with the same spec).
pub fn token_app_pipeline(slug: &str, source: String) -> parfait_pipeline::AppPipeline {
    parfait_pipeline::app_from_codec(
        "token HSM",
        slug,
        source,
        AppSizes { state: STATE, command: CMD, response: RESP },
        TokenCodec,
        token_spec(),
        (0xDEAD_BEEF, 7),
        cmd(3, 5),
        vec![(0, 0), (0xDEAD_BEEF, 7)],
        vec![cmd(1, 5), cmd(2, 10), cmd(3, 5)],
        vec![vec![1, 0, 0, 0, 0]],
        parfait_starling::StarlingConfig {
            state_size: STATE,
            command_size: CMD,
            response_size: RESP,
            adversarial_inputs: 4,
            ..parfait_starling::StarlingConfig::default()
        },
    )
}

/// The production password-hasher firmware at `-O2`, compiled and
/// linked exactly once per test binary. The suites need a clean image
/// per scenario (cloning one is microseconds); rebuilding it inside
/// every `#[test]` made firmware compilation a visible fraction of
/// suite wall time (EXPERIMENTS.md "test-fixture caching").
pub fn hasher_fw() -> Firmware {
    static FW: OnceLock<Firmware> = OnceLock::new();
    FW.get_or_init(|| {
        let sizes = AppSizes {
            state: parfait_hsms::hasher::STATE_SIZE,
            command: parfait_hsms::hasher::COMMAND_SIZE,
            response: parfait_hsms::hasher::RESPONSE_SIZE,
        };
        build_firmware(&hasher_app_source(), sizes, OptLevel::O2).unwrap()
    })
    .clone()
}

/// The hasher's assembly-level spec machine (`asm_machine` over the
/// clean app source at `-O2`), built once per test binary.
pub fn hasher_asm_spec() -> AsmStateMachine {
    static SPEC: OnceLock<AsmStateMachine> = OnceLock::new();
    SPEC.get_or_init(|| {
        let program = parfait_littlec::frontend(&hasher_app_source()).unwrap();
        asm_machine(
            &program,
            OptLevel::O2,
            parfait_hsms::hasher::STATE_SIZE,
            parfait_hsms::hasher::COMMAND_SIZE,
            parfait_hsms::hasher::RESPONSE_SIZE,
        )
        .unwrap()
    })
    .clone()
}

/// The clean token-HSM FPS scenario, built once per test binary and
/// shared by reference (`TokenFps::run` already starts each run from
/// fresh worlds, so sharing the built image is sound).
pub fn token_fps() -> &'static TokenFps {
    static FPS: OnceLock<TokenFps> = OnceLock::new();
    FPS.get_or_init(|| TokenFps::build(TOKEN_LC, None, None, |a| a))
}

pub fn cfg() -> FpsConfig {
    FpsConfig { command_size: CMD, response_size: RESP, timeout: 5_000_000, state_size: STATE }
}

pub fn project(soc: &Soc) -> Vec<u8> {
    syssw::active_state(&soc.fram_bytes(0, 64), STATE)
}

pub fn cmd(tag: u8, arg: u32) -> Vec<u8> {
    let mut c = vec![tag];
    c.extend_from_slice(&arg.to_le_bytes());
    c
}

pub fn standard_script() -> Vec<HostOp> {
    vec![
        HostOp::Command(cmd(3, 5)),    // prove (touches the secret)
        HostOp::Command(cmd(2, 10)),   // bump counter
        HostOp::Command(cmd(0xEE, 0)), // invalid
        HostOp::Command(cmd(3, 0)),
    ]
}

/// A built token-HSM FPS scenario: firmware plus assembly-level spec,
/// reusable across runs so the sequential oracle and the parallel
/// checker start from bit-identical worlds.
pub struct TokenFps {
    pub fw: Firmware,
    pub spec: AsmStateMachine,
    pub secret_state: Vec<u8>,
    pub dummy_state: Vec<u8>,
}

/// The outcome of one FPS run plus the final world states, for
/// asserting that two runs had identical side effects.
pub struct RunOutcome {
    pub result: Result<FpsReport, FpsFailure>,
    /// The refinement projection of the real SoC after the run.
    pub final_state: Vec<u8>,
    /// The ideal-world spec state after the run.
    pub spec_state: Vec<u8>,
    /// Every spec response the emulator produced.
    pub spec_responses: Vec<Vec<u8>>,
}

impl TokenFps {
    /// Build firmware from `app_source` (with optional system-software
    /// override and assembly patch), specified against the *assembly* of
    /// `spec_source` (defaults to the clean token app).
    pub fn build(
        app_source: &str,
        syssw_src: Option<&str>,
        spec_source: Option<&str>,
        patch: impl FnOnce(String) -> String,
    ) -> TokenFps {
        let default_syssw = syssw::syssw_source(STATE, CMD, RESP);
        let fw = build_firmware_parts(
            app_source,
            syssw_src.unwrap_or(&default_syssw),
            OptLevel::O2,
            patch,
        )
        .unwrap();
        let spec_prog = parfait_littlec::frontend(spec_source.unwrap_or(TOKEN_LC)).unwrap();
        let spec = asm_machine(&spec_prog, OptLevel::O2, STATE, CMD, RESP).unwrap();
        TokenFps {
            fw,
            spec,
            secret_state: TokenCodec.encode_state(&(0xDEAD_BEEF, 7)),
            dummy_state: TokenCodec.encode_state(&(0, 0)),
        }
    }

    fn worlds(&self) -> (Soc, CircuitEmulator<'_>) {
        let real = make_soc(Cpu::Ibex, self.fw.clone(), &self.secret_state);
        let dummy_soc = make_soc(Cpu::Ibex, self.fw.clone(), &self.dummy_state);
        let emu = CircuitEmulator::new(dummy_soc, &self.spec, self.secret_state.clone(), CMD);
        (real, emu)
    }

    /// One run with the sequential checker (`threads <= 1`) or the
    /// parallel checker, from fresh worlds.
    pub fn run(&self, script: &[HostOp], threads: usize) -> RunOutcome {
        let (mut real, mut emu) = self.worlds();
        let obs = FpsObserver::default();
        let result = if threads <= 1 {
            check_fps_traced(&mut real, &mut emu, &cfg(), &project, script, &obs)
        } else {
            check_fps_parallel(&mut real, &mut emu, &cfg(), &project, script, &obs, threads)
        };
        RunOutcome {
            result,
            final_state: project(&real),
            spec_state: emu.spec_state.clone(),
            spec_responses: emu.spec_responses.clone(),
        }
    }
}
