//! Differential tests: the parallel FPS checker must be observationally
//! identical to the sequential oracle — same reports on passing scripts
//! (modulo wall/cpu timing), byte-identical `FpsError`s (same cycle,
//! op index, everything) with the same partial statistics on failing
//! ones — at 1, 2, and 8 threads.
//!
//! `PARFAIT_SEGMENT_CYCLES=1` forces a segment cut at every quiescent
//! op boundary, so even the small token-HSM scripts exercise real
//! multi-segment forking.

mod common;

use common::{cmd, standard_script, token_fps, RunOutcome, TokenFps, TOKEN_LC};
use parfait_knox2::{FpsError, HostOp};

const THREADS: [usize; 2] = [2, 8];

fn setup() {
    // Same value from every test, so concurrent setters are benign.
    std::env::set_var("PARFAIT_SEGMENT_CYCLES", "1");
}

/// Reports must agree on everything except wall/cpu timing.
fn assert_same_pass(seq: &RunOutcome, par: &RunOutcome, label: &str) {
    let a = seq.result.as_ref().unwrap_or_else(|e| panic!("{label}: oracle failed: {e}"));
    let b = par.result.as_ref().unwrap_or_else(|e| panic!("{label}: parallel failed: {e}"));
    assert_eq!(a.cycles, b.cycles, "{label}: cycles");
    assert_eq!(a.commands, b.commands, "{label}: commands");
    assert_eq!(a.spec_queries, b.spec_queries, "{label}: spec queries");
    // On success both checkers leave the caller's worlds in the same
    // final states.
    assert_eq!(seq.final_state, par.final_state, "{label}: real-world final state");
    assert_eq!(seq.spec_state, par.spec_state, "{label}: ideal-world spec state");
    assert_eq!(seq.spec_responses, par.spec_responses, "{label}: spec responses");
}

/// Failures must be byte-identical, including the partial statistics
/// accumulated up to the failure point.
fn assert_same_fail(seq: &RunOutcome, par: &RunOutcome, label: &str) -> FpsError {
    let a = seq.result.as_ref().err().unwrap_or_else(|| panic!("{label}: oracle passed"));
    let b = par.result.as_ref().err().unwrap_or_else(|| panic!("{label}: parallel passed"));
    assert_eq!(a.error, b.error, "{label}: error");
    assert_eq!(a.partial.cycles, b.partial.cycles, "{label}: partial cycles");
    assert_eq!(a.partial.commands, b.partial.commands, "{label}: partial commands");
    assert_eq!(a.partial.spec_queries, b.partial.spec_queries, "{label}: partial spec queries");
    a.error.clone()
}

fn differential_pass(fps: &TokenFps, script: &[HostOp], label: &str) {
    let seq = fps.run(script, 1);
    for t in THREADS {
        let par = fps.run(script, t);
        assert_same_pass(&seq, &par, &format!("{label}@{t}"));
    }
}

fn differential_fail(fps: &TokenFps, script: &[HostOp], label: &str) -> FpsError {
    let seq = fps.run(script, 1);
    let mut err = None;
    for t in THREADS {
        let par = fps.run(script, t);
        err = Some(assert_same_fail(&seq, &par, &format!("{label}@{t}")));
    }
    err.unwrap()
}

// --- passing scripts -------------------------------------------------------

#[test]
fn clean_standard_script_is_identical() {
    setup();
    let fps = token_fps();
    differential_pass(fps, &standard_script(), "standard");
}

#[test]
fn garbage_and_idle_boundaries_are_identical() {
    setup();
    let fps = token_fps();
    // A partial command split across two Garbage ops leaves bytes
    // pending at an op boundary — the producer must *not* cut a segment
    // there (the framing is mid-command), and the completed garbage
    // command's response must still bind to the spec.
    let garbage = cmd(0x77, 0xABCD);
    let script = vec![
        HostOp::Command(cmd(3, 5)),
        HostOp::Idle(500),
        HostOp::Garbage(garbage[..2].to_vec()),
        HostOp::Garbage(garbage[2..].to_vec()),
        HostOp::Command(cmd(2, 1)),
        HostOp::Idle(1),
        HostOp::Command(cmd(3, 0)),
    ];
    differential_pass(fps, &script, "garbage+idle");
}

#[test]
fn trivial_scripts_are_identical() {
    setup();
    let fps = token_fps();
    differential_pass(fps, &[], "empty");
    differential_pass(fps, &[HostOp::Idle(2_000)], "idle-only");
}

// --- injected divergences (the §7.2 catalog) -------------------------------

#[test]
fn secret_branch_divergence_is_identical() {
    setup();
    let buggy = TOKEN_LC.replace(
        "u32 secret = ld32(state);",
        "u32 secret = ld32(state); if (secret > 1000) { u32 w = 0; for (u32 i = 0; i < 50; i = i + 1) { w = w + i; } st32(resp + 1, w); }",
    );
    assert_ne!(buggy, TOKEN_LC);
    let fps = TokenFps::build(&buggy, None, None, |a| a);
    let err = differential_fail(&fps, &standard_script(), "secret-branch");
    assert!(
        matches!(err, FpsError::TraceDivergence { .. } | FpsError::Leak { .. }),
        "expected a leak symptom, got {err}"
    );
}

#[test]
fn compiler_timing_divergence_is_identical() {
    setup();
    let patch = |asm: String| {
        asm.replacen("handle:", "handle:\n    lbu t0, 0(a0)\n    beqz t0, 12\n    nop\n    nop", 1)
    };
    let fps = TokenFps::build(TOKEN_LC, None, None, patch);
    let err = differential_fail(&fps, &standard_script(), "compiler-timing");
    assert!(
        matches!(err, FpsError::TraceDivergence { .. } | FpsError::Leak { .. }),
        "expected a timing divergence, got {err}"
    );
}

#[test]
fn variable_latency_divergence_is_identical() {
    setup();
    // `secret / (arg|1)`: divider latency depends on the secret. The
    // spec is built from the same buggy source (the bug is *hardware*
    // latency, not functional behavior).
    let buggy = TOKEN_LC.replace(
        "st32(resp + 1, (secret * 2654435761 + c) ^ arg);",
        "st32(resp + 1, (secret / (arg | 1)) + c);",
    );
    assert_ne!(buggy, TOKEN_LC);
    let fps = TokenFps::build(&buggy, None, Some(&buggy), |a| a);
    let err = differential_fail(&fps, &[HostOp::Command(cmd(3, 5))], "variable-latency");
    assert!(
        matches!(err, FpsError::TraceDivergence { .. } | FpsError::Leak { .. }),
        "expected latency divergence, got {err}"
    );
}

#[test]
fn stack_overflow_fault_is_identical() {
    setup();
    let buggy = TOKEN_LC
        .replace("u32 secret = ld32(state);", "u32 secret = ld32(state) + burn(400);")
        + "
    u32 burn(u32 n) {
        u32 big[256];
        big[0] = n;
        if (n == 0) { return 0; }
        return big[0] + burn(n - 1);
    }
    ";
    let fps = TokenFps::build(&buggy, None, None, |a| a);
    let err = differential_fail(&fps, &[HostOp::Command(cmd(3, 1))], "stack-overflow");
    assert!(
        matches!(
            err,
            FpsError::Fault { .. } | FpsError::TraceDivergence { .. } | FpsError::Timeout { .. }
        ),
        "expected a fault, got {err}"
    );
}

#[test]
fn io_encoding_mismatch_is_identical() {
    setup();
    // write_response sends the bytes in reverse order. Both circuit
    // instances share the bug, so their traces agree — the end-of-script
    // spec binding catches it, in both checkers, identically.
    let buggy_syssw = parfait_hsms::syssw::syssw_source(common::STATE, common::CMD, common::RESP)
        .replace(
            "void write_response(u8* resp) {\n    for (u32 i = 0; i < 5; i = i + 1) {\n        ss_write_byte(resp[i]);",
            "void write_response(u8* resp) {\n    for (u32 i = 0; i < 5; i = i + 1) {\n        ss_write_byte(resp[4 - i]);",
        );
    assert!(buggy_syssw.contains("resp[4 - i]"), "injection must apply");
    let fps = TokenFps::build(TOKEN_LC, Some(&buggy_syssw), None, |a| a);
    let err = differential_fail(&fps, &standard_script(), "io-encoding");
    assert!(matches!(err, FpsError::ResponseMismatch { .. }), "expected a mismatch, got {err}");
}
