//! Differential tests for the proof pipeline's content-addressed
//! certificate cache.
//!
//! The contract under test (ISSUE 3 / DESIGN.md §9):
//!
//! 1. a fresh cache is cold: every stage runs and stores a certificate;
//! 2. a warm re-run through a brand-new pipeline handle hits the
//!    on-disk cache in every stage, and the certificates are
//!    **byte-identical** to the cold run's;
//! 3. mutating one byte of an app's littlec source re-runs exactly the
//!    source-keyed stages (lockstep, equivalence, FPS) while the
//!    behavior-keyed spec census and the artifact-keyed ctcheck
//!    (whitespace compiles to identical IR/asm) stay cached — and a
//!    second app sharing the cache directory stays fully cached
//!    throughout;
//! 4. cached certificates are byte-identical to what a cache-disabled
//!    pipeline computes from scratch.
//!
//! The fixture is the tiny token HSM (see `tests/common`), whose FPS
//! runs take only thousands of cycles, parameterized by its `prove`
//! multiplier so two behaviorally distinct apps share one definition.

mod common;

use std::path::PathBuf;

use common::{cmd, CMD, RESP, STATE, TOKEN_LC};
use parfait::lockstep::Codec;
use parfait::StateMachine;
use parfait_hsms::platform::{AppSizes, Cpu};
use parfait_knox2::FpsObserver;
use parfait_littlec::codegen::OptLevel;
use parfait_pipeline::{app_from_codec, AppPipeline, CertCache, Pipeline, StageKind, StdApp};
use parfait_starling::StarlingConfig;

/// The token spec as a real struct (not `FnMachine`, whose step is a
/// plain fn pointer) so the `prove` multiplier can be a parameter.
#[derive(Clone)]
struct TokenSpec {
    mult: u32,
}

impl StateMachine for TokenSpec {
    type State = (u32, u32);
    type Command = Vec<u8>;
    type Response = Vec<u8>;

    fn init(&self) -> (u32, u32) {
        (0, 0)
    }

    fn step(&self, s: &(u32, u32), c: &Vec<u8>) -> ((u32, u32), Vec<u8>) {
        let mut resp = vec![0u8; RESP];
        if c.len() != CMD {
            resp[0] = 0xFF;
            return (*s, resp);
        }
        let arg = u32::from_le_bytes([c[1], c[2], c[3], c[4]]);
        match c[0] {
            1 => {
                resp[0] = 1;
                ((arg, s.1), resp)
            }
            2 => {
                let c2 = s.1.wrapping_add(arg);
                resp[0] = 2;
                resp[1..5].copy_from_slice(&c2.to_le_bytes());
                ((s.0, c2), resp)
            }
            3 => {
                resp[0] = 3;
                let v = s.0.wrapping_mul(self.mult).wrapping_add(s.1) ^ arg;
                resp[1..5].copy_from_slice(&v.to_le_bytes());
                (*s, resp)
            }
            _ => {
                resp[0] = 0xFF;
                (*s, resp)
            }
        }
    }
}

struct TokenCodec;

impl Codec for TokenCodec {
    type Spec = TokenSpec;
    type CI = Vec<u8>;
    type RI = Vec<u8>;
    type SI = Vec<u8>;

    fn encode_command(&self, c: &Vec<u8>) -> Vec<u8> {
        c.clone()
    }
    fn decode_command(&self, c: &Vec<u8>) -> Option<Vec<u8>> {
        (c.len() == CMD && matches!(c[0], 1..=3)).then(|| c.clone())
    }
    fn encode_response(&self, r: Option<&Vec<u8>>) -> Vec<u8> {
        match r {
            Some(v) => v.clone(),
            None => {
                let mut e = vec![0u8; RESP];
                e[0] = 0xFF;
                e
            }
        }
    }
    fn decode_response(&self, r: &Vec<u8>) -> Vec<u8> {
        r.clone()
    }
    fn encode_state(&self, s: &(u32, u32)) -> Vec<u8> {
        let mut out = Vec::with_capacity(STATE);
        out.extend_from_slice(&s.0.to_le_bytes());
        out.extend_from_slice(&s.1.to_le_bytes());
        out
    }
}

const MULT_A: u32 = 2654435761; // the multiplier baked into TOKEN_LC
const MULT_B: u32 = 1013904223;

/// A token app pipeline: `slug` names the cache entries, `source` is
/// the littlec implementation, `mult` parameterizes the matching spec.
fn token_app(slug: &str, source: String, mult: u32) -> AppPipeline {
    app_from_codec(
        "token HSM",
        slug,
        source,
        AppSizes { state: STATE, command: CMD, response: RESP },
        TokenCodec,
        TokenSpec { mult },
        (0xDEAD_BEEF, 7),
        cmd(3, 5),
        vec![(0, 0), (0xDEAD_BEEF, 7)],
        vec![cmd(1, 5), cmd(2, 10), cmd(3, 5)],
        vec![vec![1, 0, 0, 0, 0]],
        StarlingConfig {
            state_size: STATE,
            command_size: CMD,
            response_size: RESP,
            adversarial_inputs: 4,
            ..StarlingConfig::default()
        },
    )
}

fn token_a() -> AppPipeline {
    token_app("token-a", TOKEN_LC.to_string(), MULT_A)
}

fn token_b() -> AppPipeline {
    let source_b = TOKEN_LC.replace(&MULT_A.to_string(), &MULT_B.to_string());
    assert_ne!(source_b, TOKEN_LC, "multiplier substitution must change the source");
    token_app("token-b", source_b, MULT_B)
}

fn private_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("parfait-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn verify(pipeline: &Pipeline, app: &AppPipeline) -> parfait_pipeline::CellReport {
    pipeline
        .verify_cell(app, Cpu::Ibex, OptLevel::O2, &FpsObserver::default(), 2)
        .expect("token app verifies")
}

fn hits_by_stage(cell: &parfait_pipeline::CellReport) -> Vec<(StageKind, bool)> {
    cell.stages.iter().map(|s| (s.certificate.stage, s.cache_hit)).collect()
}

#[test]
fn one_byte_source_change_reruns_only_downstream_stages() {
    let dir = private_dir("pipeline-cache-diff");
    let a = token_a();
    let b = token_b();

    // Cold: every stage of both apps runs and is stored.
    let cold = Pipeline::new(CertCache::at(dir.clone()), Default::default());
    let cell_a = verify(&cold, &a);
    let cell_b = verify(&cold, &b);
    assert!(cell_a.stages.iter().all(|s| !s.cache_hit), "fresh cache must be cold");
    assert!(cell_b.stages.iter().all(|s| !s.cache_hit));
    assert_eq!(cell_a.composed.claim.0, "app-spec");
    assert_eq!(cell_a.composed.claim.1, "soc(Ibex)");
    // Distinct sources ⇒ distinct cache entries throughout.
    assert_ne!(cell_a.composed.inputs, cell_b.composed.inputs);

    // Warm, through a brand-new handle (empty memo ⇒ on-disk path):
    // every stage hits, and certificates are byte-identical.
    let warm = Pipeline::new(CertCache::at(dir.clone()), Default::default());
    let cell_a2 = verify(&warm, &a);
    assert!(
        cell_a2.fully_cached(),
        "unchanged app must be fully cached: {:?}",
        hits_by_stage(&cell_a2)
    );
    assert!(
        cell_a2.stages.iter().any(|s| s.certificate.stage == StageKind::CtCheck),
        "the cell must include a ctcheck certificate"
    );
    assert_eq!(cell_a2.composed.canonical(), cell_a.composed.canonical());
    for (fresh, cached) in cell_a.stages.iter().zip(&cell_a2.stages) {
        assert_eq!(cached.certificate.canonical(), fresh.certificate.canonical());
    }

    // Mutate one byte of A's source (behavior-preserving whitespace):
    // the behavior-keyed spec census stays cached, and so do the
    // artifact-keyed ctcheck and bound stages (identical source modulo
    // whitespace compiles to identical IR and asm) and the contract
    // check (keyed on the core's declared contract, not the firmware);
    // every source-keyed stage (lockstep, equivalence, FPS) re-runs.
    let mutated_source = TOKEN_LC.replace("u32 arg", "u32  arg");
    assert_eq!(mutated_source.len(), TOKEN_LC.len() + 1);
    let a_mut = token_app("token-a", mutated_source, MULT_A);
    let cell_a3 = verify(&warm, &a_mut);
    assert_eq!(
        hits_by_stage(&cell_a3),
        vec![
            (StageKind::SpecCheck, true),
            (StageKind::Lockstep, false),
            (StageKind::Equivalence, false),
            (StageKind::CtCheck, true),
            (StageKind::Bound, true),
            (StageKind::Fps, false),
            (StageKind::Contract, true),
        ],
        "a source-only change must re-run exactly the stages keyed on the source"
    );

    // The untouched app's cells stay cache hits.
    let cell_b2 = verify(&warm, &b);
    assert!(
        cell_b2.fully_cached(),
        "untouched app must stay cached: {:?}",
        hits_by_stage(&cell_b2)
    );
    assert_eq!(cell_b2.composed.canonical(), cell_b.composed.canonical());

    // Cached certificates are byte-identical to a cache-disabled
    // from-scratch computation.
    let scratch = Pipeline::new(CertCache::disabled(), Default::default());
    let cell_fresh = verify(&scratch, &a_mut);
    assert!(!cell_fresh.stages.iter().any(|s| s.cache_hit));
    assert_eq!(cell_fresh.composed.canonical(), cell_a3.composed.canonical());

    std::fs::remove_dir_all(&dir).ok();
}

/// Editing a core's leakage contract invalidates exactly the stages
/// that consume it: the contract check misses under a revision-bumped
/// contract, while a full re-verify against the unedited exported
/// contract stays fully cached — the software stages never saw the
/// edit. (Key-level sensitivity of the FPS and ctcheck stages to the
/// contract text is covered by the pipeline crate's unit tests.)
#[test]
fn contract_edit_invalidates_exactly_the_dependent_stages() {
    let dir = private_dir("pipeline-cache-contract-edit");
    let a = token_a();

    let cold = Pipeline::new(CertCache::at(dir.clone()), Default::default());
    verify(&cold, &a);

    let warm = Pipeline::new(CertCache::at(dir.clone()), Default::default());
    let hit = warm.contract_stage(&a, Cpu::Ibex).expect("exported contract holds");
    assert!(hit.cache_hit, "unchanged contract must hit the cold run's certificate");

    // Re-declare the contract (revision bump, clauses unchanged): the
    // battery re-runs — and still passes, since the clauses match the
    // core — under a fresh cache key.
    let mut edited = Pipeline::core_contract(Cpu::Ibex).clone();
    edited.revision += 1;
    let miss = warm
        .contract_stage_with(&a, Cpu::Ibex, &edited)
        .expect("revision bump does not change clause semantics");
    assert!(!miss.cache_hit, "an edited contract must not reuse the old certificate");
    assert_ne!(miss.certificate.inputs, hit.certificate.inputs);

    // Nothing else was disturbed: the full cell against the exported
    // contract is still a six-stage cache hit.
    let cell = verify(&warm, &a);
    assert!(
        cell.fully_cached(),
        "a contract-edit probe must not invalidate unrelated stages: {:?}",
        hits_by_stage(&cell)
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// Warm-run determinism across *processes*: run against a shared cache
/// directory (`PARFAIT_CACHE_DIR` when set — CI invokes this test twice
/// with the same value to prove it — else a private dir), and check the
/// result is byte-identical to a cache-disabled from-scratch run
/// whether the shared cache was cold or pre-populated.
#[test]
fn shared_cache_runs_are_deterministic() {
    let (dir, ephemeral) = match std::env::var_os("PARFAIT_CACHE_DIR") {
        Some(d) if !d.is_empty() => (PathBuf::from(d), false),
        _ => (private_dir("pipeline-cache-shared"), true),
    };
    let a = token_a();

    let shared = Pipeline::new(CertCache::at(dir.clone()), Default::default());
    let cell = verify(&shared, &a);

    let scratch = Pipeline::new(CertCache::disabled(), Default::default());
    let fresh = verify(&scratch, &a);
    assert_eq!(cell.composed.canonical(), fresh.composed.canonical());
    for (c, f) in cell.stages.iter().zip(&fresh.stages) {
        assert_eq!(c.certificate.canonical(), f.certificate.canonical());
    }

    // A second pass in the same process must be fully cached either way.
    let again = verify(&shared, &a);
    assert!(again.fully_cached());

    if ephemeral {
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Adversary mutants never pollute the clean firmware's cache: after a
/// mutant run through the same warm pipeline, the clean app's
/// certificates still hit and are byte-identical to the pre-mutant warm
/// snapshot. The mutants chosen here are the sharpest case — tamper-only
/// mutations of the *same source and slug* as the clean fixture, so a
/// keying bug that ignored the tamper fingerprint would alias them onto
/// the clean entries.
#[test]
fn mutant_runs_leave_clean_certificates_intact() {
    use parfait_adversary::{catalog, controls, run_mutant};

    let dir = private_dir("pipeline-cache-adversary");
    let clean = controls()
        .into_iter()
        .find(|c| c.class == "clean-token")
        .expect("clean-token control exists");
    let clean_app = (clean.build)();

    // Warm the cache with the clean fixture, then snapshot.
    let cold = Pipeline::new(CertCache::at(dir.clone()), Default::default());
    let cell_cold = verify(&cold, &clean_app);
    assert!(cell_cold.stages.iter().all(|s| !s.cache_hit));
    let warm = Pipeline::new(CertCache::at(dir.clone()), Default::default());
    let cell_warm = verify(&warm, &clean_app);
    assert!(
        cell_warm.fully_cached(),
        "clean fixture must be warm: {:?}",
        hits_by_stage(&cell_warm)
    );
    let snapshot: Vec<String> =
        cell_warm.stages.iter().map(|s| s.certificate.canonical()).collect();

    // Run tamper-only mutants of the same source through the same
    // pipeline handle (one killed at the wire, one at equivalence).
    for class in ["soc-tx-double-commit", "cc-dead-store"] {
        let m = catalog().into_iter().find(|m| m.class == class).unwrap();
        let r = run_mutant(&warm, &m, 1);
        assert!(r.killed_by.is_some(), "{class} must be killed, got: {}", r.detail);
    }

    // The clean firmware's certificates: still hitting, still identical.
    let cell_after = verify(&warm, &clean_app);
    assert!(
        cell_after.fully_cached(),
        "mutant runs evicted clean certificates: {:?}",
        hits_by_stage(&cell_after)
    );
    let after: Vec<String> = cell_after.stages.iter().map(|s| s.certificate.canonical()).collect();
    assert_eq!(after, snapshot, "mutant runs corrupted clean certificates");
    assert_eq!(cell_after.composed.canonical(), cell_warm.composed.canonical());

    std::fs::remove_dir_all(&dir).ok();
}

/// Corrupt on-disk entries are discarded *eagerly*: the failed lookup
/// itself unlinks the file, so a corrupt certificate never lingers to
/// be re-parsed by every subsequent process (regression: the discard
/// used to leave the file in place until the next store overwrote it).
/// Both corruption shapes are covered — unparseable bytes, and a valid
/// certificate sitting under the wrong key (stage mismatch).
#[test]
fn corrupt_cache_entries_are_unlinked_on_first_lookup() {
    let dir = private_dir("pipeline-cache-corrupt");
    let a = token_a();
    let cold = Pipeline::new(CertCache::at(dir.clone()), Default::default());
    let out = cold.speccheck_stage(&a).expect("speccheck passes");
    assert!(!out.cache_hit);
    let inputs = out.certificate.inputs;
    let cert_file = |d: &PathBuf| -> Option<PathBuf> {
        std::fs::read_dir(d).ok().and_then(|rd| {
            rd.filter_map(Result::ok).map(|e| e.path()).find(|p| {
                p.file_name().is_some_and(|n| n.to_string_lossy().starts_with("speccheck-"))
            })
        })
    };
    let path = cert_file(&dir).expect("cold run stored a speccheck certificate");

    // Shape 1: unparseable bytes. A fresh handle (empty memo, so the
    // disk path runs) must miss AND remove the file right then — not
    // on some later store.
    std::fs::write(&path, b"{ definitely not a certificate").unwrap();
    let fresh = CertCache::at(dir.clone());
    assert_eq!(fresh.lookup(StageKind::SpecCheck, inputs), None, "corrupt entry must miss");
    assert!(!path.exists(), "the failed lookup itself must unlink the corrupt file");

    // Shape 2: a well-formed certificate under the wrong key. Re-store
    // the real certificate, then overwrite it with a lockstep
    // certificate's bytes: parseable, but the stage doesn't match the
    // key — still a miss, still eagerly unlinked.
    fresh.store(&out.certificate);
    let lockstep = cold.lockstep_stage(&a).expect("lockstep passes");
    std::fs::write(&path, lockstep.certificate.canonical()).unwrap();
    let fresh2 = CertCache::at(dir.clone());
    assert_eq!(fresh2.lookup(StageKind::SpecCheck, inputs), None, "mismatched stage must miss");
    assert!(!path.exists(), "the mismatched entry must be unlinked too");

    // The cache recovers: the next run recomputes, re-stores, and a
    // brand-new handle hits a byte-identical certificate.
    let recovered = Pipeline::new(CertCache::at(dir.clone()), Default::default());
    let out2 = recovered.speccheck_stage(&a).expect("speccheck recomputes");
    assert!(!out2.cache_hit, "recompute after discard");
    assert_eq!(out2.certificate.canonical(), out.certificate.canonical());
    assert!(path.exists(), "the recompute re-stored the certificate");

    std::fs::remove_dir_all(&dir).ok();
}

/// The standard apps expose distinct, stable cache identities (guards
/// against a refactor accidentally collapsing app slugs, which would
/// alias their cache entries).
#[test]
fn std_app_slugs_are_distinct() {
    let slugs: Vec<&str> = StdApp::ALL.iter().map(|a| a.slug()).collect();
    let mut unique = slugs.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(unique.len(), slugs.len());
}
