//! Stress/differential harness for the `parfait-serve` daemon (ISSUE
//! 10): eight concurrent clients hammer one core with overlapping
//! two-tenant batches, and the result must be indistinguishable — byte
//! for byte — from a single client running the same requests
//! sequentially.
//!
//! What the contention run must prove:
//!
//! 1. **Differential**: every composed certificate equals the
//!    sequential oracle's, byte-identical, for every client.
//! 2. **Single-flight**: the cold-stage counter
//!    (`pipeline_stage_runs_total{outcome="miss"}`, on a metrics
//!    registry injected per run) never exceeds the number of unique
//!    cache keys — i.e. the certificates on disk. Eight clients racing
//!    on the same cold cell run each stage once; everyone else waits
//!    for the leader.
//! 3. **Tenant isolation**: both tenants' namespaces hold their own
//!    full certificate set (misses == alpha files + beta files), so no
//!    tenant was served another's disk entries.

mod common;

use std::collections::BTreeMap;
use std::io::Cursor;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parfait_pipeline::serve::server::handle_session;
use parfait_pipeline::{CertCache, ServeCore};
use parfait_telemetry::json::{parse, Json};
use parfait_telemetry::metrics::Metrics;
use parfait_telemetry::Telemetry;

const CLIENTS: usize = 8;
const TENANTS: [&str; 2] = ["alpha", "beta"];
const CELLS: [(&str, &str); 2] = [("ibex", "-O2"), ("ibex", "-O1")];

fn private_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("parfait-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fresh_core(dir: &Path, threads: usize) -> ServeCore {
    let cache = CertCache::at_with(dir.to_path_buf(), Metrics::new());
    let apps = vec![Arc::new(common::token_app_pipeline("token-a", common::TOKEN_LC.to_string()))];
    ServeCore::with_apps(cache, Telemetry::disabled(), threads, apps)
}

/// The overlapping batch every client sends: all (tenant × cell)
/// combinations of the token app.
fn session_text() -> String {
    let mut lines = Vec::new();
    for tenant in TENANTS {
        for (i, (cpu, opt)) in CELLS.iter().enumerate() {
            lines.push(format!(
                r#"{{"op":"verify","id":"{tenant}-{i}","tenant":"{tenant}","app":"token-a","cpu":"{cpu}","opt":"{opt}"}}"#
            ));
        }
    }
    lines.push(r#"{"op":"flush"}"#.to_string());
    lines.join("\n") + "\n"
}

/// Run one session and return (tenant, cpu, opt) → composed
/// certificate, compact JSON. Panics on any error frame.
fn run_session(core: &ServeCore) -> BTreeMap<String, String> {
    let mut out = Vec::new();
    handle_session(core, Cursor::new(session_text().into_bytes()), &mut out)
        .expect("in-memory transport cannot fail");
    let mut composed = BTreeMap::new();
    for line in String::from_utf8(out).expect("frames are utf-8").lines() {
        let frame = parse(line).expect("every frame parses");
        match frame.get("frame").and_then(Json::as_str) {
            Some("result") => {
                let key = format!(
                    "{}/{}/{}",
                    frame.get("tenant").and_then(Json::as_str).unwrap(),
                    frame.get("cpu").and_then(Json::as_str).unwrap(),
                    frame.get("opt").and_then(Json::as_str).unwrap(),
                );
                let cert = frame.get("composed").expect("result has composed").to_string();
                composed.insert(key, cert);
            }
            Some("error") => panic!("unexpected error frame: {line}"),
            _ => {}
        }
    }
    assert_eq!(composed.len(), TENANTS.len() * CELLS.len(), "every request answered");
    composed
}

fn cert_files(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(Result::ok)
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".cert.json"))
            .collect(),
        Err(_) => Vec::new(),
    };
    names.sort();
    names
}

fn total_misses(core: &ServeCore) -> u64 {
    core.metrics()
        .snapshot()
        .counters
        .iter()
        .filter(|(k, _)| {
            k.name == "pipeline_stage_runs_total"
                && k.labels.iter().any(|(lk, lv)| lk == "outcome" && lv == "miss")
        })
        .map(|(_, v)| *v)
        .sum()
}

#[test]
fn contended_clients_match_the_sequential_oracle() {
    // Sequential oracle: one client, one single-threaded core, a
    // private cold cache.
    let seq_dir = private_dir("serve-stress-seq");
    let seq_core = fresh_core(&seq_dir, 1);
    let oracle = run_session(&seq_core);

    // Contended run: eight clients, each its own session, one shared
    // core over a different cold cache. The mix is warm+cold by
    // construction — whichever client claims a stage first is the cold
    // leader, everyone else waits (single-flight) or hits warm state.
    let hot_dir = private_dir("serve-stress-hot");
    let hot_core = fresh_core(&hot_dir, 2);
    let client_results: Vec<BTreeMap<String, String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS).map(|_| s.spawn(|| run_session(&hot_core))).collect();
        handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
    });

    // 1. Differential: all eight clients byte-identical to the oracle.
    for (i, got) in client_results.iter().enumerate() {
        assert_eq!(got, &oracle, "client {i} diverged from the sequential oracle");
    }

    // 2. Single-flight: cold stage runs never exceed unique cache keys.
    // Equality is the strong form — every miss stored exactly one new
    // certificate, so 8 clients racing did not recompute anything.
    let alpha_files = cert_files(&hot_dir.join("alpha"));
    let beta_files = cert_files(&hot_dir.join("beta"));
    let unique_keys = (alpha_files.len() + beta_files.len()) as u64;
    let misses = total_misses(&hot_core);
    assert!(misses > 0, "the contended run started cold");
    assert_eq!(
        misses, unique_keys,
        "single-flight violated: {misses} cold stage runs for {unique_keys} unique keys"
    );
    // The sequential oracle computed the same unique set.
    assert_eq!(total_misses(&seq_core), unique_keys);

    // 3. Tenant isolation: each namespace holds its own complete set —
    // same key names (same app), separate files. If beta had been
    // served alpha's disk entries, beta's namespace would be missing
    // certificates and `misses` would undercount `unique_keys`.
    assert_eq!(alpha_files, beta_files, "both tenants verify the same cells");
    assert!(!alpha_files.is_empty());
    assert!(cert_files(&hot_dir).is_empty(), "no certificates may land outside a tenant namespace");

    std::fs::remove_dir_all(&seq_dir).ok();
    std::fs::remove_dir_all(&hot_dir).ok();
}

/// Re-running the whole contended workload against the now-warm cache
/// is all hits: no new cold stage runs, same bytes.
#[test]
fn contended_rerun_against_a_warm_cache_is_all_hits() {
    let dir = private_dir("serve-stress-warm");
    let cold_core = fresh_core(&dir, 2);
    let oracle = run_session(&cold_core);
    let cold_misses = total_misses(&cold_core);
    assert!(cold_misses > 0);

    // A brand-new core (empty memo) over the same disk: the warm path.
    let warm_core = fresh_core(&dir, 2);
    let rerun: Vec<BTreeMap<String, String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS).map(|_| s.spawn(|| run_session(&warm_core))).collect();
        handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
    });
    for got in &rerun {
        assert_eq!(got, &oracle, "warm rerun changed certificate bytes");
    }
    assert_eq!(total_misses(&warm_core), 0, "a warm rerun must not re-run any stage");

    std::fs::remove_dir_all(&dir).ok();
}
