//! The top-level theorem (paper §3): the SoC securely implements the
//! application specification, with the composed driver
//! `d_app ∘ d_wire` — spec commands encode to bytes (app codec) which
//! the wire driver transfers over the ready/valid port.
//!
//! Together with the three mechanized-style sub-proofs —
//! spec ≈(lockstep) interp ≈(equivalence) IR ≈(equivalence) asm ≈(FPS) SoC
//! — exercised in the other integration suites, this test is the
//! executable counterpart of "an on-paper argument connects the
//! mechanized proofs": it drives the *entire* composition at once and
//! checks that spec-level responses decoded from the wire equal the
//! specification's responses, with adversarial wire traffic interleaved
//! and state checked through the fig. 9 relation.

use parfait::lockstep::Codec;
use parfait::StateMachine;
use parfait_hsms::hasher::{
    HasherCodec, HasherCommand, HasherSpec, COMMAND_SIZE, RESPONSE_SIZE, STATE_SIZE,
};
use parfait_hsms::platform::{make_soc, Cpu};
use parfait_hsms::syssw;
use parfait_knox2::WireDriver;
use parfait_soc::host;

mod common;

#[derive(Clone, Debug)]
enum TopOp {
    Spec(HasherCommand),
    Adversary(Vec<u8>),
}

fn run_against(cpu: Cpu) {
    let fw = common::hasher_fw();
    let codec = HasherCodec;
    let spec = HasherSpec;
    let mut spec_state = spec.init();
    let mut soc = make_soc(cpu, fw, &codec.encode_state(&spec_state));
    let wire = WireDriver::new(COMMAND_SIZE, RESPONSE_SIZE);

    let script = vec![
        TopOp::Spec(HasherCommand::Initialize { secret: [0x42; 32] }),
        TopOp::Spec(HasherCommand::Hash { message: [0x01; 32] }),
        TopOp::Adversary(vec![0xFF; COMMAND_SIZE]),
        TopOp::Spec(HasherCommand::Hash { message: [0x02; 32] }),
        TopOp::Spec(HasherCommand::Initialize { secret: [0x43; 32] }),
        TopOp::Spec(HasherCommand::Hash { message: [0x01; 32] }),
    ];
    for op in script {
        match op {
            TopOp::Spec(cmd) => {
                // Composed driver: encode at the app level, transfer at
                // the wire level, decode the response.
                let bytes = codec.encode_command(&cmd);
                let wire_resp = wire.run(&mut soc, &bytes).unwrap();
                let got = codec.decode_response(&wire_resp);
                let (s2, want) = spec.step(&spec_state, &cmd);
                spec_state = s2;
                assert_eq!(got, want, "{cmd:?} on {cpu}");
                // Refinement relation (fig. 9) at the quiescent point.
                let active = syssw::active_state(&soc.fram_bytes(0, 256), STATE_SIZE);
                assert_eq!(active, codec.encode_state(&spec_state));
            }
            TopOp::Adversary(bytes) => {
                // The adversary's command still gets a response (the
                // canonical error), and must not corrupt the state.
                host::send_bytes(&mut soc, &bytes, 10_000_000).unwrap();
                let r = host::recv_bytes(&mut soc, RESPONSE_SIZE, 10_000_000).unwrap();
                assert_eq!(r, codec.encode_response(None));
                let active = syssw::active_state(&soc.fram_bytes(0, 256), STATE_SIZE);
                assert_eq!(active, codec.encode_state(&spec_state));
            }
        }
        assert!(soc.fault().is_none(), "{:?}", soc.fault());
    }
    // No secret reached processor control state across the whole run.
    assert!(soc.core.leaks().is_empty(), "{:?}", soc.core.leaks());
}

#[test]
fn top_level_theorem_holds_on_ibex() {
    run_against(Cpu::Ibex);
}

#[test]
fn top_level_theorem_holds_on_pico() {
    run_against(Cpu::Pico);
}

#[test]
fn different_secrets_same_timing() {
    // Self-composition: two devices with different secrets, same public
    // script, must produce responses at exactly the same cycles (the
    // essence of non-leakage through timing).
    let fw = common::hasher_fw();
    let codec = HasherCodec;
    let mk = |secret: [u8; 32]| {
        make_soc(
            Cpu::Ibex,
            fw.clone(),
            &codec.encode_state(&parfait_hsms::hasher::HasherState { secret }),
        )
    };
    let mut a = mk([0x00; 32]);
    let mut b = mk([0xA7; 32]);
    let cmd = codec.encode_command(&HasherCommand::Hash { message: [9; 32] });
    // Drive both with identical inputs, recording tx_valid per cycle.
    use parfait_rtl::Circuit;
    let mut timing_a = Vec::new();
    let mut timing_b = Vec::new();
    host::send_bytes(&mut a, &cmd, 10_000_000).unwrap();
    host::send_bytes(&mut b, &cmd, 10_000_000).unwrap();
    for _ in 0..2_000_000 {
        timing_a.push(a.get_output().tx_valid);
        timing_b.push(b.get_output().tx_valid);
        a.tick();
        b.tick();
        if a.get_output().tx_valid && b.get_output().tx_valid {
            break;
        }
    }
    assert_eq!(timing_a, timing_b, "response timing must not depend on the secret");
}

#[test]
fn spec_level_flow_census() {
    // IPR bounds the implementation's leakage by the spec's; the census
    // (parfait::speccheck) audits the spec itself. For the hasher:
    // Initialize's response must be state-independent; Hash reveals a
    // state-dependent digest (by design); and the *error* response for
    // invalid commands must be state-independent — the §7.2 class
    // "returning different error codes" would show up right here.
    use parfait::speccheck::{census, check_state_independent, Flow};
    let spec = HasherSpec;
    let states = vec![
        parfait_hsms::hasher::HasherState { secret: [0; 32] },
        parfait_hsms::hasher::HasherState { secret: [1; 32] },
        parfait_hsms::hasher::HasherState { secret: [0xFF; 32] },
    ];
    check_state_independent(&spec, &states, &[HasherCommand::Initialize { secret: [9; 32] }])
        .unwrap();
    let entries = census(&spec, &states, &[HasherCommand::Hash { message: [5; 32] }]);
    assert!(matches!(entries[0].flow, Flow::StateDependent { distinct_responses: 3 }));
    // The byte-level error path: run the codec's encode_response(None)
    // — a constant — so invalid commands cannot reveal state at ANY
    // level; the lockstep None-case ties the implementation to it.
    let codec = HasherCodec;
    use parfait::lockstep::Codec;
    assert_eq!(codec.encode_response(None), codec.encode_response(None));
}
