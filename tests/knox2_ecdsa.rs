//! Knox2 functional-physical simulation for the ECDSA-signing HSM — the
//! paper's headline verification (a Sign command takes hundreds of
//! millions of SoC cycles; the check runs the real circuit and the
//! emulator's dummy-state circuit in lockstep for every one of them and
//! demands cycle-exact wire equality).

use parfait::lockstep::Codec;
use parfait::StateMachine;
use parfait_hsms::ecdsa::{
    EcdsaCodec, EcdsaCommand, EcdsaSpec, EcdsaState, COMMAND_SIZE, RESPONSE_SIZE, STATE_SIZE,
};
use parfait_hsms::firmware::ecdsa_app_source;
use parfait_hsms::platform::{build_firmware, make_soc, AppSizes, Cpu};
use parfait_hsms::syssw;
use parfait_knox2::{check_fps, CircuitEmulator, FpsConfig, HostOp};
use parfait_littlec::codegen::OptLevel;
use parfait_littlec::validate::asm_machine;
use parfait_soc::Soc;

fn project(soc: &Soc) -> Vec<u8> {
    syssw::active_state(&soc.fram_bytes(0, 256), STATE_SIZE)
}

#[test]
fn ecdsa_fps_passes_on_ibex() {
    let sizes = AppSizes { state: STATE_SIZE, command: COMMAND_SIZE, response: RESPONSE_SIZE };
    let fw = build_firmware(&ecdsa_app_source(), sizes, OptLevel::O2).unwrap();
    let program = parfait_littlec::frontend(&ecdsa_app_source()).unwrap();
    let spec =
        asm_machine(&program, OptLevel::O2, STATE_SIZE, COMMAND_SIZE, RESPONSE_SIZE).unwrap();
    let codec = EcdsaCodec;
    // The device ships provisioned with secret keys; the adversary
    // drives Initialize and Sign over the wire.
    let secret = codec.encode_state(&EcdsaState {
        prf_key: [0x51; 32],
        prf_counter: 0,
        sig_key: [0x2D; 32],
    });
    let mut real = make_soc(Cpu::Ibex, fw.clone(), &secret);
    let dummy = codec.encode_state(&EcdsaSpec.init());
    let dummy_soc = make_soc(Cpu::Ibex, fw, &dummy);
    let mut emu = CircuitEmulator::new(dummy_soc, &spec, secret.clone(), COMMAND_SIZE);
    let cfg = FpsConfig {
        command_size: COMMAND_SIZE,
        response_size: RESPONSE_SIZE,
        timeout: 2_000_000_000,
        state_size: STATE_SIZE,
    };
    let script = vec![
        // Sign with the provisioned key: the emulator's circuit computes
        // a garbage signature on dummy keys in exactly the same number
        // of cycles, then the real signature is injected at the commit
        // point. Any state-dependent timing would diverge here.
        HostOp::Command(codec.encode_command(&EcdsaCommand::Sign { msg: [0x3C; 32] })),
        // An invalid command between operations.
        HostOp::Command(vec![0xEE; COMMAND_SIZE]),
    ];
    let report =
        check_fps(&mut real, &mut emu, &cfg, &project, &script).unwrap_or_else(|e| panic!("{e}"));
    assert!(
        report.cycles > 100_000_000,
        "a Sign takes hundreds of millions of cycles, got {}",
        report.cycles
    );
    assert_eq!(report.commands, 2);
    eprintln!(
        "ECDSA FPS: {} cycles in {:?} ({:.0} cycles/s)",
        report.cycles,
        report.wall,
        report.cycles_per_second()
    );
}
