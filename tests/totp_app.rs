//! End-to-end verification of the third (OTP) application — the §8.1
//! modularity exercise: a brand-new app verified with zero changes to
//! the platform, the system software, or the frameworks.

use parfait::lockstep::Codec;
use parfait::StateMachine;
use parfait_hsms::platform::{build_firmware, make_soc, AppSizes, Cpu};
use parfait_hsms::syssw;
use parfait_hsms::totp::{
    totp_app_source, TotpCodec, TotpCommand, TotpResponse, TotpSpec, TotpState, COMMAND_SIZE,
    RESPONSE_SIZE, STATE_SIZE,
};
use parfait_knox2::{check_fps, CircuitEmulator, FpsConfig, HostOp, WireDriver};
use parfait_littlec::codegen::OptLevel;
use parfait_littlec::validate::asm_machine;
use parfait_soc::Soc;
use parfait_starling::{verify_app, StarlingConfig};

fn sizes() -> AppSizes {
    AppSizes { state: STATE_SIZE, command: COMMAND_SIZE, response: RESPONSE_SIZE }
}

#[test]
fn starling_verifies_totp() {
    let config = StarlingConfig {
        state_size: STATE_SIZE,
        command_size: COMMAND_SIZE,
        response_size: RESPONSE_SIZE,
        adversarial_inputs: 10,
        ..StarlingConfig::default()
    };
    let report = verify_app(
        &TotpCodec,
        &TotpSpec,
        &totp_app_source(),
        &config,
        &[TotpSpec.init(), TotpState { seed: [0xAA; 32] }],
        &[
            TotpCommand::Initialize { seed: [0x21; 32] },
            TotpCommand::Code { counter: 0 },
            TotpCommand::Code { counter: u64::MAX },
        ],
        &[TotpResponse::Initialized, TotpResponse::Code(999_999), TotpResponse::Code(0)],
    )
    .unwrap_or_else(|e| panic!("{e}"));
    assert!(report.lockstep_cases > 0);
}

#[test]
fn totp_matches_spec_on_both_socs() {
    let fw = build_firmware(&totp_app_source(), sizes(), OptLevel::O2).unwrap();
    let codec = TotpCodec;
    let spec = TotpSpec;
    for cpu in [Cpu::Ibex, Cpu::Pico] {
        let mut st = spec.init();
        let mut soc = make_soc(cpu, fw.clone(), &codec.encode_state(&st));
        let wire = WireDriver::new(COMMAND_SIZE, RESPONSE_SIZE);
        for cmd in [
            TotpCommand::Initialize { seed: *b"otp-seed-0123456789abcdefghijklm" },
            TotpCommand::Code { counter: 1 },
            TotpCommand::Code { counter: 2 },
            TotpCommand::Code { counter: 0xFFFF_FFFF_FFFF_FFFF },
        ] {
            let resp = wire.run(&mut soc, &codec.encode_command(&cmd)).unwrap();
            let (s2, want) = spec.step(&st, &cmd);
            st = s2;
            assert_eq!(codec.decode_response(&resp), want, "{cmd:?} on {cpu}");
            if let TotpResponse::Code(c) = codec.decode_response(&resp) {
                assert!(c < 1_000_000);
            }
        }
        assert!(soc.core.leaks().is_empty(), "constant-time truncation: {:?}", soc.core.leaks());
    }
}

#[test]
fn totp_fps_passes() {
    let fw = build_firmware(&totp_app_source(), sizes(), OptLevel::O2).unwrap();
    let program = parfait_littlec::frontend(&totp_app_source()).unwrap();
    let spec =
        asm_machine(&program, OptLevel::O2, STATE_SIZE, COMMAND_SIZE, RESPONSE_SIZE).unwrap();
    let codec = TotpCodec;
    let secret = codec.encode_state(&TotpState { seed: [0x5C; 32] });
    let mut real = make_soc(Cpu::Ibex, fw.clone(), &secret);
    let dummy_soc = make_soc(Cpu::Ibex, fw, &codec.encode_state(&TotpSpec.init()));
    let mut emu = CircuitEmulator::new(dummy_soc, &spec, secret.clone(), COMMAND_SIZE);
    let cfg = FpsConfig {
        command_size: COMMAND_SIZE,
        response_size: RESPONSE_SIZE,
        timeout: 50_000_000,
        state_size: STATE_SIZE,
    };
    let project = |soc: &Soc| syssw::active_state(&soc.fram_bytes(0, 256), STATE_SIZE);
    let script = vec![
        HostOp::Command(codec.encode_command(&TotpCommand::Code { counter: 7 })),
        HostOp::Command(vec![0xEE; COMMAND_SIZE]),
        HostOp::Command(codec.encode_command(&TotpCommand::Initialize { seed: [1; 32] })),
        HostOp::Command(codec.encode_command(&TotpCommand::Code { counter: 8 })),
    ];
    let report =
        check_fps(&mut real, &mut emu, &cfg, &project, &script).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(report.commands, 4);
}

#[test]
fn naive_truncation_would_leak() {
    // The RFC's literal dynamic truncation (secret-indexed load) is
    // exactly what the taint tracker exists to catch.
    let naive = totp_app_source().replace(
        "        u32 bin = 0;",
        "        u32 bin0 = ((mac[off] & 0x7f) << 24) | (mac[off + 1] << 16) | (mac[off + 2] << 8) | mac[off + 3];\n        u32 bin = bin0 & 0;",
    );
    assert_ne!(naive, totp_app_source());
    let fw = build_firmware(&naive, sizes(), OptLevel::O2).unwrap();
    let codec = TotpCodec;
    let mut soc = make_soc(Cpu::Ibex, fw, &codec.encode_state(&TotpState { seed: [0x77; 32] }));
    let wire = WireDriver::new(COMMAND_SIZE, RESPONSE_SIZE);
    let _ = wire.run(&mut soc, &codec.encode_command(&TotpCommand::Code { counter: 3 })).unwrap();
    assert!(
        soc.core.leaks().iter().any(|l| l.kind == parfait_cores::LeakKind::AddrSecret),
        "secret-indexed load must be flagged: {:?}",
        soc.core.leaks()
    );
}
