//! Rejection corpus for the whole-firmware resource-bound analysis
//! (DESIGN.md §16): every control-flow shape the analysis refuses must
//! fire its *intended* diagnostic, not a generic failure. Each case
//! here is a seeded firmware with exactly one offending construct —
//! recursion, an unresolvable indirect call, a loop littlec could not
//! bound — plus the memory-safety rejections (stores outside every
//! writable region, stack growth through the floor).
//!
//! The positive side (all production firmwares certify, and the
//! certified bounds dominate observation) lives in
//! `tests/bound_differential.rs`.

use parfait_analyzer::{bound_asm, BoundError, BoundRegions};
use parfait_littlec::codegen::OptLevel;
use parfait_soc::{FRAM_BASE, FRAM_SIZE, IO_BASE, RAM_BASE, RAM_SIZE, ROM_BASE, STACK_FLOOR};

/// The boot shim every firmware gets (`parfait_hsms::syssw::BOOT_ASM`
/// establishes the same constant `sp`).
const BOOT: &str = "
.text
_start:
    li sp, 0x2003ff00
    call hsm_main
_halt:
    j _halt
";

fn regions() -> BoundRegions {
    BoundRegions {
        text_base: ROM_BASE,
        data_base: RAM_BASE,
        mmio: (IO_BASE, IO_BASE + 16),
        fram: (FRAM_BASE, FRAM_BASE + FRAM_SIZE),
        stack_floor: STACK_FLOOR,
    }
}

/// Compile a littlec source and link it under the boot shim, the way
/// `Pipeline::bound_stage` builds its input text.
fn linked(src: &str, opt: OptLevel) -> String {
    let program = parfait_littlec::frontend(src).expect("corpus source parses");
    let compiled = parfait_littlec::compile(&program, opt).expect("corpus source compiles");
    format!("{BOOT}{compiled}")
}

fn bound_of(src: &str, opt: OptLevel) -> Result<parfait_analyzer::BoundReport, BoundError> {
    bound_asm(&linked(src, opt), "_start", parfait_cores::ibex::contract(), &regions())
}

#[test]
fn recursion_is_rejected_with_the_cycle_named() {
    // A bounded-looking self-call: the *value* terminates, but the
    // stack depth does not compose over a cyclic call graph, so the
    // rejection must come from the call-graph walk itself.
    let src = "
u32 f(u32 n) {
    if (n == 0) { return 1; }
    return n * f(n - 1);
}
void hsm_main() {
    u32 r;
    r = f(6);
}
";
    for opt in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
        match bound_of(src, opt) {
            Err(BoundError::Unsupported(msg)) => {
                assert!(msg.contains("recursive"), "{opt}: diagnostic names recursion: {msg}");
            }
            other => panic!("{opt}: expected Unsupported(recursion), got {other:?}"),
        }
    }
}

#[test]
fn unresolvable_indirect_call_is_rejected() {
    // littlec never emits computed calls, so this lives at the asm
    // level — exactly the shape a hand-written or post-linked jump
    // table would take.
    let asm = "
.text
_start:
    li sp, 0x2003ff00
    call hsm_main
_halt:
    j _halt
hsm_main:
    la t0, helper
    jalr ra, t0, 0
    ret
helper:
    ret
";
    match bound_asm(asm, "_start", parfait_cores::ibex::contract(), &regions()) {
        Err(BoundError::Unsupported(msg)) => {
            assert!(msg.contains("jalr"), "diagnostic names the indirect call: {msg}");
        }
        other => panic!("expected Unsupported(jalr), got {other:?}"),
    }
}

#[test]
fn uninferable_loop_bound_fires_the_loud_diagnostic() {
    // The trip count is read out of RAM at run time: no static bound
    // exists, littlec annotates the loop `unknown`, and the analysis
    // must point at the offending source line with the LB-UNBOUNDED
    // remediation message.
    let src = "\
void hsm_main() {
    u32* p; p = (u32*)0x20000000;
    u32 n; n = p[0];
    u32 i;
    for (i = 0; i < n; i = i + 1) { }
}
";
    for opt in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
        match bound_of(src, opt) {
            Err(e @ BoundError::Unbounded { .. }) => {
                let msg = e.to_string();
                assert!(msg.contains("[LB-UNBOUNDED]"), "{opt}: tagged diagnostic: {msg}");
                assert!(msg.contains("hsm_main"), "{opt}: names the function: {msg}");
                assert!(
                    msg.contains("counted loop") || msg.contains("rewrite"),
                    "{opt}: carries the remediation hint: {msg}"
                );
            }
            other => panic!("{opt}: expected Unbounded, got {other:?}"),
        }
    }
}

#[test]
fn dropped_loop_annotation_is_rejected() {
    // Strip the codegen's `# loopbound` comment off an otherwise
    // well-formed counted loop: the machine code is untouched (the
    // assembler ignores comments), but the analysis must refuse to
    // invent a bound. This is the static shadow of the
    // `littlec-loop-bound-drop` adversary mutant.
    let src = "
void hsm_main() {
    u32 i;
    u32 acc;
    acc = 0;
    for (i = 0; i < 8; i = i + 1) {
        acc = acc + i;
    }
}
";
    let stripped: String = linked(src, OptLevel::O2)
        .lines()
        .filter(|l| !l.trim_start().starts_with("# loopbound"))
        .flat_map(|l| [l, "\n"])
        .collect();
    match bound_asm(&stripped, "_start", parfait_cores::ibex::contract(), &regions()) {
        Err(BoundError::Unvalidated(msg)) => {
            assert!(msg.contains("no littlec bound annotation"), "diagnostic: {msg}");
        }
        other => panic!("expected Unvalidated(no annotation), got {other:?}"),
    }
}

#[test]
fn stack_overrun_and_wild_store_are_rejected() {
    // Stack: allocate half the RAM in one frame — provably through the
    // floor even before any store happens.
    let overrun = format!(
        "
.text
_start:
    li sp, 0x2003ff00
    call hsm_main
_halt:
    j _halt
hsm_main:
    li t6, {}
    sub sp, sp, t6
    sw zero, 0(sp)
    add sp, sp, t6
    ret
",
        RAM_SIZE / 2
    );
    match bound_asm(&overrun, "_start", parfait_cores::ibex::contract(), &regions()) {
        Err(BoundError::Stack(msg)) => {
            assert!(msg.contains("stack floor"), "diagnostic: {msg}");
        }
        other => panic!("expected Stack(floor), got {other:?}"),
    }
    // Memory: a store aimed at the ROM.
    let wild = "
.text
_start:
    li sp, 0x2003ff00
    call hsm_main
_halt:
    j _halt
hsm_main:
    li t0, 0x100
    sw zero, 0(t0)
    ret
";
    match bound_asm(wild, "_start", parfait_cores::ibex::contract(), &regions()) {
        Err(BoundError::Memory(msg)) => {
            assert!(msg.contains("writable"), "diagnostic: {msg}");
        }
        other => panic!("expected Memory(writable), got {other:?}"),
    }
}
