//! End-to-end checks on the adversary catalog (DESIGN.md §12): the
//! taxonomy has the promised shape, representative mutants die at
//! exactly the stage the design claims, clean controls survive, and
//! the parallel FPS checker renders byte-identical verdicts on mutants
//! regardless of the thread budget.
//!
//! The full catalog (including the multi-second ctcheck and
//! timeout-kill classes) runs under `mutatest` against the ratcheted
//! `mutation_baseline.json` in CI; this suite keeps the cheap classes
//! under plain `cargo test` so a checker regression surfaces even
//! without the baseline gate.

use parfait_adversary::{catalog, controls, run_mutant, Level, Mutation};
use parfait_pipeline::{CertCache, Pipeline, StageKind};
use parfait_telemetry::Telemetry;

fn pipeline() -> Pipeline {
    Pipeline::new(CertCache::disabled(), Telemetry::disabled())
}

fn by_class(class: &str) -> Mutation {
    catalog().into_iter().find(|m| m.class == class).unwrap_or_else(|| panic!("{class} missing"))
}

/// Everything in an FPS failure string after "N commands" is wall time;
/// strip it so verdicts can be compared byte-for-byte across runs.
fn strip_wall(detail: &str) -> String {
    match detail.rsplit_once(" commands, ") {
        Some((head, _)) => format!("{head} commands"),
        None => detail.to_string(),
    }
}

#[test]
fn catalog_spans_all_levels_with_unique_classes() {
    let muts = catalog();
    assert!(muts.len() >= 12, "taxonomy shrank to {} classes", muts.len());
    let mut names: Vec<&str> = muts.iter().map(|m| m.class).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), muts.len(), "duplicate class names");
    for level in Level::ALL {
        assert!(muts.iter().any(|m| m.level == level), "no mutation covers level {level}");
        assert!(
            muts.iter().any(|m| m.level == level && m.quick),
            "quick sample misses level {level}"
        );
    }
    // Controls are distinguishable by prefix (the harness's contract).
    for c in controls() {
        assert!(c.class.starts_with("clean-"), "control {} lacks clean- prefix", c.class);
    }
}

#[test]
fn representative_mutants_die_at_their_designed_stage() {
    let p = pipeline();
    // One cheap representative per software stage plus the wire-level
    // check (the expensive classes are mutatest/CI territory).
    let expect = [
        ("crypto-mont-carry-drop", StageKind::Lockstep),
        ("cc-branch-polarity", StageKind::Equivalence),
        ("cc-dead-store", StageKind::Equivalence),
        ("cc-secret-latency", StageKind::CtCheck),
        ("cc-callee-saved-clobber", StageKind::CtCheck),
        // The resource-bound classes: one corrupts the frame discipline
        // (a real bug FPS would also catch, but the static analysis
        // refuses first), one is a comment-only annotation drop that NO
        // dynamic stage can see — the bound stage is its sole defense.
        ("codegen-stack-frame-underalloc", StageKind::Bound),
        ("littlec-loop-bound-drop", StageKind::Bound),
        ("cc-syssw-reg-clobber", StageKind::Fps),
        ("soc-tx-double-commit", StageKind::Fps),
        ("emu-response-desync", StageKind::Fps),
        // Contract-violation faults are invisible to FPS's dual-world
        // comparison (timing shifts identically in both worlds, or
        // nothing shifts at all); the battery must take the kill.
        ("core-contract-latency-understated", StageKind::Contract),
        ("core-contract-hidden-operand-dep", StageKind::Contract),
        ("core-contract-taint-silent", StageKind::Contract),
    ];
    for (class, stage) in expect {
        let r = run_mutant(&p, &by_class(class), 1);
        assert_eq!(
            r.killed_by,
            Some(stage),
            "{class}: expected kill at {stage}, got {} ({})",
            r.verdict(),
            r.detail
        );
    }
}

#[test]
fn clean_token_control_survives_all_stages() {
    let p = pipeline();
    let control = controls().into_iter().find(|c| c.class == "clean-token").unwrap();
    let r = run_mutant(&p, &control, 2);
    assert!(r.killed_by.is_none(), "clean control killed: {} ({})", r.verdict(), r.detail);
}

/// Satellite guard: adversary mutants must produce *byte-identical*
/// verdicts from the sequential oracle and the parallel FPS checker —
/// same killing stage, same error (modulo wall time), which also pins
/// the lowest-failing-segment selection of the parallel checker.
#[test]
fn fps_killed_mutants_are_thread_invariant() {
    // Force segment cuts at every quiescent boundary so even these
    // short scripts genuinely fork (same knob as tests/fps_parallel.rs).
    std::env::set_var("PARFAIT_SEGMENT_CYCLES", "1");
    let p = pipeline();
    for class in [
        "cc-syssw-reg-clobber",
        "isa-load-sign-extend",
        "soc-journal-write-drop",
        "emu-response-desync",
    ] {
        let m = by_class(class);
        let seq = run_mutant(&p, &m, 1);
        let par = run_mutant(&p, &m, 8);
        assert_eq!(seq.killed_by, Some(StageKind::Fps), "{class} seq: {}", seq.detail);
        assert_eq!(seq.killed_by, par.killed_by, "{class}: stage differs across thread budgets");
        assert_eq!(
            strip_wall(&seq.detail),
            strip_wall(&par.detail),
            "{class}: verdicts differ between 1 and 8 threads"
        );
    }
}
