//! Crypto property tests: the production Montgomery field arithmetic
//! checked differentially against a naive schoolbook modular-arithmetic
//! reference, plus SHA-256 / HMAC-SHA-256 known-answer vectors from the
//! NIST CAVP suite and RFC 4231.
//!
//! The schoolbook reference is deliberately the dumbest correct thing:
//! limb-by-limb product into a double-wide accumulator, then binary
//! long division for the reduction. It shares no code (and no clever
//! identities) with the CIOS implementation it cross-checks.

use parfait_crypto::bignum::{self, U256};
use parfait_crypto::hmac::hmac_sha256;
use parfait_crypto::p256::{self, Monty};
use parfait_crypto::sha256::sha256;

// --- schoolbook reference -------------------------------------------------

/// Schoolbook 256x256 -> 512-bit product.
fn school_mul_wide(a: &U256, b: &U256) -> [u32; 16] {
    let mut out = [0u64; 16];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let p = ai as u64 * bj as u64;
            out[i + j] += p & 0xFFFF_FFFF;
            out[i + j + 1] += p >> 32;
        }
        // Normalize eagerly so the u64 accumulators cannot overflow.
        let mut carry = 0u64;
        for cell in out.iter_mut() {
            let v = *cell + carry;
            *cell = v & 0xFFFF_FFFF;
            carry = v >> 32;
        }
        assert_eq!(carry, 0);
    }
    let mut r = [0u32; 16];
    for (dst, src) in r.iter_mut().zip(out.iter()) {
        *dst = *src as u32;
    }
    r
}

/// Reduce a 512-bit value mod `m` by binary long division.
fn school_mod(x: &[u32; 16], m: &U256) -> U256 {
    let mut r: U256 = [0; 8];
    for i in (0..512).rev() {
        // r = 2r + bit_i(x), with a conditional subtract keeping r < m.
        let (dbl, carry) = bignum::add(&r, &r);
        let mut r2 = dbl;
        r2[0] |= (x[i / 32] >> (i % 32)) & 1;
        let (sub, borrow) = bignum::sub(&r2, m);
        r = if carry == 1 || borrow == 0 { sub } else { r2 };
    }
    r
}

fn school_mulmod(a: &U256, b: &U256, m: &U256) -> U256 {
    school_mod(&school_mul_wide(a, b), m)
}

fn school_addmod(a: &U256, b: &U256, m: &U256) -> U256 {
    let (sum, carry) = bignum::add(a, b);
    let (sub, borrow) = bignum::sub(&sum, m);
    if carry == 1 || borrow == 0 {
        sub
    } else {
        sum
    }
}

/// Deterministic pseudo-random U256 below `m` (splitmix-style mixer).
fn prng_u256(seed: &mut u64, m: &U256) -> U256 {
    let mut out = [0u32; 8];
    for limb in out.iter_mut() {
        *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        *limb = (z ^ (z >> 31)) as u32;
    }
    // Knock the value below the modulus (both moduli are > 2^255, so a
    // single conditional subtract suffices — same precondition as
    // `reduce_once`, verified here independently).
    let (sub, borrow) = bignum::sub(&out, m);
    if borrow == 0 {
        sub
    } else {
        out
    }
}

fn differential_field(monty: &Monty, label: &str) {
    let mut seed = 0x5747_4C31u64;
    for round in 0..64 {
        let a = prng_u256(&mut seed, &monty.m);
        let b = prng_u256(&mut seed, &monty.m);
        // Montgomery multiply, stripped back to the plain domain, must
        // agree with schoolbook (a*b) mod m.
        let got = monty.from_mont(&monty.mul(&monty.to_mont(&a), &monty.to_mont(&b)));
        let want = school_mulmod(&a, &b, &monty.m);
        assert_eq!(got, want, "{label} mul round {round}");
        // Modular add is domain-agnostic; compare directly.
        assert_eq!(monty.add(&a, &b), school_addmod(&a, &b, &monty.m), "{label} add {round}");
        // Inverse: a * a^-1 = 1 (in the Montgomery domain, then check
        // against schoolbook too: (a * inv_plain) mod m == 1).
        if !bignum::is_zero(&a) {
            let am = monty.to_mont(&a);
            let inv_m = monty.inv(&am);
            let one_plain = monty.from_mont(&monty.mul(&am, &inv_m));
            let mut one = [0u32; 8];
            one[0] = 1;
            assert_eq!(one_plain, one, "{label} inv identity {round}");
            let inv_plain = monty.from_mont(&inv_m);
            assert_eq!(school_mulmod(&a, &inv_plain, &monty.m), one, "{label} inv school {round}");
        }
    }
}

#[test]
fn montgomery_field_matches_schoolbook_reference() {
    differential_field(p256::field(), "p256-field");
}

#[test]
fn montgomery_order_matches_schoolbook_reference() {
    differential_field(p256::order(), "p256-order");
}

#[test]
fn montgomery_edge_cases_match_schoolbook() {
    let f = p256::field();
    let mut pm1 = f.m; // p - 1
    pm1[0] -= 1;
    let zero = [0u32; 8];
    let mut one = [0u32; 8];
    one[0] = 1;
    for a in [zero, one, pm1] {
        for b in [zero, one, pm1] {
            let got = f.from_mont(&f.mul(&f.to_mont(&a), &f.to_mont(&b)));
            assert_eq!(got, school_mulmod(&a, &b, &f.m), "edge {a:?} * {b:?}");
            assert_eq!(f.add(&a, &b), school_addmod(&a, &b, &f.m), "edge {a:?} + {b:?}");
        }
    }
    // The crate's own wide multiply agrees with schoolbook as well.
    let mut seed = 7u64;
    for _ in 0..32 {
        let a = prng_u256(&mut seed, &f.m);
        let b = prng_u256(&mut seed, &f.m);
        assert_eq!(bignum::mul_wide(&a, &b), school_mul_wide(&a, &b));
    }
}

// --- SHA-256 / HMAC known-answer vectors ----------------------------------

fn unhex(s: &str) -> Vec<u8> {
    (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
}

#[test]
fn sha256_nist_vectors() {
    // NIST FIPS 180-4 / CAVP SHA256ShortMsg known answers.
    let cases: &[(&[u8], &str)] = &[
        (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
        (b"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
        (
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        ),
        (
            b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
              ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
        ),
    ];
    for (msg, want) in cases {
        assert_eq!(sha256(msg).to_vec(), unhex(want), "msg len {}", msg.len());
    }
    // One million 'a' (the FIPS long-message vector).
    let million = vec![b'a'; 1_000_000];
    assert_eq!(
        sha256(&million).to_vec(),
        unhex("cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0")
    );
}

#[test]
fn hmac_sha256_rfc4231_vectors() {
    // RFC 4231 test cases 1, 2, 3, 4, 6 (5 truncates the output; 7 is
    // the same shape as 6).
    let cases: &[(Vec<u8>, Vec<u8>, &str)] = &[
        (
            vec![0x0b; 20],
            b"Hi There".to_vec(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
        ),
        (
            b"Jefe".to_vec(),
            b"what do ya want for nothing?".to_vec(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
        ),
        (
            vec![0xaa; 20],
            vec![0xdd; 50],
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe",
        ),
        (
            (1u8..=25).collect(),
            vec![0xcd; 50],
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b",
        ),
        (
            vec![0xaa; 131],
            b"Test Using Larger Than Block-Size Key - Hash Key First".to_vec(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54",
        ),
    ];
    for (i, (key, msg, want)) in cases.iter().enumerate() {
        assert_eq!(hmac_sha256(key, msg).to_vec(), unhex(want), "RFC 4231 case {}", i + 1);
    }
}
