//! Knox2 functional-physical simulation for the password-hashing HSM —
//! the full §5 verification flow on both hardware platforms.

use parfait::lockstep::Codec;
use parfait::StateMachine;
use parfait_hsms::firmware::hasher_app_source;
use parfait_hsms::hasher::{
    HasherCodec, HasherCommand, HasherSpec, COMMAND_SIZE, RESPONSE_SIZE, STATE_SIZE,
};
use parfait_hsms::platform::{build_firmware, make_soc, AppSizes, Cpu};
use parfait_hsms::syssw;
use parfait_knox2::{check_fps, CircuitEmulator, FpsConfig, FpsError, HostOp};
use parfait_littlec::codegen::OptLevel;
use parfait_littlec::validate::asm_machine;
use parfait_riscv::model::AsmStateMachine;
use parfait_soc::Soc;

mod common;

fn sizes() -> AppSizes {
    AppSizes { state: STATE_SIZE, command: COMMAND_SIZE, response: RESPONSE_SIZE }
}

fn cfg() -> FpsConfig {
    FpsConfig {
        command_size: COMMAND_SIZE,
        response_size: RESPONSE_SIZE,
        timeout: 50_000_000,
        state_size: STATE_SIZE,
    }
}

/// The assembly-level whole-command spec for the hasher app (shared
/// per-binary cache; see tests/common).
fn hasher_asm_spec() -> AsmStateMachine {
    common::hasher_asm_spec()
}

/// Build (real SoC with secret state, emulator with dummy state).
fn worlds<'s>(
    cpu: Cpu,
    spec: &'s AsmStateMachine,
    secret_state: &[u8],
) -> (Soc, CircuitEmulator<'s>) {
    let fw = common::hasher_fw();
    let real = make_soc(cpu, fw.clone(), secret_state);
    // The emulator's circuit runs on PUBLIC dummy state (the app's
    // well-known initial state); it never sees `secret_state`.
    let codec = HasherCodec;
    let dummy = codec.encode_state(&HasherSpec.init());
    let dummy_soc = make_soc(cpu, fw, &dummy);
    let emu = CircuitEmulator::new(dummy_soc, spec, secret_state.to_vec(), COMMAND_SIZE);
    (real, emu)
}

fn project(soc: &Soc) -> Vec<u8> {
    syssw::active_state(&soc.fram_bytes(0, 256), STATE_SIZE)
}

fn script() -> Vec<HostOp> {
    let codec = HasherCodec;
    vec![
        // Hash with the pre-provisioned secret (the adversary learns the
        // digest — allowed — but nothing else).
        HostOp::Command(codec.encode_command(&HasherCommand::Hash { message: [0x42; 32] })),
        HostOp::Idle(500),
        // Re-initialize.
        HostOp::Command(codec.encode_command(&HasherCommand::Initialize { secret: [0x5A; 32] })),
        // Invalid full-size command.
        HostOp::Command(vec![0xEE; COMMAND_SIZE]),
        // Adversarial partial command, later completed by garbage.
        HostOp::Garbage(vec![2, 9, 9]),
        HostOp::Garbage(vec![1; COMMAND_SIZE - 3]),
        HostOp::Idle(200),
        HostOp::Command(codec.encode_command(&HasherCommand::Hash { message: [7; 32] })),
    ]
}

#[test]
fn hasher_fps_passes_on_ibex() {
    let spec = hasher_asm_spec();
    let codec = HasherCodec;
    let secret = codec.encode_state(&parfait_hsms::hasher::HasherState { secret: [0xC3; 32] });
    let (mut real, mut emu) = worlds(Cpu::Ibex, &spec, &secret);
    let report = check_fps(&mut real, &mut emu, &cfg(), &project, &script())
        .unwrap_or_else(|e| panic!("{e}"));
    assert!(report.cycles > 10_000, "cycles: {}", report.cycles);
    assert_eq!(report.commands, 4);
    assert!(report.spec_queries >= 5, "queries: {}", report.spec_queries);
}

#[test]
fn hasher_fps_passes_on_pico() {
    let spec = hasher_asm_spec();
    let codec = HasherCodec;
    let secret = codec.encode_state(&parfait_hsms::hasher::HasherState { secret: [0x77; 32] });
    let (mut real, mut emu) = worlds(Cpu::Pico, &spec, &secret);
    let report = check_fps(&mut real, &mut emu, &cfg(), &project, &script())
        .unwrap_or_else(|e| panic!("{e}"));
    // Table 4 shape: the pico takes more cycles for the same work.
    assert!(report.cycles > 10_000);
}

#[test]
fn pico_needs_more_cycles_than_ibex() {
    let spec = hasher_asm_spec();
    let codec = HasherCodec;
    let secret = codec.encode_state(&parfait_hsms::hasher::HasherState { secret: [1; 32] });
    let ops =
        vec![HostOp::Command(codec.encode_command(&HasherCommand::Hash { message: [2; 32] }))];
    let (mut real_i, mut emu_i) = worlds(Cpu::Ibex, &spec, &secret);
    let ri = check_fps(&mut real_i, &mut emu_i, &cfg(), &project, &ops).unwrap();
    let (mut real_p, mut emu_p) = worlds(Cpu::Pico, &spec, &secret);
    let rp = check_fps(&mut real_p, &mut emu_p, &cfg(), &project, &ops).unwrap();
    assert!(rp.cycles > 2 * ri.cycles, "pico {} should need >2x ibex {}", rp.cycles, ri.cycles);
}

#[test]
fn fps_catches_timing_leak_from_secret_branch() {
    // Inject the §7.2 bug: branch on a secret byte in handle, skipping
    // work when it is zero. The emulator's dummy state takes a different
    // path than the real secret state: the wire traces diverge in time.
    let buggy = hasher_app_source().replace(
        "u8 digest[32];",
        "if (state[0] != 0) { u8 waste[32]; blake2s_hash(waste, state, 32); }\n        u8 digest[32];",
    );
    assert_ne!(buggy, hasher_app_source(), "injection must apply");
    let fw = build_firmware(&buggy, sizes(), OptLevel::O2).unwrap();
    let program = parfait_littlec::frontend(&buggy).unwrap();
    let spec =
        asm_machine(&program, OptLevel::O2, STATE_SIZE, COMMAND_SIZE, RESPONSE_SIZE).unwrap();
    let codec = HasherCodec;
    // Real secret: nonzero first byte → takes the slow path.
    let secret = codec.encode_state(&parfait_hsms::hasher::HasherState { secret: [0xAA; 32] });
    let real_soc = make_soc(Cpu::Ibex, fw.clone(), &secret);
    let dummy = codec.encode_state(&HasherSpec.init()); // zero state → fast path
    let dummy_soc = make_soc(Cpu::Ibex, fw, &dummy);
    let mut emu = CircuitEmulator::new(dummy_soc, &spec, secret.clone(), COMMAND_SIZE);
    let mut real = real_soc;
    let ops =
        vec![HostOp::Command(codec.encode_command(&HasherCommand::Hash { message: [1; 32] }))];
    let err = check_fps(&mut real, &mut emu, &cfg(), &project, &ops).unwrap_err();
    match err {
        FpsError::TraceDivergence { .. } | FpsError::Leak { .. } | FpsError::Timeout { .. } => {}
        other => panic!("expected a timing-leak symptom, got {other:?}"),
    }
}

#[test]
fn fps_catches_state_corruption() {
    // Inject a persistence bug: store_state writes to the *active* slot
    // (no journaling), so the refinement relation of fig. 9 breaks...
    // actually the observable state still matches; instead inject a
    // handle bug that corrupts the state on Hash commands.
    let buggy =
        hasher_app_source().replace("resp[0] = 2;", "state[0] = (u8)(state[0] + 1); resp[0] = 2;");
    assert_ne!(buggy, hasher_app_source());
    let fw = build_firmware(&buggy, sizes(), OptLevel::O2).unwrap();
    // Spec = the CORRECT app's assembly model.
    let spec = hasher_asm_spec();
    let codec = HasherCodec;
    let secret = codec.encode_state(&parfait_hsms::hasher::HasherState { secret: [3; 32] });
    let mut real = make_soc(Cpu::Ibex, fw.clone(), &secret);
    let dummy = codec.encode_state(&HasherSpec.init());
    let dummy_soc = make_soc(Cpu::Ibex, fw, &dummy);
    let mut emu = CircuitEmulator::new(dummy_soc, &spec, secret.clone(), COMMAND_SIZE);
    let ops = vec![
        HostOp::Command(codec.encode_command(&HasherCommand::Hash { message: [2; 32] })),
        HostOp::Command(codec.encode_command(&HasherCommand::Hash { message: [2; 32] })),
    ];
    let err = check_fps(&mut real, &mut emu, &cfg(), &project, &ops).unwrap_err();
    match err {
        FpsError::RefinementViolation { .. } | FpsError::TraceDivergence { .. } => {}
        other => panic!("expected refinement/trace failure, got {other:?}"),
    }
}

#[test]
fn seeded_adversarial_scripts_pass_on_both_platforms() {
    // The standard script generator (partial frames, invalid commands,
    // idle probing) across several seeds and both CPUs.
    let spec = hasher_asm_spec();
    let codec = HasherCodec;
    let secret = codec.encode_state(&parfait_hsms::hasher::HasherState { secret: [0x5E; 32] });
    let commands = vec![
        codec.encode_command(&HasherCommand::Hash { message: [1; 32] }),
        codec.encode_command(&HasherCommand::Initialize { secret: [2; 32] }),
        codec.encode_command(&HasherCommand::Hash { message: [3; 32] }),
    ];
    for cpu in [Cpu::Ibex, Cpu::Pico] {
        for seed in [1u64, 99, 0xDEAD_BEEF] {
            let script = parfait_knox2::adversarial_script(&commands, COMMAND_SIZE, seed);
            let (mut real, mut emu) = worlds(cpu, &spec, &secret);
            check_fps(&mut real, &mut emu, &cfg(), &project, &script)
                .unwrap_or_else(|e| panic!("{cpu} seed {seed}: {e}"));
        }
    }
}
