//! End-to-end observability of the proof pipeline (ISSUE 6).
//!
//! The contracts under test:
//!
//! 1. a warm re-run through a fresh pipeline handle records exactly one
//!    `certcache_disk_hit` per pipeline stage — the cache-hit-rate
//!    question is answerable from the snapshot alone — with per-stage
//!    duration histograms present;
//! 2. a real snapshot round-trips losslessly through both renderers
//!    (canonical JSON and Prometheus text exposition);
//! 3. the live matrix progress view runs end-to-end without a TTY: FPS
//!    heartbeats from a real verification land in the right lane of a
//!    captured in-memory sink;
//! 4. a `RunManifest` captured around a run round-trips through JSON
//!    with its env knobs and metrics intact.
//!
//! The fixture is the tiny token HSM (see `tests/common`), whose FPS
//! runs take only thousands of cycles.

mod common;

use std::path::PathBuf;

use common::{cmd, token_spec, TokenCodec, CMD, RESP, STATE, TOKEN_LC};
use parfait_hsms::platform::{AppSizes, Cpu};
use parfait_knox2::FpsObserver;
use parfait_littlec::codegen::OptLevel;
use parfait_pipeline::{app_from_codec, AppPipeline, CertCache, Pipeline};
use parfait_starling::StarlingConfig;
use parfait_telemetry::manifest::RunManifest;
use parfait_telemetry::metrics::{Metrics, MetricsSnapshot};
use parfait_telemetry::progress::MatrixView;
use parfait_telemetry::sinks::SharedBuf;
use parfait_telemetry::{json, Telemetry};

fn token_app(slug: &str) -> AppPipeline {
    app_from_codec(
        "token HSM",
        slug,
        TOKEN_LC.to_string(),
        AppSizes { state: STATE, command: CMD, response: RESP },
        TokenCodec,
        token_spec(),
        (0xDEAD_BEEF, 7),
        cmd(3, 5),
        vec![(0, 0), (0xDEAD_BEEF, 7)],
        vec![cmd(1, 5), cmd(2, 10), cmd(3, 5)],
        vec![vec![1, 0, 0, 0, 0]],
        StarlingConfig {
            state_size: STATE,
            command_size: CMD,
            response_size: RESP,
            adversarial_inputs: 4,
            ..StarlingConfig::default()
        },
    )
}

fn private_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("parfait-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn warm_run_disk_hits_equal_stages_and_snapshots_round_trip() {
    let dir = private_dir("obs-warm");
    let app = token_app("token-obs-warm");
    let obs = FpsObserver::default();

    // Cold populate, accounting to a throwaway registry.
    let cold =
        Pipeline::new(CertCache::at_with(dir.clone(), Metrics::new()), Telemetry::disabled());
    let cell = cold.verify_cell(&app, Cpu::Ibex, OptLevel::O2, &obs, 1).expect("verifies cold");
    let n_stages = cell.stages.len();
    assert!(cell.stages.iter().all(|s| !s.cache_hit), "fresh cache must be cold");

    // Warm re-run through a brand-new handle (fresh memo ⇒ disk path)
    // on an isolated registry, so the counts below are exact.
    let metrics = Metrics::new();
    let warm =
        Pipeline::new(CertCache::at_with(dir.clone(), metrics.clone()), Telemetry::disabled());
    let cell2 = warm.verify_cell(&app, Cpu::Ibex, OptLevel::O2, &obs, 1).expect("verifies warm");
    assert!(cell2.fully_cached());

    let snap = metrics.snapshot();
    // The acceptance invariant: disk hits == pipeline stages run.
    assert_eq!(snap.counter_total("certcache_disk_hit"), n_stages as u64);
    assert_eq!(snap.counter_total("certcache_miss"), 0);
    assert_eq!(snap.counter_total("certcache_corrupt_discard"), 0);
    for s in &cell2.stages {
        let stage = s.certificate.stage.as_str();
        assert_eq!(snap.counter("certcache_disk_hit", &[("stage", stage)]), Some(1), "{stage}");
        // Per-stage duration histograms: one observation per stage,
        // for wall and CPU time both.
        let wall = snap
            .hist("pipeline_stage_wall_us", &[("stage", stage)])
            .unwrap_or_else(|| panic!("wall histogram for {stage}"));
        assert_eq!(wall.count, 1, "{stage}");
        let cpu = snap
            .hist("pipeline_stage_cpu_us", &[("stage", stage)])
            .unwrap_or_else(|| panic!("cpu histogram for {stage}"));
        assert_eq!(cpu.count, 1, "{stage}");
        assert_eq!(
            snap.counter("pipeline_stage_runs_total", &[("outcome", "hit"), ("stage", stage)]),
            Some(1),
            "{stage}"
        );
    }

    // The same real snapshot survives both renderers losslessly.
    let json_doc = snap.to_json();
    let parsed = json::parse(&json_doc.to_string()).expect("snapshot JSON parses");
    assert_eq!(MetricsSnapshot::from_json(&parsed).expect("snapshot from JSON"), snap);
    let prom = snap.to_prometheus();
    let back = MetricsSnapshot::from_prometheus(&prom).expect("snapshot from Prometheus");
    assert_eq!(back, snap);
    assert_eq!(back.to_prometheus(), prom, "renderer is a fixpoint of the parser");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn matrix_view_renders_a_real_verification_without_a_tty() {
    let dir = private_dir("obs-view");
    let app = token_app("token-obs-view");

    // The captured-sink harness: exactly what `verify` wires up when
    // stderr is a TTY, except the view writes to an in-memory buffer.
    let buf = SharedBuf::default();
    let view = MatrixView::new(Box::new(buf.clone()), false);
    let cell = view.add_lane("token/ibex/O2");
    let tel = Telemetry::new(Box::new(view.sink()));

    let pipeline = Pipeline::new(CertCache::at_with(dir.clone(), Metrics::new()), tel.clone());
    view.set_stage(cell, "fps", false);
    // Heartbeat every 1000 cycles: a thousands-of-cycles token run
    // emits several, each carrying this lane's cell id.
    let obs = FpsObserver { telemetry: tel.clone(), heartbeat_cycles: 1_000, cell };
    let outcome =
        pipeline.fps_stage(&app, Cpu::Ibex, OptLevel::O2, &obs, 1).expect("token app verifies");
    view.set_stage(cell, "fps", outcome.cache_hit);
    view.finish_lane(cell, true);
    tel.finish();

    // The heartbeats drove the lane: the rendered table shows the
    // cycle count and the completed status.
    let table = view.render();
    assert!(table.contains("token/ibex/O2"), "{table}");
    assert!(table.contains("ok"), "{table}");
    assert!(table.contains("cy"), "cycle count rendered: {table}");
    // Non-ANSI mode logged a completion line to the captured sink.
    let logged = buf.take_string();
    assert!(logged.contains("token/ibex/O2"), "{logged}");
    assert!(!logged.contains('\x1b'), "no control sequences without a TTY: {logged}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_manifest_round_trips_with_env_and_metrics() {
    let metrics = Metrics::new();
    metrics.counter_with("certcache_disk_hit", &[("stage", "fps")]).add(5);
    metrics.gauge_with("fps_cycles_per_second", &[("cell", "0")]).set(2.5e6);
    metrics.histogram_with("pipeline_stage_wall_us", &[("stage", "fps")]).record(1234);

    let manifest = RunManifest::capture("observability-test", 4, 0, &metrics);
    assert_eq!(manifest.bin, "observability-test");
    assert_eq!(manifest.threads, 4);
    assert!(manifest.build_id.starts_with("parfait-"), "{}", manifest.build_id);
    // Every env knob is present in the capture (set or explicitly null).
    for knob in parfait_telemetry::env::KNOBS {
        assert!(manifest.env.iter().any(|(k, _)| k == knob), "missing {knob}");
    }

    let doc = manifest.to_json().to_pretty_string();
    let back = RunManifest::from_json(&json::parse(&doc).expect("manifest JSON parses"))
        .expect("manifest from JSON");
    assert_eq!(back.bin, manifest.bin);
    assert_eq!(back.build_id, manifest.build_id);
    assert_eq!(back.threads, manifest.threads);
    assert_eq!(back.exit_code, manifest.exit_code);
    assert_eq!(back.env, manifest.env);
    assert_eq!(back.metrics, manifest.metrics);
    assert_eq!(back.metrics.counter_total("certcache_disk_hit"), 5);
}
