//! Scheduler-contract tests for the `parfait-serve` stage DAG (ISSUE
//! 10): randomized graphs execute in topological order with every
//! shared node computed exactly once, and at the service level a
//! failing stage fails exactly the requests that depend on it —
//! carrying the `[stage]`-prefixed error in the response frame — while
//! unrelated requests complete.

mod common;

use std::collections::HashMap;
use std::io::Cursor;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use parfait_pipeline::serve::sched::{execute, DagNode, Deps};
use parfait_pipeline::serve::server::handle_session;
use parfait_pipeline::{CertCache, ServeCore};
use parfait_telemetry::json::{parse, Json};
use parfait_telemetry::metrics::Metrics;
use parfait_telemetry::Telemetry;

/// A tiny deterministic generator (LCG) — the vendored corpus idiom:
/// seeded, reproducible runs, no wall-clock or OS entropy.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self, bound: usize) -> usize {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((self.0 >> 33) as usize) % bound.max(1)
    }
}

/// Random DAGs (edges only point to earlier indices, like stage
/// dependencies point at earlier pipeline stages): every node must run
/// after all of its dependencies, exactly once, and see their values.
#[test]
fn random_dags_execute_topologically_and_once() {
    for seed in [3, 17, 2024, 90210] {
        let mut rng = Lcg(seed);
        let n = 12 + rng.next(20);
        // deps[i] ⊆ {0..i}: acyclic by construction, heavy sharing —
        // low-index nodes are "speccheck-like" keys shared by many.
        let deps: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                let mut d: Vec<usize> = (0..rng.next(4).min(i)).map(|_| rng.next(i)).collect();
                d.sort_unstable();
                d.dedup();
                d
            })
            .collect();
        let order: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let metrics = Metrics::new();
        let nodes: Vec<DagNode<usize, u64>> = deps
            .iter()
            .enumerate()
            .map(|(i, dep)| {
                let order = &order;
                let dep = dep.clone();
                DagNode {
                    key: i,
                    deps: dep.clone(),
                    run: Box::new(move |got: &Deps<usize, u64>| {
                        order.lock().unwrap().push(i);
                        // A node's value folds its deps' values, so a
                        // stale or missing dependency is detectable.
                        let mut v = i as u64 + 1;
                        for d in &dep {
                            v = v
                                .wrapping_mul(31)
                                .wrapping_add(*got.get(d).expect("dependency value delivered"));
                        }
                        Ok(v)
                    }),
                }
            })
            .collect();
        let results = execute(2, &metrics, nodes).expect("valid DAG executes");
        assert_eq!(results.len(), n);

        // Exactly once, in topological order.
        let ran = order.into_inner().unwrap();
        assert_eq!(ran.len(), n, "seed {seed}: every node runs exactly once");
        let position: HashMap<usize, usize> =
            ran.iter().enumerate().map(|(pos, &i)| (i, pos)).collect();
        for (i, dep) in deps.iter().enumerate() {
            for d in dep {
                assert!(
                    position[d] < position[&i],
                    "seed {seed}: node {i} ran before its dependency {d}"
                );
            }
        }
        // Values fold correctly — recompute the expected fixpoint.
        let mut expect: Vec<u64> = vec![0; n];
        for (i, dep) in deps.iter().enumerate() {
            let mut v = i as u64 + 1;
            for d in dep {
                v = v.wrapping_mul(31).wrapping_add(expect[*d]);
            }
            expect[i] = v;
        }
        for (i, want) in expect.iter().enumerate() {
            assert_eq!(results[&i], Ok(*want), "seed {seed}: node {i} value");
        }
        let snap = metrics.snapshot();
        assert_eq!(
            snap.counter("serve_nodes_total", &[("outcome", "ok")]),
            Some(n as u64),
            "seed {seed}"
        );
    }
}

/// Random failure injection: poison one random node per round; every
/// transitive dependent must fail with the poisoned node's exact error,
/// every other node must complete.
#[test]
fn random_failures_skip_exactly_the_transitive_dependents() {
    for seed in [7, 1234, 555555] {
        let mut rng = Lcg(seed);
        let n = 10 + rng.next(15);
        let deps: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                let mut d: Vec<usize> = (0..rng.next(3).min(i)).map(|_| rng.next(i)).collect();
                d.sort_unstable();
                d.dedup();
                d
            })
            .collect();
        let poisoned = rng.next(n);
        let nodes: Vec<DagNode<usize, u64>> = (0..n)
            .map(|i| DagNode {
                key: i,
                deps: deps[i].clone(),
                run: Box::new(move |_: &Deps<usize, u64>| {
                    if i == poisoned {
                        Err(format!("[equivalence] poisoned node {i}"))
                    } else {
                        Ok(i as u64)
                    }
                }),
            })
            .collect();
        let results = execute(2, &Metrics::new(), nodes).expect("valid DAG executes");

        // The transitive closure of dependents of `poisoned`.
        let mut doomed = vec![false; n];
        doomed[poisoned] = true;
        for i in 0..n {
            if deps[i].iter().any(|d| doomed[*d]) {
                doomed[i] = true;
            }
        }
        let expected_err = format!("[equivalence] poisoned node {poisoned}");
        for i in 0..n {
            if doomed[i] {
                assert_eq!(
                    results[&i],
                    Err(expected_err.clone()),
                    "seed {seed}: node {i} must carry the poisoned error verbatim"
                );
            } else {
                assert_eq!(results[&i], Ok(i as u64), "seed {seed}: node {i} must complete");
            }
        }
    }
}

fn private_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("parfait-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Service-level failure isolation, with real pipeline stages: a batch
/// mixing a good app and a behaviorally broken app (its implementation
/// diverges from the spec, so the shared lockstep stage fails). The
/// broken app's requests — across *both* its opt levels, which share
/// that lockstep node — fail with one `[stage]`-prefixed error; the
/// good app's requests complete; shared stages ran exactly once each.
#[test]
fn stage_failure_fails_only_dependent_requests() {
    // `resp[0] = 9` where the spec says 1: speccheck (spec-only) still
    // passes, the impl-vs-spec lockstep check fails.
    let broken_source = common::TOKEN_LC.replace("resp[0] = 1;", "resp[0] = 9;");
    assert_ne!(broken_source, common::TOKEN_LC);
    let apps = vec![
        Arc::new(common::token_app_pipeline("token-good", common::TOKEN_LC.to_string())),
        Arc::new(common::token_app_pipeline("token-bad", broken_source)),
    ];
    let dir = private_dir("serve-sched-failure");
    let cache = CertCache::at_with(dir.clone(), Metrics::new());
    let core = ServeCore::with_apps(cache, Telemetry::disabled(), 2, apps);

    let session = [
        r#"{"op":"verify","id":"good-o2","tenant":"alpha","app":"token-good","cpu":"ibex","opt":"-O2"}"#,
        r#"{"op":"verify","id":"bad-o2","tenant":"alpha","app":"token-bad","cpu":"ibex","opt":"-O2"}"#,
        r#"{"op":"verify","id":"bad-o1","tenant":"alpha","app":"token-bad","cpu":"ibex","opt":"-O1"}"#,
        r#"{"op":"flush"}"#,
    ]
    .join("\n")
        + "\n";
    let mut out = Vec::new();
    handle_session(&core, Cursor::new(session.into_bytes()), &mut out).expect("transport ok");

    let mut frames: HashMap<String, Json> = HashMap::new();
    for line in String::from_utf8(out).unwrap().lines() {
        let f = parse(line).unwrap();
        if let Some(id) = f.get("id").and_then(Json::as_str) {
            if f.get("frame").and_then(Json::as_str) != Some("status") {
                frames.insert(id.to_string(), f);
            }
        }
    }

    // The good app's request completed.
    let good = &frames["good-o2"];
    assert_eq!(good.get("frame").and_then(Json::as_str), Some("result"));
    assert!(good.get("composed").is_some());

    // Both broken requests failed with the same [stage]-prefixed error
    // (one shared lockstep node failed once and doomed both cells).
    let e_o2 = frames["bad-o2"].get("error").and_then(Json::as_str).expect("error frame");
    let e_o1 = frames["bad-o1"].get("error").and_then(Json::as_str).expect("error frame");
    assert!(e_o2.starts_with("[lockstep]"), "stage-prefixed error, got: {e_o2}");
    assert_eq!(e_o2, e_o1, "both dependents carry the shared stage's error verbatim");

    // Shared-once accounting: speccheck ran once per app, the broken
    // lockstep ran once (not once per opt level), and the failure
    // skipped the broken app's downstream nodes without touching the
    // good app's.
    let snap = core.metrics().snapshot();
    let miss = |stage: &str| {
        snap.counter("pipeline_stage_runs_total", &[("stage", stage), ("outcome", "miss")])
            .unwrap_or(0)
    };
    assert_eq!(miss("speccheck"), 2, "one speccheck per app");
    assert_eq!(miss("lockstep"), 1, "good app's lockstep; the broken one failed, not stored");
    assert!(
        snap.counter("serve_nodes_total", &[("outcome", "failed")]) == Some(1),
        "exactly one node failed"
    );
    let skipped = snap.counter("serve_nodes_total", &[("outcome", "skipped")]).unwrap_or(0);
    assert!(skipped >= 2, "both broken cells' downstream nodes skipped, got {skipped}");

    std::fs::remove_dir_all(&dir).ok();
}
