//! The §7.2 attack catalog: one seeded bug per class, each caught by
//! the verification layer the paper says catches it.
//!
//! | Bug class                          | Caught by        | Test |
//! |------------------------------------|------------------|------|
//! | Software logic bug                 | Starling lockstep| `logic_bug_*` |
//! | Buffer overflow                    | Low\* memory safety | `buffer_overflow_*` |
//! | Software-level leakage (error path)| Starling lockstep| `error_leak_*` |
//! | Timing leak (branch on secret)     | Knox2 FPS        | `secret_branch_*` (and knox2_hasher.rs) |
//! | Compiler-introduced timing leak    | Knox2 FPS        | `compiler_timing_*` |
//! | HW variable-latency on secret      | Knox2 FPS/taint  | `variable_latency_*` |
//! | Stack overflow                     | Knox2 (bounded stack) | `stack_overflow_*` |
//! | I/O bug in system software         | Knox2 FPS (spec binding) | `io_encoding_*` |
//! | Pipeline hazard in CPU             | Knox2 sync       | knox2_sync.rs |
//!
//! The tests use a deliberately tiny "token counter" HSM so that each
//! SoC run takes only thousands of cycles.

use parfait::lockstep::{check_lockstep_simulation, Codec};
use parfait::machine::FnMachine;
use parfait_hsms::platform::{build_firmware_parts, make_soc, Cpu};
use parfait_hsms::syssw;
use parfait_knox2::{check_fps, CircuitEmulator, FpsConfig, FpsError, HostOp};
use parfait_littlec::codegen::OptLevel;
use parfait_littlec::validate::asm_machine;
use parfait_soc::Soc;

// ---------------------------------------------------------------------
// The token HSM: state = [secret(4 LE), counter(4 LE)]; commands are
// [tag, arg(4 LE)]:
//   tag 1: set secret := arg           → resp [1, 0...]
//   tag 2: counter += arg              → resp [2, counter]
//   tag 3: prove knowledge: resp [3, (secret*2654435761 + counter) ^ arg]
//   else:  resp [0xff, 0...]
// ---------------------------------------------------------------------

const STATE: usize = 8;
const CMD: usize = 5;
const RESP: usize = 5;

const TOKEN_LC: &str = "
    u32 ld32(u8* p) {
        return p[0] | (p[1] << 8) | (p[2] << 16) | (p[3] << 24);
    }
    void st32(u8* p, u32 v) {
        p[0] = (u8)v;
        p[1] = (u8)(v >> 8);
        p[2] = (u8)(v >> 16);
        p[3] = (u8)(v >> 24);
    }
    void handle(u8* state, u8* cmd, u8* resp) {
        for (u32 i = 0; i < 5; i = i + 1) { resp[i] = 0; }
        u32 arg = ld32(cmd + 1);
        u32 tag = cmd[0];
        if (tag == 1) {
            st32(state, arg);
            resp[0] = 1;
            return;
        }
        if (tag == 2) {
            u32 c = ld32(state + 4) + arg;
            st32(state + 4, c);
            resp[0] = 2;
            st32(resp + 1, c);
            return;
        }
        if (tag == 3) {
            u32 secret = ld32(state);
            u32 c = ld32(state + 4);
            resp[0] = 3;
            st32(resp + 1, (secret * 2654435761 + c) ^ arg);
            return;
        }
        resp[0] = 0xff;
    }
";

/// The token spec as a state machine over (secret, counter).
fn token_spec() -> FnMachine<(u32, u32), Vec<u8>, Vec<u8>> {
    FnMachine {
        init: (0, 0),
        step: |s, c| {
            let mut resp = vec![0u8; RESP];
            if c.len() != CMD {
                resp[0] = 0xFF;
                return (*s, resp);
            }
            let arg = u32::from_le_bytes([c[1], c[2], c[3], c[4]]);
            match c[0] {
                1 => {
                    resp[0] = 1;
                    ((arg, s.1), resp)
                }
                2 => {
                    let c2 = s.1.wrapping_add(arg);
                    resp[0] = 2;
                    resp[1..5].copy_from_slice(&c2.to_le_bytes());
                    ((s.0, c2), resp)
                }
                3 => {
                    resp[0] = 3;
                    let v = s.0.wrapping_mul(2654435761).wrapping_add(s.1) ^ arg;
                    resp[1..5].copy_from_slice(&v.to_le_bytes());
                    (*s, resp)
                }
                _ => {
                    resp[0] = 0xFF;
                    (*s, resp)
                }
            }
        },
    }
}

struct TokenCodec;

impl Codec for TokenCodec {
    type Spec = FnMachine<(u32, u32), Vec<u8>, Vec<u8>>;
    type CI = Vec<u8>;
    type RI = Vec<u8>;
    type SI = Vec<u8>;

    fn encode_command(&self, c: &Vec<u8>) -> Vec<u8> {
        c.clone()
    }
    fn decode_command(&self, c: &Vec<u8>) -> Option<Vec<u8>> {
        (c.len() == CMD && matches!(c[0], 1..=3)).then(|| c.clone())
    }
    fn encode_response(&self, r: Option<&Vec<u8>>) -> Vec<u8> {
        match r {
            Some(v) => v.clone(),
            None => {
                let mut e = vec![0u8; RESP];
                e[0] = 0xFF;
                e
            }
        }
    }
    fn decode_response(&self, r: &Vec<u8>) -> Vec<u8> {
        r.clone()
    }
    fn encode_state(&self, s: &(u32, u32)) -> Vec<u8> {
        let mut out = Vec::with_capacity(8);
        out.extend_from_slice(&s.0.to_le_bytes());
        out.extend_from_slice(&s.1.to_le_bytes());
        out
    }
}

fn cfg() -> FpsConfig {
    FpsConfig { command_size: CMD, response_size: RESP, timeout: 5_000_000, state_size: STATE }
}

fn project(soc: &Soc) -> Vec<u8> {
    syssw::active_state(&soc.fram_bytes(0, 64), STATE)
}

fn cmd(tag: u8, arg: u32) -> Vec<u8> {
    let mut c = vec![tag];
    c.extend_from_slice(&arg.to_le_bytes());
    c
}

/// Run the FPS check for the given app source (and optional syssw/asm
/// tampering) against the CORRECT app's assembly spec.
fn run_fps_with(
    app_source: &str,
    syssw_src: Option<&str>,
    patch: impl FnOnce(String) -> String,
    script: &[HostOp],
) -> Result<parfait_knox2::FpsReport, FpsError> {
    let default_syssw = syssw::syssw_source(STATE, CMD, RESP);
    let fw = build_firmware_parts(
        app_source,
        syssw_src.unwrap_or(&default_syssw),
        OptLevel::O2,
        patch,
    )
    .unwrap();
    // Spec: the clean token app at the assembly level.
    let clean = parfait_littlec::frontend(TOKEN_LC).unwrap();
    let spec = asm_machine(&clean, OptLevel::O2, STATE, CMD, RESP).unwrap();
    let secret_state = TokenCodec.encode_state(&(0xDEAD_BEEF, 7));
    let mut real = make_soc(Cpu::Ibex, fw.clone(), &secret_state);
    let dummy = TokenCodec.encode_state(&(0, 0));
    let dummy_soc = make_soc(Cpu::Ibex, fw, &dummy);
    let mut emu = CircuitEmulator::new(dummy_soc, &spec, secret_state, CMD);
    check_fps(&mut real, &mut emu, &cfg(), &project, script)
}

fn standard_script() -> Vec<HostOp> {
    vec![
        HostOp::Command(cmd(3, 5)),      // prove (touches the secret)
        HostOp::Command(cmd(2, 10)),     // bump counter
        HostOp::Command(cmd(0xEE, 0)),   // invalid
        HostOp::Command(cmd(3, 0)),
    ]
}

// --- baseline -----------------------------------------------------------

#[test]
fn clean_token_hsm_passes_everything() {
    // Starling lockstep.
    let spec = token_spec();
    let program = parfait_littlec::frontend(TOKEN_LC).unwrap();
    let interp = parfait_starling::machines::InterpMachine::new(&program, RESP);
    // Physically, commands are always exactly CMD bytes (the system
    // software reads fixed-size buffers), so lockstep inputs are too.
    let inputs: Vec<Vec<u8>> =
        vec![cmd(1, 5), cmd(2, 3), cmd(3, 9), cmd(9, 1), cmd(0, 0), vec![0xFF; CMD]];
    check_lockstep_simulation(&TokenCodec, &spec, &interp, &[(0, 0), (0xAA55, 3)], &inputs)
        .unwrap();
    // Knox2 FPS.
    let report = run_fps_with(TOKEN_LC, None, |a| a, &standard_script()).unwrap();
    assert_eq!(report.commands, 4);
}

// --- software logic bug (Starling) ---------------------------------------

#[test]
fn logic_bug_caught_by_starling() {
    // Counter bumps by arg+1.
    let buggy = TOKEN_LC.replace("ld32(state + 4) + arg", "ld32(state + 4) + arg + 1");
    assert_ne!(buggy, TOKEN_LC);
    let program = parfait_littlec::frontend(&buggy).unwrap();
    let interp = parfait_starling::machines::InterpMachine::new(&program, RESP);
    let err = check_lockstep_simulation(
        &TokenCodec,
        &token_spec(),
        &interp,
        &[(0, 0)],
        &[cmd(2, 3)],
    )
    .unwrap_err();
    assert!(err.obligation.contains("Some"), "{err}");
}

// --- buffer overflow (Low* memory safety) --------------------------------

#[test]
fn buffer_overflow_caught_at_lowstar_level() {
    // Off-by-one response write.
    let buggy = TOKEN_LC.replace(
        "for (u32 i = 0; i < 5; i = i + 1) { resp[i] = 0; }",
        "for (u32 i = 0; i < 6; i = i + 1) { resp[i] = 0; }",
    );
    assert_ne!(buggy, TOKEN_LC);
    let program = parfait_littlec::frontend(&buggy).unwrap();
    let interp = parfait_littlec::interp::Interp::new(&program);
    let err = interp.step(&[0u8; STATE], &cmd(2, 1), RESP).unwrap_err();
    assert!(err.msg.contains("out-of-bounds"), "{err}");
}

// --- error-path leakage (Starling) ----------------------------------------

#[test]
fn error_leak_caught_by_starling() {
    // Invalid commands reveal the secret.
    let buggy = TOKEN_LC.replace(
        "resp[0] = 0xff;",
        "resp[0] = 0xff; st32(resp + 1, ld32(state));",
    );
    assert_ne!(buggy, TOKEN_LC);
    let program = parfait_littlec::frontend(&buggy).unwrap();
    let interp = parfait_starling::machines::InterpMachine::new(&program, RESP);
    let err = check_lockstep_simulation(
        &TokenCodec,
        &token_spec(),
        &interp,
        &[(0x5EC7E7, 0)],
        &[cmd(0xEE, 0)],
    )
    .unwrap_err();
    assert!(err.obligation.contains("None"), "{err}");
}

// --- secret-dependent branch (Knox2) --------------------------------------

#[test]
fn secret_branch_caught_by_knox2() {
    let buggy = TOKEN_LC.replace(
        "u32 secret = ld32(state);",
        "u32 secret = ld32(state); if (secret > 1000) { u32 w = 0; for (u32 i = 0; i < 50; i = i + 1) { w = w + i; } st32(resp + 1, w); }",
    );
    assert_ne!(buggy, TOKEN_LC);
    let err = run_fps_with(&buggy, None, |a| a, &standard_script()).unwrap_err();
    match err {
        FpsError::TraceDivergence { .. } | FpsError::Leak { .. } => {}
        other => panic!("expected a leak symptom, got {other}"),
    }
}

// --- compiler-introduced timing bug (Knox2) -------------------------------

#[test]
fn compiler_timing_bug_caught_by_knox2() {
    // Tamper with the generated assembly (below the littlec level): at
    // handle entry, branch on the first state byte.
    let patch = |asm: String| {
        asm.replacen(
            "handle:",
            "handle:\n    lbu t0, 0(a0)\n    beqz t0, 12\n    nop\n    nop",
            1,
        )
    };
    let err = run_fps_with(TOKEN_LC, None, patch, &standard_script()).unwrap_err();
    match err {
        FpsError::TraceDivergence { .. } | FpsError::Leak { .. } => {}
        other => panic!("expected a timing divergence, got {other}"),
    }
}

// --- hardware variable-latency instruction (Knox2/taint) -------------------

#[test]
fn variable_latency_div_on_secret_caught() {
    // `secret / (arg|1)`: the divider's latency depends on the dividend
    // (the secret) on both cores.
    let buggy = TOKEN_LC.replace(
        "st32(resp + 1, (secret * 2654435761 + c) ^ arg);",
        "st32(resp + 1, (secret / (arg | 1)) + c);",
    );
    assert_ne!(buggy, TOKEN_LC);
    // Spec must match the buggy source (the bug here is *hardware*
    // latency, not functional behaviour).
    let program = parfait_littlec::frontend(&buggy).unwrap();
    let spec = asm_machine(&program, OptLevel::O2, STATE, CMD, RESP).unwrap();
    let default_syssw = syssw::syssw_source(STATE, CMD, RESP);
    let fw = build_firmware_parts(&buggy, &default_syssw, OptLevel::O2, |a| a).unwrap();
    let secret_state = TokenCodec.encode_state(&(0xDEAD_BEEF, 7));
    let mut real = make_soc(Cpu::Ibex, fw.clone(), &secret_state);
    let dummy_soc = make_soc(Cpu::Ibex, fw, &TokenCodec.encode_state(&(0, 0)));
    let mut emu = CircuitEmulator::new(dummy_soc, &spec, secret_state, CMD);
    let err = check_fps(&mut real, &mut emu, &cfg(), &project, &[HostOp::Command(cmd(3, 5))])
        .unwrap_err();
    match err {
        FpsError::TraceDivergence { .. } | FpsError::Leak { .. } => {}
        other => panic!("expected latency divergence, got {other}"),
    }
}

// --- stack overflow (Knox2: bounded stack) ---------------------------------

#[test]
fn stack_overflow_caught_by_knox2() {
    // Deep recursion with big frames: fine at the assembly level
    // (abstract unbounded stack), fatal on the SoC (bounded RAM).
    let buggy = TOKEN_LC.replace(
        "u32 secret = ld32(state);",
        "u32 secret = ld32(state) + burn(400);",
    ) + "
    u32 burn(u32 n) {
        u32 big[256];
        big[0] = n;
        if (n == 0) { return 0; }
        return big[0] + burn(n - 1);
    }
    ";
    let err = run_fps_with(&buggy, None, |a| a, &[HostOp::Command(cmd(3, 1))]).unwrap_err();
    match err {
        FpsError::Fault { .. } | FpsError::TraceDivergence { .. } | FpsError::Timeout { .. } => {}
        other => panic!("expected a fault, got {other}"),
    }
}

// --- I/O bug in system software (Knox2 spec binding) -----------------------

#[test]
fn io_encoding_bug_caught_by_knox2() {
    // write_response sends the bytes in reverse order. Both circuit
    // instances share the bug, so their traces agree — the spec-binding
    // check is what catches it.
    let buggy_syssw = syssw::syssw_source(STATE, CMD, RESP).replace(
        "void write_response(u8* resp) {\n    for (u32 i = 0; i < 5; i = i + 1) {\n        ss_write_byte(resp[i]);",
        "void write_response(u8* resp) {\n    for (u32 i = 0; i < 5; i = i + 1) {\n        ss_write_byte(resp[4 - i]);",
    );
    assert!(buggy_syssw.contains("resp[4 - i]"), "injection must apply");
    let err = run_fps_with(TOKEN_LC, Some(&buggy_syssw), |a| a, &standard_script()).unwrap_err();
    match err {
        FpsError::ResponseMismatch { .. } => {}
        other => panic!("expected a response mismatch, got {other}"),
    }
}
