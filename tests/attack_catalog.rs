//! The §7.2 attack catalog: one seeded bug per class, each caught by
//! the verification layer the paper says catches it.
//!
//! | Bug class                          | Caught by        | Test |
//! |------------------------------------|------------------|------|
//! | Software logic bug                 | Starling lockstep| `logic_bug_*` |
//! | Buffer overflow                    | Low\* memory safety | `buffer_overflow_*` |
//! | Software-level leakage (error path)| Starling lockstep| `error_leak_*` |
//! | Timing leak (branch on secret)     | Knox2 FPS        | `secret_branch_*` (and knox2_hasher.rs) |
//! | Compiler-introduced timing leak    | Knox2 FPS        | `compiler_timing_*` |
//! | HW variable-latency on secret      | Knox2 FPS/taint  | `variable_latency_*` |
//! | Stack overflow                     | Knox2 (bounded stack) | `stack_overflow_*` |
//! | I/O bug in system software         | Knox2 FPS (spec binding) | `io_encoding_*` |
//! | Pipeline hazard in CPU             | Knox2 sync       | knox2_sync.rs |
//!
//! The tests use a deliberately tiny "token counter" HSM so that each
//! SoC run takes only thousands of cycles.

use parfait::lockstep::check_lockstep_simulation;
use parfait_knox2::{FpsError, HostOp};

mod common;

use common::{cmd, standard_script, token_spec, TokenCodec, TokenFps, CMD, RESP, STATE, TOKEN_LC};

/// Run the FPS check for the given app source (and optional syssw/asm
/// tampering) against the CORRECT app's assembly spec.
fn run_fps_with(
    app_source: &str,
    syssw_src: Option<&str>,
    patch: impl FnOnce(String) -> String,
    script: &[HostOp],
) -> Result<parfait_knox2::FpsReport, FpsError> {
    TokenFps::build(app_source, syssw_src, None, patch).run(script, 1).result.map_err(|f| f.error)
}

// --- baseline -----------------------------------------------------------

#[test]
fn clean_token_hsm_passes_everything() {
    // Starling lockstep.
    let spec = token_spec();
    let program = parfait_littlec::frontend(TOKEN_LC).unwrap();
    let interp = parfait_starling::machines::InterpMachine::new(&program, RESP);
    // Physically, commands are always exactly CMD bytes (the system
    // software reads fixed-size buffers), so lockstep inputs are too.
    let inputs: Vec<Vec<u8>> =
        vec![cmd(1, 5), cmd(2, 3), cmd(3, 9), cmd(9, 1), cmd(0, 0), vec![0xFF; CMD]];
    check_lockstep_simulation(&TokenCodec, &spec, &interp, &[(0, 0), (0xAA55, 3)], &inputs)
        .unwrap();
    // Knox2 FPS.
    let report = run_fps_with(TOKEN_LC, None, |a| a, &standard_script()).unwrap();
    assert_eq!(report.commands, 4);
}

// --- software logic bug (Starling) ---------------------------------------

#[test]
fn logic_bug_caught_by_starling() {
    // Counter bumps by arg+1.
    let buggy = TOKEN_LC.replace("ld32(state + 4) + arg", "ld32(state + 4) + arg + 1");
    assert_ne!(buggy, TOKEN_LC);
    let program = parfait_littlec::frontend(&buggy).unwrap();
    let interp = parfait_starling::machines::InterpMachine::new(&program, RESP);
    let err =
        check_lockstep_simulation(&TokenCodec, &token_spec(), &interp, &[(0, 0)], &[cmd(2, 3)])
            .unwrap_err();
    assert!(err.obligation.contains("Some"), "{err}");
}

// --- buffer overflow (Low* memory safety) --------------------------------

#[test]
fn buffer_overflow_caught_at_lowstar_level() {
    // Off-by-one response write.
    let buggy = TOKEN_LC.replace(
        "for (u32 i = 0; i < 5; i = i + 1) { resp[i] = 0; }",
        "for (u32 i = 0; i < 6; i = i + 1) { resp[i] = 0; }",
    );
    assert_ne!(buggy, TOKEN_LC);
    let program = parfait_littlec::frontend(&buggy).unwrap();
    let interp = parfait_littlec::interp::Interp::new(&program);
    let err = interp.step(&[0u8; STATE], &cmd(2, 1), RESP).unwrap_err();
    assert!(err.msg.contains("out-of-bounds"), "{err}");
}

// --- error-path leakage (Starling) ----------------------------------------

#[test]
fn error_leak_caught_by_starling() {
    // Invalid commands reveal the secret.
    let buggy = TOKEN_LC.replace("resp[0] = 0xff;", "resp[0] = 0xff; st32(resp + 1, ld32(state));");
    assert_ne!(buggy, TOKEN_LC);
    let program = parfait_littlec::frontend(&buggy).unwrap();
    let interp = parfait_starling::machines::InterpMachine::new(&program, RESP);
    let err = check_lockstep_simulation(
        &TokenCodec,
        &token_spec(),
        &interp,
        &[(0x5EC7E7, 0)],
        &[cmd(0xEE, 0)],
    )
    .unwrap_err();
    assert!(err.obligation.contains("None"), "{err}");
}

// --- secret-dependent branch (Knox2) --------------------------------------

#[test]
fn secret_branch_caught_by_knox2() {
    let buggy = TOKEN_LC.replace(
        "u32 secret = ld32(state);",
        "u32 secret = ld32(state); if (secret > 1000) { u32 w = 0; for (u32 i = 0; i < 50; i = i + 1) { w = w + i; } st32(resp + 1, w); }",
    );
    assert_ne!(buggy, TOKEN_LC);
    let err = run_fps_with(&buggy, None, |a| a, &standard_script()).unwrap_err();
    match err {
        FpsError::TraceDivergence { .. } | FpsError::Leak { .. } => {}
        other => panic!("expected a leak symptom, got {other}"),
    }
}

// --- compiler-introduced timing bug (Knox2) -------------------------------

#[test]
fn compiler_timing_bug_caught_by_knox2() {
    // Tamper with the generated assembly (below the littlec level): at
    // handle entry, branch on the first state byte.
    let patch = |asm: String| {
        asm.replacen("handle:", "handle:\n    lbu t0, 0(a0)\n    beqz t0, 12\n    nop\n    nop", 1)
    };
    let err = run_fps_with(TOKEN_LC, None, patch, &standard_script()).unwrap_err();
    match err {
        FpsError::TraceDivergence { .. } | FpsError::Leak { .. } => {}
        other => panic!("expected a timing divergence, got {other}"),
    }
}

// --- hardware variable-latency instruction (Knox2/taint) -------------------

#[test]
fn variable_latency_div_on_secret_caught() {
    // `secret / (arg|1)`: the divider's latency depends on the dividend
    // (the secret) on both cores.
    let buggy = TOKEN_LC.replace(
        "st32(resp + 1, (secret * 2654435761 + c) ^ arg);",
        "st32(resp + 1, (secret / (arg | 1)) + c);",
    );
    assert_ne!(buggy, TOKEN_LC);
    // Spec must match the buggy source (the bug here is *hardware*
    // latency, not functional behaviour).
    let fps = TokenFps::build(&buggy, None, Some(&buggy), |a| a);
    let err = fps.run(&[HostOp::Command(cmd(3, 5))], 1).result.map_err(|f| f.error).unwrap_err();
    match err {
        FpsError::TraceDivergence { .. } | FpsError::Leak { .. } => {}
        other => panic!("expected latency divergence, got {other}"),
    }
}

// --- stack overflow (Knox2: bounded stack) ---------------------------------

#[test]
fn stack_overflow_caught_by_knox2() {
    // Deep recursion with big frames: fine at the assembly level
    // (abstract unbounded stack), fatal on the SoC (bounded RAM).
    let buggy = TOKEN_LC
        .replace("u32 secret = ld32(state);", "u32 secret = ld32(state) + burn(400);")
        + "
    u32 burn(u32 n) {
        u32 big[256];
        big[0] = n;
        if (n == 0) { return 0; }
        return big[0] + burn(n - 1);
    }
    ";
    let err = run_fps_with(&buggy, None, |a| a, &[HostOp::Command(cmd(3, 1))]).unwrap_err();
    match err {
        FpsError::Fault { .. } | FpsError::TraceDivergence { .. } | FpsError::Timeout { .. } => {}
        other => panic!("expected a fault, got {other}"),
    }
}

// --- I/O bug in system software (Knox2 spec binding) -----------------------

#[test]
fn io_encoding_bug_caught_by_knox2() {
    // write_response sends the bytes in reverse order. Both circuit
    // instances share the bug, so their traces agree — the spec-binding
    // check is what catches it.
    let buggy_syssw = parfait_hsms::syssw::syssw_source(STATE, CMD, RESP).replace(
        "void write_response(u8* resp) {\n    for (u32 i = 0; i < 5; i = i + 1) {\n        ss_write_byte(resp[i]);",
        "void write_response(u8* resp) {\n    for (u32 i = 0; i < 5; i = i + 1) {\n        ss_write_byte(resp[4 - i]);",
    );
    assert!(buggy_syssw.contains("resp[4 - i]"), "injection must apply");
    let err = run_fps_with(TOKEN_LC, Some(&buggy_syssw), |a| a, &standard_script()).unwrap_err();
    match err {
        FpsError::ResponseMismatch { .. } => {}
        other => panic!("expected a response mismatch, got {other}"),
    }
}
