//! Differential validation of the bound stage (DESIGN.md §16): the
//! *certified* bounds must dominate what the wire-level simulation
//! *observes*, for every production firmware at every optimization
//! level its verification covers.
//!
//! Two inequalities per (app × opt) cell, both read off certificates:
//!
//! * certified WCET ≥ the FPS report's simulated cycle count (the
//!   whole dual-world script, boot included);
//! * certified worst-case stack depth ≥ the observed high-water mark
//!   (the lowest stack address the real SoC stored to, recorded by
//!   `Soc::stack_high_water` during the FPS pre-pass).
//!
//! A violation of either is a soundness bug in the static analysis —
//! there is no tolerance, slack may only be positive. The test also
//! pins the derived-timeout plumbing: the FPS budget a cell runs under
//! comes from its own bound certificate, not the last-resort constant.

use parfait_hsms::platform::Cpu;
use parfait_knox2::{FpsConfig, FpsObserver};
use parfait_pipeline::{CertCache, Pipeline, StdApp};
use parfait_soc::STACK_FLOOR;
use parfait_telemetry::Telemetry;

fn pipeline() -> Pipeline {
    Pipeline::new(CertCache::disabled(), Telemetry::disabled())
}

fn stat(cert: &parfait_pipeline::StageCertificate, name: &str) -> i64 {
    cert.stat(name).unwrap_or_else(|| panic!("{} certificate lacks stat {name}", cert.app))
}

/// Every production firmware certifies on both platforms at every opt
/// level, with a finite WCET and a stack envelope inside the region.
#[test]
fn production_firmwares_certify_on_both_platforms() {
    let p = pipeline();
    for app in [StdApp::Hasher, StdApp::Totp, StdApp::Ecdsa] {
        let a = app.pipeline();
        for &opt in &a.opt_levels.clone() {
            for cpu in [Cpu::Ibex, Cpu::Pico] {
                let b = p
                    .bound_stage(&a, cpu, opt)
                    .unwrap_or_else(|e| panic!("{}/{cpu}/{opt}: {e}", a.slug));
                let wcet = stat(&b.certificate, "wcet_cycles");
                let depth = stat(&b.certificate, "stack_depth");
                let top = stat(&b.certificate, "stack_top");
                assert!(wcet > 0, "{}/{cpu}/{opt}: WCET must be positive", a.slug);
                assert!(
                    wcet < i64::MAX,
                    "{}/{cpu}/{opt}: WCET must be finite, not saturated",
                    a.slug
                );
                assert!(depth > 0, "{}/{cpu}/{opt}: stack depth must be positive", a.slug);
                assert!(
                    top - depth >= STACK_FLOOR as i64,
                    "{}/{cpu}/{opt}: certified envelope [{:#x}, {:#x}) leaves the stack region",
                    a.slug,
                    top - depth,
                    top
                );
                assert!(stat(&b.certificate, "functions") > 0, "{}: call graph empty", a.slug);
                assert!(stat(&b.certificate, "loops") > 0, "{}: no loops bounded", a.slug);
            }
        }
    }
}

/// Certified WCET ≥ observed cycles and certified depth ≥ observed
/// stack high-water, for every production firmware at every opt level
/// (one platform: the inequalities are per-firmware; the cross-platform
/// certification is covered above, and simulating ECDSA twice would
/// double the suite's most expensive run for no new claim).
#[test]
fn certified_bounds_dominate_observation() {
    let p = pipeline();
    let obs = FpsObserver::default();
    for app in [StdApp::Hasher, StdApp::Totp, StdApp::Ecdsa] {
        let a = app.pipeline();
        for &opt in &a.opt_levels.clone() {
            let cell = format!("{}/Ibex/{opt}", a.slug);
            let bound = p.bound_stage(&a, Cpu::Ibex, opt).expect(&cell);
            let fps = p
                .fps_stage_bounded(&a, Cpu::Ibex, opt, &obs, 1, &bound)
                .unwrap_or_else(|e| panic!("{cell}: FPS under derived budget failed: {e}"));

            let wcet = stat(&bound.certificate, "wcet_cycles");
            let observed = stat(&fps.certificate, "cycles");
            assert!(
                wcet >= observed,
                "{cell}: certified WCET {wcet} < observed {observed} — unsound cycle bound"
            );

            let depth = stat(&bound.certificate, "stack_depth");
            let top = stat(&bound.certificate, "stack_top");
            let low_water = stat(&fps.certificate, "stack_min_addr");
            assert!(
                top - depth <= low_water,
                "{cell}: certified floor {:#x} above observed low store {low_water:#x} — \
                 unsound stack bound",
                top - depth
            );

            // The budget the cell actually ran under is priced off its
            // own certificate, far below the last-resort constant.
            let derived = FpsConfig::timeout_from_wcet(wcet as u64);
            assert!(observed as u64 <= derived, "{cell}: honest run exceeded derived budget");
            assert!(
                derived < 8_000_000_000,
                "{cell}: derived budget should undercut the last-resort constant"
            );
        }
    }
}
