//! Crash safety of the journaled persistence (fig. 9): power loss at
//! *any* cycle leaves the device with a consistent state — either the
//! old one (crash before the flag flip) or the new one (after) — and
//! the device remains fully functional on reboot.

use parfait::lockstep::Codec;
use parfait::StateMachine;
use parfait_hsms::firmware::hasher_app_source;
use parfait_hsms::hasher::{
    HasherCodec, HasherCommand, HasherSpec, HasherState, COMMAND_SIZE, RESPONSE_SIZE, STATE_SIZE,
};
use parfait_hsms::platform::{make_soc, Cpu};
use parfait_hsms::syssw;

mod common;
use parfait_knox2::WireDriver;
use parfait_littlec::codegen::OptLevel;
use parfait_rtl::Circuit;
use parfait_soc::{host, Soc};

fn active(soc: &Soc) -> Vec<u8> {
    syssw::active_state(&soc.fram_bytes(0, 256), STATE_SIZE)
}

/// Run one Initialize command but cut power after `crash_at` cycles;
/// then reboot and check consistency.
fn crash_during_command(crash_at: u64) {
    let fw = common::hasher_fw();
    let codec = HasherCodec;
    let old_state = codec.encode_state(&HasherState { secret: [0x0D; 32] });
    let new_state = codec.encode_state(&HasherState { secret: [0x4E; 32] });
    let mut soc = make_soc(Cpu::Ibex, fw, &old_state);
    let cmd = codec.encode_command(&HasherCommand::Initialize { secret: [0x4E; 32] });
    host::send_bytes(&mut soc, &cmd, 10_000_000).unwrap();
    // Let the device run for `crash_at` more cycles (it may be anywhere
    // in load/handle/store/write_response), then cut power.
    for _ in 0..crash_at {
        soc.tick();
    }
    soc.power_cycle();
    // Consistency: the active state is EITHER entirely old or entirely
    // new — never a torn mixture.
    let state_after = active(&soc);
    assert!(
        state_after == old_state || state_after == new_state,
        "torn state after crash at cycle {crash_at}: {state_after:02x?}"
    );
    // Liveness: the device still answers commands correctly from
    // whichever state survived.
    let surviving_secret = if state_after == old_state { [0x0D; 32] } else { [0x4E; 32] };
    let wire = WireDriver::new(COMMAND_SIZE, RESPONSE_SIZE);
    let hash_cmd = HasherCommand::Hash { message: [0x33; 32] };
    let resp = wire.run(&mut soc, &codec.encode_command(&hash_cmd)).unwrap();
    let spec = HasherSpec;
    let (_, want) = spec.step(&HasherState { secret: surviving_secret }, &hash_cmd);
    assert_eq!(codec.decode_response(&resp), want, "crash at {crash_at}");
}

#[test]
fn crash_at_sampled_cycles_is_atomic() {
    // Sample crash points across the whole command lifetime, including
    // points inside read_command, handle, store_state, and
    // write_response (a full Initialize takes roughly 20k cycles).
    for crash_at in [
        0, 1, 10, 100, 500, 1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000, 10_000, 12_000,
        15_000, 20_000, 30_000, 50_000,
    ] {
        crash_during_command(crash_at);
    }
}

#[test]
fn crash_exactly_around_commit_point() {
    // Find the commit cycle (flag flip) for this command, then test the
    // cycles immediately surrounding it — the knife's edge of fig. 9.
    let fw = common::hasher_fw();
    let codec = HasherCodec;
    let old_state = codec.encode_state(&HasherState { secret: [0x0D; 32] });
    let mut soc = make_soc(Cpu::Ibex, fw, &old_state);
    let cmd = codec.encode_command(&HasherCommand::Initialize { secret: [0x4E; 32] });
    host::send_bytes(&mut soc, &cmd, 10_000_000).unwrap();
    let flag0 = soc.fram_bytes(0, 4);
    let mut commit_cycle = 0u64;
    for i in 0..10_000_000u64 {
        soc.tick();
        if soc.fram_bytes(0, 4) != flag0 {
            commit_cycle = i;
            break;
        }
    }
    assert!(commit_cycle > 0, "commit observed");
    for delta in -3i64..=3 {
        let crash_at = (commit_cycle as i64 + delta).max(0) as u64;
        crash_during_command(crash_at);
    }
}

#[test]
fn repeated_crashes_never_wedge_the_device() {
    // Crash the same device over and over at varied points; it must
    // keep journaling correctly (flag alternates per completed op).
    let fw = common::hasher_fw();
    let codec = HasherCodec;
    let spec = HasherSpec;
    let mut expected = HasherState { secret: [0x0D; 32] };
    let mut soc = make_soc(Cpu::Ibex, fw, &codec.encode_state(&expected));
    let wire = WireDriver::new(COMMAND_SIZE, RESPONSE_SIZE);
    for round in 0u8..6 {
        // A successful command first.
        let cmd = HasherCommand::Initialize { secret: [round | 0x40; 32] };
        let resp = wire.run(&mut soc, &codec.encode_command(&cmd)).unwrap();
        let (s2, want) = spec.step(&expected, &cmd);
        assert_eq!(codec.decode_response(&resp), want);
        expected = s2;
        // Then a crashed one (cut power mid-way through the next op).
        let doomed = codec.encode_command(&HasherCommand::Initialize { secret: [0xEE; 32] });
        host::send_bytes(&mut soc, &doomed, 10_000_000).unwrap();
        for _ in 0..(500 + round as u64 * 700) {
            soc.tick();
        }
        soc.power_cycle();
        let st = active(&soc);
        // Old or the doomed new value; adopt whichever survived.
        if st != codec.encode_state(&expected) {
            assert_eq!(st, codec.encode_state(&HasherState { secret: [0xEE; 32] }));
            expected = HasherState { secret: [0xEE; 32] };
        }
    }
}

/// Design ablation (DESIGN.md §6): replace the journaled store with a
/// naive in-place store and show that a crash mid-write CAN tear the
/// state — the failure mode the fig. 9 journal exists to prevent.
#[test]
fn naive_persistence_can_tear_state() {
    use parfait_hsms::platform::build_firmware_parts;
    let naive = syssw::naive_syssw_source(STATE_SIZE, COMMAND_SIZE, RESPONSE_SIZE);
    assert!(naive.contains("store_state"), "patch applied");
    let fw = build_firmware_parts(&hasher_app_source(), &naive, OptLevel::O2, |a| a).unwrap();
    let codec = HasherCodec;
    let old_state = codec.encode_state(&HasherState { secret: [0x0D; 32] });
    let new_state = codec.encode_state(&HasherState { secret: [0x4E; 32] });
    let cmd = codec.encode_command(&HasherCommand::Initialize { secret: [0x4E; 32] });
    // Sweep crash points; with the in-place store, some crash cycle must
    // yield a state that is neither fully old nor fully new.
    let mut tore = false;
    for crash_at in (0..8000).step_by(13) {
        let mut soc = make_soc(Cpu::Ibex, fw.clone(), &old_state);
        host::send_bytes(&mut soc, &cmd, 10_000_000).unwrap();
        for _ in 0..crash_at {
            parfait_rtl::Circuit::tick(&mut soc);
        }
        soc.power_cycle();
        let st = active(&soc);
        if st != old_state && st != new_state {
            tore = true;
            break;
        }
    }
    assert!(tore, "the naive store must be crash-unsafe (that is the point of the journal)");
}

/// Bounded-exhaustive coverage: instead of sampling crash cycles, cut
/// power after *every byte* the journaled store writes. One probe run
/// records each cycle at which FRAM changed during an Initialize — the
/// byte-level offsets of the journal's write sequence — then a forked
/// SoC crashes at each offset (and one cycle before it, the mid-write
/// edge). Recovery must always yield the entirely-old or entirely-new
/// state, never a torn mixture, and the device must stay functional.
#[test]
fn crash_after_every_journal_write_is_atomic() {
    let codec = HasherCodec;
    let old_state = codec.encode_state(&HasherState { secret: [0x0D; 32] });
    let new_state = codec.encode_state(&HasherState { secret: [0x4E; 32] });
    let mut soc = make_soc(Cpu::Ibex, common::hasher_fw(), &old_state);
    let cmd = codec.encode_command(&HasherCommand::Initialize { secret: [0x4E; 32] });
    host::send_bytes(&mut soc, &cmd, 10_000_000).unwrap();
    let base = soc; // command delivered, handler not yet run
                    // Probe pass: find every FRAM-mutation cycle until the device is
                    // quiescent again (well past the final flag flip).
    let mut probe = base.clone();
    let mut fram = probe.fram_bytes(0, 256);
    let mut cut_points: Vec<u64> = Vec::new();
    for cycle in 1..=200_000u64 {
        probe.tick();
        let now = probe.fram_bytes(0, 256);
        if now != fram {
            cut_points.push(cycle);
            fram = now;
        }
    }
    // Exhaustiveness: the journal writes the 32-byte state into the
    // inactive slot plus the commit flag, so the sweep must have seen
    // at least one write per state byte.
    assert!(cut_points.len() > 32, "observed only {} journal writes", cut_points.len());
    assert_eq!(active(&probe), new_state, "probe run must commit the new state");
    for &at in &cut_points {
        // `at` is the edge where a write just landed; `at - 1` is the
        // cycle mid-flight before it. Both must recover atomically.
        for crash_at in [at - 1, at] {
            let mut soc = base.clone();
            for _ in 0..crash_at {
                soc.tick();
            }
            soc.power_cycle();
            let st = active(&soc);
            assert!(
                st == old_state || st == new_state,
                "torn state after power cut at cycle {crash_at}: {st:02x?}"
            );
            // Liveness: the recovered device still answers correctly.
            let secret = if st == old_state { [0x0D; 32] } else { [0x4E; 32] };
            let wire = WireDriver::new(COMMAND_SIZE, RESPONSE_SIZE);
            let hash = HasherCommand::Hash { message: [0x77; 32] };
            let resp = wire.run(&mut soc, &codec.encode_command(&hash)).unwrap();
            let (_, want) = HasherSpec.step(&HasherState { secret }, &hash);
            assert_eq!(codec.decode_response(&resp), want, "crash at {crash_at}");
        }
    }
}
