//! Instantiating the generic forward-simulation obligation of the IPR
//! theory (`parfait::fps`) on the real HSM stack: the hasher spec
//! forward-simulates into the compiled assembly machine through the
//! lockstep-derived driver, with the codec's `encode_state` as the
//! refinement relation.

use parfait::fps::check_forward_simulation;
use parfait::lockstep::{Codec, LockstepDriver};
use parfait::StateMachine;
use parfait_hsms::firmware::hasher_app_source;
use parfait_hsms::hasher::{HasherCodec, HasherCommand, HasherSpec, HasherState};
use parfait_hsms::hasher::{COMMAND_SIZE, RESPONSE_SIZE, STATE_SIZE};
use parfait_littlec::codegen::OptLevel;
use parfait_littlec::validate::asm_machine;
use parfait_starling::machines::AsmMachine;

#[test]
fn hasher_spec_forward_simulates_into_asm() {
    let program = parfait_littlec::frontend(&hasher_app_source()).unwrap();
    let asm = asm_machine(&program, OptLevel::O2, STATE_SIZE, COMMAND_SIZE, RESPONSE_SIZE).unwrap();
    let asmm = AsmMachine::new(asm);
    let codec = HasherCodec;
    let spec = HasherSpec;
    let related = |ss: &HasherState, si: &Vec<u8>| -> bool { &codec.encode_state(ss) == si };
    let states: Vec<(HasherState, Vec<u8>)> =
        [HasherSpec.init(), HasherState { secret: [0x42; 32] }, HasherState { secret: [0xFF; 32] }]
            .into_iter()
            .map(|s| {
                let enc = codec.encode_state(&s);
                (s, enc)
            })
            .collect();
    let commands = vec![
        HasherCommand::Initialize { secret: [7; 32] },
        HasherCommand::Hash { message: [9; 32] },
    ];
    check_forward_simulation(&spec, &asmm, &LockstepDriver(&codec), &related, &states, &commands)
        .unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn forward_simulation_catches_wrong_relation() {
    let program = parfait_littlec::frontend(&hasher_app_source()).unwrap();
    let asm = asm_machine(&program, OptLevel::O2, STATE_SIZE, COMMAND_SIZE, RESPONSE_SIZE).unwrap();
    let asmm = AsmMachine::new(asm);
    let codec = HasherCodec;
    // A bogus relation that accepts the initial pair but is violated
    // after an Initialize (it pins the implementation state to zeros).
    let related = |_ss: &HasherState, si: &Vec<u8>| -> bool { si.iter().all(|&b| b == 0) };
    let states = vec![(HasherSpec.init(), codec.encode_state(&HasherSpec.init()))];
    let err = check_forward_simulation(
        &HasherSpec,
        &asmm,
        &LockstepDriver(&codec),
        &related,
        &states,
        &[HasherCommand::Initialize { secret: [7; 32] }],
    );
    assert!(err.is_err());
}
