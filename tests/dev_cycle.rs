//! The §8.1 development-cycle tricks, as executable workflows.

use parfait::lockstep::Codec;
use parfait::StateMachine;
use parfait_hsms::firmware::hasher_app_source;
use parfait_hsms::hasher::{
    HasherCodec, HasherCommand, HasherSpec, HasherState, COMMAND_SIZE, RESPONSE_SIZE, STATE_SIZE,
};
use parfait_hsms::platform::{build_firmware, make_soc, AppSizes, Cpu};
use parfait_hsms::syssw;
use parfait_knox2::{check_fps, CircuitEmulator, FpsConfig, HostOp};
use parfait_littlec::codegen::OptLevel;
use parfait_littlec::validate::asm_machine;
use parfait_riscv::model::AsmStateMachine;
use parfait_soc::Soc;

mod common;

fn sizes() -> AppSizes {
    AppSizes { state: STATE_SIZE, command: COMMAND_SIZE, response: RESPONSE_SIZE }
}

fn cfg() -> FpsConfig {
    FpsConfig {
        command_size: COMMAND_SIZE,
        response_size: RESPONSE_SIZE,
        timeout: 50_000_000,
        state_size: STATE_SIZE,
    }
}

fn fps_cycles(fw: parfait_soc::Firmware, spec: &AsmStateMachine) -> u64 {
    let codec = HasherCodec;
    let secret = codec.encode_state(&HasherState { secret: [0x3D; 32] });
    let mut real = make_soc(Cpu::Ibex, fw.clone(), &secret);
    let dummy_soc = make_soc(Cpu::Ibex, fw, &codec.encode_state(&HasherSpec.init()));
    let mut emu = CircuitEmulator::new(dummy_soc, spec, secret, COMMAND_SIZE);
    let project = |soc: &Soc| syssw::active_state(&soc.fram_bytes(0, 256), STATE_SIZE);
    let script =
        vec![HostOp::Command(codec.encode_command(&HasherCommand::Hash { message: [1; 32] }))];
    check_fps(&mut real, &mut emu, &cfg(), &project, &script)
        .unwrap_or_else(|e| panic!("{e}"))
        .cycles
}

/// "One trick we use to identify failures faster is reducing loop
/// bounds ... timing leakage is usually not affected by reducing loop
/// bounds in this way, so we can catch issues faster. We revert to the
/// original code for the final verification."
///
/// Reduce BLAKE2s from 10 rounds to 2 (no longer computing the real
/// hash!) and verify the hardware against the *same reduced code* as
/// the spec: the run is leakage-clean and substantially cheaper than
/// the full-bound verification.
#[test]
fn loop_bound_reduction_speeds_up_verification() {
    let full = hasher_app_source();
    let reduced =
        full.replace("for (u32 r = 0; r < 10; r = r + 1) {", "for (u32 r = 0; r < 2; r = r + 1) {");
    assert_ne!(reduced, full, "loop bound injection must apply");
    let build = |src: &str| {
        let fw = build_firmware(src, sizes(), OptLevel::O2).unwrap();
        let program = parfait_littlec::frontend(src).unwrap();
        let spec =
            asm_machine(&program, OptLevel::O2, STATE_SIZE, COMMAND_SIZE, RESPONSE_SIZE).unwrap();
        (fw, spec)
    };
    let cycles_full = fps_cycles(common::hasher_fw(), &common::hasher_asm_spec());
    let (fw_reduced, spec_reduced) = build(&reduced);
    let cycles_reduced = fps_cycles(fw_reduced, &spec_reduced);
    assert!(
        cycles_reduced < cycles_full * 3 / 4,
        "reduced bounds should verify substantially faster: {cycles_reduced} vs {cycles_full}"
    );
}

/// And the §8.1 debugging flow: when verification fails, the error
/// carries the PC so the developer can find the offending code in the
/// assembly listing.
#[test]
fn divergence_reports_a_program_counter_inside_handle() {
    let buggy = hasher_app_source().replace(
        "u8 digest[32];",
        "if (state[3] > 100) { u32 w = 0; for (u32 i = 0; i < 40; i = i + 1) { w = w + i; } resp[2] = (u8)(w & 0); }\n        u8 digest[32];",
    );
    assert_ne!(buggy, hasher_app_source());
    let fw = build_firmware(&buggy, sizes(), OptLevel::O2).unwrap();
    let handle_addr = fw.address_of("handle").unwrap();
    let program = parfait_littlec::frontend(&buggy).unwrap();
    let spec =
        asm_machine(&program, OptLevel::O2, STATE_SIZE, COMMAND_SIZE, RESPONSE_SIZE).unwrap();
    let codec = HasherCodec;
    let secret = codec.encode_state(&HasherState { secret: [0xC8; 32] }); // >100: slow path
    let mut real = make_soc(Cpu::Ibex, fw.clone(), &secret);
    let dummy_soc = make_soc(Cpu::Ibex, fw, &codec.encode_state(&HasherSpec.init()));
    let mut emu = CircuitEmulator::new(dummy_soc, &spec, secret, COMMAND_SIZE);
    let project = |soc: &Soc| syssw::active_state(&soc.fram_bytes(0, 256), STATE_SIZE);
    let script =
        vec![HostOp::Command(codec.encode_command(&HasherCommand::Hash { message: [1; 32] }))];
    let err = check_fps(&mut real, &mut emu, &cfg(), &project, &script).unwrap_err();
    match err {
        parfait_knox2::FpsError::TraceDivergence { real_pc, ideal_pc, .. } => {
            // Both PCs are valid ROM addresses the developer can look up;
            // the firmware is small, so they land in or near handle's
            // vicinity (past the boot shim).
            assert!(real_pc >= handle_addr / 4, "pc {real_pc:#x} is inside the firmware");
            assert_ne!((real_pc, ideal_pc), (0, 0));
        }
        other => panic!("expected trace divergence, got {other}"),
    }
}
