//! End-to-end observability of the proof pipeline: `check_fps_traced`
//! against the real password-hasher SoC must emit heartbeats at the
//! configured cycle interval, attach a partial report to failures, and
//! dump a dual-scope VCD on wire divergence when asked.

use parfait::lockstep::Codec;
use parfait::StateMachine;
use parfait_hsms::firmware::hasher_app_source;
use parfait_hsms::hasher::{
    HasherCodec, HasherCommand, HasherSpec, HasherState, COMMAND_SIZE, RESPONSE_SIZE, STATE_SIZE,
};
use parfait_hsms::platform::{build_firmware, make_soc, AppSizes, Cpu};
use parfait_hsms::syssw;
use parfait_knox2::{check_fps_traced, CircuitEmulator, FpsConfig, FpsError, FpsObserver, HostOp};
use parfait_littlec::codegen::OptLevel;
use parfait_soc::{Firmware, Soc};
use parfait_telemetry::json;
use parfait_telemetry::sinks::{Fanout, JsonlSink, LogSink, SharedBuf};
use parfait_telemetry::Telemetry;

mod common;

fn build(opt: OptLevel) -> (Firmware, parfait_riscv::model::AsmStateMachine) {
    // The common -O2 image and spec come from the per-binary cache; the
    // -O0 divergence scenario still compiles its own image.
    if opt == OptLevel::O2 {
        return (common::hasher_fw(), common::hasher_asm_spec());
    }
    let sizes = AppSizes { state: STATE_SIZE, command: COMMAND_SIZE, response: RESPONSE_SIZE };
    let fw = build_firmware(&hasher_app_source(), sizes, opt).unwrap();
    (fw, common::hasher_asm_spec())
}

fn cfg(timeout: u64) -> FpsConfig {
    FpsConfig {
        command_size: COMMAND_SIZE,
        response_size: RESPONSE_SIZE,
        timeout,
        state_size: STATE_SIZE,
    }
}

fn project(soc: &Soc) -> Vec<u8> {
    syssw::active_state(&soc.fram_bytes(0, 256), STATE_SIZE)
}

fn hash_script() -> Vec<HostOp> {
    let cmd = HasherCodec.encode_command(&HasherCommand::Hash { message: [0x11; 32] });
    vec![HostOp::Command(cmd)]
}

#[test]
fn heartbeats_fire_at_the_configured_interval() {
    const INTERVAL: u64 = 10_000;
    let (fw, spec) = build(OptLevel::O2);
    let secret_state = HasherCodec.encode_state(&HasherState { secret: [0x42; 32] });
    let mut real = make_soc(Cpu::Ibex, fw.clone(), &secret_state);
    let dummy_soc = make_soc(Cpu::Ibex, fw, &HasherCodec.encode_state(&HasherSpec.init()));
    let mut emu = CircuitEmulator::new(dummy_soc, &spec, secret_state, COMMAND_SIZE);

    let jsonl = SharedBuf::new();
    let log = SharedBuf::new();
    let tel = Telemetry::new(Box::new(Fanout::new(vec![
        Box::new(JsonlSink::new(jsonl.writer())),
        Box::new(LogSink::new(log.writer())),
    ])));
    let obs = FpsObserver { telemetry: tel.clone(), heartbeat_cycles: INTERVAL, cell: 0 };
    let report =
        check_fps_traced(&mut real, &mut emu, &cfg(20_000_000), &project, &hash_script(), &obs)
            .expect("the hasher verifies");
    tel.finish();

    // The JSONL stream carries one fps.heartbeat progress event per
    // full INTERVAL of simulated cycles, stamped with the cycle count.
    let text = jsonl.take_string();
    let heartbeat_cycles: Vec<u64> = text
        .lines()
        .map(|line| json::parse(line).expect("each JSONL line parses"))
        .filter(|e| {
            e.get("ev").and_then(|v| v.as_str()) == Some("progress")
                && e.get("name").and_then(|v| v.as_str()) == Some("fps.heartbeat")
        })
        .map(|e| e.get("fields").unwrap().get("cycles").unwrap().as_f64().unwrap() as u64)
        .collect();
    assert!(!heartbeat_cycles.is_empty(), "a {}-cycle run must heartbeat", report.cycles);
    assert_eq!(
        heartbeat_cycles.len() as u64,
        report.cycles / INTERVAL,
        "one heartbeat per {INTERVAL} cycles over {} cycles",
        report.cycles
    );
    for (i, c) in heartbeat_cycles.iter().enumerate() {
        assert_eq!(*c, (i as u64 + 1) * INTERVAL, "heartbeats land on the interval grid");
    }
    // Rate and progress context ride along on every heartbeat.
    let first = text
        .lines()
        .map(|l| json::parse(l).unwrap())
        .find(|e| e.get("name").and_then(|v| v.as_str()) == Some("fps.heartbeat"))
        .unwrap();
    let fields = first.get("fields").unwrap();
    assert!(fields.get("cycles_per_s").unwrap().as_f64().unwrap() > 0.0);
    assert!(fields.get("real_pc").is_some() && fields.get("ideal_pc").is_some());

    // The human-readable log shows the same heartbeat with a rate.
    let log_text = log.take_string();
    let hb_line = log_text
        .lines()
        .find(|l| l.contains("* fps.heartbeat"))
        .expect("log sink prints heartbeats");
    assert!(hb_line.contains("cycles_per_s="), "{hb_line}");
    // FIFO high-water gauges were recorded at the end of the run.
    assert!(log_text.contains("~ soc.real.rx_fifo_hwm"), "{log_text}");
}

#[test]
fn timeout_failure_carries_partial_report() {
    let (fw, spec) = build(OptLevel::O2);
    let secret_state = HasherCodec.encode_state(&HasherState { secret: [0x42; 32] });
    let mut real = make_soc(Cpu::Ibex, fw.clone(), &secret_state);
    let dummy_soc = make_soc(Cpu::Ibex, fw, &HasherCodec.encode_state(&HasherSpec.init()));
    let mut emu = CircuitEmulator::new(dummy_soc, &spec, secret_state, COMMAND_SIZE);

    let jsonl = SharedBuf::new();
    let tel = Telemetry::new(Box::new(JsonlSink::new(jsonl.writer())));
    let obs = FpsObserver { telemetry: tel.clone(), heartbeat_cycles: 0, cell: 0 };
    // A Hash command needs far more than 100 cycles of compute, so the
    // host's per-byte handshake budget is guaranteed to run out.
    let failure = check_fps_traced(&mut real, &mut emu, &cfg(100), &project, &hash_script(), &obs)
        .expect_err("a 100-cycle timeout cannot complete a hash");
    tel.finish();

    assert!(matches!(failure.error, FpsError::Timeout { .. }), "{}", failure.error);
    // The partial report still says how far the run got (the satellite
    // fix: previously cycles/wall were only filled in on success).
    assert!(failure.partial.cycles > 0, "cycles survive the failure");
    assert_eq!(failure.partial.commands, 1);
    assert!(failure.partial.wall.as_nanos() > 0);
    // The Display form surfaces the context too.
    assert!(format!("{failure}").contains("cycles"), "{failure}");
    // And the timeout was counted.
    let text = jsonl.take_string();
    assert!(
        text.lines().map(|l| json::parse(l).unwrap()).any(|e| {
            e.get("ev").and_then(|v| v.as_str()) == Some("count")
                && e.get("name").and_then(|v| v.as_str()) == Some("fps.timeouts")
        }),
        "fps.timeouts counter emitted"
    );
}

#[test]
fn divergence_dumps_dual_scope_vcd() {
    // Real world at -O0, ideal world at -O2: the timing difference is a
    // wire-level divergence the checker must catch — and, with
    // PARFAIT_VCD_DIR set, dump as a dual-scope waveform.
    let dir = std::env::temp_dir().join(format!("parfait-vcd-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::env::set_var("PARFAIT_VCD_DIR", &dir);

    let (fw_real, spec) = build(OptLevel::O0);
    let (fw_ideal, _) = build(OptLevel::O2);
    let secret_state = HasherCodec.encode_state(&HasherState { secret: [0x42; 32] });
    let mut real = make_soc(Cpu::Ibex, fw_real, &secret_state);
    let dummy_soc = make_soc(Cpu::Ibex, fw_ideal, &HasherCodec.encode_state(&HasherSpec.init()));
    let mut emu = CircuitEmulator::new(dummy_soc, &spec, secret_state, COMMAND_SIZE);

    let failure = check_fps_traced(
        &mut real,
        &mut emu,
        &cfg(20_000_000),
        &project,
        &hash_script(),
        &FpsObserver::default(),
    )
    .expect_err("-O0 vs -O2 must diverge at the wire level");
    std::env::remove_var("PARFAIT_VCD_DIR");
    let FpsError::TraceDivergence { cycle, .. } = failure.error else {
        panic!("expected TraceDivergence, got {}", failure.error);
    };

    let vcd_path = dir.join(format!("fps-divergence-cycle{cycle}.vcd"));
    let vcd = std::fs::read_to_string(&vcd_path).expect("divergence VCD written");
    assert!(vcd.contains("$scope module real $end"));
    assert!(vcd.contains("$scope module ideal $end"));
    assert!(vcd.contains("$var wire 8 d tx_data"));
    assert!(vcd.contains("$var wire 8 D tx_data"));
    let _ = std::fs::remove_dir_all(&dir);
}
