//! Randomized FPS fuzzing: arbitrary adversarial host scripts against
//! the password hasher must never distinguish the real device from the
//! emulator (and must never fault, leak, or wedge either circuit).

use proptest::prelude::*;

use parfait::lockstep::Codec;
use parfait::StateMachine;
use parfait_hsms::hasher::{
    HasherCodec, HasherSpec, HasherState, COMMAND_SIZE, RESPONSE_SIZE, STATE_SIZE,
};
use parfait_hsms::platform::{make_soc, Cpu};
use parfait_hsms::syssw;
use parfait_knox2::{check_fps, CircuitEmulator, FpsConfig, HostOp};
use parfait_soc::{Firmware, Soc};

mod common;

fn build() -> (Firmware, parfait_riscv::model::AsmStateMachine) {
    (common::hasher_fw(), common::hasher_asm_spec())
}

fn arb_op() -> impl Strategy<Value = HostOp> {
    prop_oneof![
        // A full-size command with an arbitrary tag and payload.
        prop::collection::vec(any::<u8>(), COMMAND_SIZE).prop_map(HostOp::Command),
        // Partial garbage (framing attacks).
        prop::collection::vec(any::<u8>(), 1..COMMAND_SIZE).prop_map(HostOp::Garbage),
        // Idle gaps.
        (1u64..400).prop_map(HostOp::Idle),
    ]
}

proptest! {
    // Each case simulates up to a few hundred thousand SoC cycles twice,
    // so keep the count modest; the diversity is in the scripts.
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    #[test]
    fn random_scripts_cannot_distinguish_worlds(
        ops in prop::collection::vec(arb_op(), 1..6),
        secret: [u8; 32],
    ) {
        let (fw, spec) = build();
        let codec = HasherCodec;
        let secret_state = codec.encode_state(&HasherState { secret });
        let mut real = make_soc(Cpu::Ibex, fw.clone(), &secret_state);
        let dummy_soc =
            make_soc(Cpu::Ibex, fw, &codec.encode_state(&HasherSpec.init()));
        let mut emu = CircuitEmulator::new(dummy_soc, &spec, secret_state, COMMAND_SIZE);
        let cfg = FpsConfig {
            command_size: COMMAND_SIZE,
            response_size: RESPONSE_SIZE,
            timeout: 20_000_000,
            state_size: STATE_SIZE,
        };
        let project =
            |soc: &Soc| syssw::active_state(&soc.fram_bytes(0, 256), STATE_SIZE);
        // Close any dangling partial command so the script ends
        // quiescent (a trailing partial command is fine for equivalence
        // but leaves nothing to check).
        check_fps(&mut real, &mut emu, &cfg, &project, &ops)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
    }
}
