//! Protocol-robustness corpus for the `parfait-serve` session loop
//! (ISSUE 10): every malformed line — truncated frame, unknown op,
//! invalid tenant, oversized line, wrong types — is answered with a
//! structured error frame (correlatable by `id` whenever one can be
//! recovered), the session always continues, and the daemon never
//! panics or silently drops a line. A client that vanishes mid-batch
//! leaves the cache directory consistent: no temp droppings, every
//! stored certificate parses, and a retry completes warm.

mod common;

use std::io::{Cursor, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parfait_pipeline::serve::protocol::MAX_LINE_BYTES;
use parfait_pipeline::serve::server::{handle_session, SessionEnd};
use parfait_pipeline::{CertCache, ServeCore, StageCertificate};
use parfait_telemetry::json::{parse, Json};
use parfait_telemetry::metrics::Metrics;
use parfait_telemetry::Telemetry;

fn private_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("parfait-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn token_core(dir: &Path) -> ServeCore {
    let cache = CertCache::at_with(dir.to_path_buf(), Metrics::new());
    let apps = vec![Arc::new(common::token_app_pipeline("token-a", common::TOKEN_LC.to_string()))];
    ServeCore::with_apps(cache, Telemetry::disabled(), 2, apps)
}

fn frames_of(out: Vec<u8>) -> Vec<Json> {
    String::from_utf8(out)
        .expect("frames are utf-8")
        .lines()
        .map(|l| parse(l).expect("every output line is a JSON frame"))
        .collect()
}

fn frame_kind(f: &Json) -> &str {
    f.get("frame").and_then(Json::as_str).unwrap_or("?")
}

/// The seeded malformed corpus: one session, every bad shape in
/// sequence, each answered with an error frame, and a healthy request
/// at the end proving the session survived them all.
#[test]
fn malformed_corpus_gets_structured_errors_and_the_session_survives() {
    let dir = private_dir("serve-proto-corpus");
    let core = token_core(&dir);

    let oversized =
        format!(r#"{{"op":"verify","id":"huge","pad":"{}"}}"#, "x".repeat(MAX_LINE_BYTES));
    let corpus: Vec<String> = vec![
        // Truncated frame (unterminated JSON): id unrecoverable.
        r#"{"op":"verify","id":"t1","tenant":"alpha""#.into(),
        // Unknown op: id recovered.
        r#"{"op":"warp","id":"t2"}"#.into(),
        // Bad tenant characters (path traversal shape).
        r#"{"op":"verify","id":"t3","tenant":"../../etc","app":"token-a","cpu":"ibex","opt":"-O2"}"#.into(),
        // Wrong field type.
        r#"{"op":"verify","id":"t4","tenant":"alpha","app":7,"cpu":"ibex","opt":"-O2"}"#.into(),
        // Unknown cpu / opt.
        r#"{"op":"verify","id":"t5","tenant":"alpha","app":"token-a","cpu":"z80","opt":"-O2"}"#.into(),
        r#"{"op":"verify","id":"t6","tenant":"alpha","app":"token-a","cpu":"ibex","opt":"-O9"}"#.into(),
        // Not an object at all.
        r#"[1,2,3]"#.into(),
        // Oversized line: discarded without buffering, id irrecoverable.
        oversized,
        // Unknown app: parses fine, rejected at execution time.
        r#"{"op":"verify","id":"t8","tenant":"alpha","app":"ghost","cpu":"ibex","opt":"-O2"}"#.into(),
        // The survivor probe.
        r#"{"op":"ping"}"#.into(),
        r#"{"op":"flush"}"#.into(),
    ];
    let session = corpus.join("\n") + "\n";
    let mut out = Vec::new();
    let end = handle_session(&core, Cursor::new(session.into_bytes()), &mut out)
        .expect("malformed input must never kill the transport");
    assert_eq!(end, SessionEnd::Eof);

    let frames = frames_of(out);
    // No line silently dropped: 9 errors (8 parse-time + 1 unknown-app
    // at flush), 1 status (the queued unknown-app request), 1 pong.
    let errors: Vec<&Json> = frames.iter().filter(|f| frame_kind(f) == "error").collect();
    assert_eq!(errors.len(), 9, "one error frame per bad line: {frames:?}");
    assert_eq!(frames.iter().filter(|f| frame_kind(f) == "pong").count(), 1);
    assert!(frames.iter().all(|f| frame_kind(f) != "result"), "nothing verifiable was queued");

    let error_text = |id: &str| -> String {
        errors
            .iter()
            .find(|f| f.get("id").and_then(Json::as_str) == Some(id))
            .unwrap_or_else(|| panic!("no error frame for {id}: {errors:?}"))
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .to_string()
    };
    assert!(error_text("t2").contains("unknown op"));
    assert!(error_text("t3").contains("invalid tenant"));
    assert!(error_text("t4").contains("must be a string"));
    assert!(error_text("t5").contains("unknown cpu"));
    assert!(error_text("t6").contains("unknown opt"));
    assert!(error_text("t8").contains("unknown app"));
    // The unrecoverable ones carry id null, with a reason each.
    let anonymous: Vec<String> = errors
        .iter()
        .filter(|f| matches!(f.get("id"), Some(Json::Null)))
        .map(|f| f.get("error").and_then(Json::as_str).unwrap().to_string())
        .collect();
    assert_eq!(anonymous.len(), 3, "truncated JSON, non-object, oversized: {anonymous:?}");
    assert!(anonymous.iter().any(|e| e.contains("malformed JSON")));
    assert!(anonymous.iter().any(|e| e.contains(&format!("exceeds {MAX_LINE_BYTES} bytes"))));

    // Nothing was written into the cache by a rejected request.
    assert!(
        !dir.join("alpha").exists() || cert_files(&dir.join("alpha")).is_empty(),
        "rejected requests must not create cache entries"
    );
    std::fs::remove_dir_all(&dir).ok();
}

fn cert_files(dir: &Path) -> Vec<PathBuf> {
    match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.to_string_lossy().ends_with(".cert.json"))
            .collect(),
        Err(_) => Vec::new(),
    }
}

/// A writer that accepts exactly one frame (the queued-status line)
/// and then fails with `BrokenPipe` — the client vanished while the
/// daemon was answering its results.
struct VanishingClient {
    lines: usize,
}

impl Write for VanishingClient {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.lines >= 1 {
            return Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "client gone"));
        }
        self.lines += buf.iter().filter(|&&b| b == b'\n').count();
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Mid-batch disconnect: the client queues work and disappears while
/// results are being written. The session reports the transport error,
/// but the cache directory stays consistent — certificates all parse,
/// no temp files linger — and a retry over the same cache completes
/// fully warm.
#[test]
fn mid_batch_disconnect_leaves_the_cache_consistent() {
    let dir = private_dir("serve-proto-disconnect");
    let core = token_core(&dir);
    let session = concat!(
        r#"{"op":"verify","id":"d1","tenant":"alpha","app":"token-a","cpu":"ibex","opt":"-O2"}"#,
        "\n",
        r#"{"op":"flush"}"#,
        "\n"
    );
    let err = handle_session(
        &core,
        Cursor::new(session.as_bytes().to_vec()),
        VanishingClient { lines: 0 },
    )
    .expect_err("the vanished client surfaces as a transport error");
    assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);

    // Consistency: the stage work that ran was durably and atomically
    // stored — every file parses as a certificate, and the temp+rename
    // discipline left no `.tmp.` droppings.
    let tenant_dir = dir.join("alpha");
    let stored = cert_files(&tenant_dir);
    assert!(!stored.is_empty(), "the batch ran before the write failed");
    for path in &stored {
        let text = std::fs::read_to_string(path).expect("readable certificate");
        let doc = parse(&text)
            .unwrap_or_else(|e| panic!("{} is not JSON after disconnect: {e}", path.display()));
        StageCertificate::from_json(&doc)
            .unwrap_or_else(|| panic!("{} is corrupt after disconnect", path.display()));
    }
    let droppings: Vec<String> = std::fs::read_dir(&tenant_dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(".tmp"))
        .collect();
    assert!(droppings.is_empty(), "temp files left behind: {droppings:?}");

    // The retry completes — and fully warm, since the disconnected
    // batch's work was not lost.
    let mut out = Vec::new();
    let end = handle_session(&core, Cursor::new(session.as_bytes().to_vec()), &mut out)
        .expect("retry succeeds");
    assert_eq!(end, SessionEnd::Eof);
    let frames = frames_of(out);
    let result =
        frames.iter().find(|f| frame_kind(f) == "result").expect("retry produced a result frame");
    assert_eq!(result.get("cached"), Some(&Json::Bool(true)), "retry must be fully cached");

    std::fs::remove_dir_all(&dir).ok();
}

/// EOF with queued requests is an implicit flush: the batch drains and
/// every result is written before the session ends.
#[test]
fn eof_is_an_implicit_flush() {
    let dir = private_dir("serve-proto-eof");
    let core = token_core(&dir);
    let session = concat!(
        r#"{"op":"verify","id":"e1","tenant":"alpha","app":"token-a","cpu":"ibex","opt":"-O2"}"#,
        "\n"
    );
    let mut out = Vec::new();
    let end = handle_session(&core, Cursor::new(session.as_bytes().to_vec()), &mut out)
        .expect("session completes");
    assert_eq!(end, SessionEnd::Eof);
    let frames = frames_of(out);
    assert_eq!(
        frames.iter().filter(|f| frame_kind(f) == "result").count(),
        1,
        "EOF drained the queued request: {frames:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
