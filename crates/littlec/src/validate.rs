//! Translation validation across the littlec compilation pipeline.
//!
//! The paper relates the Low\*, C, and Asm levels by *IPR by equivalence*,
//! justified by the correctness theorems of KaRaMeL and CompCert (§4.2).
//! littlec has no mechanized compiler proof, so — per the paper's own
//! fallback for unverified steps — we use **translation validation**
//! (§9): for a *particular* program, check that the whole-command state
//! machines at all three levels are observationally equivalent by
//! differential execution on concrete inputs.
//!
//! [`validate_handle`] drives the three levels' `step` functions on the
//! same `(state, command)` pairs and demands identical `(state',
//! response)` results; [`validate_function`] does the same for a scalar
//! function. A mismatch is reported with the diverging level and values,
//! like a failed Knox2 equivalence check.

use parfait_riscv::asm::assemble;
use parfait_riscv::model::AsmStateMachine;

use crate::ast::Program;
use crate::codegen::{compile, OptLevel};
use crate::interp::Interp;
use crate::ir::lower;
use crate::ireval::IrEval;
use crate::LcError;

/// A divergence found by translation validation.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Which pair of levels disagreed, e.g. `"interp vs ir"`.
    pub levels: String,
    /// Human-readable description of the differing observation.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "translation validation failed ({}): {}", self.levels, self.detail)
    }
}

impl std::error::Error for Divergence {}

/// Errors from the validation driver itself (not divergences).
#[derive(Debug)]
pub enum ValidateError {
    /// A front-end or backend phase failed.
    Lc(LcError),
    /// One of the levels failed to execute.
    Exec(String),
    /// The levels disagree.
    Diverged(Divergence),
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidateError::Lc(e) => write!(f, "{e}"),
            ValidateError::Exec(e) => write!(f, "execution error: {e}"),
            ValidateError::Diverged(d) => write!(f, "{d}"),
        }
    }
}

impl std::error::Error for ValidateError {}

impl From<LcError> for ValidateError {
    fn from(e: LcError) -> Self {
        ValidateError::Lc(e)
    }
}

/// Build the assembly-level whole-command state machine for a program's
/// `handle` function at the given optimization level.
pub fn asm_machine(
    program: &Program,
    opt: OptLevel,
    state_size: usize,
    command_size: usize,
    response_size: usize,
) -> Result<AsmStateMachine, ValidateError> {
    asm_machine_patched(program, opt, state_size, command_size, response_size, |a| a)
}

/// [`asm_machine`] with a hook applied to the compiled assembly text
/// before it is assembled. Production callers pass the identity; the
/// `parfait-adversary` mutation harness (DESIGN.md §12) injects
/// "miscompilations" here to prove the validator rejects them.
pub fn asm_machine_patched(
    program: &Program,
    opt: OptLevel,
    state_size: usize,
    command_size: usize,
    response_size: usize,
    patch_asm: impl FnOnce(String) -> String,
) -> Result<AsmStateMachine, ValidateError> {
    let asm = patch_asm(compile(program, opt)?);
    let prog = assemble(&asm)
        .map_err(|e| ValidateError::Exec(format!("generated assembly does not assemble: {e}")))?;
    AsmStateMachine::new(prog, state_size, command_size, response_size)
        .ok_or_else(|| ValidateError::Exec("program has no `handle` function".into()))
}

/// Validate `handle` across all three levels on the given test cases.
///
/// Each case is a `(state, command)` pair; all levels must produce
/// identical `(state', response)` observations.
pub fn validate_handle(
    program: &Program,
    opt: OptLevel,
    response_size: usize,
    cases: &[(Vec<u8>, Vec<u8>)],
) -> Result<(), ValidateError> {
    validate_handle_patched(program, opt, response_size, cases, |a| a)
}

/// [`validate_handle`] with a hook applied to the compiled assembly
/// before the asm-level machine is built (identity in production; the
/// mutation harness seeds codegen bugs through it).
pub fn validate_handle_patched(
    program: &Program,
    opt: OptLevel,
    response_size: usize,
    cases: &[(Vec<u8>, Vec<u8>)],
    patch_asm: impl FnOnce(String) -> String,
) -> Result<(), ValidateError> {
    let interp = Interp::new(program);
    let ir = lower(program)?;
    let ireval = IrEval::new(&ir);
    let first = cases.first().expect("at least one validation case");
    let asm =
        asm_machine_patched(program, opt, first.0.len(), first.1.len(), response_size, patch_asm)?;
    for (state, command) in cases {
        let a = interp
            .step(state, command, response_size)
            .map_err(|e| ValidateError::Exec(format!("interp: {e}")))?;
        let b = ireval
            .step(state, command, response_size)
            .map_err(|e| ValidateError::Exec(format!("ireval: {e}")))?;
        if a != b {
            return Err(ValidateError::Diverged(Divergence {
                levels: "interp (Low*) vs ireval (C)".into(),
                detail: format!(
                    "state={state:02x?} cmd={command:02x?}: {:02x?}/{:02x?} vs {:02x?}/{:02x?}",
                    a.0, a.1, b.0, b.1
                ),
            }));
        }
        let c = asm.step(state, command).map_err(|e| ValidateError::Exec(format!("asm: {e}")))?;
        if a != c {
            return Err(ValidateError::Diverged(Divergence {
                levels: "ireval (C) vs asm".into(),
                detail: format!(
                    "state={state:02x?} cmd={command:02x?}: {:02x?}/{:02x?} vs {:02x?}/{:02x?}",
                    a.0, a.1, c.0, c.1
                ),
            }));
        }
    }
    Ok(())
}

/// Validate a scalar function across all three levels on argument tuples.
pub fn validate_function(
    program: &Program,
    opt: OptLevel,
    name: &str,
    cases: &[Vec<u32>],
) -> Result<(), ValidateError> {
    let interp = Interp::new(program);
    let ir = lower(program)?;
    let ireval = IrEval::new(&ir);
    let asm_text = compile(program, opt)?;
    let prog = assemble(&asm_text)
        .map_err(|e| ValidateError::Exec(format!("generated assembly does not assemble: {e}")))?;
    let entry =
        prog.address_of(name).ok_or_else(|| ValidateError::Exec(format!("no symbol `{name}`")))?;
    for args in cases {
        let a = interp.call(name, args).map_err(|e| ValidateError::Exec(format!("interp: {e}")))?;
        let b = ireval.call(name, args).map_err(|e| ValidateError::Exec(format!("ireval: {e}")))?;
        if a != b {
            return Err(ValidateError::Diverged(Divergence {
                levels: "interp (Low*) vs ireval (C)".into(),
                detail: format!("{name}({args:?}) = {a:#x} vs {b:#x}"),
            }));
        }
        let mut m = parfait_riscv::machine::Machine::with_program(&prog);
        let c = m
            .call(entry, args, 500_000_000)
            .map_err(|e| ValidateError::Exec(format!("asm: {e}")))?;
        if a != c {
            return Err(ValidateError::Diverged(Divergence {
                levels: "ireval (C) vs asm".into(),
                detail: format!("{name}({args:?}) = {a:#x} vs {c:#x}"),
            }));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend;

    #[test]
    fn validates_correct_program() {
        let src = "
            u32 mix(u32 a, u32 b) {
                u32 x = a ^ (b << 3);
                return x * 2654435761 + (a >> 5);
            }
        ";
        let p = frontend(src).unwrap();
        for opt in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
            validate_function(
                &p,
                opt,
                "mix",
                &[vec![0, 0], vec![1, 2], vec![u32::MAX, 12345], vec![0xdeadbeef, 42]],
            )
            .unwrap();
        }
    }

    #[test]
    fn validates_handle_roundtrip() {
        let src = "
            void handle(u8* state, u8* cmd, u8* resp) {
                u32 acc = 0;
                for (u32 i = 0; i < 8; i = i + 1) { acc = acc + cmd[i]; }
                resp[0] = (u8)acc;
                resp[1] = state[0];
                state[0] = (u8)(state[0] ^ cmd[0]);
            }
        ";
        let p = frontend(src).unwrap();
        let cases = vec![
            (vec![0u8; 4], vec![1, 2, 3, 4, 5, 6, 7, 8]),
            (vec![9; 4], vec![0xFF; 8]),
            (vec![1, 2, 3, 4], vec![0; 8]),
        ];
        for opt in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
            validate_handle(&p, opt, 4, &cases).unwrap();
        }
    }
}
