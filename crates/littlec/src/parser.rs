//! Recursive-descent parser for littlec.

use crate::ast::*;
use crate::token::{lex, Kw, SpannedTok, Tok};
use crate::LcError;

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

/// Parse littlec source into a [`Program`] (no type checking).
pub fn parse(source: &str) -> Result<Program, LcError> {
    let toks = lex(source)?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn line(&self) -> usize {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> LcError {
        LcError::new(self.line(), msg)
    }

    fn expect_p(&mut self, p: &'static str) -> Result<(), LcError> {
        if self.peek() == &Tok::P(p) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected `{p}`, found {:?}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String, LcError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_num(&mut self) -> Result<u32, LcError> {
        match self.bump() {
            Tok::Num(v) => Ok(v as u32),
            other => Err(self.err(format!("expected number, found {other:?}"))),
        }
    }

    fn eat_p(&mut self, p: &'static str) -> bool {
        if self.peek() == &Tok::P(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Parse a type starting at a type keyword, with optional `*`.
    fn ty(&mut self) -> Result<Ty, LcError> {
        let base = match self.bump() {
            Tok::Kw(Kw::U32) => Ty::U32,
            Tok::Kw(Kw::U8) => Ty::U8,
            Tok::Kw(Kw::Void) => Ty::Void,
            other => return Err(self.err(format!("expected type, found {other:?}"))),
        };
        if self.eat_p("*") {
            if base == Ty::Void {
                return Err(self.err("`void*` is not supported"));
            }
            Ok(base.ptr_to())
        } else {
            Ok(base)
        }
    }

    fn at_type(&self) -> bool {
        matches!(self.peek(), Tok::Kw(Kw::U32) | Tok::Kw(Kw::U8) | Tok::Kw(Kw::Void))
    }

    fn program(&mut self) -> Result<Program, LcError> {
        let mut prog = Program::default();
        loop {
            match self.peek() {
                Tok::Eof => break,
                Tok::Kw(Kw::Const) => {
                    self.bump();
                    prog.globals.push(self.const_global()?);
                }
                Tok::Kw(Kw::Static) => {
                    self.bump();
                    prog.globals.push(self.static_global()?);
                }
                _ => prog.functions.push(self.function()?),
            }
        }
        Ok(prog)
    }

    fn const_global(&mut self) -> Result<Global, LcError> {
        let line = self.line();
        let ty = self.ty()?;
        let name = self.expect_ident()?;
        if self.eat_p("[") {
            if ty.is_ptr() || ty == Ty::Void {
                return Err(self.err("array element must be u32 or u8"));
            }
            // Either an explicit length or inferred from the initializer.
            let len = if self.peek() == &Tok::P("]") { None } else { Some(self.expect_num()?) };
            self.expect_p("]")?;
            self.expect_p("=")?;
            self.expect_p("{")?;
            let mut values = Vec::new();
            if !self.eat_p("}") {
                loop {
                    // Allow negative constants like -1 in initializers.
                    let neg = self.eat_p("-");
                    let v = self.expect_num()?;
                    values.push(if neg { (v as i64).wrapping_neg() as u32 } else { v });
                    if self.eat_p("}") {
                        break;
                    }
                    self.expect_p(",")?;
                    // Trailing comma support.
                    if self.eat_p("}") {
                        break;
                    }
                }
            }
            self.expect_p(";")?;
            if let Some(l) = len {
                if values.len() != l as usize {
                    return Err(LcError::new(
                        line,
                        format!("array `{name}`: {} initializers for length {l}", values.len()),
                    ));
                }
            }
            if ty == Ty::U8 {
                for &v in &values {
                    if v > 0xFF {
                        return Err(LcError::new(
                            line,
                            format!("array `{name}`: initializer {v:#x} does not fit in u8"),
                        ));
                    }
                }
            }
            Ok(Global::ConstArray { elem: ty, name, values, line })
        } else {
            if ty != Ty::U32 {
                return Err(self.err("scalar constants must be u32"));
            }
            self.expect_p("=")?;
            let neg = self.eat_p("-");
            let v = self.expect_num()?;
            self.expect_p(";")?;
            let value = if neg { (v as i64).wrapping_neg() as u32 } else { v };
            Ok(Global::ConstScalar { name, value, line })
        }
    }

    fn static_global(&mut self) -> Result<Global, LcError> {
        let line = self.line();
        let ty = self.ty()?;
        if ty.is_ptr() || ty == Ty::Void {
            return Err(self.err("static array element must be u32 or u8"));
        }
        let name = self.expect_ident()?;
        self.expect_p("[")?;
        let len = self.expect_num()?;
        self.expect_p("]")?;
        self.expect_p(";")?;
        Ok(Global::StaticArray { elem: ty, name, len, line })
    }

    fn function(&mut self) -> Result<Function, LcError> {
        let line = self.line();
        let ret = self.ty()?;
        let name = self.expect_ident()?;
        self.expect_p("(")?;
        let mut params = Vec::new();
        if !self.eat_p(")") {
            loop {
                let ty = self.ty()?;
                if ty == Ty::Void {
                    return Err(self.err("parameter cannot be void"));
                }
                let pname = self.expect_ident()?;
                params.push(Param { ty, name: pname });
                if self.eat_p(")") {
                    break;
                }
                self.expect_p(",")?;
            }
        }
        let body = self.block()?;
        Ok(Function { name, params, ret, body, line })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, LcError> {
        self.expect_p("{")?;
        let mut stmts = Vec::new();
        while !self.eat_p("}") {
            if self.peek() == &Tok::Eof {
                return Err(self.err("unexpected end of input in block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, LcError> {
        let line = self.line();
        match self.peek().clone() {
            Tok::Kw(Kw::U32) | Tok::Kw(Kw::U8) => {
                let stmt = self.decl()?;
                Ok(stmt)
            }
            Tok::Kw(Kw::If) => self.if_stmt(),
            Tok::Kw(Kw::While) => {
                self.bump();
                self.expect_p("(")?;
                let cond = self.expr()?;
                self.expect_p(")")?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body, step: Vec::new(), line })
            }
            Tok::Kw(Kw::For) => self.for_stmt(),
            Tok::Kw(Kw::Return) => {
                self.bump();
                let value = if self.peek() == &Tok::P(";") { None } else { Some(self.expr()?) };
                self.expect_p(";")?;
                Ok(Stmt::Return { value, line })
            }
            Tok::Kw(Kw::Break) => {
                self.bump();
                self.expect_p(";")?;
                Ok(Stmt::Break { line })
            }
            Tok::Kw(Kw::Continue) => {
                self.bump();
                self.expect_p(";")?;
                Ok(Stmt::Continue { line })
            }
            _ => self.assign_or_expr(),
        }
    }

    /// Scalar or array declaration; the type keyword is at the cursor.
    fn decl(&mut self) -> Result<Stmt, LcError> {
        let line = self.line();
        let ty = self.ty()?;
        let name = self.expect_ident()?;
        if self.eat_p("[") {
            if ty.is_ptr() {
                return Err(self.err("array of pointers is not supported"));
            }
            let len = self.expect_num()?;
            self.expect_p("]")?;
            self.expect_p(";")?;
            Ok(Stmt::DeclArray { elem: ty, name, len, line })
        } else {
            let init = if self.eat_p("=") { Some(self.expr()?) } else { None };
            self.expect_p(";")?;
            Ok(Stmt::DeclScalar { ty, name, init, line })
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, LcError> {
        let line = self.line();
        self.bump(); // `if`
        self.expect_p("(")?;
        let cond = self.expr()?;
        self.expect_p(")")?;
        let then_body = self.block()?;
        let else_body = if self.peek() == &Tok::Kw(Kw::Else) {
            self.bump();
            if self.peek() == &Tok::Kw(Kw::If) {
                vec![self.if_stmt()?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If { cond, then_body, else_body, line })
    }

    /// `for (init; cond; step) body` desugars to init + while.
    fn for_stmt(&mut self) -> Result<Stmt, LcError> {
        let line = self.line();
        self.bump(); // `for`
        self.expect_p("(")?;
        let init: Option<Stmt> = if self.eat_p(";") {
            None
        } else if self.at_type() {
            Some(self.decl()?)
        } else {
            Some(self.assign_no_semi(true)?)
        };
        let cond = if self.peek() == &Tok::P(";") {
            Expr { kind: ExprKind::Num(1), line }
        } else {
            self.expr()?
        };
        self.expect_p(";")?;
        let step: Option<Stmt> =
            if self.peek() == &Tok::P(")") { None } else { Some(self.assign_no_semi(false)?) };
        self.expect_p(")")?;
        let body = self.block()?;
        let w = Stmt::While { cond, body, step: step.into_iter().collect(), line };
        Ok(match init {
            // Wrap init + while in a synthetic `if (1)` block so the
            // declaration scopes over the loop only.
            Some(i) => Stmt::If {
                cond: Expr { kind: ExprKind::Num(1), line },
                then_body: vec![i, w],
                else_body: Vec::new(),
                line,
            },
            None => w,
        })
    }

    /// Parse an assignment (without consuming `;` when `semi` is false).
    fn assign_no_semi(&mut self, semi: bool) -> Result<Stmt, LcError> {
        let stmt = self.assign_or_expr_inner()?;
        if semi {
            self.expect_p(";")?;
        }
        Ok(stmt)
    }

    fn assign_or_expr(&mut self) -> Result<Stmt, LcError> {
        let s = self.assign_or_expr_inner()?;
        self.expect_p(";")?;
        Ok(s)
    }

    fn assign_or_expr_inner(&mut self) -> Result<Stmt, LcError> {
        let line = self.line();
        let e = self.expr()?;
        if self.eat_p("=") {
            let rhs = self.expr()?;
            let lv = match e.kind {
                ExprKind::Var(name) => LValue::Var(name),
                ExprKind::Index(base, idx) => LValue::Index(*base, *idx),
                _ => return Err(LcError::new(line, "invalid assignment target")),
            };
            Ok(Stmt::Assign { lv, rhs, line })
        } else {
            Ok(Stmt::ExprStmt { expr: e, line })
        }
    }

    // --- expressions, precedence climbing ---

    fn expr(&mut self) -> Result<Expr, LcError> {
        self.lor()
    }

    fn lor(&mut self) -> Result<Expr, LcError> {
        let mut lhs = self.land()?;
        while self.peek() == &Tok::P("||") {
            let line = self.line();
            self.bump();
            let rhs = self.land()?;
            lhs = Expr { kind: ExprKind::Bin(BinOp::LOr, Box::new(lhs), Box::new(rhs)), line };
        }
        Ok(lhs)
    }

    fn land(&mut self) -> Result<Expr, LcError> {
        let mut lhs = self.bitor()?;
        while self.peek() == &Tok::P("&&") {
            let line = self.line();
            self.bump();
            let rhs = self.bitor()?;
            lhs = Expr { kind: ExprKind::Bin(BinOp::LAnd, Box::new(lhs), Box::new(rhs)), line };
        }
        Ok(lhs)
    }

    fn bin_level(
        &mut self,
        ops: &[(&'static str, BinOp)],
        next: fn(&mut Self) -> Result<Expr, LcError>,
    ) -> Result<Expr, LcError> {
        let mut lhs = next(self)?;
        'outer: loop {
            for &(p, op) in ops {
                if self.peek() == &Tok::P(p) {
                    let line = self.line();
                    self.bump();
                    let rhs = next(self)?;
                    lhs = Expr { kind: ExprKind::Bin(op, Box::new(lhs), Box::new(rhs)), line };
                    continue 'outer;
                }
            }
            break;
        }
        Ok(lhs)
    }

    fn bitor(&mut self) -> Result<Expr, LcError> {
        self.bin_level(&[("|", BinOp::Or)], Self::bitxor)
    }

    fn bitxor(&mut self) -> Result<Expr, LcError> {
        self.bin_level(&[("^", BinOp::Xor)], Self::bitand)
    }

    fn bitand(&mut self) -> Result<Expr, LcError> {
        self.bin_level(&[("&", BinOp::And)], Self::equality)
    }

    fn equality(&mut self) -> Result<Expr, LcError> {
        self.bin_level(&[("==", BinOp::Eq), ("!=", BinOp::Ne)], Self::relational)
    }

    fn relational(&mut self) -> Result<Expr, LcError> {
        self.bin_level(
            &[("<=", BinOp::Le), (">=", BinOp::Ge), ("<", BinOp::Lt), (">", BinOp::Gt)],
            Self::shift,
        )
    }

    fn shift(&mut self) -> Result<Expr, LcError> {
        self.bin_level(&[("<<", BinOp::Shl), (">>", BinOp::Shr)], Self::additive)
    }

    fn additive(&mut self) -> Result<Expr, LcError> {
        self.bin_level(&[("+", BinOp::Add), ("-", BinOp::Sub)], Self::multiplicative)
    }

    fn multiplicative(&mut self) -> Result<Expr, LcError> {
        self.bin_level(&[("*", BinOp::Mul), ("/", BinOp::Div), ("%", BinOp::Rem)], Self::unary)
    }

    fn unary(&mut self) -> Result<Expr, LcError> {
        let line = self.line();
        if self.eat_p("-") {
            let e = self.unary()?;
            return Ok(Expr { kind: ExprKind::Un(UnOp::Neg, Box::new(e)), line });
        }
        if self.eat_p("~") {
            let e = self.unary()?;
            return Ok(Expr { kind: ExprKind::Un(UnOp::Not, Box::new(e)), line });
        }
        if self.eat_p("!") {
            let e = self.unary()?;
            return Ok(Expr { kind: ExprKind::Un(UnOp::LNot, Box::new(e)), line });
        }
        // Cast: `(` type ... `)` unary
        if self.peek() == &Tok::P("(") && matches!(self.peek2(), Tok::Kw(Kw::U32) | Tok::Kw(Kw::U8))
        {
            self.bump(); // (
            let ty = self.ty()?;
            self.expect_p(")")?;
            let e = self.unary()?;
            return Ok(Expr { kind: ExprKind::Cast(ty, Box::new(e)), line });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, LcError> {
        let mut e = self.primary()?;
        loop {
            let line = self.line();
            if self.eat_p("[") {
                let idx = self.expr()?;
                self.expect_p("]")?;
                e = Expr { kind: ExprKind::Index(Box::new(e), Box::new(idx)), line };
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, LcError> {
        let line = self.line();
        match self.bump() {
            Tok::Num(v) => {
                if v > u32::MAX as u64 {
                    return Err(LcError::new(line, format!("literal {v} does not fit in u32")));
                }
                Ok(Expr { kind: ExprKind::Num(v as u32), line })
            }
            Tok::Ident(name) => {
                if self.eat_p("(") {
                    let mut args = Vec::new();
                    if !self.eat_p(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_p(")") {
                                break;
                            }
                            self.expect_p(",")?;
                        }
                    }
                    Ok(Expr { kind: ExprKind::Call(name, args), line })
                } else {
                    Ok(Expr { kind: ExprKind::Var(name), line })
                }
            }
            Tok::P("(") => {
                let e = self.expr()?;
                self.expect_p(")")?;
                Ok(e)
            }
            other => Err(LcError::new(line, format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_function_and_globals() {
        let src = "
            const u32 K[2] = { 0x428a2f98, 0x71374491 };
            const u32 N = 64;
            static u8 scratch[16];

            u32 add(u32 a, u32 b) {
                return a + b;
            }

            void handle(u8* state, u8* cmd, u8* resp) {
                u32 i = 0;
                while (i < N) {
                    resp[i] = cmd[i];
                    i = i + 1;
                }
            }
        ";
        let p = parse(src).unwrap();
        assert_eq!(p.globals.len(), 3);
        assert_eq!(p.functions.len(), 2);
        assert_eq!(p.function("handle").unwrap().params.len(), 3);
        match &p.globals[0] {
            Global::ConstArray { values, .. } => assert_eq!(values[1], 0x71374491),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_precedence() {
        let p = parse("u32 f(u32 a, u32 b) { return a + b * 2 == a << 1 & 3; }").unwrap();
        // Just check it parses; shape: ((a + (b*2)) == (a<<1)) & 3
        let f = p.function("f").unwrap();
        match &f.body[0] {
            Stmt::Return { value: Some(e), .. } => match &e.kind {
                ExprKind::Bin(BinOp::And, lhs, _) => match &lhs.kind {
                    ExprKind::Bin(BinOp::Eq, _, _) => {}
                    other => panic!("expected ==, got {other:?}"),
                },
                other => panic!("expected &, got {other:?}"),
            },
            other => panic!("expected return, got {other:?}"),
        }
    }

    #[test]
    fn parse_for_desugars() {
        let p = parse("void f() { for (u32 i = 0; i < 4; i = i + 1) { g(i); } }").unwrap();
        let f = p.function("f").unwrap();
        assert!(matches!(f.body[0], Stmt::If { .. }));
    }

    #[test]
    fn parse_if_else_chain() {
        let p = parse(
            "u32 f(u32 x) { if (x == 0) { return 1; } else if (x == 1) { return 2; } else { return 3; } }",
        )
        .unwrap();
        let f = p.function("f").unwrap();
        match &f.body[0] {
            Stmt::If { else_body, .. } => assert!(matches!(else_body[0], Stmt::If { .. })),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_casts_and_index() {
        let p = parse("void f(u8* p) { u32 x = ((u32*)p)[1]; u8 b = (u8)(x >> 8); p[0] = b; }");
        assert!(p.is_ok(), "{p:?}");
    }

    #[test]
    fn parse_errors() {
        assert!(parse("u32 f( { }").is_err());
        assert!(parse("u32 f() { return 1 }").is_err());
        assert!(parse("u32 f() { 1 = 2; }").is_err());
        assert!(parse("const u32 A[3] = {1, 2};").is_err());
        assert!(parse("const u8 A[1] = {256};").is_err());
    }
}
