//! Static loop-bound inference over post-optimization IR.
//!
//! The `bound` pipeline stage (crates/analyzer) proves a WCET cycle
//! bound over the final instruction words, but the instruction stream
//! alone cannot say how often a loop body executes. This pass recovers
//! that missing fact where the compiler can see it — `for`-style
//! counted loops with constant trip counts — and classifies the two
//! intentionally unbounded shapes of Parfait firmware: MMIO polls
//! (bounded by the *host*, not the device) and the top-level server
//! loop. The results ride into the assembly as `# loopbound` comment
//! lines keyed by the emitted `.L{fn}_{block}` head label, where the
//! bound analysis re-validates them against the machine code instead
//! of trusting them (a dropped counter increment must not inherit the
//! stale bound).
//!
//! Trip counts are inferred *per calling context*: bounds like
//! `i < len` are only constant once the constant argument at the call
//! site is known, so the pass propagates constant arguments down the
//! (acyclic) call graph from the roots and takes the maximum over all
//! contexts per loop. Evaluating a bound expression at the per-context
//! constants is sound even on branch arms a given context never takes;
//! no reachability pruning is needed (or done). A loop whose bound
//! cannot be resolved in some context is annotated `unknown` with its
//! source line — compilation still succeeds, and the bound stage turns
//! the unknown into a loud [`Diagnostic`]-shaped rejection only when
//! the loop is actually reachable from the verified entry point.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use crate::diag::{Diagnostic, Span};
use crate::ir::{BlockId, Inst, IrFunction, IrOp, IrProgram, Operand, Term, VReg};

/// Memory-mapped I/O window whose loads mark a loop as host-blocking
/// (matches the SoC's UART-style doorbell registers).
const MMIO_LO: u32 = 0x1000_0000;
const MMIO_HI: u32 = 0x1000_0010;

/// How a loop's iteration count was established.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoopKind {
    /// A counted loop: `iters` bounds the number of head evaluations.
    Counted,
    /// An MMIO poll: blocked on the host, at most one non-blocked pass.
    Host,
    /// The non-terminating server loop (no exit edge).
    Server,
    /// No bound could be inferred; the bound stage must reject this
    /// loop if it is reachable.
    Unknown,
}

impl LoopKind {
    /// Stable name used in the `# loopbound` annotation.
    pub fn as_str(self) -> &'static str {
        match self {
            LoopKind::Counted => "counted",
            LoopKind::Host => "host",
            LoopKind::Server => "server",
            LoopKind::Unknown => "unknown",
        }
    }

    /// Parse an annotation kind name.
    pub fn from_name(s: &str) -> Option<LoopKind> {
        match s {
            "counted" => Some(LoopKind::Counted),
            "host" => Some(LoopKind::Host),
            "server" => Some(LoopKind::Server),
            "unknown" => Some(LoopKind::Unknown),
            _ => None,
        }
    }
}

/// One inferred loop bound, keyed by the emitted head-block label.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoopBound {
    /// Enclosing function name.
    pub function: String,
    /// Head block id (the target of the loop's back edges).
    pub head: BlockId,
    /// Maximum head evaluations across every analyzed context
    /// (`trip + 1` for counted loops, 2 for host/server, 0 unknown).
    pub iters: u32,
    /// Classification.
    pub kind: LoopKind,
    /// 1-based source line of the loop condition (0 = unknown).
    pub line: usize,
}

impl LoopBound {
    /// The assembly label of the head block ([`crate::codegen`] emits
    /// one per block as `.L{fn}_{block}`).
    pub fn label(&self) -> String {
        format!(".L{}_{}", self.function, self.head)
    }

    /// The full annotation comment line emitted into the assembly.
    pub fn annotation(&self) -> String {
        format!(
            "# loopbound {} kind={} iters={} line={}",
            self.label(),
            self.kind.as_str(),
            self.iters,
            self.line
        )
    }

    /// A source-span diagnostic for an uninferable loop, `None` for
    /// bounded ones.
    pub fn diagnostic(&self) -> Option<Diagnostic> {
        (self.kind == LoopKind::Unknown).then(|| {
            Diagnostic::new(
                "LB-UNBOUNDED",
                Span::new(self.function.clone(), self.line),
                "cannot infer a finite bound for this loop \
                 (only constant-trip counters, MMIO polls, and the exit-less server loop \
                 are bounded)",
            )
        })
    }
}

/// What the value lattice knows: a constant interval `[lo, hi]` (an
/// exact constant when `lo == hi` — intervals let bounds like
/// SHA-256's `nb` = 1-or-2 survive control-flow joins), a pointer to a
/// fixed offset inside one frame slot (so the compiler-generated
/// `p < end` zeroing loops resolve), or nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Val {
    Unknown,
    Range { lo: u32, hi: u32 },
    Local { slot: usize, off: u32 },
}

impl Val {
    fn exact(c: u32) -> Val {
        Val::Range { lo: c, hi: c }
    }

    /// The constant this value is known to equal, if exact.
    fn as_const(self) -> Option<u32> {
        match self {
            Val::Range { lo, hi } if lo == hi => Some(lo),
            _ => None,
        }
    }

    fn join(self, other: Val) -> Val {
        match (self, other) {
            _ if self == other => self,
            (Val::Range { lo: a, hi: b }, Val::Range { lo: c, hi: d }) => {
                Val::Range { lo: a.min(c), hi: b.max(d) }
            }
            _ => Val::Unknown,
        }
    }

    /// Join with widening: a growing interval goes straight to
    /// [`Val::Unknown`] so loop-carried counters cannot make the
    /// fixpoint climb the interval lattice one step per iteration.
    fn widen(self, other: Val) -> Val {
        match self.join(other) {
            j @ Val::Range { .. } if j != self => Val::Unknown,
            j => j,
        }
    }
}

type State = Vec<Val>;

fn eval_operand(state: &State, b: &Operand) -> Val {
    match b {
        Operand::Imm(i) => Val::exact(*i),
        Operand::Reg(v) => state[*v as usize],
    }
}

/// Interval transfer for the handful of operations that bound
/// expressions are built from; everything else folds only when exact.
fn bin_range(op: IrOp, a: Val, b: Val) -> Val {
    if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
        return Val::exact(op.eval(x, y));
    }
    let (Val::Range { lo: al, hi: ah }, Val::Range { lo: bl, hi: bh }) = (a, b) else {
        return Val::Unknown;
    };
    match op {
        IrOp::Add => match (al.checked_add(bl), ah.checked_add(bh)) {
            (Some(lo), Some(hi)) => Val::Range { lo, hi },
            _ => Val::Unknown,
        },
        IrOp::Sub if b.as_const().is_some() => match (al.checked_sub(bl), ah.checked_sub(bh)) {
            (Some(lo), Some(hi)) => Val::Range { lo, hi },
            _ => Val::Unknown,
        },
        IrOp::Sll if bl == bh && bl < 32 => {
            let (lo, hi) = (al << bl, ah << bl);
            // Reject the fold if shifted-out bits make it non-monotone.
            if lo >> bl == al && hi >> bl == ah {
                Val::Range { lo, hi }
            } else {
                Val::Unknown
            }
        }
        IrOp::Srl if bl == bh && bl < 32 => Val::Range { lo: al >> bl, hi: ah >> bl },
        IrOp::And if bl == bh => Val::Range { lo: 0, hi: bl.min(ah) },
        _ => Val::Unknown,
    }
}

/// Call sites recorded during abstract execution: callee name plus
/// the constant value (if known) of each argument.
type CallSites = Vec<(String, Vec<Option<u32>>)>;

/// Transfer function for one instruction; records call-site constant
/// arguments into `calls` when provided.
fn exec_inst(state: &mut State, inst: &Inst, calls: Option<&mut CallSites>) {
    match inst {
        Inst::Const { dst, value } => state[*dst as usize] = Val::exact(*value),
        Inst::Copy { dst, src } => state[*dst as usize] = state[*src as usize],
        Inst::Bin { op, dst, a, b } => {
            let av = state[*a as usize];
            let bv = eval_operand(state, b);
            state[*dst as usize] = match (op, av, bv) {
                (IrOp::Add, Val::Local { slot, off }, r)
                | (IrOp::Add, r, Val::Local { slot, off })
                    if r.as_const().is_some() =>
                {
                    Val::Local { slot, off: off.wrapping_add(r.as_const().unwrap()) }
                }
                (IrOp::Sub, Val::Local { slot, off }, r) if r.as_const().is_some() => {
                    Val::Local { slot, off: off.wrapping_sub(r.as_const().unwrap()) }
                }
                _ => bin_range(*op, av, bv),
            };
        }
        Inst::Load { dst, .. } => state[*dst as usize] = Val::Unknown,
        Inst::Store { .. } => {}
        Inst::AddrOfGlobal { dst, .. } => state[*dst as usize] = Val::Unknown,
        Inst::AddrOfLocal { dst, slot } => {
            state[*dst as usize] = Val::Local { slot: *slot, off: 0 }
        }
        Inst::Call { dst, func, args } => {
            if let Some(calls) = calls {
                let ctx = args.iter().map(|&a| state[a as usize].as_const()).collect();
                calls.push((func.clone(), ctx));
            }
            if let Some(d) = dst {
                state[*d as usize] = Val::Unknown;
            }
        }
    }
}

fn successors(term: &Term) -> Vec<BlockId> {
    match term {
        Term::Jump(t) => vec![*t],
        Term::Br { then_b, else_b, .. } => vec![*then_b, *else_b],
        Term::Ret { .. } => vec![],
    }
}

/// Back edges (`latch → head`) found by DFS from the entry block;
/// littlec lowering only produces reducible control flow, so an edge
/// into a block on the DFS stack is a genuine loop head.
fn back_edges(f: &IrFunction) -> Vec<(BlockId, BlockId)> {
    let mut color = vec![0u8; f.blocks.len()]; // 0 new, 1 on stack, 2 done
    let mut edges = Vec::new();
    // Iterative DFS with an explicit (block, next-successor) stack.
    let mut stack: Vec<(BlockId, usize)> = vec![(0, 0)];
    color[0] = 1;
    while let Some(&mut (b, ref mut i)) = stack.last_mut() {
        let succs = successors(f.blocks[b].term.as_ref().expect("terminated"));
        if *i < succs.len() {
            let s = succs[*i];
            *i += 1;
            match color[s] {
                0 => {
                    color[s] = 1;
                    stack.push((s, 0));
                }
                1 => edges.push((b, s)),
                _ => {}
            }
        } else {
            color[b] = 2;
            stack.pop();
        }
    }
    edges
}

/// The natural loop of `head`: blocks that reach a latch without
/// passing through `head`, plus `head` itself.
fn natural_loop(f: &IrFunction, head: BlockId, latches: &[BlockId]) -> BTreeSet<BlockId> {
    let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); f.blocks.len()];
    for (b, blk) in f.blocks.iter().enumerate() {
        for s in successors(blk.term.as_ref().expect("terminated")) {
            preds[s].push(b);
        }
    }
    let mut set = BTreeSet::from([head]);
    let mut stack: Vec<BlockId> = latches.to_vec();
    while let Some(b) = stack.pop() {
        if set.insert(b) {
            stack.extend(preds[b].iter().copied());
        }
    }
    set
}

/// Per-context analysis of one function: entry states per block to
/// fixpoint, then loop classification and call-site collection.
struct FnAnalysis<'f> {
    f: &'f IrFunction,
    entry: Vec<Option<State>>,
}

impl<'f> FnAnalysis<'f> {
    fn run(f: &'f IrFunction, ctx: &[Option<u32>]) -> FnAnalysis<'f> {
        let mut st: State = vec![Val::Unknown; f.nvregs as usize];
        for (p, c) in f.params.iter().zip(ctx) {
            if let Some(c) = c {
                st[*p as usize] = Val::exact(*c);
            }
        }
        let mut entry: Vec<Option<State>> = vec![None; f.blocks.len()];
        entry[0] = Some(st);
        let mut work: BTreeSet<BlockId> = BTreeSet::from([0]);
        // Per-block update counter: past the threshold, joins widen so
        // loop-carried intervals jump to Unknown instead of growing one
        // step per fixpoint iteration.
        const WIDEN_AFTER: u32 = 8;
        let mut updates = vec![0u32; f.blocks.len()];
        while let Some(b) = work.pop_first() {
            let Some(mut out) = entry[b].clone() else { continue };
            for inst in &f.blocks[b].insts {
                exec_inst(&mut out, inst, None);
            }
            for s in successors(f.blocks[b].term.as_ref().expect("terminated")) {
                match &mut entry[s] {
                    Some(old) => {
                        let widen = updates[s] >= WIDEN_AFTER;
                        let mut changed = false;
                        for (o, n) in old.iter_mut().zip(&out) {
                            let j = if widen { o.widen(*n) } else { o.join(*n) };
                            if j != *o {
                                *o = j;
                                changed = true;
                            }
                        }
                        if changed {
                            updates[s] += 1;
                            work.insert(s);
                        }
                    }
                    slot @ None => {
                        *slot = Some(out.clone());
                        work.insert(s);
                    }
                }
            }
        }
        FnAnalysis { f, entry }
    }

    /// Out-state of a block (entry state pushed through its body).
    fn out_state(&self, b: BlockId) -> Option<State> {
        let mut st = self.entry[b].clone()?;
        for inst in &self.f.blocks[b].insts {
            exec_inst(&mut st, inst, None);
        }
        Some(st)
    }

    /// Constant arguments at every reachable call site.
    fn calls(&self) -> Vec<(String, Vec<Option<u32>>)> {
        let mut calls = Vec::new();
        for (b, blk) in self.f.blocks.iter().enumerate() {
            let Some(mut st) = self.entry[b].clone() else { continue };
            for inst in &blk.insts {
                exec_inst(&mut st, inst, Some(&mut calls));
            }
        }
        calls
    }

    /// Classify the loop at `head` in this context.
    fn classify(&self, head: BlockId, latches: &[BlockId]) -> (LoopKind, u32) {
        let Some(head_entry) = self.entry[head].clone() else {
            // Head unreachable in this context: one head evaluation is
            // a sound (if vacuous) bound — reachable contexts dominate
            // the cross-context maximum.
            return (LoopKind::Counted, 1);
        };
        let lp = natural_loop(self.f, head, latches);
        let blk = &self.f.blocks[head];

        // Symbolic pass over the head block: per-vreg value, last
        // defining instruction index, and MMIO taint (a load from the
        // doorbell window feeding the condition = host-blocking).
        let mut vals = head_entry.clone();
        let mut def_site: HashMap<VReg, usize> = HashMap::new();
        let mut def_val: HashMap<VReg, Val> = HashMap::new();
        let mut mmio: HashSet<VReg> = HashSet::new();
        for (i, inst) in blk.insts.iter().enumerate() {
            if let Inst::Load { dst, addr, .. } = inst {
                if let Some(a) = vals[*addr as usize].as_const() {
                    if (MMIO_LO..MMIO_HI).contains(&a) {
                        mmio.insert(*dst);
                    }
                }
            }
            match inst {
                Inst::Copy { dst, src } if mmio.contains(src) => {
                    mmio.insert(*dst);
                }
                Inst::Bin { dst, a, b, .. } => {
                    let b_tainted = matches!(b, Operand::Reg(r) if mmio.contains(r));
                    if mmio.contains(a) || b_tainted {
                        mmio.insert(*dst);
                    }
                }
                _ => {}
            }
            exec_inst(&mut vals, inst, None);
            if let Some(d) = inst_dst(inst) {
                def_site.insert(d, i);
                def_val.insert(d, vals[d as usize]);
            }
        }

        // Exit edges of the loop (a `Ret` inside the loop is an exit).
        let exits: Vec<(BlockId, BlockId)> = lp
            .iter()
            .flat_map(|&b| {
                let term = self.f.blocks[b].term.as_ref().expect("terminated");
                if matches!(term, Term::Ret { .. }) {
                    vec![(b, usize::MAX)]
                } else {
                    successors(term)
                        .into_iter()
                        .filter(|s| !lp.contains(s))
                        .map(|s| (b, s))
                        .collect()
                }
            })
            .collect();

        match blk.term.as_ref().expect("terminated") {
            // A head folded to an unconditional jump (-O2 `while (1)`)
            // or one whose condition is constant-true in this context:
            // the loop is the server loop iff nothing else exits it.
            Term::Jump(_) => {
                if exits.is_empty() {
                    (LoopKind::Server, 2)
                } else {
                    (LoopKind::Unknown, 0)
                }
            }
            Term::Br { cond, then_b, else_b } => {
                let cond_val = def_val.get(cond).copied().unwrap_or(head_entry[*cond as usize]);
                if let Some(c) = cond_val.as_const() {
                    let live = if c != 0 { *then_b } else { *else_b };
                    if lp.contains(&live) {
                        // Constant-true guard: only the dead arm exits?
                        let dead = if c != 0 { *else_b } else { *then_b };
                        return if exits.iter().all(|&(b, s)| b == head && s == dead) {
                            (LoopKind::Server, 2)
                        } else {
                            (LoopKind::Unknown, 0)
                        };
                    }
                    // Constant-false guard: the body never runs.
                    return (LoopKind::Counted, 1);
                }
                if mmio.contains(cond) {
                    return (LoopKind::Host, 2);
                }
                // Counted form: `Sltu(x, bound)` with `then` staying in
                // the loop, a loop-invariant bound, and a single
                // strictly-increasing update of `x` by a constant step.
                if !lp.contains(then_b) || lp.contains(else_b) {
                    return (LoopKind::Unknown, 0);
                }
                let Some((x, bound)) = self.head_sltu(*cond, &head_entry, &def_site, &def_val, blk)
                else {
                    return (LoopKind::Unknown, 0);
                };
                let Some(init) = self.counter_init(x, head, &lp) else {
                    return (LoopKind::Unknown, 0);
                };
                let Some((step, masked)) = self.counter_step(x, head, &lp) else {
                    return (LoopKind::Unknown, 0);
                };
                // Worst-case trip count: largest possible bound against
                // the smallest possible initial value.
                let trip = match (init, bound) {
                    (Val::Range { lo: i0, .. }, Val::Range { hi: n, .. }) => {
                        if masked && n >= 256 {
                            return (LoopKind::Unknown, 0);
                        }
                        if n > i0 {
                            (n - i0).div_ceil(step)
                        } else {
                            0
                        }
                    }
                    (Val::Local { slot: s0, off: o0 }, Val::Local { slot: s1, off: o1 })
                        if s0 == s1 =>
                    {
                        if o1 > o0 {
                            (o1 - o0).div_ceil(step)
                        } else {
                            0
                        }
                    }
                    _ => return (LoopKind::Unknown, 0),
                };
                (LoopKind::Counted, trip + 1)
            }
            Term::Ret { .. } => (LoopKind::Unknown, 0),
        }
    }

    /// Trace the head condition through in-block copies to a
    /// `Sltu(x, bound)`; bound from the value at its defining site.
    fn head_sltu(
        &self,
        cond: VReg,
        head_entry: &State,
        def_site: &HashMap<VReg, usize>,
        def_val: &HashMap<VReg, Val>,
        blk: &crate::ir::Block,
    ) -> Option<(VReg, Val)> {
        let mut v = cond;
        for _ in 0..16 {
            let &i = def_site.get(&v)?;
            match &blk.insts[i] {
                Inst::Copy { src, .. } => v = *src,
                Inst::Bin { op: IrOp::Sltu, a, b, .. } => {
                    let bound = match b {
                        Operand::Imm(c) => Val::exact(*c),
                        Operand::Reg(r) => {
                            def_val.get(r).copied().unwrap_or(head_entry[*r as usize])
                        }
                    };
                    return Some((*a, bound));
                }
                _ => return None,
            }
        }
        None
    }

    /// The counter's value on loop entry: the join of the out-states of
    /// the head's predecessors outside the loop.
    fn counter_init(&self, x: VReg, head: BlockId, lp: &BTreeSet<BlockId>) -> Option<Val> {
        let mut init: Option<Val> = None;
        for (b, blk) in self.f.blocks.iter().enumerate() {
            if lp.contains(&b) {
                continue;
            }
            if !successors(blk.term.as_ref().expect("terminated")).contains(&head) {
                continue;
            }
            let out = self.out_state(b)?;
            let v = out[x as usize];
            init = Some(match init {
                Some(prev) => prev.join(v),
                None => v,
            });
        }
        init
    }

    /// The counter's per-iteration update: exactly one in-loop def of
    /// `x`, of shape `x = x + step` (optionally `& 0xFF`-masked for u8
    /// counters, which the caller must guard against wraparound).
    /// Returns `(step, masked)`.
    fn counter_step(&self, x: VReg, head: BlockId, lp: &BTreeSet<BlockId>) -> Option<(u32, bool)> {
        let mut found: Option<(BlockId, usize, bool)> = None;
        for &b in lp.iter() {
            if b == head {
                // The head only evaluates the condition; a def of the
                // counter there is outside the supported shape.
                if self.f.blocks[b].insts.iter().any(|i| inst_dst(i) == Some(x)) {
                    return None;
                }
                continue;
            }
            for (i, inst) in self.f.blocks[b].insts.iter().enumerate() {
                if inst_dst(inst) != Some(x) {
                    continue;
                }
                if found.is_some() {
                    return None;
                }
                match inst {
                    Inst::Copy { .. } => found = Some((b, i, false)),
                    Inst::Bin { op: IrOp::And, b: m, .. }
                        if eval_operand_const(m) == Some(0xFF) =>
                    {
                        found = Some((b, i, true))
                    }
                    _ => return None,
                }
            }
        }
        let (b, i, masked) = found?;
        // Source of the update: `Copy{x, t}` / `And{x, t, 0xFF}` where
        // `t = Add(x, step)` with a constant step, defined earlier in
        // the same block.
        let blk = &self.f.blocks[b];
        let t = match &blk.insts[i] {
            Inst::Copy { src, .. } => *src,
            Inst::Bin { a, .. } => *a,
            _ => unreachable!("filtered above"),
        };
        let mut st = self.entry[b].clone()?;
        let mut add: Option<u32> = None;
        for inst in &blk.insts[..i] {
            if inst_dst(inst) == Some(t) {
                add = match inst {
                    Inst::Bin { op: IrOp::Add, a, b: s, .. } if *a == x => {
                        match eval_operand(&st, s).as_const() {
                            Some(c) if c >= 1 => Some(c),
                            _ => None,
                        }
                    }
                    _ => None,
                };
            }
            exec_inst(&mut st, inst, None);
        }
        add.map(|s| (s, masked))
    }
}

fn inst_dst(inst: &Inst) -> Option<VReg> {
    match inst {
        Inst::Const { dst, .. }
        | Inst::Copy { dst, .. }
        | Inst::Bin { dst, .. }
        | Inst::Load { dst, .. }
        | Inst::AddrOfGlobal { dst, .. }
        | Inst::AddrOfLocal { dst, .. } => Some(*dst),
        Inst::Call { dst, .. } => *dst,
        Inst::Store { .. } => None,
    }
}

fn eval_operand_const(b: &Operand) -> Option<u32> {
    match b {
        Operand::Imm(c) => Some(*c),
        Operand::Reg(_) => None,
    }
}

/// Functions that can reach themselves through the static call graph.
fn recursive_functions(ir: &IrProgram) -> HashSet<String> {
    let callees: HashMap<&str, BTreeSet<&str>> = ir
        .functions
        .iter()
        .map(|f| {
            let mut cs = BTreeSet::new();
            for b in &f.blocks {
                for inst in &b.insts {
                    if let Inst::Call { func, .. } = inst {
                        cs.insert(func.as_str());
                    }
                }
            }
            (f.name.as_str(), cs)
        })
        .collect();
    let mut recursive = HashSet::new();
    for f in ir.functions.iter().map(|f| f.name.as_str()) {
        let mut seen = HashSet::new();
        let mut stack: Vec<&str> = callees.get(f).into_iter().flatten().copied().collect();
        while let Some(c) = stack.pop() {
            if c == f {
                recursive.insert(f.to_string());
                break;
            }
            if seen.insert(c) {
                stack.extend(callees.get(c).into_iter().flatten().copied());
            }
        }
    }
    recursive
}

/// Cap on distinct constant-argument contexts per function; beyond it
/// the function is re-analyzed once with all arguments unknown.
const MAX_CONTEXTS: usize = 8;

/// Infer bounds for every loop of every function reachable from the
/// analysis roots (`hsm_main` when present, else every function no one
/// calls), maximized over all propagated constant-argument contexts.
pub fn loop_bounds(ir: &IrProgram) -> Vec<LoopBound> {
    let recursive = recursive_functions(ir);
    let fn_index: HashMap<&str, usize> =
        ir.functions.iter().enumerate().map(|(i, f)| (f.name.as_str(), i)).collect();

    // Roots: the firmware entry when linked, otherwise the functions
    // with call-graph in-degree zero (library/handler compiles).
    let mut called: HashSet<&str> = HashSet::new();
    for f in &ir.functions {
        for b in &f.blocks {
            for inst in &b.insts {
                if let Inst::Call { func, .. } = inst {
                    called.insert(func.as_str());
                }
            }
        }
    }
    let mut roots: Vec<usize> = if let Some(&i) = fn_index.get("hsm_main") {
        vec![i]
    } else {
        ir.functions
            .iter()
            .enumerate()
            .filter(|(_, f)| !called.contains(f.name.as_str()))
            .map(|(i, _)| i)
            .collect()
    };
    if roots.is_empty() {
        // Everything sits in a call cycle (possible only with
        // recursion): analyze each function as its own root.
        roots = (0..ir.functions.len()).collect();
    }

    // Per-loop accumulator: (kind, iters, line), maximized over contexts.
    let mut acc: BTreeMap<(usize, BlockId), (LoopKind, u32, usize)> = BTreeMap::new();
    let mut merge = |fi: usize, head: BlockId, kind: LoopKind, iters: u32, line: usize| {
        let e = acc.entry((fi, head)).or_insert((kind, iters, line));
        if e.0 != kind {
            *e = (LoopKind::Unknown, 0, line.max(e.2));
        } else {
            e.1 = e.1.max(iters);
        }
    };

    let mut seen: HashSet<(usize, Vec<Option<u32>>)> = HashSet::new();
    let mut ctx_count: HashMap<usize, usize> = HashMap::new();
    let mut work: Vec<(usize, Vec<Option<u32>>)> = roots
        .into_iter()
        .map(|i| {
            let f = &ir.functions[i];
            (i, vec![None; f.params.len()])
        })
        .collect();
    for item in &work {
        seen.insert(item.clone());
    }

    while let Some((fi, ctx)) = work.pop() {
        let f = &ir.functions[fi];
        let edges = back_edges(f);
        let mut heads: BTreeMap<BlockId, Vec<BlockId>> = BTreeMap::new();
        for (latch, head) in edges {
            heads.entry(head).or_default().push(latch);
        }
        if recursive.contains(&f.name) {
            // The bound stage rejects recursion outright; annotate the
            // loops as unknown and descend with unknown arguments so
            // callees outside the cycle still get annotations.
            for &head in heads.keys() {
                merge(fi, head, LoopKind::Unknown, 0, f.blocks[head].term_line);
            }
            for b in &f.blocks {
                for inst in &b.insts {
                    let Inst::Call { func, args, .. } = inst else { continue };
                    let Some(&ci) = fn_index.get(func.as_str()) else { continue };
                    let key = (ci, vec![None; args.len()]);
                    if seen.insert(key.clone()) {
                        *ctx_count.entry(ci).or_insert(0) += 1;
                        work.push(key);
                    }
                }
            }
            continue;
        }
        let an = FnAnalysis::run(f, &ctx);
        for (&head, latches) in &heads {
            let (kind, iters) = an.classify(head, latches);
            merge(fi, head, kind, iters, f.blocks[head].term_line);
        }
        for (callee, mut cctx) in an.calls() {
            let Some(&ci) = fn_index.get(callee.as_str()) else { continue };
            let n = ctx_count.entry(ci).or_insert(0);
            if *n >= MAX_CONTEXTS {
                cctx = vec![None; cctx.len()];
            }
            let key = (ci, cctx);
            if seen.insert(key.clone()) {
                *n += 1;
                work.push(key);
            }
        }
    }

    acc.into_iter()
        .map(|((fi, head), (kind, iters, line))| LoopBound {
            function: ir.functions[fi].name.clone(),
            head,
            iters,
            kind,
            line,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::OptLevel;
    use crate::frontend;
    use crate::ir::lower;
    use crate::opt::optimize_program;

    fn bounds_at(src: &str, opt: OptLevel) -> Vec<LoopBound> {
        let p = frontend(src).unwrap();
        let mut ir = lower(&p).unwrap();
        for f in &mut ir.functions {
            crate::opt::prune_unreachable(f);
        }
        if opt == OptLevel::O2 {
            optimize_program(&mut ir);
        }
        loop_bounds(&ir)
    }

    const LEVELS: [OptLevel; 2] = [OptLevel::O0, OptLevel::O2];

    #[test]
    fn literal_counted_loop_has_trip_plus_one() {
        for opt in LEVELS {
            let b = bounds_at(
                "u32 f() { u32 s = 0; for (u32 i = 0; i < 10; i = i + 1) { s = s + i; } return s; }",
                opt,
            );
            assert_eq!(b.len(), 1, "{opt}: {b:?}");
            assert_eq!((b[0].kind, b[0].iters), (LoopKind::Counted, 11), "{opt}");
        }
    }

    #[test]
    fn nested_loops_each_get_their_own_bound() {
        for opt in LEVELS {
            let b = bounds_at(
                "u32 f() { u32 s = 0;
                   for (u32 i = 0; i < 4; i = i + 1) {
                     for (u32 j = 0; j < 7; j = j + 1) { s = s + j; }
                   } return s; }",
                opt,
            );
            assert_eq!(b.len(), 2, "{opt}: {b:?}");
            let mut iters: Vec<u32> = b.iter().map(|l| l.iters).collect();
            iters.sort();
            assert_eq!(iters, vec![5, 8], "{opt}");
        }
    }

    #[test]
    fn param_bound_resolves_per_call_context_and_maximizes() {
        for opt in LEVELS {
            let b = bounds_at(
                "u32 g(u32 n) { u32 s = 0; for (u32 i = 0; i < n; i = i + 1) { s = s + i; }
                   return s; }
                 u32 f() { return g(5) + g(9); }",
                opt,
            );
            assert_eq!(b.len(), 1, "{opt}: {b:?}");
            assert_eq!((b[0].kind, b[0].iters), (LoopKind::Counted, 10), "{opt}");
        }
    }

    #[test]
    fn derived_bound_on_a_context_dead_arm_still_resolves() {
        // With len = 96 the else arm is dead, but its `i < len` bound
        // still evaluates; the then-arm's derived `rem` resolves too.
        for opt in LEVELS {
            let b = bounds_at(
                "u32 g(u32 len) { u32 s = 0;
                   if (len > 64) { u32 rem = len - 64;
                     for (u32 i = 0; i < rem; i = i + 1) { s = s + i; } }
                   else { for (u32 i = 0; i < len; i = i + 1) { s = s + i; } }
                   return s; }
                 u32 f() { return g(96); }",
                opt,
            );
            assert_eq!(b.len(), 2, "{opt}: {b:?}");
            assert!(b.iter().all(|l| l.kind == LoopKind::Counted), "{opt}: {b:?}");
            let mut iters: Vec<u32> = b.iter().map(|l| l.iters).collect();
            iters.sort();
            assert_eq!(iters, vec![33, 97], "{opt}");
        }
    }

    #[test]
    fn mmio_poll_is_host_blocking() {
        for opt in LEVELS {
            let b = bounds_at(
                "u32 f() { u32* status = (u32*)0x10000000;
                   while (status[0] == 0) { }
                   u32* data = (u32*)0x10000004; return data[0]; }",
                opt,
            );
            assert_eq!(b.len(), 1, "{opt}: {b:?}");
            assert_eq!((b[0].kind, b[0].iters), (LoopKind::Host, 2), "{opt}");
        }
    }

    #[test]
    fn exitless_while_true_is_the_server_loop() {
        for opt in LEVELS {
            let b = bounds_at("void f() { u32 x = 0; while (1) { x = x + 1; } }", opt);
            assert_eq!(b.len(), 1, "{opt}: {b:?}");
            assert_eq!((b[0].kind, b[0].iters), (LoopKind::Server, 2), "{opt}");
        }
    }

    #[test]
    fn large_array_zeroing_pointer_loop_is_bounded() {
        for opt in LEVELS {
            let b = bounds_at("u32 f() { u32 a[40]; return a[0]; }", opt);
            assert_eq!(b.len(), 1, "{opt}: {b:?}");
            // 40 words zeroed 4 bytes at a time: 40 trips + exit check.
            assert_eq!((b[0].kind, b[0].iters), (LoopKind::Counted, 41), "{opt}");
        }
    }

    #[test]
    fn unresolved_bound_is_unknown_with_the_source_line() {
        for opt in LEVELS {
            let b = bounds_at(
                "u32 f(u32 n) {\n  u32 s = 0;\n  for (u32 i = 0; i < n; i = i + 1) \
                 { s = s + i; }\n  return s;\n}",
                opt,
            );
            assert_eq!(b.len(), 1, "{opt}: {b:?}");
            assert_eq!(b[0].kind, LoopKind::Unknown, "{opt}");
            assert_eq!(b[0].line, 3, "{opt}");
            let d = b[0].diagnostic().expect("unknown loops carry a diagnostic");
            assert_eq!(d.code, "LB-UNBOUNDED");
            assert!(d.to_string().contains("f:3"), "{d}");
        }
    }

    #[test]
    fn recursion_marks_loops_unknown_without_diverging() {
        for opt in LEVELS {
            let b = bounds_at(
                "u32 f(u32 n) { u32 s = 0; for (u32 i = 0; i < 4; i = i + 1) { s = s + i; }
                   if (n) { s = s + f(n - 1); } return s; }",
                opt,
            );
            assert_eq!(b.len(), 1, "{opt}: {b:?}");
            assert_eq!(b[0].kind, LoopKind::Unknown, "{opt}");
        }
    }

    #[test]
    fn annotation_round_trips_label_and_kind() {
        let b = bounds_at(
            "u32 f() { u32 s = 0; for (u32 i = 0; i < 3; i = i + 1) { s = s + i; } return s; }",
            OptLevel::O0,
        );
        let line = b[0].annotation();
        assert!(line.starts_with("# loopbound .Lf_"), "{line}");
        assert!(line.contains("kind=counted iters=4"), "{line}");
        assert_eq!(LoopKind::from_name("counted"), Some(LoopKind::Counted));
        assert_eq!(LoopKind::from_name("bogus"), None);
    }
}
