//! IR optimization passes.
//!
//! All passes are semantics-preserving on the observable state (memory,
//! call effects, returned values). Loads are never removed or reordered —
//! on the SoC, loads can hit MMIO and must happen exactly as written.
//!
//! * [`prune_unreachable`] — drop blocks not reachable from the entry
//!   (run at every optimization level: lowering creates dead blocks after
//!   `return`/`break`/`continue`).
//! * [`optimize`] — the `-O2` pipeline: per-block constant folding,
//!   copy propagation, immediate fusion, branch folding, and global dead
//!   code elimination.

use std::collections::HashMap;

use crate::ir::{Inst, IrFunction, IrOp, IrProgram, Operand, Term, VReg};

/// Remove blocks unreachable from the entry and remap block ids.
pub fn prune_unreachable(f: &mut IrFunction) {
    let n = f.blocks.len();
    let mut reachable = vec![false; n];
    let mut stack = vec![0usize];
    while let Some(b) = stack.pop() {
        if reachable[b] {
            continue;
        }
        reachable[b] = true;
        match f.blocks[b].term.as_ref().expect("terminated") {
            Term::Jump(t) => stack.push(*t),
            Term::Br { then_b, else_b, .. } => {
                stack.push(*then_b);
                stack.push(*else_b);
            }
            Term::Ret { .. } => {}
        }
    }
    let mut remap = vec![usize::MAX; n];
    let mut kept = Vec::new();
    for (i, block) in f.blocks.drain(..).enumerate() {
        if reachable[i] {
            remap[i] = kept.len();
            kept.push(block);
        }
    }
    for b in &mut kept {
        match b.term.as_mut().expect("terminated") {
            Term::Jump(t) => *t = remap[*t],
            Term::Br { then_b, else_b, .. } => {
                *then_b = remap[*then_b];
                *else_b = remap[*else_b];
            }
            Term::Ret { .. } => {}
        }
    }
    f.blocks = kept;
}

/// Whether `v` fits a 12-bit signed immediate.
fn fits_imm12(v: u32) -> bool {
    let s = v as i32;
    (-2048..2048).contains(&s)
}

/// Whether `op` has an immediate form with operand `v`.
fn has_imm_form(op: IrOp, v: u32) -> bool {
    match op {
        IrOp::Add | IrOp::And | IrOp::Or | IrOp::Xor | IrOp::Sltu => fits_imm12(v),
        IrOp::Sll | IrOp::Srl => v < 32,
        _ => false,
    }
}

/// The `-O2` optimization pipeline for one function.
pub fn optimize(f: &mut IrFunction) {
    prune_unreachable(f);
    for _ in 0..3 {
        fold_block_local(f);
        dce(f);
    }
    prune_unreachable(f);
}

/// Optimize a whole program at `-O2`.
pub fn optimize_program(p: &mut IrProgram) {
    for f in &mut p.functions {
        optimize(f);
    }
}

/// Per-block constant folding, copy propagation, and immediate fusion.
fn fold_block_local(f: &mut IrFunction) {
    for block in &mut f.blocks {
        let mut consts: HashMap<VReg, u32> = HashMap::new();
        // copy_of[v] = w means v currently holds the same value as w.
        let mut copy_of: HashMap<VReg, VReg> = HashMap::new();

        // Invalidate all facts that mention `dst`.
        fn kill(dst: VReg, consts: &mut HashMap<VReg, u32>, copy_of: &mut HashMap<VReg, VReg>) {
            consts.remove(&dst);
            copy_of.remove(&dst);
            copy_of.retain(|_, src| *src != dst);
        }

        // Resolve a source vreg through the copy map.
        fn resolve(v: VReg, copy_of: &HashMap<VReg, VReg>) -> VReg {
            let mut v = v;
            let mut depth = 0;
            while let Some(&w) = copy_of.get(&v) {
                v = w;
                depth += 1;
                if depth > 32 {
                    break;
                }
            }
            v
        }

        for inst in &mut block.insts {
            match inst {
                Inst::Const { dst, value } => {
                    let (d, v) = (*dst, *value);
                    kill(d, &mut consts, &mut copy_of);
                    consts.insert(d, v);
                }
                Inst::Copy { dst, src } => {
                    let s = resolve(*src, &copy_of);
                    *src = s;
                    let d = *dst;
                    let cv = consts.get(&s).copied();
                    kill(d, &mut consts, &mut copy_of);
                    if let Some(v) = cv {
                        *inst = Inst::Const { dst: d, value: v };
                        consts.insert(d, v);
                    } else if s != d {
                        copy_of.insert(d, s);
                    }
                }
                Inst::Bin { op, dst, a, b } => {
                    *a = resolve(*a, &copy_of);
                    if let Operand::Reg(r) = b {
                        let rr = resolve(*r, &copy_of);
                        *b = Operand::Reg(rr);
                    }
                    let ca = consts.get(a).copied();
                    let cb = match b {
                        Operand::Reg(r) => consts.get(r).copied(),
                        Operand::Imm(i) => Some(*i),
                    };
                    let (op2, d) = (*op, *dst);
                    match (ca, cb) {
                        (Some(x), Some(y)) => {
                            let v = op2.eval(x, y);
                            kill(d, &mut consts, &mut copy_of);
                            *inst = Inst::Const { dst: d, value: v };
                            consts.insert(d, v);
                        }
                        (_, Some(y)) if has_imm_form(op2, y) => {
                            *b = Operand::Imm(y);
                            kill(d, &mut consts, &mut copy_of);
                        }
                        // a + 0 / a ^ 0 / a | 0 / a << 0 / a >> 0 → copy
                        (Some(x), None) if op2 == IrOp::Add && x == 0 => {
                            // 0 + b → copy of b
                            if let Operand::Reg(r) = *b {
                                kill(d, &mut consts, &mut copy_of);
                                *inst = Inst::Copy { dst: d, src: r };
                                if r != d {
                                    copy_of.insert(d, r);
                                }
                            } else {
                                kill(d, &mut consts, &mut copy_of);
                            }
                        }
                        _ => {
                            kill(d, &mut consts, &mut copy_of);
                        }
                    }
                }
                Inst::Load { dst, addr, .. } => {
                    *addr = resolve(*addr, &copy_of);
                    kill(*dst, &mut consts, &mut copy_of);
                }
                Inst::Store { addr, src, .. } => {
                    *addr = resolve(*addr, &copy_of);
                    *src = resolve(*src, &copy_of);
                }
                Inst::AddrOfGlobal { dst, .. } | Inst::AddrOfLocal { dst, .. } => {
                    kill(*dst, &mut consts, &mut copy_of);
                }
                Inst::Call { dst, args, .. } => {
                    for a in args.iter_mut() {
                        *a = resolve(*a, &copy_of);
                    }
                    if let Some(d) = dst {
                        kill(*d, &mut consts, &mut copy_of);
                    }
                }
            }
        }
        // Branch folding on a locally-known constant condition.
        if let Some(Term::Br { cond, then_b, else_b }) = block.term.clone() {
            let c = resolve(cond, &copy_of);
            if let Some(&v) = consts.get(&c) {
                block.term = Some(Term::Jump(if v != 0 { then_b } else { else_b }));
            } else if c != cond {
                block.term = Some(Term::Br { cond: c, then_b, else_b });
            }
        }
        if let Some(Term::Ret { value: Some(v) }) = block.term.clone() {
            let r = resolve(v, &copy_of);
            if r != v {
                block.term = Some(Term::Ret { value: Some(r) });
            }
        }
    }
}

/// Remove pure instructions whose destination is never read anywhere.
///
/// Because vregs are not SSA, a vreg is "dead" only if no instruction or
/// terminator in the whole function reads it. Loads, stores, and calls
/// are never removed.
fn dce(f: &mut IrFunction) {
    let mut read = vec![false; f.nvregs as usize];
    let mark = |v: VReg, read: &mut Vec<bool>| {
        if (v as usize) < read.len() {
            read[v as usize] = true;
        }
    };
    for b in &f.blocks {
        for i in &b.insts {
            match i {
                Inst::Const { .. } => {}
                Inst::Bin { a, b, .. } => {
                    mark(*a, &mut read);
                    if let Operand::Reg(r) = b {
                        mark(*r, &mut read);
                    }
                }
                Inst::Copy { src, .. } => mark(*src, &mut read),
                Inst::Load { addr, .. } => mark(*addr, &mut read),
                Inst::Store { addr, src, .. } => {
                    mark(*addr, &mut read);
                    mark(*src, &mut read);
                }
                Inst::AddrOfGlobal { .. } | Inst::AddrOfLocal { .. } => {}
                Inst::Call { args, .. } => {
                    for a in args {
                        mark(*a, &mut read);
                    }
                }
            }
        }
        match b.term.as_ref().expect("terminated") {
            Term::Br { cond, .. } => mark(*cond, &mut read),
            Term::Ret { value: Some(v) } => mark(*v, &mut read),
            _ => {}
        }
    }
    for b in &mut f.blocks {
        // Keep the parallel source-line vector aligned with the
        // surviving instructions.
        let keep: Vec<bool> = b
            .insts
            .iter()
            .map(|i| match i {
                Inst::Const { dst, .. }
                | Inst::Bin { dst, .. }
                | Inst::Copy { dst, .. }
                | Inst::AddrOfGlobal { dst, .. }
                | Inst::AddrOfLocal { dst, .. } => read[*dst as usize],
                _ => true,
            })
            .collect();
        let mut it = keep.iter();
        b.insts.retain(|_| *it.next().expect("keep mask covers insts"));
        let mut it = keep.iter();
        b.lines.retain(|_| *it.next().expect("keep mask covers lines"));
    }
}

/// Count IR instructions (for size/effort reporting).
pub fn inst_count(f: &IrFunction) -> usize {
    f.blocks.iter().map(|b| b.insts.len() + 1).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend;
    use crate::ir::lower;
    use crate::ireval::IrEval;

    fn both(src: &str, f: &str, args: &[u32]) -> (u32, u32) {
        let p = frontend(src).unwrap();
        let ir = lower(&p).unwrap();
        let plain = IrEval::new(&ir).call(f, args).unwrap();
        let mut opt_ir = ir.clone();
        optimize_program(&mut opt_ir);
        let opt = IrEval::new(&opt_ir).call(f, args).unwrap();
        (plain, opt)
    }

    #[test]
    fn optimization_preserves_semantics() {
        let src = "
            u32 f(u32 a, u32 b) {
                u32 x = a + 1;
                u32 y = x * 4;
                u32 z = y - b;
                if (z > 100 && a < 50) { z = z / 3; }
                return z ^ 0xff;
            }
        ";
        for (a, b) in [(0, 0), (50, 3), (1000, 7), (u32::MAX, 1)] {
            let (plain, opt) = both(src, "f", &[a, b]);
            assert_eq!(plain, opt, "a={a} b={b}");
        }
    }

    #[test]
    fn folding_shrinks_code() {
        let src = "u32 f(u32 a) { u32 x = 2 + 3; u32 y = x * 4; return a + y; }";
        let p = frontend(src).unwrap();
        let ir = lower(&p).unwrap();
        let before = inst_count(ir.function("f").unwrap());
        let mut o = ir.clone();
        optimize_program(&mut o);
        let after = inst_count(o.function("f").unwrap());
        assert!(after < before, "{after} !< {before}");
        let (plain, opt) = both(src, "f", &[10]);
        assert_eq!(plain, 30);
        assert_eq!(opt, 30);
    }

    #[test]
    fn dce_keeps_source_lines_aligned() {
        let src = "u32 f(u32 a) { u32 x = 2 + 3; u32 y = x * 4; return a + y; }";
        let p = frontend(src).unwrap();
        let mut ir = lower(&p).unwrap();
        optimize_program(&mut ir);
        for b in &ir.function("f").unwrap().blocks {
            assert_eq!(b.insts.len(), b.lines.len(), "dce must retain lines in lockstep");
        }
    }

    #[test]
    fn prune_removes_dead_blocks() {
        let src = "u32 f(u32 a) { return a; a = a + 1; return a; }";
        let p = frontend(src).unwrap();
        let ir = lower(&p).unwrap();
        let mut f = ir.function("f").unwrap().clone();
        let before = f.blocks.len();
        prune_unreachable(&mut f);
        assert!(f.blocks.len() < before);
    }

    #[test]
    fn loops_survive_optimization() {
        let src = "
            u32 f(u32 n) {
                u32 s = 0;
                for (u32 i = 0; i < n; i = i + 1) { s = s + i * i; }
                return s;
            }
        ";
        for n in [0, 1, 5, 100] {
            let (plain, opt) = both(src, "f", &[n]);
            assert_eq!(plain, opt, "n={n}");
        }
    }

    #[test]
    fn while_true_with_break_folds() {
        let src = "
            u32 f(u32 n) {
                u32 i = 0;
                while (1) {
                    if (i >= n) { break; }
                    i = i + 1;
                }
                return i;
            }
        ";
        let (plain, opt) = both(src, "f", &[7]);
        assert_eq!(plain, 7);
        assert_eq!(opt, 7);
    }
}
