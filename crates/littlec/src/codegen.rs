//! RV32IM code generation from littlec IR.
//!
//! This is the stand-in for the paper's CompCert backend: it emits
//! textual RV32IM assembly (the "App Impl \[Asm\]" level) that follows
//! the RISC-V calling convention — `handle` expects the state, command,
//! and response buffer pointers in `a0`, `a1`, and `a2` (paper §4.2).
//!
//! Three optimization levels are provided (paper Table 5 compares
//! CompCert `-O1` against GCC `-O2`):
//!
//! * [`OptLevel::O0`] — every virtual register lives in a stack slot;
//! * [`OptLevel::O1`] — the hottest vregs get dedicated callee-saved
//!   registers ([`crate::regalloc`]);
//! * [`OptLevel::O2`] — additionally runs the IR optimization pipeline
//!   ([`crate::opt`]): constant folding, copy propagation, immediate
//!   fusion, branch folding, and dead code elimination.
//!
//! Register conventions inside generated code: `t0`/`t1` are operand
//! scratch, `t2` is result scratch, `t6` is the large-frame-offset
//! scratch, `s0`–`s11` are allocated to hot vregs, and `a0`–`a7` carry
//! arguments and return values only.

use std::fmt::Write as _;

use crate::ast::{Global, Program, Ty};
use crate::ir::{lower, Inst, IrFunction, IrOp, IrProgram, Operand, Term, VReg, Width};
use crate::opt::{optimize_program, prune_unreachable};
use crate::regalloc::{allocate, Allocation, Loc, REG_NAMES};
use crate::LcError;

/// Compiler optimization level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OptLevel {
    /// No optimization: all vregs in stack slots.
    O0,
    /// Register allocation only (the "verified compiler" datapoint).
    O1,
    /// Register allocation + IR optimizations (the "GCC -O2" datapoint).
    O2,
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptLevel::O0 => f.write_str("-O0"),
            OptLevel::O1 => f.write_str("-O1"),
            OptLevel::O2 => f.write_str("-O2"),
        }
    }
}

/// Compile a type-checked program to RV32IM assembly text.
pub fn compile(program: &Program, opt: OptLevel) -> Result<String, LcError> {
    compile_traced(program, opt, &parfait_telemetry::Telemetry::disabled())
}

/// [`compile`] with telemetry: per-pass spans (`littlec.lower`,
/// `littlec.opt`, `littlec.codegen` — the latter covers register
/// allocation and emission) under a `littlec.compile` parent.
pub fn compile_traced(
    program: &Program,
    opt: OptLevel,
    tel: &parfait_telemetry::Telemetry,
) -> Result<String, LcError> {
    let _span = tel.span("littlec.compile");
    let ir = {
        let _span = tel.span("littlec.lower");
        lower(program)?
    };
    Ok(compile_ir_traced(ir, opt, tel))
}

/// Compile an already-lowered IR program to assembly text.
pub fn compile_ir(ir: IrProgram, opt: OptLevel) -> String {
    compile_ir_traced(ir, opt, &parfait_telemetry::Telemetry::disabled())
}

/// [`compile_ir`] with per-pass telemetry spans.
pub fn compile_ir_traced(
    mut ir: IrProgram,
    opt: OptLevel,
    tel: &parfait_telemetry::Telemetry,
) -> String {
    {
        let _span = tel.span("littlec.opt");
        for f in &mut ir.functions {
            prune_unreachable(f);
        }
        if opt == OptLevel::O2 {
            optimize_program(&mut ir);
        }
    }
    let bounds = {
        let _span = tel.span("littlec.loop_bounds");
        crate::loop_bounds::loop_bounds(&ir)
    };
    let k = match opt {
        OptLevel::O0 => 0,
        _ => 20,
    };
    let _span = tel.span("littlec.codegen");
    emit_program_with(&ir, k, opt == OptLevel::O2, &bounds)
}

/// Tracks which spill slot each scratch register currently mirrors, so
/// that `-O2` can skip redundant reloads. Sound because spill slots are
/// not addressable by program pointers (memory-safe littlec code cannot
/// form a pointer into the spill area), so only `sw`/`lw` to `sp`-relative
/// spill offsets — all of which go through the emitter — touch them.
#[derive(Default)]
struct SlotCache {
    /// For t0/t1/t2: the spill offset whose value the register holds.
    slot_of: [Option<u32>; 3],
}

impl SlotCache {
    fn idx(reg: &str) -> Option<usize> {
        match reg {
            "t0" => Some(0),
            "t1" => Some(1),
            "t2" => Some(2),
            _ => None,
        }
    }

    fn lookup(&self, off: u32) -> Option<&'static str> {
        const NAMES: [&str; 3] = ["t0", "t1", "t2"];
        self.slot_of.iter().position(|s| *s == Some(off)).map(|i| NAMES[i])
    }

    /// Register `reg` now holds the value of slot `off`.
    fn note_load(&mut self, off: u32, reg: &str) {
        // At most one register mirrors a given slot.
        for s in &mut self.slot_of {
            if *s == Some(off) {
                *s = None;
            }
        }
        if let Some(i) = Self::idx(reg) {
            self.slot_of[i] = Some(off);
        }
    }

    /// Register `reg` was overwritten with something else.
    fn note_write_reg(&mut self, reg: &str) {
        if let Some(i) = Self::idx(reg) {
            self.slot_of[i] = None;
        }
    }

    /// Slot `off` was overwritten (its cached mirror is stale).
    fn note_write_slot(&mut self, off: u32) {
        for s in &mut self.slot_of {
            if *s == Some(off) {
                *s = None;
            }
        }
    }

    fn clear(&mut self) {
        self.slot_of = [None; 3];
    }
}

struct Emitter {
    out: String,
    alloc: Allocation,
    /// `Some` when the -O2 slot cache is enabled.
    cache: Option<SlotCache>,
    /// Byte offset of each frame-slot array.
    array_off: Vec<u32>,
    /// Offset of vreg spill area.
    spill_base: u32,
    /// Offset where saved s-registers start.
    save_base: u32,
    /// Offset of the saved return address.
    ra_off: u32,
    /// Total frame size.
    frame: u32,
}

impl Emitter {
    fn line(&mut self, s: &str) {
        let _ = writeln!(self.out, "    {s}");
    }

    fn label(&mut self, s: &str) {
        // Control can join here from elsewhere: scratch contents unknown.
        if let Some(c) = &mut self.cache {
            c.clear();
        }
        let _ = writeln!(self.out, "{s}:");
    }

    fn cache_clear(&mut self) {
        if let Some(c) = &mut self.cache {
            c.clear();
        }
    }

    fn note_write_reg(&mut self, reg: &str) {
        if let Some(c) = &mut self.cache {
            c.note_write_reg(reg);
        }
    }

    /// Emit `lw rd, off(sp)` handling large offsets via t6.
    fn lw_sp(&mut self, rd: &str, off: u32) {
        if off < 2048 {
            self.line(&format!("lw {rd}, {off}(sp)"));
        } else {
            self.line(&format!("li t6, {off}"));
            self.line("add t6, t6, sp");
            self.line(&format!("lw {rd}, 0(t6)"));
        }
        if let Some(c) = &mut self.cache {
            c.note_load(off, rd);
        }
    }

    fn sw_sp(&mut self, rs: &str, off: u32) {
        if off < 2048 {
            self.line(&format!("sw {rs}, {off}(sp)"));
        } else {
            self.line(&format!("li t6, {off}"));
            self.line("add t6, t6, sp");
            self.line(&format!("sw {rs}, 0(t6)"));
        }
        if let Some(c) = &mut self.cache {
            c.note_write_slot(off);
            c.note_load(off, rs);
        }
    }

    fn addr_of_sp(&mut self, rd: &str, off: u32) {
        if off < 2048 {
            self.line(&format!("addi {rd}, sp, {off}"));
        } else {
            self.line(&format!("li {rd}, {off}"));
            self.line(&format!("add {rd}, {rd}, sp"));
        }
    }

    fn slot_off(&self, n: u32) -> u32 {
        self.spill_base + 4 * n
    }

    /// Make sure vreg `v` is readable in some register; returns its name.
    /// `scratch` must not hold a live value the caller still needs.
    fn read(&mut self, v: VReg, scratch: &'static str) -> String {
        match self.alloc.locs[v as usize] {
            Loc::Reg(i) => REG_NAMES[i as usize].to_string(),
            Loc::Slot(n) => {
                let off = self.slot_off(n);
                if let Some(c) = &self.cache {
                    if let Some(r) = c.lookup(off) {
                        return r.to_string();
                    }
                }
                self.lw_sp(scratch, off);
                scratch.to_string()
            }
        }
    }

    /// Read a second operand into a scratch register that is guaranteed
    /// not to clobber `avoid` (the register holding the first operand).
    fn read_avoiding(&mut self, v: VReg, avoid: &str) -> String {
        let scratch: &'static str = if avoid == "t1" { "t0" } else { "t1" };
        self.read(v, scratch)
    }

    /// Register into which vreg `v`'s new value should be computed;
    /// returns (register, needs_store).
    fn dst(&mut self, v: VReg) -> (String, bool) {
        match self.alloc.locs[v as usize] {
            Loc::Reg(i) => (REG_NAMES[i as usize].to_string(), false),
            Loc::Slot(_) => ("t2".to_string(), true),
        }
    }

    /// Store the computed value back if the destination is a slot.
    fn finish(&mut self, v: VReg, reg: &str, needs_store: bool) {
        if needs_store {
            let off = match self.alloc.locs[v as usize] {
                Loc::Slot(n) => self.slot_off(n),
                Loc::Reg(_) => unreachable!("finish only for slots"),
            };
            self.sw_sp(reg, off);
        }
    }

    fn emit_inst(&mut self, inst: &Inst) {
        match inst {
            Inst::Const { dst, value } => {
                let (r, st) = self.dst(*dst);
                self.note_write_reg(&r);
                self.line(&format!("li {r}, {}", *value as i32));
                self.finish(*dst, &r, st);
            }
            Inst::Copy { dst, src } => {
                let s = self.read(*src, "t0");
                let (r, st) = self.dst(*dst);
                if r != s {
                    self.note_write_reg(&r);
                    self.line(&format!("mv {r}, {s}"));
                }
                self.finish(*dst, &r, st);
            }
            Inst::Bin { op, dst, a, b } => {
                let ra = self.read(*a, "t0");
                match b {
                    Operand::Imm(i) => {
                        let (rd, st) = self.dst(*dst);
                        let m = match op {
                            IrOp::Add => "addi",
                            IrOp::And => "andi",
                            IrOp::Or => "ori",
                            IrOp::Xor => "xori",
                            IrOp::Sltu => "sltiu",
                            IrOp::Sll => "slli",
                            IrOp::Srl => "srli",
                            other => unreachable!("no immediate form for {other:?}"),
                        };
                        self.note_write_reg(&rd);
                        self.line(&format!("{m} {rd}, {ra}, {}", *i as i32));
                        self.finish(*dst, &rd, st);
                    }
                    Operand::Reg(rb) => {
                        let rb = self.read_avoiding(*rb, &ra);
                        let (rd, st) = self.dst(*dst);
                        let m = match op {
                            IrOp::Add => "add",
                            IrOp::Sub => "sub",
                            IrOp::Mul => "mul",
                            IrOp::Divu => "divu",
                            IrOp::Remu => "remu",
                            IrOp::And => "and",
                            IrOp::Or => "or",
                            IrOp::Xor => "xor",
                            IrOp::Sll => "sll",
                            IrOp::Srl => "srl",
                            IrOp::Sltu => "sltu",
                            IrOp::Mulhu => "mulhu",
                        };
                        self.note_write_reg(&rd);
                        self.line(&format!("{m} {rd}, {ra}, {rb}"));
                        self.finish(*dst, &rd, st);
                    }
                }
            }
            Inst::Load { dst, addr, width } => {
                let ra = self.read(*addr, "t0");
                let (rd, st) = self.dst(*dst);
                let m = match width {
                    Width::Byte => "lbu",
                    Width::Word => "lw",
                };
                self.note_write_reg(&rd);
                self.line(&format!("{m} {rd}, 0({ra})"));
                self.finish(*dst, &rd, st);
            }
            Inst::Store { addr, src, width } => {
                let ra = self.read(*addr, "t0");
                let rs = self.read_avoiding(*src, &ra);
                let m = match width {
                    Width::Byte => "sb",
                    Width::Word => "sw",
                };
                self.line(&format!("{m} {rs}, 0({ra})"));
            }
            Inst::AddrOfLocal { dst, slot } => {
                let off = self.array_off[*slot];
                let (rd, st) = self.dst(*dst);
                self.note_write_reg(&rd);
                self.addr_of_sp(&rd, off);
                self.finish(*dst, &rd, st);
            }
            Inst::AddrOfGlobal { dst, name } => {
                let (rd, st) = self.dst(*dst);
                self.note_write_reg(&rd);
                self.line(&format!("la {rd}, glb_{name}"));
                self.finish(*dst, &rd, st);
            }
            Inst::Call { dst, func, args } => {
                for (i, &a) in args.iter().enumerate() {
                    let areg = format!("a{i}");
                    match self.alloc.locs[a as usize] {
                        Loc::Reg(r) => self.line(&format!("mv {areg}, {}", REG_NAMES[r as usize])),
                        Loc::Slot(n) => {
                            let off = self.slot_off(n);
                            self.lw_sp(&areg, off);
                        }
                    }
                }
                self.line(&format!("call {func}"));
                // The callee clobbers all caller-saved registers.
                self.cache_clear();
                if let Some(d) = dst {
                    match self.alloc.locs[*d as usize] {
                        Loc::Reg(r) => self.line(&format!("mv {}, a0", REG_NAMES[r as usize])),
                        Loc::Slot(n) => {
                            let off = self.slot_off(n);
                            self.sw_sp("a0", off);
                        }
                    }
                }
            }
        }
    }
}

/// Emit a whole program as assembly text using up to `k` dedicated
/// registers per function; `cache_slots` enables the -O2 reload cache.
pub fn emit_program(ir: &IrProgram, k: usize, cache_slots: bool) -> String {
    emit_program_with(ir, k, cache_slots, &[])
}

/// [`emit_program`] carrying loop-bound metadata: each bound renders as
/// a `# loopbound .L{fn}_{block} ...` comment line right after the
/// `.text` directive. The assembler strips comments, so the machine
/// code is byte-identical with or without annotations; the `bound`
/// analysis reads them from the assembly *text* before assembling.
pub fn emit_program_with(
    ir: &IrProgram,
    k: usize,
    cache_slots: bool,
    bounds: &[crate::loop_bounds::LoopBound],
) -> String {
    let mut out = String::new();
    out.push_str(".text\n");
    for b in bounds {
        out.push_str(&b.annotation());
        out.push('\n');
    }
    for f in &ir.functions {
        emit_function(&mut out, f, k, cache_slots);
    }
    // Globals.
    out.push_str(".data\n");
    for g in &ir.globals {
        match g {
            Global::ConstArray { elem, name, values, .. } => {
                out.push_str(".align 2\n");
                let _ = writeln!(out, "glb_{name}:");
                match elem {
                    Ty::U32 => {
                        for chunk in values.chunks(8) {
                            let row: Vec<String> =
                                chunk.iter().map(|v| format!("{:#010x}", v)).collect();
                            let _ = writeln!(out, "    .word {}", row.join(", "));
                        }
                    }
                    _ => {
                        for chunk in values.chunks(16) {
                            let row: Vec<String> =
                                chunk.iter().map(|v| format!("{:#04x}", v)).collect();
                            let _ = writeln!(out, "    .byte {}", row.join(", "));
                        }
                    }
                }
            }
            Global::StaticArray { elem, name, len, .. } => {
                let size = len * if *elem == Ty::U32 { 4 } else { 1 };
                out.push_str(".align 2\n");
                let _ = writeln!(out, "glb_{name}:");
                let _ = writeln!(out, "    .zero {size}");
            }
            Global::ConstScalar { .. } => {}
        }
    }
    out
}

fn emit_function(out: &mut String, f: &IrFunction, k: usize, cache_slots: bool) {
    let alloc = allocate(f, k);
    // Frame layout: [arrays][spill slots][saved s-regs][ra].
    let mut array_off = Vec::with_capacity(f.frame.len());
    let mut cursor = 0u32;
    for s in &f.frame {
        array_off.push(cursor);
        cursor += s.size;
    }
    let spill_base = cursor;
    cursor += 4 * alloc.nslots;
    let save_base = cursor;
    cursor += 4 * alloc.used_sregs.len() as u32;
    let ra_off = cursor;
    cursor += 4;
    let frame = (cursor + 15) & !15;

    let mut e = Emitter {
        out: String::new(),
        alloc,
        cache: cache_slots.then(SlotCache::default),
        array_off,
        spill_base,
        save_base,
        ra_off,
        frame,
    };
    e.label(&f.name);
    // Prologue.
    if e.frame > 0 {
        if e.frame <= 2048 {
            e.line(&format!("addi sp, sp, -{}", e.frame));
        } else {
            e.line(&format!("li t6, {}", e.frame));
            e.line("sub sp, sp, t6");
        }
    }
    let ra_off = e.ra_off;
    e.sw_sp("ra", ra_off);
    let save_base = e.save_base;
    let used = e.alloc.used_sregs.clone();
    for (j, &s) in used.iter().enumerate() {
        let off = save_base + 4 * j as u32;
        e.sw_sp(REG_NAMES[s as usize], off);
    }
    // Move parameters into their locations.
    let params = f.params.clone();
    for (i, &p) in params.iter().enumerate() {
        let areg = format!("a{i}");
        match e.alloc.locs[p as usize] {
            Loc::Reg(r) => e.line(&format!("mv {}, {areg}", REG_NAMES[r as usize])),
            Loc::Slot(n) => {
                let off = e.slot_off(n);
                e.sw_sp(&areg, off);
            }
        }
    }
    // Blocks, in order, with fall-through elision.
    let nblocks = f.blocks.len();
    for (bi, b) in f.blocks.iter().enumerate() {
        e.label(&format!(".L{}_{}", f.name, bi));
        for inst in &b.insts {
            e.emit_inst(inst);
        }
        match b.term.as_ref().expect("terminated") {
            Term::Jump(t) => {
                if *t != bi + 1 {
                    e.line(&format!("j .L{}_{}", f.name, t));
                }
            }
            Term::Br { cond, then_b, else_b } => {
                let c = e.read(*cond, "t0");
                if *else_b == bi + 1 {
                    e.line(&format!("bnez {c}, .L{}_{}", f.name, then_b));
                } else if *then_b == bi + 1 {
                    e.line(&format!("beqz {c}, .L{}_{}", f.name, else_b));
                } else {
                    e.line(&format!("bnez {c}, .L{}_{}", f.name, then_b));
                    e.line(&format!("j .L{}_{}", f.name, else_b));
                }
            }
            Term::Ret { value } => {
                if let Some(v) = value {
                    let r = e.read(*v, "t0");
                    if r != "a0" {
                        e.line(&format!("mv a0, {r}"));
                    }
                }
                if bi != nblocks - 1 {
                    e.line(&format!("j .L{}_ret", f.name));
                } else {
                    // Fall through to the epilogue.
                }
            }
        }
    }
    // Epilogue.
    e.label(&format!(".L{}_ret", f.name));
    for (j, &s) in used.iter().enumerate() {
        let off = save_base + 4 * j as u32;
        e.lw_sp(REG_NAMES[s as usize], off);
    }
    e.lw_sp("ra", ra_off);
    if e.frame > 0 {
        if e.frame < 2048 {
            e.line(&format!("addi sp, sp, {}", e.frame));
        } else {
            e.line(&format!("li t6, {}", e.frame));
            e.line("add sp, sp, t6");
        }
    }
    e.line("ret");
    out.push_str(&e.out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend;
    use parfait_riscv::asm::assemble;
    use parfait_riscv::machine::Machine;

    fn compile_and_run(src: &str, opt: OptLevel, func: &str, args: &[u32]) -> u32 {
        let p = frontend(src).unwrap();
        let asm = compile(&p, opt).unwrap();
        let prog = assemble(&asm).unwrap_or_else(|e| panic!("asm error: {e}\n{asm}"));
        let mut m = Machine::with_program(&prog);
        let entry = prog.address_of(func).unwrap();
        m.call(entry, args, 10_000_000).unwrap()
    }

    const ALL: [OptLevel; 3] = [OptLevel::O0, OptLevel::O1, OptLevel::O2];

    #[test]
    fn simple_arithmetic_all_levels() {
        for opt in ALL {
            let r = compile_and_run(
                "u32 f(u32 a, u32 b) { return (a + b) * (a - b); }",
                opt,
                "f",
                &[7, 3],
            );
            assert_eq!(r, 40, "{opt}");
        }
    }

    #[test]
    fn loops_and_arrays_all_levels() {
        let src = "
            u32 f(u32 n) {
                u32 a[8];
                for (u32 i = 0; i < n; i = i + 1) { a[i] = i * i; }
                u32 s = 0;
                for (u32 i = 0; i < n; i = i + 1) { s = s + a[i]; }
                return s;
            }
        ";
        for opt in ALL {
            assert_eq!(compile_and_run(src, opt, "f", &[5]), 30, "{opt}");
        }
    }

    #[test]
    fn nested_calls_all_levels() {
        let src = "
            u32 dbl(u32 x) { return x + x; }
            u32 quad(u32 x) { return dbl(dbl(x)); }
            u32 f(u32 x) { return quad(x) + dbl(x) + 1; }
        ";
        for opt in ALL {
            assert_eq!(compile_and_run(src, opt, "f", &[10]), 61, "{opt}");
        }
    }

    #[test]
    fn globals_all_levels() {
        let src = "
            const u32 K[4] = {2, 3, 5, 7};
            static u8 out[4];
            u32 f() {
                u32 p = 1;
                for (u32 i = 0; i < 4; i = i + 1) {
                    p = p * K[i];
                    out[i] = (u8)p;
                }
                return p + out[0];
            }
        ";
        for opt in ALL {
            assert_eq!(compile_and_run(src, opt, "f", &[]), 210 + 2, "{opt}");
        }
    }

    #[test]
    fn o2_is_faster_than_o0() {
        let src = "
            u32 f(u32 n) {
                u32 s = 0;
                for (u32 i = 0; i < n; i = i + 1) { s = s + (i ^ 3) * 5; }
                return s;
            }
        ";
        let p = frontend(src).unwrap();
        let mut counts = Vec::new();
        for opt in ALL {
            let asm = compile(&p, opt).unwrap();
            let prog = assemble(&asm).unwrap();
            let mut m = Machine::with_program(&prog);
            let entry = prog.address_of("f").unwrap();
            m.call(entry, &[1000], 10_000_000).unwrap();
            counts.push(m.instret);
        }
        assert!(counts[2] < counts[1], "O2 {} !< O1 {}", counts[2], counts[1]);
        assert!(counts[1] < counts[0], "O1 {} !< O0 {}", counts[1], counts[0]);
        // The gap between unoptimized and optimized should be substantial
        // (Table 5 reports ~7x between CompCert -O1 and GCC -O2).
        assert!(counts[0] as f64 / counts[2] as f64 > 2.0);
    }

    #[test]
    fn eight_params() {
        let src = "u32 f(u32 a, u32 b, u32 c, u32 d, u32 e, u32 g, u32 h, u32 i) {
            return a + b + c + d + e + g + h + i;
        }";
        for opt in ALL {
            assert_eq!(compile_and_run(src, opt, "f", &[1, 2, 3, 4, 5, 6, 7, 8]), 36, "{opt}");
        }
    }

    #[test]
    fn large_frames_work() {
        // A function with a frame larger than the 12-bit immediate range.
        let src = "
            u32 f(u32 n) {
                u32 a[300];
                u32 b[300];
                for (u32 i = 0; i < 300; i = i + 1) { a[i] = i; b[i] = i * 2; }
                u32 s = 0;
                for (u32 i = 0; i < 300; i = i + 1) { s = s + a[i] + b[i]; }
                return s + n;
            }
        ";
        let expect: u32 = (0..300u32).map(|i| i * 3).sum::<u32>() + 9;
        for opt in ALL {
            assert_eq!(compile_and_run(src, opt, "f", &[9]), expect, "{opt}");
        }
    }
}
