//! IR evaluator — the "App Impl \[C\]" level of abstraction.
//!
//! Executes the CFG-based IR directly over a flat memory, with the same
//! observable buffer semantics as the AST interpreter above it and the
//! compiled assembly below it. Translation validation
//! ([`crate::validate`]) checks all three levels against each other.

use std::collections::HashMap;

use parfait_riscv::machine::Memory;

use crate::ast::{Global, Ty};
use crate::ir::{Inst, IrFunction, IrProgram, Operand, Term, Width};
use crate::LcError;

const GLOBAL_BASE: u32 = 0x2000_0000;
const STACK_BASE: u32 = 0x7000_0000;
const HEAP_BASE: u32 = 0x4000_0000;

/// An evaluator for one IR program.
pub struct IrEval<'p> {
    program: &'p IrProgram,
    global_addrs: HashMap<String, u32>,
    consts: HashMap<String, u32>,
    /// Maximum IR instructions per call.
    pub fuel: u64,
}

impl<'p> IrEval<'p> {
    /// Create an evaluator; computes the global memory layout.
    pub fn new(program: &'p IrProgram) -> Self {
        let mut global_addrs = HashMap::new();
        let mut consts = HashMap::new();
        let mut next = GLOBAL_BASE;
        for g in &program.globals {
            match g {
                Global::ConstArray { elem, name, values, .. } => {
                    let size = values.len() as u32 * if *elem == Ty::U32 { 4 } else { 1 };
                    global_addrs.insert(name.clone(), next);
                    next = next.wrapping_add((size + 3) & !3);
                }
                Global::StaticArray { elem, name, len, .. } => {
                    let size = len * if *elem == Ty::U32 { 4 } else { 1 };
                    global_addrs.insert(name.clone(), next);
                    next = next.wrapping_add((size + 3) & !3);
                }
                Global::ConstScalar { name, value, .. } => {
                    consts.insert(name.clone(), *value);
                }
            }
        }
        IrEval { program, global_addrs, consts, fuel: 500_000_000 }
    }

    fn fresh_memory(&self) -> Memory {
        let mut mem = Memory::default();
        for g in &self.program.globals {
            if let Global::ConstArray { elem, name, values, .. } = g {
                let addr = self.global_addrs[name];
                match elem {
                    Ty::U32 => {
                        for (i, v) in values.iter().enumerate() {
                            mem.store_u32(addr + 4 * i as u32, *v);
                        }
                    }
                    _ => {
                        for (i, v) in values.iter().enumerate() {
                            mem.store_u8(addr + i as u32, *v as u8);
                        }
                    }
                }
            }
        }
        mem
    }

    /// Call `name` with scalar arguments in a fresh memory.
    pub fn call(&self, name: &str, args: &[u32]) -> Result<u32, LcError> {
        let mut st =
            EvalState { mem: self.fresh_memory(), fuel: self.fuel, ev: self, sp: STACK_BASE };
        st.call_function(name, args)
    }

    /// Call `name(buffers...)`; returns final buffer contents.
    pub fn call_with_buffers(
        &self,
        name: &str,
        buffers: &[&[u8]],
    ) -> Result<Vec<Vec<u8>>, LcError> {
        let mut st =
            EvalState { mem: self.fresh_memory(), fuel: self.fuel, ev: self, sp: STACK_BASE };
        let mut ptrs = Vec::new();
        let mut next = HEAP_BASE;
        for buf in buffers {
            st.mem.store_bytes(next, buf);
            ptrs.push(next);
            next += ((buf.len() as u32) + 15) & !15;
        }
        st.call_function(name, &ptrs)?;
        Ok(ptrs.iter().zip(buffers).map(|(&p, b)| st.mem.load_bytes(p, b.len())).collect())
    }

    /// Whole-command step (fig. 8 semantics at the C level).
    pub fn step(
        &self,
        state: &[u8],
        command: &[u8],
        response_size: usize,
    ) -> Result<(Vec<u8>, Vec<u8>), LcError> {
        let resp = vec![0u8; response_size];
        let mut res = self.call_with_buffers("handle", &[state, command, &resp])?;
        let response = res.pop().expect("three buffers");
        let _ = res.pop();
        let new_state = res.pop().expect("state buffer");
        Ok((new_state, response))
    }
}

struct EvalState<'p> {
    mem: Memory,
    fuel: u64,
    ev: &'p IrEval<'p>,
    sp: u32,
}

impl EvalState<'_> {
    fn call_function(&mut self, name: &str, args: &[u32]) -> Result<u32, LcError> {
        let f: &IrFunction = self
            .ev
            .program
            .function(name)
            .ok_or_else(|| LcError::new(0, format!("undefined function `{name}`")))?;
        if f.params.len() != args.len() {
            return Err(LcError::new(0, format!("arity mismatch calling `{name}`")));
        }
        let saved_sp = self.sp;
        // Allocate frame slots.
        let mut slot_addrs = Vec::with_capacity(f.frame.len());
        for s in &f.frame {
            slot_addrs.push(self.sp);
            self.sp = self.sp.wrapping_add(s.size);
        }
        let mut regs = vec![0u32; f.nvregs as usize];
        for (&p, &a) in f.params.iter().zip(args) {
            regs[p as usize] = a;
        }
        let mut block = 0usize;
        let result = 'run: loop {
            let b = &f.blocks[block];
            for inst in &b.insts {
                if self.fuel == 0 {
                    return Err(LcError::new(0, "IR evaluator out of fuel"));
                }
                self.fuel -= 1;
                match inst {
                    Inst::Const { dst, value } => regs[*dst as usize] = *value,
                    Inst::Bin { op, dst, a, b } => {
                        let va = regs[*a as usize];
                        let vb = match b {
                            Operand::Reg(r) => regs[*r as usize],
                            Operand::Imm(i) => *i,
                        };
                        regs[*dst as usize] = op.eval(va, vb);
                    }
                    Inst::Copy { dst, src } => regs[*dst as usize] = regs[*src as usize],
                    Inst::Load { dst, addr, width } => {
                        let a = regs[*addr as usize];
                        regs[*dst as usize] = match width {
                            Width::Byte => self.mem.load_u8(a) as u32,
                            Width::Word => {
                                if !a.is_multiple_of(4) {
                                    return Err(LcError::new(
                                        0,
                                        format!("misaligned word load at {a:#x} in `{name}`"),
                                    ));
                                }
                                self.mem.load_u32(a)
                            }
                        };
                    }
                    Inst::Store { addr, src, width } => {
                        let a = regs[*addr as usize];
                        let v = regs[*src as usize];
                        match width {
                            Width::Byte => self.mem.store_u8(a, v as u8),
                            Width::Word => {
                                if !a.is_multiple_of(4) {
                                    return Err(LcError::new(
                                        0,
                                        format!("misaligned word store at {a:#x} in `{name}`"),
                                    ));
                                }
                                self.mem.store_u32(a, v);
                            }
                        }
                    }
                    Inst::AddrOfGlobal { dst, name } => {
                        regs[*dst as usize] = match self.ev.global_addrs.get(name) {
                            Some(&a) => a,
                            None => *self.ev.consts.get(name).ok_or_else(|| {
                                LcError::new(0, format!("unknown global `{name}`"))
                            })?,
                        };
                    }
                    Inst::AddrOfLocal { dst, slot } => {
                        regs[*dst as usize] = slot_addrs[*slot];
                    }
                    Inst::Call { dst, func, args } => {
                        let argv: Vec<u32> = args.iter().map(|&a| regs[a as usize]).collect();
                        let r = self.call_function(func, &argv)?;
                        if let Some(d) = dst {
                            regs[*d as usize] = r;
                        }
                    }
                }
            }
            match b.term.as_ref().expect("lowering terminates every block") {
                Term::Jump(t) => block = *t,
                Term::Br { cond, then_b, else_b } => {
                    if self.fuel == 0 {
                        return Err(LcError::new(0, "IR evaluator out of fuel"));
                    }
                    self.fuel -= 1;
                    block = if regs[*cond as usize] != 0 { *then_b } else { *else_b };
                }
                Term::Ret { value } => {
                    break 'run value.map(|v| regs[v as usize]).unwrap_or(0);
                }
            }
        };
        self.sp = saved_sp;
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend;
    use crate::ir::lower;

    fn run(src: &str, f: &str, args: &[u32]) -> u32 {
        let p = frontend(src).unwrap();
        let ir = lower(&p).unwrap();
        IrEval::new(&ir).call(f, args).unwrap()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(run("u32 f(u32 a, u32 b) { return (a + b) * (a - b); }", "f", &[7, 3]), 40);
    }

    #[test]
    fn comparisons() {
        let src = "u32 f(u32 a, u32 b) {
            return (a < b) + (a <= b)*2 + (a > b)*4 + (a >= b)*8 + (a == b)*16 + (a != b)*32;
        }";
        assert_eq!(run(src, "f", &[1, 2]), 1 + 2 + 32);
        assert_eq!(run(src, "f", &[2, 2]), 2 + 8 + 16);
        assert_eq!(run(src, "f", &[3, 2]), 4 + 8 + 32);
    }

    #[test]
    fn loops_arrays_calls() {
        let src = "
            u32 sq(u32 x) { return x * x; }
            u32 f(u32 n) {
                u32 a[8];
                for (u32 i = 0; i < n; i = i + 1) { a[i] = sq(i); }
                u32 s = 0;
                for (u32 i = 0; i < n; i = i + 1) { s = s + a[i]; }
                return s;
            }
        ";
        assert_eq!(run(src, "f", &[5]), 1 + 4 + 9 + 16);
    }

    #[test]
    fn short_circuit_matches_interp() {
        let src = "
            u32 f(u32 a) {
                u32 c = 0;
                if (a != 0 && 100 / a > 10) { c = 1; }
                if (a == 0 || a > 9) { c = c + 2; }
                return c;
            }
        ";
        let p = frontend(src).unwrap();
        let ir = lower(&p).unwrap();
        let ev = IrEval::new(&ir);
        let interp = crate::interp::Interp::new(&p);
        for a in 0..32 {
            assert_eq!(ev.call("f", &[a]).unwrap(), interp.call("f", &[a]).unwrap(), "a={a}");
        }
    }

    #[test]
    fn buffers_match_interp() {
        let src = "
            void handle(u8* state, u8* cmd, u8* resp) {
                u32* w = (u32*)cmd;
                u32 acc = w[0] ^ 0xdeadbeef;
                u32* r = (u32*)resp;
                r[0] = acc;
                state[0] = (u8)(state[0] + 1);
            }
        ";
        let p = frontend(src).unwrap();
        let ir = lower(&p).unwrap();
        let ev = IrEval::new(&ir);
        let interp = crate::interp::Interp::new(&p);
        let st = [5u8; 4];
        let cmd = [0x78, 0x56, 0x34, 0x12];
        let a = interp.step(&st, &cmd, 4).unwrap();
        let b = ev.step(&st, &cmd, 4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn global_arrays() {
        let src = "
            const u32 K[3] = {5, 6, 7};
            static u32 acc[1];
            u32 f() {
                acc[0] = K[0] + K[1] + K[2];
                return acc[0];
            }
        ";
        assert_eq!(run(src, "f", &[]), 18);
    }

    #[test]
    fn u8_params_truncate() {
        let src = "u32 f(u8 b) { return b; }";
        assert_eq!(run(src, "f", &[0x1FF]), 0xFF);
    }
}
