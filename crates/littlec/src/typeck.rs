//! Type checker for littlec.
//!
//! The checker validates a parsed [`Program`] and exposes the typing
//! environment machinery ([`FnEnv`], [`expr_ty`]) that the IR lowering
//! reuses, so the two phases cannot disagree about expression types.

use std::collections::HashMap;

use crate::ast::*;
use crate::diag::{Diagnostic, Span};
use crate::LcError;

/// The type and shape of a name visible in an expression.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Binding {
    /// A scalar or pointer local/parameter of the given type.
    Scalar(Ty),
    /// A local or global array; decays to a pointer to its element type.
    Array { elem: Ty, len: u32 },
    /// A named `u32` constant.
    Const(u32),
}

impl Binding {
    /// The type of an expression referencing this binding.
    pub fn expr_ty(self) -> Ty {
        match self {
            Binding::Scalar(t) => t,
            Binding::Array { elem, .. } => elem.ptr_to(),
            Binding::Const(_) => Ty::U32,
        }
    }
}

/// Per-function typing environment with lexical scopes.
pub struct FnEnv<'p> {
    /// The program, for function and global lookup.
    pub program: &'p Program,
    /// The enclosing function's name, for diagnostic spans.
    fname: String,
    scopes: Vec<HashMap<String, Binding>>,
}

impl<'p> FnEnv<'p> {
    /// Create an environment seeded with globals and `f`'s parameters.
    pub fn new(program: &'p Program, f: &Function) -> Result<Self, LcError> {
        let mut globals = HashMap::new();
        for g in &program.globals {
            let b = match g {
                Global::ConstArray { elem, values, .. } => {
                    Binding::Array { elem: *elem, len: values.len() as u32 }
                }
                Global::StaticArray { elem, len, .. } => Binding::Array { elem: *elem, len: *len },
                Global::ConstScalar { value, .. } => Binding::Const(*value),
            };
            if globals.insert(g.name().to_string(), b).is_some() {
                return Err(LcError::new(0, format!("duplicate global `{}`", g.name())));
            }
        }
        let mut params = HashMap::new();
        for p in &f.params {
            if params.insert(p.name.clone(), Binding::Scalar(p.ty)).is_some() {
                return Err(LcError::new(
                    f.line,
                    format!("duplicate parameter `{}` in `{}`", p.name, f.name),
                ));
            }
        }
        Ok(FnEnv { program, fname: f.name.clone(), scopes: vec![globals, params] })
    }

    /// Enter a lexical scope.
    pub fn push(&mut self) {
        self.scopes.push(HashMap::new());
    }

    /// Leave a lexical scope.
    pub fn pop(&mut self) {
        self.scopes.pop();
    }

    /// Declare a name in the innermost scope.
    ///
    /// Redeclaring a name visible from an enclosing scope is rejected:
    /// a shadowed parameter or local silently changes which storage
    /// later statements touch, which is exactly the kind of ambiguity
    /// a verified-firmware language should not allow. Globals (scope 0)
    /// may still be shadowed — a handler-local `tmp` must not collide
    /// with an unrelated table elsewhere in the program.
    pub fn declare(&mut self, name: &str, b: Binding, line: usize) -> Result<(), LcError> {
        let last = self.scopes.len() - 1;
        if self.scopes[1..last].iter().any(|s| s.contains_key(name)) {
            let what = if last == 1 { "parameter" } else { "parameter or enclosing local" };
            return Err(Diagnostic::new(
                "shadowed-local",
                Span::new(self.fname.clone(), line),
                format!("declaration of `{name}` shadows a {what}"),
            )
            .into());
        }
        let scope = self.scopes.last_mut().expect("scope stack never empty");
        if scope.insert(name.to_string(), b).is_some() {
            return Err(LcError::new(line, format!("duplicate declaration of `{name}`")));
        }
        Ok(())
    }

    /// Resolve a name, innermost scope first.
    pub fn lookup(&self, name: &str) -> Option<Binding> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }
}

fn is_int(t: Ty) -> bool {
    matches!(t, Ty::U32 | Ty::U8)
}

/// Compute the type of an expression under `env`.
pub fn expr_ty(env: &FnEnv<'_>, e: &Expr) -> Result<Ty, LcError> {
    let line = e.line;
    match &e.kind {
        ExprKind::Num(_) => Ok(Ty::U32),
        ExprKind::Var(name) => env
            .lookup(name)
            .map(Binding::expr_ty)
            .ok_or_else(|| LcError::new(line, format!("undefined variable `{name}`"))),
        ExprKind::Bin(op, a, b) => {
            let ta = expr_ty(env, a)?;
            let tb = expr_ty(env, b)?;
            match op {
                BinOp::Add => match (ta.is_ptr(), tb.is_ptr()) {
                    (true, false) if is_int(tb) => Ok(ta),
                    (false, true) if is_int(ta) => Ok(tb),
                    (false, false) => Ok(Ty::U32),
                    _ => Err(LcError::new(line, format!("cannot add {ta} and {tb}"))),
                },
                BinOp::Sub => match (ta.is_ptr(), tb.is_ptr()) {
                    (true, false) if is_int(tb) => Ok(ta),
                    (false, false) => Ok(Ty::U32),
                    _ => Err(LcError::new(line, format!("cannot subtract {tb} from {ta}"))),
                },
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    let ok = (is_int(ta) && is_int(tb)) || ta == tb;
                    if ok {
                        Ok(Ty::U32)
                    } else {
                        Err(LcError::new(line, format!("cannot compare {ta} with {tb}")))
                    }
                }
                _ => {
                    if is_int(ta) && is_int(tb) {
                        Ok(Ty::U32)
                    } else {
                        Err(LcError::new(
                            line,
                            format!("operator {op:?} needs integers, got {ta} and {tb}"),
                        ))
                    }
                }
            }
        }
        ExprKind::Un(_, a) => {
            let ta = expr_ty(env, a)?;
            if is_int(ta) {
                Ok(Ty::U32)
            } else {
                Err(LcError::new(line, format!("unary operator needs an integer, got {ta}")))
            }
        }
        ExprKind::Index(base, idx) => {
            let tb = expr_ty(env, base)?;
            let ti = expr_ty(env, idx)?;
            if !tb.is_ptr() {
                return Err(LcError::new(line, format!("cannot index into {tb}")));
            }
            if !is_int(ti) {
                return Err(LcError::new(line, format!("index must be an integer, got {ti}")));
            }
            Ok(tb.deref())
        }
        ExprKind::Call(name, args) => {
            // Builtin: mulhu(a, b) — upper 32 bits of the 64-bit product.
            if name == "mulhu" {
                if args.len() != 2 {
                    return Err(LcError::new(line, "mulhu expects 2 arguments"));
                }
                for a in args {
                    let ta = expr_ty(env, a)?;
                    if !is_int(ta) {
                        return Err(LcError::new(a.line, "mulhu arguments must be integers"));
                    }
                }
                return Ok(Ty::U32);
            }
            let f = env
                .program
                .function(name)
                .ok_or_else(|| LcError::new(line, format!("undefined function `{name}`")))?;
            if f.params.len() != args.len() {
                return Err(LcError::new(
                    line,
                    format!("`{name}` expects {} arguments, got {}", f.params.len(), args.len()),
                ));
            }
            for (p, a) in f.params.iter().zip(args) {
                let ta = expr_ty(env, a)?;
                let ok = if p.ty.is_ptr() { ta == p.ty } else { is_int(ta) };
                if !ok {
                    return Err(LcError::new(
                        a.line,
                        format!("argument `{}` of `{name}` expects {}, got {ta}", p.name, p.ty),
                    ));
                }
            }
            Ok(f.ret)
        }
        ExprKind::Cast(ty, inner) => {
            let ti = expr_ty(env, inner)?;
            if *ty == Ty::Void || ti == Ty::Void {
                return Err(LcError::new(line, "cannot cast to or from void"));
            }
            Ok(*ty)
        }
    }
}

struct Checker<'p> {
    env: FnEnv<'p>,
    ret: Ty,
    loop_depth: usize,
    fname: String,
}

impl Checker<'_> {
    fn stmts(&mut self, body: &[Stmt]) -> Result<(), LcError> {
        self.env.push();
        for s in body {
            self.stmt(s)?;
        }
        self.env.pop();
        Ok(())
    }

    fn assignable(&self, dst: Ty, src: Ty, line: usize) -> Result<(), LcError> {
        let ok = if dst.is_ptr() { src == dst } else { is_int(src) };
        if ok {
            Ok(())
        } else {
            Err(LcError::new(line, format!("cannot assign {src} to {dst}")))
        }
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), LcError> {
        match s {
            Stmt::DeclScalar { ty, name, init, line } => {
                if *ty == Ty::Void {
                    return Err(LcError::new(*line, "cannot declare a void variable"));
                }
                if let Some(e) = init {
                    let t = expr_ty(&self.env, e)?;
                    self.assignable(*ty, t, *line)?;
                }
                self.env.declare(name, Binding::Scalar(*ty), *line)
            }
            Stmt::DeclArray { elem, name, len, line } => {
                if *len == 0 {
                    return Err(LcError::new(*line, format!("array `{name}` has length 0")));
                }
                self.env.declare(name, Binding::Array { elem: *elem, len: *len }, *line)
            }
            Stmt::Assign { lv, rhs, line } => {
                let trhs = expr_ty(&self.env, rhs)?;
                match lv {
                    LValue::Var(name) => {
                        let b = self.env.lookup(name).ok_or_else(|| {
                            LcError::new(*line, format!("undefined variable `{name}`"))
                        })?;
                        match b {
                            Binding::Scalar(t) => self.assignable(t, trhs, *line),
                            Binding::Array { .. } => {
                                Err(LcError::new(*line, format!("cannot assign to array `{name}`")))
                            }
                            Binding::Const(_) => Err(LcError::new(
                                *line,
                                format!("cannot assign to constant `{name}`"),
                            )),
                        }
                    }
                    LValue::Index(base, idx) => {
                        let tb = expr_ty(&self.env, base)?;
                        let ti = expr_ty(&self.env, idx)?;
                        if !tb.is_ptr() {
                            return Err(LcError::new(*line, format!("cannot index into {tb}")));
                        }
                        if !is_int(ti) {
                            return Err(LcError::new(
                                *line,
                                "index must be an integer".to_string(),
                            ));
                        }
                        self.assignable(tb.deref(), trhs, *line)
                    }
                }
            }
            Stmt::If { cond, then_body, else_body, line } => {
                let t = expr_ty(&self.env, cond)?;
                if !is_int(t) {
                    return Err(LcError::new(
                        *line,
                        format!("condition must be an integer, got {t}"),
                    ));
                }
                self.stmts(then_body)?;
                self.stmts(else_body)
            }
            Stmt::While { cond, body, step, line } => {
                let t = expr_ty(&self.env, cond)?;
                if !is_int(t) {
                    return Err(LcError::new(
                        *line,
                        format!("condition must be an integer, got {t}"),
                    ));
                }
                self.loop_depth += 1;
                let r = self.stmts(body).and_then(|()| self.stmts(step));
                self.loop_depth -= 1;
                r
            }
            Stmt::Return { value, line } => match (self.ret, value) {
                (Ty::Void, None) => Ok(()),
                (Ty::Void, Some(_)) => {
                    Err(LcError::new(*line, format!("`{}` returns void", self.fname)))
                }
                (t, Some(e)) => {
                    let te = expr_ty(&self.env, e)?;
                    self.assignable(t, te, *line)
                }
                (t, None) => Err(LcError::new(*line, format!("`{}` must return {t}", self.fname))),
            },
            Stmt::Break { line } | Stmt::Continue { line } => {
                if self.loop_depth == 0 {
                    Err(LcError::new(*line, "break/continue outside of a loop"))
                } else {
                    Ok(())
                }
            }
            Stmt::ExprStmt { expr, .. } => {
                expr_ty(&self.env, expr)?;
                Ok(())
            }
        }
    }
}

/// Type-check a whole program.
pub fn typecheck(program: &Program) -> Result<(), LcError> {
    // Duplicate function names.
    for (i, f) in program.functions.iter().enumerate() {
        if program.functions[..i].iter().any(|g| g.name == f.name) {
            return Err(LcError::new(f.line, format!("duplicate function `{}`", f.name)));
        }
        if f.params.len() > 8 {
            return Err(LcError::new(
                f.line,
                format!("`{}` has {} parameters; at most 8 are supported", f.name, f.params.len()),
            ));
        }
    }
    for f in &program.functions {
        let env = FnEnv::new(program, f)?;
        let mut c = Checker { env, ret: f.ret, loop_depth: 0, fname: f.name.clone() };
        c.stmts(&f.body)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check(src: &str) -> Result<(), LcError> {
        typecheck(&parse(src).unwrap())
    }

    #[test]
    fn accepts_valid_program() {
        check(
            "
            const u32 K[2] = {1, 2};
            static u8 buf[8];
            u32 get(u32 i) { return K[i]; }
            void f(u8* p, u32 n) {
                u32 acc = 0;
                for (u32 i = 0; i < n; i = i + 1) {
                    acc = acc + p[i];
                }
                buf[0] = (u8)acc;
                u32* w = (u32*)p;
                w[0] = get(1);
            }
            ",
        )
        .unwrap();
    }

    #[test]
    fn rejects_type_errors() {
        assert!(check("void f(u8* p) { u32 x = p; }").is_err());
        assert!(check("void f(u8* p, u32* q) { if (p + q) { } }").is_err());
        assert!(check("void f() { undefined_var = 1; }").is_err());
        assert!(check("void f() { g(); }").is_err());
        assert!(check("u32 f() { return; }").is_err());
        assert!(check("void f() { return 1; }").is_err());
        assert!(check("void f() { break; }").is_err());
        assert!(check("const u32 C = 1; void f() { C = 2; }").is_err());
        assert!(check("void f() { u32 a[2]; a = 0; }").is_err());
        assert!(check("void g(u32* p) {} void f(u8* p) { g(p); }").is_err());
    }

    #[test]
    fn scoping_rules() {
        // Sequential reuse in sibling scopes is fine: the inner `y` is
        // gone by the time the outer one is declared.
        check("void f(u32 x) { if (x) { u32 y = 1; } u32 y = 2; }").unwrap();
        // Sequential loops may reuse an index variable.
        check(
            "void f(u32 n) {
                for (u32 i = 0; i < n; i = i + 1) { }
                for (u32 i = 0; i < n; i = i + 1) { }
            }",
        )
        .unwrap();
        // Globals may be shadowed by locals.
        check("const u32 K = 3; void f() { u32 K = 4; }").unwrap();
    }

    #[test]
    fn rejects_shadowed_locals() {
        // A nested block shadowing an enclosing local is rejected with a
        // span-carrying diagnostic.
        let e = check("void f(u32 x) { u32 y = 1; if (x) { u32 y = 2; } }").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.msg.contains("shadowed-local"), "{}", e.msg);
        assert!(e.msg.contains('y'), "{}", e.msg);
        // Shadowing a parameter is rejected too.
        assert!(check("void f(u32 x) { if (x) { u32 x = 2; } }").is_err());
        // A loop variable shadowed by an inner loop is rejected.
        assert!(check(
            "void f(u32 n) {
                for (u32 i = 0; i < n; i = i + 1) {
                    for (u32 i = 0; i < n; i = i + 1) { }
                }
            }",
        )
        .is_err());
    }

    #[test]
    fn pointer_arithmetic_types() {
        check("void f(u8* p) { u8* q = p + 4; u32 d = q[0]; }").unwrap();
        check("void f(u32* p) { u32* q = p + 1; q[0] = 5; }").unwrap();
        assert!(check("void f(u32* p, u32* q) { u32 r = p - q; }").is_err());
    }
}
