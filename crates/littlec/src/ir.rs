//! Three-address intermediate representation and AST → IR lowering.
//!
//! The IR is the analogue of the paper's C level of abstraction: the
//! littlec AST is lowered into a control-flow graph of basic blocks over
//! virtual registers. The IR under the [`crate::ireval`] evaluator is the
//! "App Impl \[C\]" whole-command state machine; the compiler backend
//! ([`crate::codegen`]) turns the same IR into RV32IM assembly.

use std::collections::HashMap;

use crate::ast::*;
use crate::typeck::{expr_ty, Binding, FnEnv};
use crate::LcError;

/// A virtual register.
pub type VReg = u32;
/// A basic-block index within a function.
pub type BlockId = usize;

/// Memory access width.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Width {
    /// One byte, zero-extended on load.
    Byte,
    /// A 4-byte little-endian word.
    Word,
}

/// The second operand of a binary operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Operand {
    /// A virtual register.
    Reg(VReg),
    /// An immediate constant (introduced by the `-O2` folding pass; must
    /// fit the corresponding RV32IM immediate form).
    Imm(u32),
}

/// IR binary operators; a strict subset of RV32IM ALU semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IrOp {
    Add,
    Sub,
    Mul,
    Divu,
    Remu,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    /// Unsigned set-less-than.
    Sltu,
    /// Upper 32 bits of the unsigned 64-bit product.
    Mulhu,
}

impl IrOp {
    /// Evaluate with RV32IM semantics (shifts mask to 5 bits; division by
    /// zero follows the RISC-V convention).
    pub fn eval(self, a: u32, b: u32) -> u32 {
        match self {
            IrOp::Add => a.wrapping_add(b),
            IrOp::Sub => a.wrapping_sub(b),
            IrOp::Mul => a.wrapping_mul(b),
            IrOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
            IrOp::Remu => a.checked_rem(b).unwrap_or(a),
            IrOp::And => a & b,
            IrOp::Or => a | b,
            IrOp::Xor => a ^ b,
            IrOp::Sll => a.wrapping_shl(b & 31),
            IrOp::Srl => a.wrapping_shr(b & 31),
            IrOp::Sltu => (a < b) as u32,
            IrOp::Mulhu => ((a as u64 * b as u64) >> 32) as u32,
        }
    }
}

/// A non-terminator IR instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Inst {
    /// `dst = value`.
    Const { dst: VReg, value: u32 },
    /// `dst = a <op> b`.
    Bin { op: IrOp, dst: VReg, a: VReg, b: Operand },
    /// `dst = src`.
    Copy { dst: VReg, src: VReg },
    /// `dst = mem[addr]` with the given width (byte loads zero-extend).
    Load { dst: VReg, addr: VReg, width: Width },
    /// `mem[addr] = src` with the given width (byte stores truncate).
    Store { addr: VReg, src: VReg, width: Width },
    /// `dst = &global`.
    AddrOfGlobal { dst: VReg, name: String },
    /// `dst = &frame_slot`.
    AddrOfLocal { dst: VReg, slot: usize },
    /// `dst = func(args...)`.
    Call { dst: Option<VReg>, func: String, args: Vec<VReg> },
}

/// A block terminator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Term {
    /// Unconditional jump.
    Jump(BlockId),
    /// Branch on `cond != 0`.
    Br { cond: VReg, then_b: BlockId, else_b: BlockId },
    /// Return (value required for non-void functions).
    Ret { value: Option<VReg> },
}

/// A basic block.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// Straight-line instructions.
    pub insts: Vec<Inst>,
    /// 1-based source line for each instruction in `insts` (parallel
    /// vector, same length; 0 = no source location). Lowering records
    /// the nearest enclosing statement/expression line so analyses can
    /// report source spans.
    pub lines: Vec<usize>,
    /// The terminator; `None` only transiently during construction.
    pub term: Option<Term>,
    /// Source line of the terminator (0 = unknown / synthetic).
    pub term_line: usize,
}

impl Block {
    /// The source line of instruction `i`, or 0 when untracked.
    pub fn line_of(&self, i: usize) -> usize {
        self.lines.get(i).copied().unwrap_or(0)
    }
}

/// A stack-frame slot for a local array.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrameSlot {
    /// Size in bytes (4-byte aligned).
    pub size: u32,
}

/// A function in IR form.
#[derive(Clone, Debug)]
pub struct IrFunction {
    /// Source-level name.
    pub name: String,
    /// Parameter virtual registers, in ABI order.
    pub params: Vec<VReg>,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Number of virtual registers used.
    pub nvregs: u32,
    /// Local array slots.
    pub frame: Vec<FrameSlot>,
    /// Whether the function returns a value.
    pub returns_value: bool,
}

/// A whole program in IR form. Globals are shared with the AST.
#[derive(Clone, Debug)]
pub struct IrProgram {
    /// Lowered functions.
    pub functions: Vec<IrFunction>,
    /// Global definitions (array layout is decided by the consumer).
    pub globals: Vec<Global>,
}

impl IrProgram {
    /// Look up a function by name.
    pub fn function(&self, name: &str) -> Option<&IrFunction> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// Lower a type-checked program to IR.
pub fn lower(program: &Program) -> Result<IrProgram, LcError> {
    let mut functions = Vec::new();
    for f in &program.functions {
        functions.push(lower_function(program, f)?);
    }
    Ok(IrProgram { functions, globals: program.globals.clone() })
}

/// What a name resolves to during lowering.
#[derive(Clone, Copy)]
enum LBind {
    /// Mutable scalar in a virtual register, with its declared type.
    Reg(VReg, Ty),
    /// Local array frame slot.
    Local(usize),
    /// Global array.
    GlobalArr,
    /// Named constant.
    Const(u32),
}

struct Lowerer<'p> {
    program: &'p Program,
    env: FnEnv<'p>,
    scopes: Vec<HashMap<String, LBind>>,
    blocks: Vec<Block>,
    cur: BlockId,
    next_vreg: VReg,
    frame: Vec<FrameSlot>,
    /// (break target, continue target) stack.
    loops: Vec<(BlockId, BlockId)>,
    returns_value: bool,
    /// Source line attached to emitted instructions (the innermost
    /// statement/expression being lowered).
    cur_line: usize,
}

impl Lowerer<'_> {
    fn fresh(&mut self) -> VReg {
        let v = self.next_vreg;
        self.next_vreg += 1;
        v
    }

    fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn emit(&mut self, inst: Inst) {
        let b = &mut self.blocks[self.cur];
        b.insts.push(inst);
        b.lines.push(self.cur_line);
    }

    fn terminate(&mut self, term: Term) {
        let b = &mut self.blocks[self.cur];
        if b.term.is_none() {
            b.term = Some(term);
            b.term_line = self.cur_line;
        }
    }

    fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
    }

    fn const_reg(&mut self, value: u32) -> VReg {
        let dst = self.fresh();
        self.emit(Inst::Const { dst, value });
        dst
    }

    fn bin(&mut self, op: IrOp, a: VReg, b: VReg) -> VReg {
        let dst = self.fresh();
        self.emit(Inst::Bin { op, dst, a, b: Operand::Reg(b) });
        dst
    }

    fn lookup(&self, name: &str) -> Option<LBind> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn declare(&mut self, name: &str, b: LBind) {
        self.scopes.last_mut().expect("scope stack never empty").insert(name.to_string(), b);
    }

    /// The static type of an expression (reusing the type checker).
    fn ty_of(&self, e: &Expr) -> Result<Ty, LcError> {
        expr_ty(&self.env, e)
    }

    /// Lower an expression to a vreg holding its value.
    fn expr(&mut self, e: &Expr) -> Result<VReg, LcError> {
        let line = e.line;
        if line != 0 {
            self.cur_line = line;
        }
        match &e.kind {
            ExprKind::Num(v) => Ok(self.const_reg(*v)),
            ExprKind::Var(name) => match self
                .lookup(name)
                .ok_or_else(|| LcError::new(line, format!("undefined variable `{name}`")))?
            {
                LBind::Reg(v, _) => Ok(v),
                LBind::Local(slot) => {
                    let dst = self.fresh();
                    self.emit(Inst::AddrOfLocal { dst, slot });
                    Ok(dst)
                }
                LBind::GlobalArr => {
                    let dst = self.fresh();
                    self.emit(Inst::AddrOfGlobal { dst, name: name.clone() });
                    Ok(dst)
                }
                LBind::Const(v) => Ok(self.const_reg(v)),
            },
            ExprKind::Bin(op, a, b) => self.bin_expr(*op, a, b),
            ExprKind::Un(op, a) => {
                let va = self.expr(a)?;
                match op {
                    UnOp::Neg => {
                        let zero = self.const_reg(0);
                        Ok(self.bin(IrOp::Sub, zero, va))
                    }
                    UnOp::Not => {
                        let ones = self.const_reg(u32::MAX);
                        Ok(self.bin(IrOp::Xor, va, ones))
                    }
                    UnOp::LNot => {
                        let one = self.const_reg(1);
                        Ok(self.bin(IrOp::Sltu, va, one))
                    }
                }
            }
            ExprKind::Index(base, idx) => {
                let elem = self.ty_of(base)?.deref();
                let addr = self.elem_addr(base, idx)?;
                let dst = self.fresh();
                let width = if elem == Ty::U32 { Width::Word } else { Width::Byte };
                self.emit(Inst::Load { dst, addr, width });
                Ok(dst)
            }
            ExprKind::Call(name, args) => {
                if name == "mulhu" {
                    let va = self.expr(&args[0])?;
                    let vb = self.expr(&args[1])?;
                    return Ok(self.bin(IrOp::Mulhu, va, vb));
                }
                let f = self
                    .program
                    .function(name)
                    .ok_or_else(|| LcError::new(line, format!("undefined function `{name}`")))?;
                let returns = f.ret != Ty::Void;
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.expr(a)?);
                }
                let dst = if returns { Some(self.fresh()) } else { None };
                self.emit(Inst::Call { dst, func: name.clone(), args: argv });
                // Void calls only appear in statement position; hand back
                // the scratch register that no one reads.
                Ok(dst.unwrap_or(0))
            }
            ExprKind::Cast(ty, inner) => {
                let v = self.expr(inner)?;
                if *ty == Ty::U8 {
                    let mask = self.const_reg(0xFF);
                    Ok(self.bin(IrOp::And, v, mask))
                } else {
                    Ok(v)
                }
            }
        }
    }

    /// Lower `base[idx]`'s address computation with element scaling.
    fn elem_addr(&mut self, base: &Expr, idx: &Expr) -> Result<VReg, LcError> {
        let elem = self.ty_of(base)?.deref();
        let b = self.expr(base)?;
        let i = self.expr(idx)?;
        let scaled = if elem == Ty::U32 {
            let two = self.const_reg(2);
            self.bin(IrOp::Sll, i, two)
        } else {
            i
        };
        Ok(self.bin(IrOp::Add, b, scaled))
    }

    fn bin_expr(&mut self, op: BinOp, a: &Expr, b: &Expr) -> Result<VReg, LcError> {
        // Short-circuit operators become control flow.
        if matches!(op, BinOp::LAnd | BinOp::LOr) {
            return self.short_circuit(op, a, b);
        }
        let ta = self.ty_of(a)?;
        let tb = self.ty_of(b)?;
        // Pointer arithmetic scaling.
        if (op == BinOp::Add || op == BinOp::Sub) && (ta.is_ptr() || tb.is_ptr()) {
            let (pe, ie, pty) = if ta.is_ptr() { (a, b, ta) } else { (b, a, tb) };
            let p = self.expr(pe)?;
            let i = self.expr(ie)?;
            let scaled = if pty.pointee_size() == 4 {
                let two = self.const_reg(2);
                self.bin(IrOp::Sll, i, two)
            } else {
                i
            };
            let irop = if op == BinOp::Add { IrOp::Add } else { IrOp::Sub };
            return Ok(self.bin(irop, p, scaled));
        }
        let va = self.expr(a)?;
        let vb = self.expr(b)?;
        let r = match op {
            BinOp::Add => self.bin(IrOp::Add, va, vb),
            BinOp::Sub => self.bin(IrOp::Sub, va, vb),
            BinOp::Mul => self.bin(IrOp::Mul, va, vb),
            BinOp::Div => self.bin(IrOp::Divu, va, vb),
            BinOp::Rem => self.bin(IrOp::Remu, va, vb),
            BinOp::And => self.bin(IrOp::And, va, vb),
            BinOp::Or => self.bin(IrOp::Or, va, vb),
            BinOp::Xor => self.bin(IrOp::Xor, va, vb),
            BinOp::Shl => self.bin(IrOp::Sll, va, vb),
            BinOp::Shr => self.bin(IrOp::Srl, va, vb),
            BinOp::Lt => self.bin(IrOp::Sltu, va, vb),
            BinOp::Gt => self.bin(IrOp::Sltu, vb, va),
            BinOp::Le => {
                // a <= b  ==  !(b < a)
                let gt = self.bin(IrOp::Sltu, vb, va);
                let one = self.const_reg(1);
                self.bin(IrOp::Xor, gt, one)
            }
            BinOp::Ge => {
                let lt = self.bin(IrOp::Sltu, va, vb);
                let one = self.const_reg(1);
                self.bin(IrOp::Xor, lt, one)
            }
            BinOp::Eq => {
                let x = self.bin(IrOp::Xor, va, vb);
                let one = self.const_reg(1);
                self.bin(IrOp::Sltu, x, one)
            }
            BinOp::Ne => {
                let x = self.bin(IrOp::Xor, va, vb);
                let zero = self.const_reg(0);
                self.bin(IrOp::Sltu, zero, x)
            }
            BinOp::LAnd | BinOp::LOr => unreachable!("handled above"),
        };
        Ok(r)
    }

    fn short_circuit(&mut self, op: BinOp, a: &Expr, b: &Expr) -> Result<VReg, LcError> {
        let result = self.fresh();
        let va = self.expr(a)?;
        let eval_b = self.new_block();
        let done = self.new_block();
        let (short_val, t, f) = match op {
            BinOp::LAnd => (0u32, eval_b, done),
            BinOp::LOr => (1u32, done, eval_b),
            _ => unreachable!("short_circuit only for LAnd/LOr"),
        };
        // Set the default (short-circuit) value, then branch.
        self.emit(Inst::Const { dst: result, value: short_val });
        self.terminate(Term::Br { cond: va, then_b: t, else_b: f });
        // Evaluate b, normalize to 0/1.
        self.switch_to(eval_b);
        let vb = self.expr(b)?;
        let zero = self.const_reg(0);
        let norm = self.bin(IrOp::Sltu, zero, vb);
        self.emit(Inst::Copy { dst: result, src: norm });
        self.terminate(Term::Jump(done));
        self.switch_to(done);
        Ok(result)
    }

    fn stmts(&mut self, body: &[Stmt]) -> Result<(), LcError> {
        self.scopes.push(HashMap::new());
        self.env.push();
        for s in body {
            self.stmt(s)?;
        }
        self.env.pop();
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), LcError> {
        self.cur_line = match s {
            Stmt::DeclScalar { line, .. }
            | Stmt::DeclArray { line, .. }
            | Stmt::Assign { line, .. }
            | Stmt::If { line, .. }
            | Stmt::While { line, .. }
            | Stmt::Return { line, .. }
            | Stmt::Break { line }
            | Stmt::Continue { line }
            | Stmt::ExprStmt { line, .. } => *line,
        };
        match s {
            Stmt::DeclScalar { ty, name, init, line: _ } => {
                let v = match init {
                    Some(e) => {
                        let raw = self.expr(e)?;
                        // Copy into a dedicated reg so later reassignment
                        // doesn't clobber the initializer's source.
                        let dst = self.fresh();
                        if *ty == Ty::U8 {
                            let mask = self.const_reg(0xFF);
                            self.emit(Inst::Bin {
                                op: IrOp::And,
                                dst,
                                a: raw,
                                b: Operand::Reg(mask),
                            });
                        } else {
                            self.emit(Inst::Copy { dst, src: raw });
                        }
                        dst
                    }
                    None => self.const_reg(0),
                };
                self.declare(name, LBind::Reg(v, *ty));
                self.env.declare(name, Binding::Scalar(*ty), 0)?;
                Ok(())
            }
            Stmt::DeclArray { elem, name, len, line: _ } => {
                let size = len * if *elem == Ty::U32 { 4 } else { 1 };
                let slot = self.frame.len();
                self.frame.push(FrameSlot { size: (size + 3) & !3 });
                self.declare(name, LBind::Local(slot));
                self.env.declare(name, Binding::Array { elem: *elem, len: *len }, 0)?;
                // Zero-initialize, matching the interpreter semantics.
                self.zero_slot(slot, size);
                Ok(())
            }
            Stmt::Assign { lv, rhs, line } => match lv {
                LValue::Var(name) => {
                    let bind = self.lookup(name).ok_or_else(|| {
                        LcError::new(*line, format!("undefined variable `{name}`"))
                    })?;
                    match bind {
                        LBind::Reg(dst, ty) => {
                            let v = self.expr(rhs)?;
                            if ty == Ty::U8 {
                                let mask = self.const_reg(0xFF);
                                self.emit(Inst::Bin {
                                    op: IrOp::And,
                                    dst,
                                    a: v,
                                    b: Operand::Reg(mask),
                                });
                            } else {
                                self.emit(Inst::Copy { dst, src: v });
                            }
                            Ok(())
                        }
                        _ => Err(LcError::new(*line, format!("cannot assign to `{name}`"))),
                    }
                }
                LValue::Index(base, idx) => {
                    let elem = self.ty_of(base)?.deref();
                    let v = self.expr(rhs)?;
                    let addr = self.elem_addr(base, idx)?;
                    let width = if elem == Ty::U32 { Width::Word } else { Width::Byte };
                    self.emit(Inst::Store { addr, src: v, width });
                    Ok(())
                }
            },
            Stmt::If { cond, then_body, else_body, .. } => {
                let c = self.expr(cond)?;
                let then_b = self.new_block();
                let else_b = self.new_block();
                let done = self.new_block();
                self.terminate(Term::Br { cond: c, then_b, else_b });
                self.switch_to(then_b);
                self.stmts(then_body)?;
                self.terminate(Term::Jump(done));
                self.switch_to(else_b);
                self.stmts(else_body)?;
                self.terminate(Term::Jump(done));
                self.switch_to(done);
                Ok(())
            }
            Stmt::While { cond, body, step, .. } => {
                let head = self.new_block();
                let body_b = self.new_block();
                let step_b = self.new_block();
                let done = self.new_block();
                self.terminate(Term::Jump(head));
                self.switch_to(head);
                let c = self.expr(cond)?;
                self.terminate(Term::Br { cond: c, then_b: body_b, else_b: done });
                self.switch_to(body_b);
                self.loops.push((done, step_b));
                self.stmts(body)?;
                self.loops.pop();
                self.terminate(Term::Jump(step_b));
                self.switch_to(step_b);
                self.stmts(step)?;
                self.terminate(Term::Jump(head));
                self.switch_to(done);
                Ok(())
            }
            Stmt::Return { value, .. } => {
                let v = match value {
                    Some(e) => Some(self.expr(e)?),
                    None => {
                        if self.returns_value {
                            Some(self.const_reg(0))
                        } else {
                            None
                        }
                    }
                };
                self.terminate(Term::Ret { value: v });
                // Dead block for any trailing statements.
                let dead = self.new_block();
                self.switch_to(dead);
                Ok(())
            }
            Stmt::Break { line } => {
                let (done, _) = *self
                    .loops
                    .last()
                    .ok_or_else(|| LcError::new(*line, "break outside of a loop"))?;
                self.terminate(Term::Jump(done));
                let dead = self.new_block();
                self.switch_to(dead);
                Ok(())
            }
            Stmt::Continue { line } => {
                let (_, step_b) = *self
                    .loops
                    .last()
                    .ok_or_else(|| LcError::new(*line, "continue outside of a loop"))?;
                self.terminate(Term::Jump(step_b));
                let dead = self.new_block();
                self.switch_to(dead);
                Ok(())
            }
            Stmt::ExprStmt { expr, .. } => {
                self.expr(expr)?;
                Ok(())
            }
        }
    }

    /// Emit zero-initialization for a freshly declared frame slot.
    fn zero_slot(&mut self, slot: usize, size: u32) {
        let base = self.fresh();
        self.emit(Inst::AddrOfLocal { dst: base, slot });
        let zero = self.const_reg(0);
        let words = size / 4;
        if words <= 16 {
            for w in 0..words {
                let off = self.const_reg(w * 4);
                let addr = self.bin(IrOp::Add, base, off);
                self.emit(Inst::Store { addr, src: zero, width: Width::Word });
            }
            for b in (words * 4)..size {
                let off = self.const_reg(b);
                let addr = self.bin(IrOp::Add, base, off);
                self.emit(Inst::Store { addr, src: zero, width: Width::Byte });
            }
        } else {
            // Word loop + byte tail.
            let limit = self.const_reg(words * 4);
            let end = self.bin(IrOp::Add, base, limit);
            let p = self.fresh();
            self.emit(Inst::Copy { dst: p, src: base });
            let head = self.new_block();
            let body = self.new_block();
            let done = self.new_block();
            self.terminate(Term::Jump(head));
            self.switch_to(head);
            let c = self.bin(IrOp::Sltu, p, end);
            self.terminate(Term::Br { cond: c, then_b: body, else_b: done });
            self.switch_to(body);
            self.emit(Inst::Store { addr: p, src: zero, width: Width::Word });
            let four = self.const_reg(4);
            let p2 = self.bin(IrOp::Add, p, four);
            self.emit(Inst::Copy { dst: p, src: p2 });
            self.terminate(Term::Jump(head));
            self.switch_to(done);
            for b in (words * 4)..size {
                let off = self.const_reg(b);
                let addr = self.bin(IrOp::Add, base, off);
                self.emit(Inst::Store { addr, src: zero, width: Width::Byte });
            }
        }
    }
}

fn lower_function(program: &Program, f: &Function) -> Result<IrFunction, LcError> {
    let env = FnEnv::new(program, f)?;
    let mut lw = Lowerer {
        program,
        env,
        scopes: vec![HashMap::new()],
        blocks: vec![Block::default()],
        cur: 0,
        next_vreg: 1, // vreg 0 is a scratch "discard" register
        frame: Vec::new(),
        loops: Vec::new(),
        returns_value: f.ret != Ty::Void,
        cur_line: f.line,
    };
    // Seed the outer scope with globals, then open the parameter scope.
    for g in &program.globals {
        let b = match g {
            Global::ConstArray { .. } | Global::StaticArray { .. } => LBind::GlobalArr,
            Global::ConstScalar { value, .. } => LBind::Const(*value),
        };
        lw.declare(g.name(), b);
    }
    lw.scopes.push(HashMap::new());
    let mut params = Vec::new();
    for p in &f.params {
        let v = lw.fresh();
        params.push(v);
        lw.declare(&p.name, LBind::Reg(v, p.ty));
    }
    // Truncate u8 params at entry (matches interpreter semantics).
    for (p, &v) in f.params.iter().zip(&params) {
        if p.ty == Ty::U8 {
            let mask = lw.const_reg(0xFF);
            lw.emit(Inst::Bin { op: IrOp::And, dst: v, a: v, b: Operand::Reg(mask) });
        }
    }
    lw.stmts(&f.body)?;
    // Implicit return.
    let implicit = if f.ret == Ty::Void {
        Term::Ret { value: None }
    } else {
        let z = lw.const_reg(0);
        Term::Ret { value: Some(z) }
    };
    lw.terminate(implicit);
    // Ensure every (possibly dead) block has a terminator.
    for b in &mut lw.blocks {
        if b.term.is_none() {
            b.term = Some(Term::Ret { value: if f.ret == Ty::Void { None } else { Some(0) } });
        }
    }
    Ok(IrFunction {
        name: f.name.clone(),
        params,
        blocks: lw.blocks,
        nvregs: lw.next_vreg,
        frame: lw.frame,
        returns_value: f.ret != Ty::Void,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend;

    #[test]
    fn lowers_simple_function() {
        let p = frontend("u32 f(u32 a, u32 b) { return a + b * 2; }").unwrap();
        let ir = lower(&p).unwrap();
        let f = ir.function("f").unwrap();
        assert_eq!(f.params.len(), 2);
        assert!(f.returns_value);
        assert!(!f.blocks.is_empty());
    }

    #[test]
    fn lowers_control_flow() {
        let p = frontend(
            "u32 f(u32 n) {
                u32 s = 0;
                for (u32 i = 0; i < n; i = i + 1) {
                    if (i % 2 == 0) { s = s + i; }
                }
                return s;
             }",
        )
        .unwrap();
        let ir = lower(&p).unwrap();
        let f = ir.function("f").unwrap();
        assert!(f.blocks.len() >= 6, "blocks: {}", f.blocks.len());
        for b in &f.blocks {
            assert!(b.term.is_some(), "all blocks terminated");
        }
    }

    #[test]
    fn lowering_records_source_lines() {
        let p = frontend("u32 f(u32 a) {\n  u32 x = a + 1;\n  if (x) { x = 2; }\n  return x;\n}")
            .unwrap();
        let ir = lower(&p).unwrap();
        let f = ir.function("f").unwrap();
        for b in &f.blocks {
            assert_eq!(b.insts.len(), b.lines.len(), "lines stay parallel to insts");
        }
        // The branch on `x` carries the `if` condition's source line.
        let br_line = f
            .blocks
            .iter()
            .find_map(|b| match b.term {
                Some(Term::Br { .. }) => Some(b.term_line),
                _ => None,
            })
            .expect("one branch");
        assert_eq!(br_line, 3);
    }

    #[test]
    fn lowers_arrays_and_calls() {
        let p = frontend(
            "
            void g(u32* p) { p[0] = 1; }
            u32 f() {
                u32 a[4];
                g(a);
                return a[0];
            }
            ",
        )
        .unwrap();
        let ir = lower(&p).unwrap();
        let f = ir.function("f").unwrap();
        assert_eq!(f.frame.len(), 1);
        assert_eq!(f.frame[0].size, 16);
    }
}
