//! littlec — a small C-like language and verified-compiler stand-in.
//!
//! In the Parfait paper, HSM application code is written in Low\*,
//! compiled to C by KaRaMeL, and compiled to RISC-V assembly by CompCert;
//! each level is modeled as a whole-command state machine and related by
//! *IPR by equivalence* using the compilers' correctness theorems (§4.2).
//!
//! This crate reproduces that pipeline executably:
//!
//! * [`token`], [`ast`], [`parser`] — the littlec surface language
//!   (C-like: `u32`/`u8` scalars, pointers, fixed arrays, functions);
//! * [`typeck`] — the type checker;
//! * [`interp`] — a reference interpreter over the AST; this is the
//!   "App Impl \[Low\*\]" level of abstraction;
//! * [`ir`] — lowering to a CFG-based three-address IR; the IR under
//!   [`ireval`] is the "App Impl \[C\]" level;
//! * [`opt`], [`regalloc`], [`codegen`] — the compiler backend producing
//!   RV32IM assembly at three optimization levels (`-O0`, `-O1`, `-O2`);
//!   the compiled code under the Riscette machine is the
//!   "App Impl \[Asm\]" level;
//! * [`validate`] — the translation-validation harness that checks
//!   observational equivalence of the three levels (the executable
//!   analogue of the compiler-correctness theorems Parfait leans on).

#![forbid(unsafe_code)]

pub mod ast;
pub mod codegen;
pub mod diag;
pub mod interp;
pub mod ir;
pub mod ireval;
pub mod loop_bounds;
pub mod opt;
pub mod parser;
pub mod regalloc;
pub mod token;
pub mod typeck;
pub mod validate;

pub use ast::Program;
pub use codegen::{compile, compile_traced, OptLevel};
pub use interp::Interp;
pub use parser::parse;
pub use typeck::typecheck;

/// Errors from any littlec front-end or back-end phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LcError {
    /// 1-based source line, or 0 when not tied to a source location.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl LcError {
    /// Create an error at a source line (0 when not source-tied).
    pub fn new(line: usize, msg: impl Into<String>) -> Self {
        LcError { line, msg: msg.into() }
    }
}

impl std::fmt::Display for LcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "littlec error on line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for LcError {}

/// Parse and type-check a littlec source file.
///
/// ```
/// let program = parfait_littlec::frontend(
///     "u32 dbl(u32 x) { return x + x; }",
/// ).unwrap();
/// let interp = parfait_littlec::interp::Interp::new(&program);
/// assert_eq!(interp.call("dbl", &[21]).unwrap(), 42);
///
/// // The same function, compiled to RV32IM and run on the ISA machine.
/// let asm = parfait_littlec::compile(&program, parfait_littlec::OptLevel::O2).unwrap();
/// let prog = parfait_riscv::assemble(&asm).unwrap();
/// let mut m = parfait_riscv::Machine::with_program(&prog);
/// let entry = prog.address_of("dbl").unwrap();
/// assert_eq!(m.call(entry, &[21], 1000).unwrap(), 42);
/// ```
pub fn frontend(source: &str) -> Result<Program, LcError> {
    frontend_traced(source, &parfait_telemetry::Telemetry::disabled())
}

/// [`frontend`] with telemetry: `littlec.parse` and `littlec.typecheck`
/// spans around the two front-end phases.
pub fn frontend_traced(
    source: &str,
    tel: &parfait_telemetry::Telemetry,
) -> Result<Program, LcError> {
    let program = {
        let _span = tel.span("littlec.parse");
        parser::parse(source)?
    };
    {
        let _span = tel.span("littlec.typecheck");
        typeck::typecheck(&program)?;
    }
    Ok(program)
}
