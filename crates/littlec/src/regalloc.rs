//! Register allocation for the littlec backend.
//!
//! The allocator is deliberately simple and obviously correct: the most
//! used virtual registers of a function each get a *dedicated* register,
//! and every other vreg lives in a stack slot. Because allocated
//! registers are never shared between vregs, no interference analysis is
//! needed.
//!
//! Non-leaf functions allocate only callee-saved registers (`s0`–`s11`),
//! so values survive calls without caller-save logic. Leaf functions
//! (no calls) additionally use caller-saved registers (`t3`–`t5` and the
//! argument registers beyond the incoming parameters) — these need no
//! save/restore at all, which matters for the hot inner routines
//! (Montgomery multiplication is a leaf).
//!
//! `-O0` passes `k = 0` (everything in stack slots), which plays the role
//! of the unoptimized verified-compiler output in the paper's Table 5.

use std::collections::HashMap;

use crate::ir::{Inst, IrFunction, Operand, Term, VReg};

/// Names of allocatable registers; indices 0..12 are callee-saved.
pub const REG_NAMES: [&str; 20] = [
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", // callee-saved
    "t3", "t4", "t5", "a3", "a4", "a5", "a6", "a7", // caller-saved (leaf only)
];

/// Number of callee-saved entries at the front of [`REG_NAMES`].
pub const CALLEE_SAVED: u8 = 12;

/// Where a virtual register lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Loc {
    /// A dedicated register: an index into [`REG_NAMES`].
    Reg(u8),
    /// Stack slot index (4 bytes each).
    Slot(u32),
}

/// An allocation for one function.
#[derive(Clone, Debug)]
pub struct Allocation {
    /// Location of each vreg, indexed by vreg number.
    pub locs: Vec<Loc>,
    /// Number of stack slots used.
    pub nslots: u32,
    /// The callee-saved register indices in use (sorted; these need a
    /// save/restore in the prologue/epilogue).
    pub used_sregs: Vec<u8>,
}

/// Whether `f` makes no calls (and may therefore use caller-saved
/// registers for vregs).
pub fn is_leaf(f: &IrFunction) -> bool {
    f.blocks.iter().all(|b| b.insts.iter().all(|i| !matches!(i, Inst::Call { .. })))
}

/// Allocate the most-used vregs of `f` to registers (`k = 0` disables
/// register allocation entirely).
pub fn allocate(f: &IrFunction, k: usize) -> Allocation {
    // Build the register pool: callee-saved always; caller-saved extras
    // for leaf functions (argument registers beyond the incoming
    // parameters stay out of the pool so parameter moves cannot
    // clobber each other).
    let mut pool: Vec<u8> = Vec::new();
    if is_leaf(f) {
        // Prefer caller-saved (free) registers, t-regs first, then
        // a-regs above the parameter count.
        pool.extend([12u8, 13, 14]);
        let nparams = f.params.len() as u8;
        for a in 15..20u8 {
            // REG_NAMES[15] is a3 (argument register index 3).
            let arg_index = a - 12; // a3 -> 3, ...
            if arg_index >= nparams.max(3) || arg_index >= 8 {
                pool.push(a);
            }
        }
        pool.extend(0..CALLEE_SAVED);
    } else {
        pool.extend(0..CALLEE_SAVED);
    }
    allocate_with_pool(f, k.min(pool.len()), &pool)
}

fn allocate_with_pool(f: &IrFunction, k: usize, pool: &[u8]) -> Allocation {
    let mut uses: HashMap<VReg, u64> = HashMap::new();
    let bump = |v: VReg, uses: &mut HashMap<VReg, u64>| {
        *uses.entry(v).or_insert(0) += 1;
    };
    for b in &f.blocks {
        for i in &b.insts {
            match i {
                Inst::Const { dst, .. } => bump(*dst, &mut uses),
                Inst::Bin { dst, a, b, .. } => {
                    bump(*dst, &mut uses);
                    bump(*a, &mut uses);
                    if let Operand::Reg(r) = b {
                        bump(*r, &mut uses);
                    }
                }
                Inst::Copy { dst, src } => {
                    bump(*dst, &mut uses);
                    bump(*src, &mut uses);
                }
                Inst::Load { dst, addr, .. } => {
                    bump(*dst, &mut uses);
                    bump(*addr, &mut uses);
                }
                Inst::Store { addr, src, .. } => {
                    bump(*addr, &mut uses);
                    bump(*src, &mut uses);
                }
                Inst::AddrOfGlobal { dst, .. } | Inst::AddrOfLocal { dst, .. } => {
                    bump(*dst, &mut uses)
                }
                Inst::Call { dst, args, .. } => {
                    if let Some(d) = dst {
                        bump(*d, &mut uses);
                    }
                    for a in args {
                        bump(*a, &mut uses);
                    }
                }
            }
        }
        match b.term.as_ref().expect("terminated") {
            Term::Br { cond, .. } => bump(*cond, &mut uses),
            Term::Ret { value: Some(v) } => bump(*v, &mut uses),
            _ => {}
        }
    }
    // Rank vregs by use count (stable by vreg number for determinism).
    let mut ranked: Vec<(VReg, u64)> = uses.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let chosen: Vec<VReg> = ranked.into_iter().take(k).map(|(v, _)| v).collect();

    let mut locs = vec![Loc::Slot(0); f.nvregs as usize];
    let mut used_sregs = Vec::new();
    for (i, &v) in chosen.iter().enumerate() {
        let reg = pool[i];
        locs[v as usize] = Loc::Reg(reg);
        if reg < CALLEE_SAVED {
            used_sregs.push(reg);
        }
    }
    used_sregs.sort_unstable();
    let mut nslots = 0;
    for (v, loc) in locs.iter_mut().enumerate() {
        if !chosen.contains(&(v as u32)) {
            *loc = Loc::Slot(nslots);
            nslots += 1;
        }
    }
    Allocation { locs, nslots, used_sregs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend;
    use crate::ir::lower;

    #[test]
    fn hot_vregs_get_registers() {
        let p = frontend(
            "u32 f(u32 n) {
                u32 s = 0;
                for (u32 i = 0; i < n; i = i + 1) { s = s + i; }
                return s;
            }",
        )
        .unwrap();
        let ir = lower(&p).unwrap();
        let f = ir.function("f").unwrap();
        let alloc = allocate(f, 20);
        // The loop counter and accumulator must be in registers.
        let in_regs = alloc.locs.iter().filter(|l| matches!(l, Loc::Reg(_))).count();
        assert!(in_regs >= 2, "{in_regs}");
        assert!(alloc.used_sregs.len() <= 12);
        // `f` contains no calls, so caller-saved registers are in play
        // and preferred (no save cost).
        assert!(alloc.locs.iter().any(|l| matches!(l, Loc::Reg(r) if *r >= 12)));
    }

    #[test]
    fn o0_uses_only_slots() {
        let p = frontend("u32 f(u32 a) { return a + 1; }").unwrap();
        let ir = lower(&p).unwrap();
        let alloc = allocate(ir.function("f").unwrap(), 0);
        assert!(alloc.locs.iter().all(|l| matches!(l, Loc::Slot(_))));
        assert!(alloc.used_sregs.is_empty());
    }

    #[test]
    fn dedicated_registers_never_shared() {
        let p = frontend(
            "u32 f(u32 a, u32 b, u32 c) {
                u32 x = a * b;
                u32 y = b * c;
                u32 z = x + y;
                return z * z;
            }",
        )
        .unwrap();
        let ir = lower(&p).unwrap();
        let alloc = allocate(ir.function("f").unwrap(), 20);
        let mut seen = std::collections::HashSet::new();
        for l in &alloc.locs {
            if let Loc::Reg(r) = l {
                assert!(seen.insert(*r), "register s{r} shared");
            }
        }
    }
}
