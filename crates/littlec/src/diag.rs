//! Structured, span-carrying diagnostics.
//!
//! [`Diagnostic`] is the shared currency between the littlec front end
//! (e.g. the shadowed-local rejection in [`crate::typeck`]) and external
//! analyses over littlec programs (the `parfait-lint` constant-time
//! analyzer embeds one per finding): a stable machine-readable code, a
//! source span, and a human-readable message. Front-end phases convert
//! diagnostics into [`LcError`] at their boundary so existing callers
//! keep a single error type.

use std::fmt;

use crate::LcError;

/// Where a diagnostic points in littlec source.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Span {
    /// The enclosing function, or empty when not inside one.
    pub function: String,
    /// 1-based source line (0 when the location is synthetic, e.g. a
    /// finding on generated assembly).
    pub line: usize,
}

impl Span {
    /// A span inside `function` at `line`.
    pub fn new(function: impl Into<String>, line: usize) -> Span {
        Span { function: function.into(), line }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.function.is_empty(), self.line) {
            (true, 0) => f.write_str("<unknown>"),
            (true, l) => write!(f, "line {l}"),
            (false, 0) => write!(f, "{}", self.function),
            (false, l) => write!(f, "{}:{}", self.function, l),
        }
    }
}

/// A machine-readable diagnostic with a source span.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Stable code, e.g. `shadowed-local` or a lint rule id like
    /// `CT-BRANCH`.
    pub code: String,
    /// Where the diagnostic points.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Create a diagnostic.
    pub fn new(code: impl Into<String>, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic { code: code.into(), span, message: message.into() }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.code, self.span, self.message)
    }
}

impl From<Diagnostic> for LcError {
    fn from(d: Diagnostic) -> LcError {
        LcError::new(d.span.line, format!("[{}] {}", d.code, d.message))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let d = Diagnostic::new("shadowed-local", Span::new("f", 3), "`x` shadows a local");
        assert_eq!(d.to_string(), "[shadowed-local] f:3: `x` shadows a local");
        assert_eq!(Span::default().to_string(), "<unknown>");
        assert_eq!(Span::new("", 7).to_string(), "line 7");
        assert_eq!(Span::new("g", 0).to_string(), "g");
    }

    #[test]
    fn converts_to_lc_error_keeping_line() {
        let d = Diagnostic::new("shadowed-local", Span::new("f", 3), "msg");
        let e = LcError::from(d);
        assert_eq!(e.line, 3);
        assert!(e.msg.contains("shadowed-local"));
    }
}
