//! Lexer for littlec.

use crate::LcError;

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Integer literal (decimal or `0x` hex); value is the raw 64-bit value.
    Num(u64),
    /// Identifier or keyword.
    Ident(String),
    /// Keyword.
    Kw(Kw),
    /// Punctuation / operator.
    P(&'static str),
    /// End of input.
    Eof,
}

/// Keywords of the language.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kw {
    U32,
    U8,
    Void,
    If,
    Else,
    While,
    For,
    Return,
    Break,
    Continue,
    Const,
    Static,
}

/// A token together with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpannedTok {
    pub tok: Tok,
    pub line: usize,
}

/// Tokenize littlec source text.
pub fn lex(source: &str) -> Result<Vec<SpannedTok>, LcError> {
    let mut toks = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(LcError::new(line, "unterminated block comment"));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let value = if c == '0' && matches!(bytes.get(i + 1), Some(b'x') | Some(b'X')) {
                    i += 2;
                    let hs = i;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_hexdigit() {
                        i += 1;
                    }
                    if hs == i {
                        return Err(LcError::new(line, "empty hex literal"));
                    }
                    u64::from_str_radix(&source[hs..i], 16)
                        .map_err(|_| LcError::new(line, "hex literal too large"))?
                } else {
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                    source[start..i]
                        .parse::<u64>()
                        .map_err(|_| LcError::new(line, "decimal literal too large"))?
                };
                toks.push(SpannedTok { tok: Tok::Num(value), line });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &source[start..i];
                let tok = match word {
                    "u32" => Tok::Kw(Kw::U32),
                    "u8" => Tok::Kw(Kw::U8),
                    "void" => Tok::Kw(Kw::Void),
                    "if" => Tok::Kw(Kw::If),
                    "else" => Tok::Kw(Kw::Else),
                    "while" => Tok::Kw(Kw::While),
                    "for" => Tok::Kw(Kw::For),
                    "return" => Tok::Kw(Kw::Return),
                    "break" => Tok::Kw(Kw::Break),
                    "continue" => Tok::Kw(Kw::Continue),
                    "const" => Tok::Kw(Kw::Const),
                    "static" => Tok::Kw(Kw::Static),
                    _ => Tok::Ident(word.to_string()),
                };
                toks.push(SpannedTok { tok, line });
            }
            _ => {
                // Multi-char operators first, longest match.
                const OPS: [&str; 30] = [
                    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+", "-", "*", "/", "%", "&",
                    "|", "^", "~", "!", "<", ">", "=", ";", ",", "(", ")", "{", "}", "[", "]", "?",
                ];
                let rest = &source[i..];
                let mut matched = None;
                for op in OPS {
                    if rest.starts_with(op) {
                        matched = Some(op);
                        break;
                    }
                }
                match matched {
                    Some(op) => {
                        toks.push(SpannedTok { tok: Tok::P(op), line });
                        i += op.len();
                    }
                    None => {
                        return Err(LcError::new(line, format!("unexpected character `{c}`")));
                    }
                }
            }
        }
    }
    toks.push(SpannedTok { tok: Tok::Eof, line });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_basics() {
        let ts = lex("u32 x = 0x1F + 10; // comment\nreturn;").unwrap();
        let kinds: Vec<&Tok> = ts.iter().map(|t| &t.tok).collect();
        assert_eq!(kinds[0], &Tok::Kw(Kw::U32));
        assert_eq!(kinds[1], &Tok::Ident("x".into()));
        assert_eq!(kinds[2], &Tok::P("="));
        assert_eq!(kinds[3], &Tok::Num(0x1F));
        assert_eq!(kinds[4], &Tok::P("+"));
        assert_eq!(kinds[5], &Tok::Num(10));
        assert_eq!(kinds[6], &Tok::P(";"));
        assert_eq!(kinds[7], &Tok::Kw(Kw::Return));
        assert_eq!(ts[7].line, 2);
    }

    #[test]
    fn lex_operators_longest_match() {
        let ts = lex("< << <= == = !=").unwrap();
        let ps: Vec<&Tok> = ts.iter().map(|t| &t.tok).collect();
        assert_eq!(ps[0], &Tok::P("<"));
        assert_eq!(ps[1], &Tok::P("<<"));
        assert_eq!(ps[2], &Tok::P("<="));
        assert_eq!(ps[3], &Tok::P("=="));
        assert_eq!(ps[4], &Tok::P("="));
        assert_eq!(ps[5], &Tok::P("!="));
    }

    #[test]
    fn lex_block_comments() {
        let ts = lex("a /* multi\nline */ b").unwrap();
        assert_eq!(ts[0].tok, Tok::Ident("a".into()));
        assert_eq!(ts[1].tok, Tok::Ident("b".into()));
        assert_eq!(ts[1].line, 2);
        assert!(lex("/* unterminated").is_err());
    }

    #[test]
    fn lex_rejects_garbage() {
        assert!(lex("a $ b").is_err());
        assert!(lex("0x").is_err());
    }
}
