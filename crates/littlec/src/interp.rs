//! Reference interpreter over the littlec AST.
//!
//! This is the "App Impl \[Low\*\]" level of abstraction: a whole-command
//! state machine whose step runs `handle(state, cmd, resp)` under the
//! reference semantics.
//!
//! Like Low\*'s `Stack` effect, the interpreter enforces memory safety:
//! pointers are *fat* (they carry the bounds of the allocation they point
//! into), and any out-of-bounds access is an error rather than undefined
//! behavior. This is the executable analogue of the paper's claim (§7.2)
//! that Low\* type checking catches buffer overflows and use-after-frees.

use std::collections::HashMap;

use parfait_riscv::machine::Memory;

use crate::ast::*;
use crate::LcError;

/// A runtime value: a machine integer or a bounds-carrying pointer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Value {
    /// A `u32` (or widened `u8`) value.
    Int(u32),
    /// A pointer with the bounds `[lo, hi)` of its allocation.
    Ptr { addr: u32, lo: u32, hi: u32 },
}

impl Value {
    /// The raw 32-bit representation.
    pub fn raw(self) -> u32 {
        match self {
            Value::Int(v) => v,
            Value::Ptr { addr, .. } => addr,
        }
    }

    fn int(self, line: usize) -> Result<u32, LcError> {
        match self {
            Value::Int(v) => Ok(v),
            Value::Ptr { .. } => Err(LcError::new(line, "expected integer, found pointer")),
        }
    }
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

/// The interpreter for one program.
pub struct Interp<'p> {
    program: &'p Program,
    /// Address of each global array.
    global_addrs: HashMap<String, (u32, u32)>, // name -> (addr, size)
    /// Fuel limit per `run` (statements + expressions evaluated).
    pub fuel: u64,
}

const GLOBAL_BASE: u32 = 0x2000_0000;
const STACK_BASE: u32 = 0x7000_0000;
const HEAP_BASE: u32 = 0x4000_0000;

struct Frame {
    scopes: Vec<HashMap<String, Slot>>,
}

#[derive(Clone, Copy)]
enum Slot {
    /// A scalar or pointer variable with its declared type.
    Scalar { v: Value, ty: Ty },
    /// An array allocation; decays to a pointer to `elem`.
    Array { addr: u32, size: u32, elem: Ty },
}

struct State<'p> {
    mem: Memory,
    fuel: u64,
    program: &'p Program,
    global_addrs: &'p HashMap<String, (u32, u32)>,
    stack_next: u32,
    call_depth: u32,
}

impl<'p> Interp<'p> {
    /// Create an interpreter for `program`. The program must already be
    /// type-checked.
    pub fn new(program: &'p Program) -> Self {
        let mut global_addrs = HashMap::new();
        let mut next = GLOBAL_BASE;
        for g in &program.globals {
            let size = match g {
                Global::ConstArray { elem, values, .. } => {
                    values.len() as u32 * if *elem == Ty::U32 { 4 } else { 1 }
                }
                Global::StaticArray { elem, len, .. } => len * if *elem == Ty::U32 { 4 } else { 1 },
                Global::ConstScalar { .. } => continue,
            };
            global_addrs.insert(g.name().to_string(), (next, size));
            next = next.wrapping_add((size + 3) & !3);
        }
        Interp { program, global_addrs, fuel: 500_000_000 }
    }

    fn fresh_memory(&self) -> Memory {
        let mut mem = Memory::default();
        for g in &self.program.globals {
            if let Global::ConstArray { elem, name, values, .. } = g {
                let (addr, _) = self.global_addrs[name];
                match elem {
                    Ty::U32 => {
                        for (i, v) in values.iter().enumerate() {
                            mem.store_u32(addr + 4 * i as u32, *v);
                        }
                    }
                    _ => {
                        for (i, v) in values.iter().enumerate() {
                            mem.store_u8(addr + i as u32, *v as u8);
                        }
                    }
                }
            }
        }
        mem
    }

    /// Call `name` with the given arguments in a fresh memory containing
    /// only the globals, returning the result value.
    ///
    /// Useful for testing individual functions; buffers must be created
    /// via [`Interp::call_with_buffers`].
    pub fn call(&self, name: &str, args: &[u32]) -> Result<u32, LcError> {
        let mem = self.fresh_memory();
        let mut st = State {
            mem,
            fuel: self.fuel,
            program: self.program,
            global_addrs: &self.global_addrs,
            stack_next: STACK_BASE,
            call_depth: 0,
        };
        let vals: Vec<Value> = args.iter().map(|&v| Value::Int(v)).collect();
        let r = st.call_function(name, &vals, 0)?;
        Ok(r.raw())
    }

    /// Call `name(buffers...)` where each argument is a byte buffer passed
    /// as a bounded pointer; returns the final contents of every buffer.
    pub fn call_with_buffers(
        &self,
        name: &str,
        buffers: &[&[u8]],
    ) -> Result<Vec<Vec<u8>>, LcError> {
        let mem = self.fresh_memory();
        let mut st = State {
            mem,
            fuel: self.fuel,
            program: self.program,
            global_addrs: &self.global_addrs,
            stack_next: STACK_BASE,
            call_depth: 0,
        };
        let mut ptrs = Vec::new();
        let mut next = HEAP_BASE;
        for buf in buffers {
            st.mem.store_bytes(next, buf);
            ptrs.push(Value::Ptr { addr: next, lo: next, hi: next + buf.len() as u32 });
            next += ((buf.len() as u32) + 15) & !15;
        }
        st.call_function(name, &ptrs, 0)?;
        let mut out = Vec::new();
        for (p, buf) in ptrs.iter().zip(buffers) {
            match p {
                Value::Ptr { lo, .. } => out.push(st.mem.load_bytes(*lo, buf.len())),
                Value::Int(_) => unreachable!(),
            }
        }
        Ok(out)
    }

    /// Whole-command step: run `handle(state, command, response)` and
    /// return the updated state and the response (fig. 8 semantics at the
    /// Low\* level).
    pub fn step(
        &self,
        state: &[u8],
        command: &[u8],
        response_size: usize,
    ) -> Result<(Vec<u8>, Vec<u8>), LcError> {
        let resp = vec![0u8; response_size];
        let mut res = self.call_with_buffers("handle", &[state, command, &resp])?;
        let response = res.pop().expect("three buffers in, three out");
        let _cmd = res.pop();
        let new_state = res.pop().expect("state buffer");
        Ok((new_state, response))
    }
}

impl State<'_> {
    fn burn(&mut self, line: usize) -> Result<(), LcError> {
        if self.fuel == 0 {
            return Err(LcError::new(line, "interpreter out of fuel"));
        }
        self.fuel -= 1;
        Ok(())
    }

    fn call_function(&mut self, name: &str, args: &[Value], line: usize) -> Result<Value, LcError> {
        let f = self
            .program
            .function(name)
            .ok_or_else(|| LcError::new(line, format!("undefined function `{name}`")))?
            .clone();
        if f.params.len() != args.len() {
            return Err(LcError::new(line, format!("arity mismatch calling `{name}`")));
        }
        if self.call_depth > 256 {
            return Err(LcError::new(line, "call depth exceeded"));
        }
        self.call_depth += 1;
        let saved_stack = self.stack_next;
        let mut frame = Frame { scopes: vec![HashMap::new()] };
        for (p, a) in f.params.iter().zip(args) {
            let v = match (p.ty, *a) {
                (Ty::U8, Value::Int(v)) => Value::Int(v & 0xFF),
                (_, v) => v,
            };
            frame.scopes[0].insert(p.name.clone(), Slot::Scalar { v, ty: p.ty });
        }
        let flow = self.exec_block(&f.body, &mut frame)?;
        self.stack_next = saved_stack;
        self.call_depth -= 1;
        match flow {
            Flow::Return(v) => Ok(v),
            _ => Ok(Value::Int(0)),
        }
    }

    fn exec_block(&mut self, body: &[Stmt], frame: &mut Frame) -> Result<Flow, LcError> {
        frame.scopes.push(HashMap::new());
        let saved_stack = self.stack_next;
        let mut result = Flow::Normal;
        for s in body {
            match self.exec_stmt(s, frame)? {
                Flow::Normal => {}
                other => {
                    result = other;
                    break;
                }
            }
        }
        frame.scopes.pop();
        self.stack_next = saved_stack;
        Ok(result)
    }

    fn lookup(&self, frame: &Frame, name: &str, line: usize) -> Result<Slot, LcError> {
        for scope in frame.scopes.iter().rev() {
            if let Some(s) = scope.get(name) {
                return Ok(*s);
            }
        }
        if let Some(&(addr, size)) = self.global_addrs.get(name) {
            let elem = match self.program.global(name) {
                Some(Global::ConstArray { elem, .. }) | Some(Global::StaticArray { elem, .. }) => {
                    *elem
                }
                _ => Ty::U32,
            };
            return Ok(Slot::Array { addr, size, elem });
        }
        if let Some(Global::ConstScalar { value, .. }) = self.program.global(name) {
            return Ok(Slot::Scalar { v: Value::Int(*value), ty: Ty::U32 });
        }
        Err(LcError::new(line, format!("undefined variable `{name}`")))
    }

    fn exec_stmt(&mut self, s: &Stmt, frame: &mut Frame) -> Result<Flow, LcError> {
        match s {
            Stmt::DeclScalar { ty, name, init, line } => {
                self.burn(*line)?;
                let v = match init {
                    Some(e) => self.eval(e, frame)?,
                    None => Value::Int(0),
                };
                let v = if *ty == Ty::U8 { Value::Int(v.int(*line)? & 0xFF) } else { v };
                frame
                    .scopes
                    .last_mut()
                    .expect("scope stack never empty")
                    .insert(name.clone(), Slot::Scalar { v, ty: *ty });
                Ok(Flow::Normal)
            }
            Stmt::DeclArray { elem, name, len, line } => {
                self.burn(*line)?;
                let size = len * if *elem == Ty::U32 { 4 } else { 1 };
                let addr = self.stack_next;
                // Zero the freshly allocated stack array: reusing stack
                // addresses across scopes must not resurrect old contents.
                for i in 0..size {
                    self.mem.store_u8(addr + i, 0);
                }
                self.stack_next = self.stack_next.wrapping_add((size + 3) & !3);
                frame
                    .scopes
                    .last_mut()
                    .expect("scope stack never empty")
                    .insert(name.clone(), Slot::Array { addr, size, elem: *elem });
                Ok(Flow::Normal)
            }
            Stmt::Assign { lv, rhs, line } => {
                self.burn(*line)?;
                let v = self.eval(rhs, frame)?;
                match lv {
                    LValue::Var(name) => {
                        let slot = self.lookup(frame, name, *line)?;
                        let new = match slot {
                            Slot::Scalar { ty, .. } => {
                                let v =
                                    if ty == Ty::U8 { Value::Int(v.int(*line)? & 0xFF) } else { v };
                                Slot::Scalar { v, ty }
                            }
                            Slot::Array { .. } => {
                                return Err(LcError::new(*line, "cannot assign to array"))
                            }
                        };
                        for scope in frame.scopes.iter_mut().rev() {
                            if scope.contains_key(name) {
                                scope.insert(name.clone(), new);
                                return Ok(Flow::Normal);
                            }
                        }
                        Err(LcError::new(*line, format!("cannot assign to global `{name}`")))
                    }
                    LValue::Index(base, idx) => {
                        let (addr, elem) = self.elem_addr(base, idx, frame, *line)?;
                        match elem {
                            Ty::U32 => self.mem.store_u32(addr, v.raw()),
                            _ => self.mem.store_u8(addr, v.raw() as u8),
                        }
                        Ok(Flow::Normal)
                    }
                }
            }
            Stmt::If { cond, then_body, else_body, line } => {
                self.burn(*line)?;
                let c = self.eval(cond, frame)?.int(*line)?;
                if c != 0 {
                    self.exec_block(then_body, frame)
                } else {
                    self.exec_block(else_body, frame)
                }
            }
            Stmt::While { cond, body, step, line } => loop {
                self.burn(*line)?;
                let c = self.eval(cond, frame)?.int(*line)?;
                if c == 0 {
                    return Ok(Flow::Normal);
                }
                match self.exec_block(body, frame)? {
                    Flow::Normal | Flow::Continue => {}
                    Flow::Break => return Ok(Flow::Normal),
                    r @ Flow::Return(_) => return Ok(r),
                }
                match self.exec_block(step, frame)? {
                    Flow::Normal => {}
                    Flow::Break => return Ok(Flow::Normal),
                    Flow::Continue => {}
                    r @ Flow::Return(_) => return Ok(r),
                }
            },
            Stmt::Return { value, line } => {
                self.burn(*line)?;
                let v = match value {
                    Some(e) => self.eval(e, frame)?,
                    None => Value::Int(0),
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break { .. } => Ok(Flow::Break),
            Stmt::Continue { .. } => Ok(Flow::Continue),
            Stmt::ExprStmt { expr, line } => {
                self.burn(*line)?;
                self.eval(expr, frame)?;
                Ok(Flow::Normal)
            }
        }
    }

    /// Compute the checked address of `base[idx]` and the element type.
    fn elem_addr(
        &mut self,
        base: &Expr,
        idx: &Expr,
        frame: &mut Frame,
        line: usize,
    ) -> Result<(u32, Ty), LcError> {
        let b = self.eval(base, frame)?;
        let i = self.eval(idx, frame)?.int(line)?;
        let (addr, lo, hi) = match b {
            Value::Ptr { addr, lo, hi } => (addr, lo, hi),
            Value::Int(_) => return Err(LcError::new(line, "cannot index a non-pointer")),
        };
        // Element size from the static type of `base`.
        let elem = self.static_ptr_elem(base, frame, line)?;
        let size = if elem == Ty::U32 { 4u32 } else { 1 };
        // Bounds math in u64 so that a wrapped u32 product cannot sneak
        // back inside the allocation.
        let eaddr64 = addr as u64 + i as u64 * size as u64;
        if eaddr64 < lo as u64 || eaddr64 + size as u64 > hi as u64 {
            return Err(LcError::new(
                line,
                format!(
                    "out-of-bounds access: address {eaddr64:#x}+{size} outside [{lo:#x}, {hi:#x})"
                ),
            ));
        }
        let eaddr = eaddr64 as u32;
        if elem == Ty::U32 && !eaddr.is_multiple_of(4) {
            return Err(LcError::new(line, format!("misaligned u32 access at {eaddr:#x}")));
        }
        Ok((eaddr, elem))
    }

    /// Determine the pointee type of a pointer-typed expression from its
    /// syntactic shape (the program is type-checked, so this is total).
    fn static_ptr_elem(&mut self, e: &Expr, frame: &mut Frame, line: usize) -> Result<Ty, LcError> {
        match &e.kind {
            ExprKind::Var(name) => match self.lookup(frame, name, line)? {
                Slot::Scalar { ty, .. } if ty.is_ptr() => Ok(ty.deref()),
                Slot::Array { elem, .. } => Ok(elem),
                _ => Err(LcError::new(line, format!("`{name}` is not a pointer"))),
            },
            ExprKind::Cast(ty, _) if ty.is_ptr() => Ok(ty.deref()),
            ExprKind::Bin(BinOp::Add, a, b) | ExprKind::Bin(BinOp::Sub, a, b) => self
                .static_ptr_elem(a, frame, line)
                .or_else(|_| self.static_ptr_elem(b, frame, line)),
            ExprKind::Call(name, _) => {
                let f = self
                    .program
                    .function(name)
                    .ok_or_else(|| LcError::new(line, format!("undefined function `{name}`")))?;
                if f.ret.is_ptr() {
                    Ok(f.ret.deref())
                } else {
                    Err(LcError::new(line, "call does not return a pointer"))
                }
            }
            _ => Err(LcError::new(line, "expression is not a pointer")),
        }
    }

    fn eval(&mut self, e: &Expr, frame: &mut Frame) -> Result<Value, LcError> {
        let line = e.line;
        self.burn(line)?;
        match &e.kind {
            ExprKind::Num(v) => Ok(Value::Int(*v)),
            ExprKind::Var(name) => match self.lookup(frame, name, line)? {
                Slot::Scalar { v, .. } => Ok(v),
                Slot::Array { addr, size, .. } => {
                    Ok(Value::Ptr { addr, lo: addr, hi: addr.wrapping_add(size) })
                }
            },
            ExprKind::Bin(op, a, b) => {
                // Short-circuit operators evaluate lazily.
                match op {
                    BinOp::LAnd => {
                        let va = self.eval(a, frame)?.int(line)?;
                        if va == 0 {
                            return Ok(Value::Int(0));
                        }
                        let vb = self.eval(b, frame)?.int(line)?;
                        return Ok(Value::Int((vb != 0) as u32));
                    }
                    BinOp::LOr => {
                        let va = self.eval(a, frame)?.int(line)?;
                        if va != 0 {
                            return Ok(Value::Int(1));
                        }
                        let vb = self.eval(b, frame)?.int(line)?;
                        return Ok(Value::Int((vb != 0) as u32));
                    }
                    _ => {}
                }
                let va = self.eval(a, frame)?;
                let vb = self.eval(b, frame)?;
                // Pointer arithmetic with scaling.
                match (op, va, vb) {
                    (BinOp::Add, Value::Ptr { addr, lo, hi }, Value::Int(n))
                    | (BinOp::Add, Value::Int(n), Value::Ptr { addr, lo, hi }) => {
                        let elem = self.static_ptr_elem(e, frame, line)?;
                        let size = if elem == Ty::U32 { 4 } else { 1 };
                        return Ok(Value::Ptr {
                            addr: addr.wrapping_add(n.wrapping_mul(size)),
                            lo,
                            hi,
                        });
                    }
                    (BinOp::Sub, Value::Ptr { addr, lo, hi }, Value::Int(n)) => {
                        let elem = self.static_ptr_elem(e, frame, line)?;
                        let size = if elem == Ty::U32 { 4 } else { 1 };
                        return Ok(Value::Ptr {
                            addr: addr.wrapping_sub(n.wrapping_mul(size)),
                            lo,
                            hi,
                        });
                    }
                    _ => {}
                }
                let x = va.raw();
                let y = vb.raw();
                let r = match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::Div => {
                        if y == 0 {
                            return Err(LcError::new(line, "division by zero"));
                        }
                        x / y
                    }
                    BinOp::Rem => {
                        if y == 0 {
                            return Err(LcError::new(line, "remainder by zero"));
                        }
                        x % y
                    }
                    BinOp::And => x & y,
                    BinOp::Or => x | y,
                    BinOp::Xor => x ^ y,
                    BinOp::Shl => x.wrapping_shl(y & 31),
                    BinOp::Shr => x.wrapping_shr(y & 31),
                    BinOp::Lt => (x < y) as u32,
                    BinOp::Le => (x <= y) as u32,
                    BinOp::Gt => (x > y) as u32,
                    BinOp::Ge => (x >= y) as u32,
                    BinOp::Eq => (x == y) as u32,
                    BinOp::Ne => (x != y) as u32,
                    BinOp::LAnd | BinOp::LOr => unreachable!("handled above"),
                };
                Ok(Value::Int(r))
            }
            ExprKind::Un(op, a) => {
                let v = self.eval(a, frame)?.int(line)?;
                let r = match op {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::Not => !v,
                    UnOp::LNot => (v == 0) as u32,
                };
                Ok(Value::Int(r))
            }
            ExprKind::Index(base, idx) => {
                let (addr, elem) = self.elem_addr(base, idx, frame, line)?;
                let v = match elem {
                    Ty::U32 => self.mem.load_u32(addr),
                    _ => self.mem.load_u8(addr) as u32,
                };
                Ok(Value::Int(v))
            }
            ExprKind::Call(name, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, frame)?);
                }
                if name == "mulhu" {
                    let a = vals[0].int(line)? as u64;
                    let b = vals[1].int(line)? as u64;
                    return Ok(Value::Int(((a * b) >> 32) as u32));
                }
                self.call_function(name, &vals, line)
            }
            ExprKind::Cast(ty, inner) => {
                let v = self.eval(inner, frame)?;
                match (ty, v) {
                    (Ty::U8, v) => Ok(Value::Int(v.raw() & 0xFF)),
                    (Ty::U32, v) => Ok(Value::Int(v.raw())),
                    (t, Value::Ptr { addr, lo, hi }) if t.is_ptr() => {
                        Ok(Value::Ptr { addr, lo, hi })
                    }
                    (t, Value::Int(addr)) if t.is_ptr() => {
                        // Integer-to-pointer casts get the full address
                        // space; used only by system software (MMIO),
                        // which runs under the SoC, not this interpreter.
                        Ok(Value::Ptr { addr, lo: 0, hi: u32::MAX })
                    }
                    _ => Err(LcError::new(line, "unsupported cast")),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend;

    fn run(src: &str, f: &str, args: &[u32]) -> Result<u32, LcError> {
        let p = frontend(src).unwrap();
        let i = Interp::new(&p);
        i.call(f, args)
    }

    #[test]
    fn arithmetic_and_calls() {
        let src = "
            u32 square(u32 x) { return x * x; }
            u32 f(u32 a, u32 b) { return square(a) + square(b); }
        ";
        assert_eq!(run(src, "f", &[3, 4]).unwrap(), 25);
    }

    #[test]
    fn loops_and_arrays() {
        let src = "
            u32 fib(u32 n) {
                u32 a[16];
                a[0] = 0;
                a[1] = 1;
                for (u32 i = 2; i <= n; i = i + 1) {
                    a[i] = a[i - 1] + a[i - 2];
                }
                return a[n];
            }
        ";
        assert_eq!(run(src, "fib", &[10]).unwrap(), 55);
    }

    #[test]
    fn globals_const_arrays() {
        let src = "
            const u32 K[4] = {10, 20, 30, 40};
            const u32 LEN = 4;
            u32 sum() {
                u32 s = 0;
                for (u32 i = 0; i < LEN; i = i + 1) { s = s + K[i]; }
                return s;
            }
        ";
        assert_eq!(run(src, "sum", &[]).unwrap(), 100);
    }

    #[test]
    fn out_of_bounds_is_caught() {
        let src = "
            u32 oops(u32 i) {
                u32 a[4];
                return a[i];
            }
        ";
        assert!(run(src, "oops", &[4]).is_err());
        assert!(run(src, "oops", &[3]).is_ok());
        // Huge index that wraps around must also be caught.
        assert!(run(src, "oops", &[0x4000_0000]).is_err());
    }

    #[test]
    fn buffers_roundtrip() {
        let src = "
            void handle(u8* state, u8* cmd, u8* resp) {
                for (u32 i = 0; i < 4; i = i + 1) {
                    resp[i] = (u8)(cmd[i] + state[i]);
                }
                state[0] = (u8)(state[0] + 1);
            }
        ";
        let p = frontend(src).unwrap();
        let i = Interp::new(&p);
        let (st, resp) = i.step(&[1, 1, 1, 1], &[10, 20, 30, 40], 4).unwrap();
        assert_eq!(resp, vec![11, 21, 31, 41]);
        assert_eq!(st, vec![2, 1, 1, 1]);
    }

    #[test]
    fn pointer_casts_and_word_access() {
        let src = "
            void handle(u8* state, u8* cmd, u8* resp) {
                u32* w = (u32*)cmd;
                u32 v = w[0];
                u32* r = (u32*)resp;
                r[0] = v * 2;
            }
        ";
        let p = frontend(src).unwrap();
        let i = Interp::new(&p);
        let (_, resp) = i.step(&[0; 4], &[0x10, 0, 0, 0], 4).unwrap();
        assert_eq!(resp, vec![0x20, 0, 0, 0]);
    }

    #[test]
    fn short_circuit_semantics() {
        let src = "
            u32 f(u32 a) {
                u32 c = 0;
                if (a != 0 && 100 / a > 10) { c = 1; }
                return c;
            }
        ";
        // a == 0 must not evaluate 100/a.
        assert_eq!(run(src, "f", &[0]).unwrap(), 0);
        assert_eq!(run(src, "f", &[5]).unwrap(), 1);
        assert_eq!(run(src, "f", &[50]).unwrap(), 0);
    }

    #[test]
    fn division_by_zero_is_error() {
        let src = "u32 f(u32 a) { return 10 / a; }";
        assert!(run(src, "f", &[0]).is_err());
        assert_eq!(run(src, "f", &[2]).unwrap(), 5);
    }

    #[test]
    fn infinite_loop_runs_out_of_fuel() {
        let src = "u32 f() { while (1) { } return 0; }";
        let p = frontend(src).unwrap();
        let mut i = Interp::new(&p);
        i.fuel = 10_000;
        assert!(i.call("f", &[]).is_err());
    }

    #[test]
    fn break_continue() {
        let src = "
            u32 f() {
                u32 s = 0;
                for (u32 i = 0; i < 10; i = i + 1) {
                    if (i == 3) { continue; }
                    if (i == 6) { break; }
                    s = s + i;
                }
                return s;
            }
        ";
        // 0+1+2+4+5 = 12
        assert_eq!(run(src, "f", &[]).unwrap(), 12);
    }

    #[test]
    fn u8_truncation() {
        let src = "
            u32 f(u32 x) {
                u8 b = x;
                return b + 1;
            }
        ";
        assert_eq!(run(src, "f", &[0x1FF]).unwrap(), 0x100);
    }

    #[test]
    fn stack_arrays_are_zeroed() {
        let src = "
            u32 taint() {
                u32 a[4];
                a[0] = 0xdeadbeef; a[1] = 1; a[2] = 2; a[3] = 3;
                return 0;
            }
            u32 f() {
                u32 x = taint();
                u32 b[4];
                return b[0] + x;
            }
        ";
        assert_eq!(run(src, "f", &[]).unwrap(), 0);
    }
}
