//! Abstract syntax tree for littlec.

/// Scalar and pointer types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ty {
    /// 32-bit unsigned word.
    U32,
    /// 8-bit unsigned byte (widens to `u32` in expressions).
    U8,
    /// Pointer to `u32`.
    PtrU32,
    /// Pointer to `u8`.
    PtrU8,
    /// No value (function return only).
    Void,
}

impl Ty {
    /// Whether this type is a pointer.
    pub fn is_ptr(self) -> bool {
        matches!(self, Ty::PtrU32 | Ty::PtrU8)
    }

    /// Size in bytes of the pointee (pointers only).
    pub fn pointee_size(self) -> u32 {
        match self {
            Ty::PtrU32 => 4,
            Ty::PtrU8 => 1,
            _ => panic!("pointee_size of non-pointer {self:?}"),
        }
    }

    /// The pointer type pointing at this scalar type.
    pub fn ptr_to(self) -> Ty {
        match self {
            Ty::U32 => Ty::PtrU32,
            Ty::U8 => Ty::PtrU8,
            _ => panic!("ptr_to of {self:?}"),
        }
    }

    /// The scalar type a pointer points at.
    pub fn deref(self) -> Ty {
        match self {
            Ty::PtrU32 => Ty::U32,
            Ty::PtrU8 => Ty::U8,
            _ => panic!("deref of non-pointer {self:?}"),
        }
    }
}

impl std::fmt::Display for Ty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Ty::U32 => "u32",
            Ty::U8 => "u8",
            Ty::PtrU32 => "u32*",
            Ty::PtrU8 => "u8*",
            Ty::Void => "void",
        };
        f.write_str(s)
    }
}

/// Binary operators (all operate on `u32` values; pointers participate in
/// `+`/`-` with C-style scaling, handled in the type checker/lowering).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    /// Short-circuit logical and.
    LAnd,
    /// Short-circuit logical or.
    LOr,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation (two's complement).
    Neg,
    /// Bitwise not.
    Not,
    /// Logical not (`!x` is `x == 0`).
    LNot,
}

/// An expression, annotated with its source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Expr {
    pub kind: ExprKind,
    pub line: usize,
}

/// Expression kinds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExprKind {
    /// Integer literal.
    Num(u32),
    /// Variable (local, parameter, or global) reference. Array-typed names
    /// decay to pointers.
    Var(String),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Array/pointer indexing: `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// Function call.
    Call(String, Vec<Expr>),
    /// Type cast: `(ty)e`.
    Cast(Ty, Box<Expr>),
}

/// Assignable places.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LValue {
    /// Scalar variable.
    Var(String),
    /// Pointer/array element.
    Index(Expr, Expr),
}

/// A statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// Scalar declaration with optional initializer.
    DeclScalar { ty: Ty, name: String, init: Option<Expr>, line: usize },
    /// Stack array declaration.
    DeclArray { elem: Ty, name: String, len: u32, line: usize },
    /// Assignment.
    Assign { lv: LValue, rhs: Expr, line: usize },
    /// Conditional.
    If { cond: Expr, then_body: Vec<Stmt>, else_body: Vec<Stmt>, line: usize },
    /// While loop. `step` statements run after each iteration of `body`,
    /// including when the body executes `continue` (used by `for` loops).
    While { cond: Expr, body: Vec<Stmt>, step: Vec<Stmt>, line: usize },
    /// Return from function.
    Return { value: Option<Expr>, line: usize },
    /// Break out of the innermost loop.
    Break { line: usize },
    /// Continue the innermost loop.
    Continue { line: usize },
    /// Expression statement (function call for effect).
    ExprStmt { expr: Expr, line: usize },
}

/// A function parameter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Param {
    pub ty: Ty,
    pub name: String,
}

/// A function definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Function {
    pub name: String,
    pub params: Vec<Param>,
    pub ret: Ty,
    pub body: Vec<Stmt>,
    pub line: usize,
}

/// A global item.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Global {
    /// `const <ty> name[len] = { ... };` — read-only initialized array.
    ConstArray { elem: Ty, name: String, values: Vec<u32>, line: usize },
    /// `static <ty> name[len];` — zero-initialized mutable array.
    StaticArray { elem: Ty, name: String, len: u32, line: usize },
    /// `const u32 name = value;` — named scalar constant.
    ConstScalar { name: String, value: u32, line: usize },
}

impl Global {
    /// The name of the global.
    pub fn name(&self) -> &str {
        match self {
            Global::ConstArray { name, .. }
            | Global::StaticArray { name, .. }
            | Global::ConstScalar { name, .. } => name,
        }
    }
}

/// A full translation unit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    pub globals: Vec<Global>,
    pub functions: Vec<Function>,
}

impl Program {
    /// Look up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Look up a global by name.
    pub fn global(&self, name: &str) -> Option<&Global> {
        self.globals.iter().find(|g| g.name() == name)
    }
}
