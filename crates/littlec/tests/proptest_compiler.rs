//! Property-based compiler fuzzing: random expression programs must
//! produce identical results at every level of the pipeline (interp,
//! IR, and assembly at all three optimization levels) — randomized
//! translation validation.

use proptest::prelude::*;

use parfait_littlec::codegen::{compile, OptLevel};
use parfait_littlec::frontend;
use parfait_littlec::interp::Interp;
use parfait_littlec::ir::lower;
use parfait_littlec::ireval::IrEval;
use parfait_riscv::asm::assemble;
use parfait_riscv::machine::Machine;

/// A random expression over variables a, b, c and constants, rendered
/// as littlec source. Division/remainder are guarded with `| 1` so the
/// interp level (which treats /0 as an error) never traps.
#[derive(Debug, Clone)]
enum E {
    Var(usize),
    Const(u32),
    Bin(&'static str, Box<E>, Box<E>),
    Un(&'static str, Box<E>),
}

impl E {
    fn render(&self) -> String {
        match self {
            E::Var(i) => ["a", "b", "c"][*i % 3].to_string(),
            E::Const(v) => format!("{v}"),
            E::Bin(op, l, r) => {
                if *op == "/" || *op == "%" {
                    format!("({} {} (({}) | 1))", l.render(), op, r.render())
                } else {
                    format!("({} {} {})", l.render(), op, r.render())
                }
            }
            E::Un(op, e) => format!("({}({}))", op, e.render()),
        }
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (0usize..3).prop_map(E::Var),
        any::<u32>().prop_map(E::Const),
        (0u32..16).prop_map(E::Const),
    ];
    leaf.prop_recursive(5, 64, 4, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just("+"),
                    Just("-"),
                    Just("*"),
                    Just("/"),
                    Just("%"),
                    Just("&"),
                    Just("|"),
                    Just("^"),
                    Just("<<"),
                    Just(">>"),
                    Just("<"),
                    Just("<="),
                    Just(">"),
                    Just(">="),
                    Just("=="),
                    Just("!="),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| E::Bin(op, Box::new(l), Box::new(r))),
            (prop_oneof![Just("-"), Just("~"), Just("!")], inner)
                .prop_map(|(op, e)| E::Un(op, Box::new(e))),
        ]
    })
}

fn run_all_levels(src: &str, args: &[u32]) -> Vec<u32> {
    let p = frontend(src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    let mut outs = Vec::new();
    let interp = Interp::new(&p);
    outs.push(interp.call("f", args).unwrap_or_else(|e| panic!("{e}\n{src}")));
    let ir = lower(&p).unwrap();
    let ev = IrEval::new(&ir);
    outs.push(ev.call("f", args).unwrap());
    for opt in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
        let asm = compile(&p, opt).unwrap();
        let prog = assemble(&asm).unwrap_or_else(|e| panic!("{e}\n{asm}"));
        let mut m = Machine::with_program(&prog);
        let entry = prog.address_of("f").unwrap();
        outs.push(m.call(entry, args, 10_000_000).unwrap());
    }
    outs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn expressions_agree_across_all_levels(e in arb_expr(), a: u32, b: u32, c: u32) {
        let src = format!("u32 f(u32 a, u32 b, u32 c) {{ return {}; }}", e.render());
        let outs = run_all_levels(&src, &[a, b, c]);
        let first = outs[0];
        for (i, &o) in outs.iter().enumerate() {
            prop_assert_eq!(o, first, "level {} diverged on {}", i, src);
        }
    }

    #[test]
    fn conditionals_agree_across_all_levels(
        e1 in arb_expr(),
        e2 in arb_expr(),
        a: u32,
        b: u32,
        c: u32,
        n in 0u32..20,
    ) {
        // A loop whose body mixes two random expressions and a
        // conditional — exercises the CFG paths of the backend.
        let src = format!(
            "u32 f(u32 a, u32 b, u32 c) {{
                u32 acc = 0;
                for (u32 i = 0; i < {n}; i = i + 1) {{
                    u32 x = {};
                    if (x & 1) {{ acc = acc + x; }} else {{ acc = acc ^ ({}); }}
                    a = a + 1;
                }}
                return acc;
            }}",
            e1.render(),
            e2.render()
        );
        let outs = run_all_levels(&src, &[a, b, c]);
        let first = outs[0];
        for (i, &o) in outs.iter().enumerate() {
            prop_assert_eq!(o, first, "level {} diverged on {}", i, src);
        }
    }

    #[test]
    fn byte_buffers_agree_across_levels(data: [u8; 16], e in arb_expr()) {
        // handle-shaped program mixing byte and word accesses.
        let src = format!(
            "void handle(u8* state, u8* cmd, u8* resp) {{
                u32 a = cmd[0];
                u32 b = cmd[1];
                u32 c = cmd[2];
                u32 v = {};
                resp[0] = (u8)v;
                resp[1] = (u8)(v >> 8);
                resp[2] = (u8)(v >> 16);
                resp[3] = (u8)(v >> 24);
                state[0] = (u8)(state[0] + 1);
            }}",
            e.render()
        );
        let p = frontend(&src).unwrap();
        let interp = Interp::new(&p);
        let st = vec![data[15]; 4];
        let (s1, r1) = interp.step(&st, &data[..8], 4).unwrap();
        let ir = lower(&p).unwrap();
        let ev = IrEval::new(&ir);
        let (s2, r2) = ev.step(&st, &data[..8], 4).unwrap();
        prop_assert_eq!((&s1, &r1), (&s2, &r2));
        for opt in [OptLevel::O0, OptLevel::O2] {
            let asm = parfait_littlec::validate::asm_machine(&p, opt, 4, 8, 4).unwrap();
            let (s3, r3) = asm.step(&st, &data[..8]).unwrap();
            prop_assert_eq!((&s1, &r1), (&s3, &r3), "asm {} diverged", opt);
        }
    }
}
