//! A PicoRV32-like size-optimized multi-cycle RV32IM core model.
//!
//! Every instruction pays a 2-cycle fetch, a 1-cycle decode, and an
//! execute latency:
//!
//! * ALU / branch / jump: 1 cycle;
//! * load / store: 2 cycles;
//! * shift: serial shifter, `1 + ceil(amount / 4)` cycles (like
//!   PicoRV32's small dual-bit shifter, latency depends on the amount);
//! * multiply: fixed 32-cycle iterative multiplier (data-independent);
//! * divide: iterative, `2 + bitlen(dividend)` cycles (data-dependent).
//!
//! The result is ~4–7 cycles per instruction — substantially slower than
//! the Ibex-like pipeline, which is exactly the relationship the paper's
//! Table 4 relies on (apps take more cycles on the PicoRV32, but each
//! SoC cycle is cheaper to simulate).

use std::sync::Arc;

use parfait_riscv::decode::DecodeError;
use parfait_riscv::isa::Instr;
use parfait_riscv::predecode::DecodeCache;
use parfait_rtl::W;

use crate::contract::{Clause, InstrClass, Latency, LatencyDep, LeakageContract};
use crate::datapath::{
    execute, execute_decoded, Core, Exec, Fault, LeakEvent, LeakKind, MemIf, OpClass, SeededFault,
};

/// PicoRV32's exported leakage contract (DESIGN.md §15): the
/// declarative observable model this core's execute-latency table is
/// *derived* from, and which the contract battery checks it against.
///
/// Unlike Ibex, the variable-latency units here (serial shifter,
/// iterative divider) carry a taint check, so their clauses declare a
/// self-reported [`LeakKind::VarLatencySecret`] on tainted operands.
pub fn contract() -> &'static LeakageContract {
    const FIXED1: Clause =
        Clause { latency: Latency::Fixed(1), addr_trace: false, leak_on_tainted: None };
    static CONTRACT: LeakageContract = LeakageContract {
        core: "PicoRV32",
        revision: 1,
        // Every instruction refetches: 2 fetch cycles of overhead.
        overhead: 2,
        // No pipeline to squash, so redirects cost nothing extra.
        redirect_penalty: 0,
        clauses: [
            // alu
            FIXED1,
            // shift: serial dual-bit shifter, 4 bits per cycle.
            Clause {
                latency: Latency::Operand {
                    base: 1,
                    dep: LatencyDep::ShiftChunks { bits_per_cycle: 4 },
                },
                addr_trace: false,
                leak_on_tainted: Some(LeakKind::VarLatencySecret),
            },
            // mul: fixed 32-cycle iterative multiplier.
            Clause { latency: Latency::Fixed(32), addr_trace: false, leak_on_tainted: None },
            // div: iterative, dividend-bit dependent, taint-checked.
            Clause {
                latency: Latency::Operand { base: 2, dep: LatencyDep::DividendBits },
                addr_trace: false,
                leak_on_tainted: Some(LeakKind::VarLatencySecret),
            },
            // load
            Clause {
                latency: Latency::Fixed(2),
                addr_trace: true,
                leak_on_tainted: Some(LeakKind::AddrSecret),
            },
            // store
            Clause {
                latency: Latency::Fixed(2),
                addr_trace: true,
                leak_on_tainted: Some(LeakKind::AddrSecret),
            },
            // branch
            Clause {
                latency: Latency::Fixed(1),
                addr_trace: false,
                leak_on_tainted: Some(LeakKind::BranchOnSecret),
            },
            // jump
            Clause {
                latency: Latency::Fixed(1),
                addr_trace: false,
                leak_on_tainted: Some(LeakKind::JumpTargetSecret),
            },
            // fence
            FIXED1,
        ],
    };
    &CONTRACT
}

#[derive(Clone)]
enum Stage {
    /// First fetch cycle.
    Fetch1,
    /// Second fetch cycle; the word arrives.
    Fetch2,
    /// Decode cycle for the fetched (word, pc).
    Decode(u32, u32),
    /// Executing (word, pc) with `remaining` cycles to go.
    Execute(u32, u32, u32),
}

/// The multi-cycle core.
#[derive(Clone)]
pub struct PicoCore {
    regs: [W; 32],
    pc: u32,
    stage: Stage,
    cycles: u64,
    retired: u64,
    last_retired: Option<(u32, u32)>,
    leaks: Vec<LeakEvent>,
    fault: Option<Fault>,
    /// Seeded micro-architectural bug (mutation testing only).
    seeded: Option<SeededFault>,
    /// Pre-decoded ROM image (shared across snapshots); `None` runs the
    /// uncached fetch + decode path everywhere.
    cache: Option<Arc<DecodeCache>>,
    /// Decode latch: the cache's decoded form of the word the last
    /// fetch served, carried through the Decode stage so exec does not
    /// repeat the cache lookup. `None` whenever the word came off the
    /// bus (exec then decodes it live).
    fetched: Option<Result<Instr, DecodeError>>,
    cache_hits: u64,
    cache_misses: u64,
}

impl PicoCore {
    /// A core reset to fetch from `boot_pc`.
    pub fn new(boot_pc: u32) -> PicoCore {
        PicoCore::with_fault(boot_pc, None)
    }

    /// A core with a deliberately seeded bug (see [`SeededFault`]);
    /// `None` is exactly [`PicoCore::new`]. The seed survives `reset`,
    /// like a silicon bug survives a power cycle.
    pub fn with_fault(boot_pc: u32, seeded: Option<SeededFault>) -> PicoCore {
        PicoCore {
            regs: [W::default(); 32],
            pc: boot_pc,
            stage: Stage::Fetch1,
            cycles: 0,
            retired: 0,
            last_retired: None,
            leaks: Vec::new(),
            fault: None,
            seeded,
            cache: None,
            fetched: None,
            cache_hits: 0,
            cache_misses: 0,
        }
    }

    /// Instruction fetch: the pre-decoded cache serves covered pcs
    /// without touching the bus; everything else (no cache, pc outside
    /// the image, misaligned) takes the bus path bit-for-bit. A cache
    /// hit also latches the entry's decoded form for the exec stage
    /// (the entry pairs the word with its decode, so the latch is the
    /// decode of exactly the word returned here).
    #[inline]
    fn fetch(&mut self, mem: &mut dyn MemIf, pc: u32) -> u32 {
        if let Some(c) = &self.cache {
            if let Some(&(word, decoded)) = c.entry(pc) {
                self.cache_hits += 1;
                self.fetched = Some(decoded);
                return word;
            }
            self.cache_misses += 1;
        }
        self.fetched = None;
        mem.fetch(pc)
    }

    /// Execute `word` at `ipc`, skipping the decoder when fetch latched
    /// the pre-decoded form of this word.
    #[inline]
    fn exec(&mut self, word: u32, ipc: u32, mem: &mut dyn MemIf) -> Exec {
        match self.fetched.take() {
            Some(Ok(i)) => execute_decoded(
                i,
                ipc,
                &mut self.regs,
                mem,
                self.cycles,
                &mut self.leaks,
                &mut self.fault,
            ),
            Some(Err(_)) => {
                self.fault = Some(Fault::Illegal { pc: ipc, word });
                Exec { next_pc: ipc, class: OpClass::Alu }
            }
            None => execute(
                word,
                ipc,
                &mut self.regs,
                mem,
                self.cycles,
                &mut self.leaks,
                &mut self.fault,
            ),
        }
    }

    /// Execute-stage latency (total cycles spent in Execute) — derived
    /// from the exported [`contract`], which also declares the
    /// self-reported taint leak this unit raises. Seeded faults either
    /// bypass the declared latency (`MulEarlyExit`) or silence the
    /// declared leak (`ContractTaintSilent`); the contract battery
    /// measures both discrepancies.
    fn latency(&mut self, class: &OpClass, pc: u32) -> u32 {
        let instr_class = InstrClass::of(class);
        let clause = contract().clause(instr_class);
        let operand_tainted = match class {
            OpClass::Shift { amount_tainted, .. } => *amount_tainted,
            OpClass::Div { operand_tainted, .. } => *operand_tainted,
            _ => false,
        };
        let silenced =
            self.seeded == Some(SeededFault::ContractTaintSilent) && instr_class == InstrClass::Div;
        if operand_tainted && !silenced {
            if let Some(kind) = clause.leak_on_tainted {
                self.leaks.push(LeakEvent { cycle: self.cycles, pc, kind, class: instr_class });
            }
        }
        if let (Some(SeededFault::MulEarlyExit), OpClass::Mul { a, b, .. }) = (self.seeded, class) {
            // The early-exit iterative multiplier the paper's modified
            // core removed (§7.1): cycles track the smaller operand's
            // bit-length, and the (buggy) latency path performs no
            // taint check — only the dual-world timing comparison and
            // the contract battery's operand sweep can observe it.
            let bits = (32 - a.leading_zeros()).min(32 - b.leading_zeros());
            return 2 + bits;
        }
        contract().cycles(class)
    }
}

impl Core for PicoCore {
    fn clone_box(&self) -> Box<dyn Core> {
        Box::new(self.clone())
    }

    fn step(&mut self, mem: &mut dyn MemIf) {
        self.cycles += 1;
        self.last_retired = None;
        if self.fault.is_some() {
            return;
        }
        match self.stage {
            Stage::Fetch1 => {
                self.stage = Stage::Fetch2;
            }
            Stage::Fetch2 => {
                let word = self.fetch(mem, self.pc);
                self.stage = Stage::Decode(word, self.pc);
            }
            Stage::Decode(word, ipc) => {
                // Execute the datapath on the *first* execute cycle and
                // then burn the remaining latency; memory side effects
                // happen exactly once.
                let Exec { next_pc, class } = self.exec(word, ipc, mem);
                if self.fault.is_some() {
                    return;
                }
                let lat = self.latency(&class, ipc);
                self.pc = next_pc;
                self.stage = Stage::Execute(word, ipc, lat);
                // Fall through to count this as the first execute cycle.
                if let Stage::Execute(w, p, ref mut rem) = self.stage {
                    *rem -= 1;
                    if *rem == 0 {
                        self.retired += 1;
                        self.last_retired = Some((w, p));
                        self.stage = Stage::Fetch1;
                    }
                }
            }
            Stage::Execute(word, ipc, ref mut remaining) => {
                *remaining -= 1;
                if *remaining == 0 {
                    self.retired += 1;
                    self.last_retired = Some((word, ipc));
                    self.stage = Stage::Fetch1;
                }
            }
        }
    }

    fn regs(&self) -> &[W; 32] {
        &self.regs
    }

    fn pc(&self) -> u32 {
        self.pc
    }

    fn instr_in_decode(&self) -> Option<(u32, u32)> {
        match self.stage {
            Stage::Decode(w, p) | Stage::Execute(w, p, _) => Some((w, p)),
            _ => None,
        }
    }

    fn last_retired(&self) -> Option<(u32, u32)> {
        self.last_retired
    }

    fn retired(&self) -> u64 {
        self.retired
    }

    fn cycles(&self) -> u64 {
        self.cycles
    }

    fn leaks(&self) -> &[LeakEvent] {
        &self.leaks
    }

    fn fault(&self) -> Option<&Fault> {
        self.fault.as_ref()
    }

    fn reset(&mut self, pc: u32) {
        // The cache (immutable, image-keyed) and its lifetime stats
        // survive a power cycle, like the ROM itself.
        let cache = self.cache.take();
        let (hits, misses) = (self.cache_hits, self.cache_misses);
        *self = PicoCore::with_fault(pc, self.seeded);
        self.cache = cache;
        self.cache_hits = hits;
        self.cache_misses = misses;
    }

    fn attach_decode_cache(&mut self, cache: Arc<DecodeCache>) {
        self.cache = Some(cache);
    }

    fn take_decode_stats(&mut self) -> (u64, u64) {
        (std::mem::take(&mut self.cache_hits), std::mem::take(&mut self.cache_misses))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datapath::tests_support::ProgMem;
    use crate::ibex::IbexCore;

    fn run_until_retired(c: &mut dyn Core, mem: &mut ProgMem, n: u64, max: u64) -> u64 {
        let mut cycles = 0;
        while c.retired() < n {
            c.step(mem);
            cycles += 1;
            assert!(cycles < max, "did not retire {n} instructions in {max} cycles");
        }
        cycles
    }

    #[test]
    fn executes_programs_correctly() {
        let mut mem = ProgMem::from_asm(
            "
            addi t0, zero, 10
            addi t1, zero, 0
            loop:
            add t1, t1, t0
            addi t0, t0, -1
            bnez t0, loop
            nop
            nop
            ",
        );
        let mut c = PicoCore::new(0);
        run_until_retired(&mut c, &mut mem, 2 + 3 * 10, 1000);
        assert_eq!(c.regs()[6].v, 55);
    }

    #[test]
    fn slower_than_ibex() {
        let src = "
            addi t0, zero, 50
            loop:
            addi t0, t0, -1
            bnez t0, loop
            nop
            nop
        ";
        let mut mem_a = ProgMem::from_asm(src);
        let mut mem_b = ProgMem::from_asm(src);
        let mut ibex = IbexCore::new(0);
        let mut pico = PicoCore::new(0);
        let n = 1 + 2 * 50;
        let ci = run_until_retired(&mut ibex, &mut mem_a, n, 100_000);
        let cp = run_until_retired(&mut pico, &mut mem_b, n, 100_000);
        assert!(cp > 2 * ci, "pico ({cp}) should be much slower than ibex ({ci})");
    }

    #[test]
    fn serial_shift_latency_depends_on_amount() {
        let run = |amt: u32| {
            let mut mem = ProgMem::from_asm(&format!(
                "
                addi t0, zero, 1
                addi t1, zero, {amt}
                sll t2, t0, t1
                nop
                nop
                "
            ));
            let mut c = PicoCore::new(0);
            run_until_retired(&mut c, &mut mem, 3, 1000)
        };
        assert!(run(31) > run(1));
    }

    #[test]
    fn shift_by_tainted_amount_is_flagged() {
        let mut mem = ProgMem::from_asm(
            "
            addi t0, zero, 1
            sll t2, t0, t1
            nop
            nop
            ",
        );
        let mut c = PicoCore::new(0);
        c.regs[6] = W::secret(13);
        run_until_retired(&mut c, &mut mem, 2, 1000);
        assert!(c.leaks().iter().any(|l| l.kind == LeakKind::VarLatencySecret));
    }

    #[test]
    fn mul_latency_is_fixed() {
        let run = |a: u32, b: u32| {
            let mut mem = ProgMem::from_asm(&format!(
                "
                addi t0, zero, {a}
                addi t1, zero, {b}
                mul t2, t0, t1
                nop
                nop
                "
            ));
            let mut c = PicoCore::new(0);
            run_until_retired(&mut c, &mut mem, 3, 1000)
        };
        assert_eq!(run(0, 0), run(2047, 2047), "multiplier must be constant-latency");
    }

    #[test]
    fn matches_riscette_semantics() {
        // The cycle-accurate core and the ISA-level machine must compute
        // the same architectural results.
        let src = "
            addi t0, zero, 37
            addi t1, zero, 11
            mul t2, t0, t1
            divu t3, t2, t1
            sub t4, t2, t0
            slli t5, t1, 3
            sltu t6, t0, t1
            nop
            nop
        ";
        let mut mem = ProgMem::from_asm(src);
        let mut c = PicoCore::new(0);
        run_until_retired(&mut c, &mut mem, 7, 10_000);
        let prog = parfait_riscv::asm::assemble(src).unwrap();
        let mut m = parfait_riscv::machine::Machine::with_program(&prog);
        for _ in 0..7 {
            m.step().unwrap();
        }
        for i in 0..32 {
            if i == 2 {
                continue; // Machine::with_program pre-initializes sp.
            }
            assert_eq!(c.regs()[i].v, m.regs[i], "x{i}");
        }
    }
}

#[cfg(test)]
mod timing_tests {
    use super::*;
    use crate::datapath::tests_support::ProgMem;

    fn cycles_to_retire(src: &str, n: u64) -> u64 {
        let mut mem = ProgMem::from_asm(src);
        let mut c = PicoCore::new(0);
        let mut cycles = 0;
        while c.retired() < n {
            c.step(&mut mem);
            cycles += 1;
            assert!(cycles < 100_000);
        }
        cycles
    }

    #[test]
    fn alu_instruction_costs_three_cycles() {
        // fetch(2) + decode/execute(1).
        assert_eq!(cycles_to_retire("addi t0, zero, 1\nnop\nnop", 1), 3);
    }

    #[test]
    fn loads_and_stores_cost_four() {
        assert_eq!(cycles_to_retire("lw t0, 16(zero)\nnop\nnop", 1), 4);
        assert_eq!(cycles_to_retire("sw t0, 16(zero)\nnop\nnop", 1), 4);
    }

    #[test]
    fn mul_costs_a_fixed_32_cycle_execute() {
        assert_eq!(cycles_to_retire("mul t0, t1, t2\nnop\nnop", 1), 2 + 32);
    }

    #[test]
    fn branch_taken_and_not_taken_same_cost() {
        // Multi-cycle core refetches after every instruction, so branch
        // direction does not change latency (no pipeline to squash).
        let taken = cycles_to_retire("beq zero, zero, t\nnop\nt:\nnop\nnop", 1);
        let not_taken = cycles_to_retire("bne zero, zero, t\nnop\nt:\nnop\nnop", 1);
        assert_eq!(taken, not_taken);
    }

    #[test]
    fn immediate_shift_latency_is_public() {
        // slli with a constant amount: latency varies with the amount,
        // but the amount is program text (public), so this is fine.
        let s1 = cycles_to_retire("slli t0, t1, 1\nnop\nnop", 1);
        let s31 = cycles_to_retire("slli t0, t1, 31\nnop\nnop", 1);
        assert!(s31 > s1);
        let mut mem = ProgMem::from_asm("slli t0, t1, 31\nnop\nnop");
        let mut c = PicoCore::new(0);
        while c.retired() < 1 {
            c.step(&mut mem);
        }
        assert!(c.leaks().is_empty(), "constant shift amounts never leak");
    }
}
