//! Shared RV32IM datapath semantics and the core/SoC interfaces.

use std::sync::Arc;

use parfait_riscv::decode::decode;
use parfait_riscv::isa::{AluOp, Instr, LoadOp, Reg, StoreOp};
use parfait_riscv::predecode::DecodeCache;
use parfait_rtl::W;

use crate::contract::InstrClass;

/// Memory interface a core uses within a cycle.
///
/// Fetches are side-effect free (ROM/RAM only); data reads may have MMIO
/// side effects and are issued exactly once per executed load.
pub trait MemIf {
    /// Instruction fetch at a word-aligned address.
    fn fetch(&mut self, addr: u32) -> u32;
    /// Data read of the aligned word containing `addr`.
    fn read(&mut self, addr: u32) -> W;
    /// Data write with a byte-lane mask.
    fn write(&mut self, addr: u32, val: W, mask: u8);
}

/// Why secret data reached control state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LeakKind {
    /// A branch condition depended on tainted data.
    BranchOnSecret,
    /// An indirect jump target was tainted.
    JumpTargetSecret,
    /// A load/store address was tainted.
    AddrSecret,
    /// A variable-latency unit (divider, serial shifter) consumed
    /// tainted data.
    VarLatencySecret,
}

/// A recorded information-flow violation inside a core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeakEvent {
    /// Cycle at which the flow was observed.
    pub cycle: u64,
    /// PC of the offending instruction.
    pub pc: u32,
    /// What kind of flow occurred.
    pub kind: LeakKind,
    /// Instruction class of the offending instruction — ties the event
    /// to the contract clause it witnesses (see [`crate::contract`]).
    pub class: InstrClass,
}

/// A fatal condition that the verification layer reports as failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Illegal instruction word.
    Illegal { pc: u32, word: u32 },
    /// Misaligned load/store.
    Misaligned { pc: u32, addr: u32 },
    /// `ecall`/`ebreak` executed (the firmware never does this).
    Env { pc: u32 },
}

/// The cycle-steppable CPU interface the SoC and Knox2 use.
///
/// Cores are plain data (`Send`) and cheaply snapshottable via
/// [`Core::clone_box`], so the parallel FPS checker can fork a SoC at a
/// quiescent point and verify segments on worker threads.
pub trait Core: Send {
    /// Advance one clock cycle.
    fn step(&mut self, mem: &mut dyn MemIf);
    /// Snapshot this core (the object-safe `Clone`).
    fn clone_box(&self) -> Box<dyn Core>;
    /// Architectural register file (with taint).
    fn regs(&self) -> &[W; 32];
    /// Current fetch PC.
    fn pc(&self) -> u32;
    /// The instruction currently in the decode/execute stage, if valid —
    /// the paper's fig. 10 "encoding of next RISC-V instruction".
    fn instr_in_decode(&self) -> Option<(u32, u32)>;
    /// Instruction retired during the last `step`, if any: (word, pc).
    fn last_retired(&self) -> Option<(u32, u32)>;
    /// Total retired instructions.
    fn retired(&self) -> u64;
    /// Cycles elapsed.
    fn cycles(&self) -> u64;
    /// Information-flow violations observed so far.
    fn leaks(&self) -> &[LeakEvent];
    /// Fatal fault, if any.
    fn fault(&self) -> Option<&Fault>;
    /// Reset to the boot PC with cleared registers.
    fn reset(&mut self, pc: u32);
    /// Attach a pre-decoded instruction cache covering the fetch
    /// address space (the SoC's ROM). Fetches the cache covers skip the
    /// bus and the per-cycle decode; everything else falls back to the
    /// uncached path bit-for-bit. Default: caching unsupported (no-op).
    fn attach_decode_cache(&mut self, _cache: Arc<DecodeCache>) {}
    /// Drain this core's decode-cache `(hits, misses)` counters,
    /// resetting them to zero — callers flush the delta into the
    /// metrics registry at run boundaries, not per cycle. Misses count
    /// fetches an *attached* cache did not cover; a core without a
    /// cache reports `(0, 0)`.
    fn take_decode_stats(&mut self) -> (u64, u64) {
        (0, 0)
    }
}

impl Clone for Box<dyn Core> {
    fn clone(&self) -> Box<dyn Core> {
        self.clone_box()
    }
}

/// A deliberately seeded micro-architectural bug, used by the
/// `parfait-adversary` mutation harness (DESIGN.md §12) to prove the
/// FPS check catches hardware-level faults. A core constructed
/// `with_fault` misbehaves in one specific, classified way; `None`
/// (the only value production code ever passes) leaves the model
/// bit-for-bit identical to the unseeded one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeededFault {
    /// Ibex: the EX stage reads a stale register value for any source
    /// that the immediately preceding instruction wrote — a broken
    /// forwarding/bypass path.
    StaleForwarding,
    /// Pico: the iterative multiplier exits early once the smaller
    /// operand runs out of bits — the variable-latency multiplier the
    /// paper's modified Ibex removed (§7.1) — and the taint check on
    /// that latency path is missing, so only the dual-world timing
    /// comparison can see it.
    MulEarlyExit,
    /// Ibex: the divider takes three cycles longer than the exported
    /// contract admits — an understated latency clause. The contract
    /// battery's dividend sweep measures the discrepancy directly.
    ContractLatencyUnderstated,
    /// Ibex: the barrel shifter is secretly serialized (one extra cycle
    /// per 8 bits of amount) while the contract still declares a fixed
    /// single-cycle shift — a hidden operand dependence.
    ContractHiddenOperandDep,
    /// Pico: the divider's taint check is dropped, so tainted operands
    /// no longer raise the contract-declared `VarLatencySecret` event.
    /// Timing is unchanged, so constant-time firmware sails through the
    /// dual-world FPS comparison — only the contract battery's tainted
    /// stimulus notices the silent clause.
    ContractTaintSilent,
}

/// Classification of an executed instruction, for per-core latency
/// tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpClass {
    /// Simple ALU / lui / auipc.
    Alu,
    /// Shift (latency may depend on the amount on serial shifters).
    Shift {
        /// Shift amount actually used.
        amount: u32,
        /// Whether the amount came from a register.
        from_reg: bool,
        /// Whether the amount was tainted.
        amount_tainted: bool,
    },
    /// Multiply; operand values carried for latency models that
    /// (incorrectly) depend on them.
    Mul {
        /// First operand value.
        a: u32,
        /// Second operand value.
        b: u32,
        /// Whether an operand was tainted.
        operands_tainted: bool,
    },
    /// Divide / remainder.
    Div {
        /// Dividend value (latency models depend on it).
        dividend: u32,
        /// Whether an operand was tainted.
        operand_tainted: bool,
    },
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch; `taken` tells whether it redirected.
    Branch {
        /// Whether the branch was taken.
        taken: bool,
    },
    /// jal/jalr.
    Jump,
    /// fence (no-op).
    Fence,
}

/// The result of executing one instruction on the shared datapath.
pub struct Exec {
    /// Next PC.
    pub next_pc: u32,
    /// Classification for latency modeling.
    pub class: OpClass,
}

/// Execute `word` (fetched at `pc`) against `regs`/`mem`.
///
/// All value computation, taint propagation, leak recording, and fault
/// detection is shared between cores here; only *latency* differs per
/// core.
pub fn execute(
    word: u32,
    pc: u32,
    regs: &mut [W; 32],
    mem: &mut dyn MemIf,
    cycle: u64,
    leaks: &mut Vec<LeakEvent>,
    fault: &mut Option<Fault>,
) -> Exec {
    let instr = match decode(word) {
        Ok(i) => i,
        Err(_) => {
            *fault = Some(Fault::Illegal { pc, word });
            return Exec { next_pc: pc, class: OpClass::Alu };
        }
    };
    execute_decoded(instr, pc, regs, mem, cycle, leaks, fault)
}

/// [`execute`] for an already-decoded instruction — the decode-cache
/// fast path. Semantically identical to `execute(encode(instr), ...)`;
/// illegal words never reach this (they fail decode, so the caller
/// raises [`Fault::Illegal`] itself).
pub fn execute_decoded(
    instr: Instr,
    pc: u32,
    regs: &mut [W; 32],
    mem: &mut dyn MemIf,
    cycle: u64,
    leaks: &mut Vec<LeakEvent>,
    fault: &mut Option<Fault>,
) -> Exec {
    let rd_write = |regs: &mut [W; 32], r: Reg, v: W| {
        if r != Reg::ZERO {
            regs[r.0 as usize] = v;
        }
    };
    let r = |regs: &[W; 32], r: Reg| if r == Reg::ZERO { W::pub32(0) } else { regs[r.0 as usize] };
    let mut next_pc = pc.wrapping_add(4);
    let class = match instr {
        Instr::Lui { rd, imm } => {
            rd_write(regs, rd, W::pub32((imm as u32) << 12));
            OpClass::Alu
        }
        Instr::Auipc { rd, imm } => {
            rd_write(regs, rd, W::pub32(pc.wrapping_add((imm as u32) << 12)));
            OpClass::Alu
        }
        Instr::Jal { rd, off } => {
            rd_write(regs, rd, W::pub32(next_pc));
            next_pc = pc.wrapping_add(off as u32);
            OpClass::Jump
        }
        Instr::Jalr { rd, rs1, off } => {
            let base = r(regs, rs1);
            if base.t {
                leaks.push(LeakEvent {
                    cycle,
                    pc,
                    kind: LeakKind::JumpTargetSecret,
                    class: InstrClass::Jump,
                });
            }
            let target = base.v.wrapping_add(off as u32) & !1;
            rd_write(regs, rd, W::pub32(next_pc));
            next_pc = target;
            OpClass::Jump
        }
        Instr::Branch { op, rs1, rs2, off } => {
            let a = r(regs, rs1);
            let b = r(regs, rs2);
            if a.t || b.t {
                leaks.push(LeakEvent {
                    cycle,
                    pc,
                    kind: LeakKind::BranchOnSecret,
                    class: InstrClass::Branch,
                });
            }
            let taken = op.taken(a.v, b.v);
            if taken {
                next_pc = pc.wrapping_add(off as u32);
            }
            OpClass::Branch { taken }
        }
        Instr::Load { op, rd, rs1, off } => {
            let base = r(regs, rs1);
            if base.t {
                leaks.push(LeakEvent {
                    cycle,
                    pc,
                    kind: LeakKind::AddrSecret,
                    class: InstrClass::Load,
                });
            }
            let addr = base.v.wrapping_add(off as u32);
            let aligned_ok = match op {
                LoadOp::Lw => addr % 4 == 0,
                LoadOp::Lh | LoadOp::Lhu => addr % 2 == 0,
                _ => true,
            };
            if !aligned_ok {
                *fault = Some(Fault::Misaligned { pc, addr });
                return Exec { next_pc: pc, class: OpClass::Load };
            }
            let w = mem.read(addr & !3);
            let sh = 8 * (addr % 4);
            let v = match op {
                LoadOp::Lb => ((w.v >> sh) as u8 as i8 as i32) as u32,
                LoadOp::Lbu => (w.v >> sh) as u8 as u32,
                LoadOp::Lh => ((w.v >> sh) as u16 as i16 as i32) as u32,
                LoadOp::Lhu => (w.v >> sh) as u16 as u32,
                LoadOp::Lw => w.v,
            };
            rd_write(regs, rd, W { v, t: w.t || base.t });
            OpClass::Load
        }
        Instr::Store { op, rs1, rs2, off } => {
            let base = r(regs, rs1);
            if base.t {
                leaks.push(LeakEvent {
                    cycle,
                    pc,
                    kind: LeakKind::AddrSecret,
                    class: InstrClass::Store,
                });
            }
            let addr = base.v.wrapping_add(off as u32);
            let val = r(regs, rs2);
            let (mask, shifted): (u8, u32) = match op {
                StoreOp::Sb => (1 << (addr % 4), (val.v & 0xFF) << (8 * (addr % 4))),
                StoreOp::Sh => {
                    if addr % 2 != 0 {
                        *fault = Some(Fault::Misaligned { pc, addr });
                        return Exec { next_pc: pc, class: OpClass::Store };
                    }
                    (0x3 << (addr % 4), (val.v & 0xFFFF) << (8 * (addr % 4)))
                }
                StoreOp::Sw => {
                    if addr % 4 != 0 {
                        *fault = Some(Fault::Misaligned { pc, addr });
                        return Exec { next_pc: pc, class: OpClass::Store };
                    }
                    (0xF, val.v)
                }
            };
            mem.write(addr & !3, W { v: shifted, t: val.t }, mask);
            OpClass::Store
        }
        Instr::OpImm { op, rd, rs1, imm } => {
            let a = r(regs, rs1);
            let v = W { v: op.eval(a.v, imm as u32), t: a.t };
            rd_write(regs, rd, v);
            match op {
                AluOp::Sll | AluOp::Srl | AluOp::Sra => OpClass::Shift {
                    amount: (imm as u32) & 31,
                    from_reg: false,
                    amount_tainted: false,
                },
                _ => OpClass::Alu,
            }
        }
        Instr::Op { op, rd, rs1, rs2 } => {
            let a = r(regs, rs1);
            let b = r(regs, rs2);
            let v = W { v: op.eval(a.v, b.v), t: a.t || b.t };
            rd_write(regs, rd, v);
            match op {
                AluOp::Sll | AluOp::Srl | AluOp::Sra => {
                    OpClass::Shift { amount: b.v & 31, from_reg: true, amount_tainted: b.t }
                }
                AluOp::Mul | AluOp::Mulh | AluOp::Mulhsu | AluOp::Mulhu => {
                    OpClass::Mul { a: a.v, b: b.v, operands_tainted: a.t || b.t }
                }
                AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu => {
                    OpClass::Div { dividend: a.v, operand_tainted: a.t || b.t }
                }
                _ => OpClass::Alu,
            }
        }
        Instr::Fence => OpClass::Fence,
        Instr::Ecall | Instr::Ebreak => {
            *fault = Some(Fault::Env { pc });
            OpClass::Alu
        }
    };
    Exec { next_pc, class }
}

/// Source registers an instruction reads (for the seeded stale-forwarding
/// fault, which needs to know whether the EX stage consumes the previous
/// instruction's result).
pub(crate) fn instr_sources(i: &Instr) -> (Option<Reg>, Option<Reg>) {
    match *i {
        Instr::Jalr { rs1, .. } | Instr::Load { rs1, .. } | Instr::OpImm { rs1, .. } => {
            (Some(rs1), None)
        }
        Instr::Branch { rs1, rs2, .. }
        | Instr::Store { rs1, rs2, .. }
        | Instr::Op { rs1, rs2, .. } => (Some(rs1), Some(rs2)),
        _ => (None, None),
    }
}

/// Destination register an instruction writes, if architecturally
/// visible (`x0` writes are discarded).
pub(crate) fn instr_dest(i: &Instr) -> Option<Reg> {
    match *i {
        Instr::Lui { rd, .. }
        | Instr::Auipc { rd, .. }
        | Instr::Jal { rd, .. }
        | Instr::Jalr { rd, .. }
        | Instr::Load { rd, .. }
        | Instr::OpImm { rd, .. }
        | Instr::Op { rd, .. } => (rd != Reg::ZERO).then_some(rd),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfait_riscv::encode::encode;

    struct FlatMem {
        data: Vec<W>,
    }

    impl MemIf for FlatMem {
        fn fetch(&mut self, addr: u32) -> u32 {
            self.data[(addr / 4) as usize].v
        }
        fn read(&mut self, addr: u32) -> W {
            self.data[(addr / 4) as usize]
        }
        fn write(&mut self, addr: u32, val: W, mask: u8) {
            let old = self.data[(addr / 4) as usize];
            let mut v = old.v;
            for lane in 0..4 {
                if mask & (1 << lane) != 0 {
                    let sh = 8 * lane;
                    v = (v & !(0xFF << sh)) | (val.v & (0xFF << sh));
                }
            }
            self.data[(addr / 4) as usize] = W { v, t: old.t || val.t };
        }
    }

    fn exec1(word: u32, regs: &mut [W; 32]) -> (Exec, Vec<LeakEvent>, Option<Fault>) {
        let mut mem = FlatMem { data: vec![W::default(); 64] };
        let mut leaks = Vec::new();
        let mut fault = None;
        let e = execute(word, 0x100, regs, &mut mem, 7, &mut leaks, &mut fault);
        (e, leaks, fault)
    }

    #[test]
    fn branch_on_secret_flagged() {
        let mut regs = [W::default(); 32];
        regs[5] = W::secret(1);
        let word = encode(Instr::Branch {
            op: parfait_riscv::isa::BranchOp::Ne,
            rs1: Reg::T0,
            rs2: Reg::ZERO,
            off: 8,
        });
        let (e, leaks, fault) = exec1(word, &mut regs);
        assert_eq!(leaks.len(), 1);
        assert_eq!(leaks[0].kind, LeakKind::BranchOnSecret);
        assert_eq!(e.next_pc, 0x108);
        assert!(fault.is_none());
    }

    #[test]
    fn public_branch_not_flagged() {
        let mut regs = [W::default(); 32];
        regs[5] = W::pub32(1);
        let word = encode(Instr::Branch {
            op: parfait_riscv::isa::BranchOp::Eq,
            rs1: Reg::T0,
            rs2: Reg::ZERO,
            off: 8,
        });
        let (_, leaks, _) = exec1(word, &mut regs);
        assert!(leaks.is_empty());
    }

    #[test]
    fn secret_address_flagged() {
        let mut regs = [W::default(); 32];
        regs[5] = W::secret(16);
        let word = encode(Instr::Load { op: LoadOp::Lw, rd: Reg::A0, rs1: Reg::T0, off: 0 });
        let (_, leaks, _) = exec1(word, &mut regs);
        assert_eq!(leaks[0].kind, LeakKind::AddrSecret);
    }

    #[test]
    fn div_on_secret_classified() {
        let mut regs = [W::default(); 32];
        regs[5] = W::secret(100);
        regs[6] = W::pub32(7);
        let word = encode(Instr::Op { op: AluOp::Divu, rd: Reg::A0, rs1: Reg::T0, rs2: Reg::T1 });
        let (e, _, _) = exec1(word, &mut regs);
        match e.class {
            OpClass::Div { dividend, operand_tainted } => {
                assert_eq!(dividend, 100);
                assert!(operand_tainted);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(regs[10].v, 14);
        assert!(regs[10].t);
    }

    #[test]
    fn taint_propagates_through_alu() {
        let mut regs = [W::default(); 32];
        regs[5] = W::secret(3);
        regs[6] = W::pub32(4);
        let word = encode(Instr::Op { op: AluOp::Add, rd: Reg::A0, rs1: Reg::T0, rs2: Reg::T1 });
        let (_, leaks, _) = exec1(word, &mut regs);
        assert!(leaks.is_empty(), "data flow is allowed");
        assert_eq!(regs[10].v, 7);
        assert!(regs[10].t);
    }

    #[test]
    fn faults_detected() {
        let mut regs = [W::default(); 32];
        let (_, _, fault) = exec1(0xFFFF_FFFF, &mut regs);
        assert!(matches!(fault, Some(Fault::Illegal { .. })));
        regs[5] = W::pub32(2);
        let word = encode(Instr::Load { op: LoadOp::Lw, rd: Reg::A0, rs1: Reg::T0, off: 0 });
        let (_, _, fault) = exec1(word, &mut regs);
        assert!(matches!(fault, Some(Fault::Misaligned { addr: 2, .. })));
        let (_, _, fault) = exec1(encode(Instr::Ebreak), &mut regs);
        assert!(matches!(fault, Some(Fault::Env { .. })));
    }

    #[test]
    fn subword_stores_mask_correctly() {
        let mut mem = FlatMem { data: vec![W::pub32(0xAABBCCDD); 4] };
        let mut regs = [W::default(); 32];
        regs[5] = W::pub32(5); // address (byte 1 of word 1)
        regs[6] = W::pub32(0x11223344);
        let word = encode(Instr::Store { op: StoreOp::Sb, rs1: Reg::T0, rs2: Reg::T1, off: 0 });
        let mut leaks = Vec::new();
        let mut fault = None;
        execute(word, 0, &mut regs, &mut mem, 0, &mut leaks, &mut fault);
        assert_eq!(mem.data[1].v, 0xAABB44DD);
    }
}

/// Test support shared by the core models' unit tests.
#[cfg(test)]
pub mod tests_support {
    use super::*;
    use parfait_riscv::asm::assemble;

    /// A flat little memory backed by the assembler, fetch==read space.
    pub struct ProgMem {
        pub words: Vec<W>,
    }

    impl ProgMem {
        /// Assemble `src` at base 0 into a fresh memory.
        pub fn from_asm(src: &str) -> ProgMem {
            let p = assemble(src).expect("test program assembles");
            let mut words = vec![W::default(); 4096];
            for (i, w) in p.text.iter().enumerate() {
                words[i] = W::pub32(*w);
            }
            ProgMem { words }
        }

        /// Poke a data word.
        pub fn set_word(&mut self, addr: u32, w: W) {
            self.words[(addr / 4) as usize] = w;
        }
    }

    impl MemIf for ProgMem {
        fn fetch(&mut self, addr: u32) -> u32 {
            self.words[(addr / 4) as usize].v
        }
        fn read(&mut self, addr: u32) -> W {
            self.words[(addr / 4) as usize]
        }
        fn write(&mut self, addr: u32, val: W, mask: u8) {
            let old = self.words[(addr / 4) as usize];
            let mut v = old.v;
            for lane in 0..4 {
                if mask & (1 << lane) != 0 {
                    let sh = 8 * lane;
                    v = (v & !(0xFF << sh)) | (val.v & (0xFF << sh));
                }
            }
            self.words[(addr / 4) as usize] = W { v, t: old.t || val.t };
        }
    }
}
