//! parfait-cores — cycle-accurate RV32IM processor models.
//!
//! The paper's case studies run on two CPUs: the OpenTitan **Ibex** (a
//! 2-stage pipelined core, §7.1, with the multiplier replaced by a
//! single-cycle full-width multiply) and the **PicoRV32** (a
//! size-optimized multi-cycle core). This crate provides cycle-accurate
//! Rust models of both microarchitectural shapes:
//!
//! * [`ibex::IbexCore`] — 2-stage pipeline: 1 instruction/cycle steady
//!   state, 2-cycle loads/stores, 2-cycle taken branches, single-cycle
//!   multiply, and a **data-dependent-latency divider** (deliberately
//!   retained so the verification layer can catch hardware timing
//!   leaks, §7.2);
//! * [`pico::PicoCore`] — multi-cycle: every instruction pays a 2-cycle
//!   fetch plus an execute latency; shifts are serial (4 bits/cycle,
//!   like PicoRV32's small shifter), multiply is a fixed 32-cycle
//!   iteration, divide is data-dependent.
//!
//! Both cores operate on tainted words ([`parfait_rtl::W`]) and record a
//! [`LeakEvent`] whenever secret-derived data reaches control state: a
//! branch condition, a jump target, a load/store address, or the operand
//! of a variable-latency functional unit. This is the executable
//! analogue of Knox2 detecting "secret data entering the control state
//! of the circuit" (§8.1).
//!
//! Each core *exports* its observable model as a [`LeakageContract`]
//! ([`ibex::contract`], [`pico::contract`]) and derives its cycle
//! charging from it; [`contract::check_core`] verifies a core against a
//! contract with a per-instruction-class stimulus battery.

#![forbid(unsafe_code)]

pub mod contract;
pub mod datapath;
pub mod ibex;
pub mod pico;

pub use contract::{
    check_core, BatteryReport, Clause, ContractError, InstrClass, Latency, LatencyDep,
    LeakageContract,
};
pub use datapath::{Core, Fault, LeakEvent, LeakKind, MemIf, SeededFault};
pub use ibex::IbexCore;
pub use pico::PicoCore;
