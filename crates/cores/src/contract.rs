//! Leakage contracts: the per-core observable model as a first-class,
//! checkable interface.
//!
//! The paper's modular story is "prove each layer against an explicit
//! interface". The side-channel assumptions used to be the one
//! interface left implicit: each core hard-coded a latency table in
//! its tick loop, the FPS checker trusted those tables without ever
//! checking them, and the asm lint kept its own parallel list of
//! variable-latency instructions. A [`LeakageContract`] makes the
//! model declarative — per [`InstrClass`]: fixed or operand-dependent
//! latency (with the dependence function), address-trace visibility,
//! and which [`LeakKind`] the core raises when the governing operand
//! is tainted — and both cores now *derive* their cycle charging from
//! their exported contract, so declaration and behavior cannot drift
//! apart silently.
//!
//! The contract is verified, not assumed: [`check_core`] drives a core
//! through a per-instruction-class stimulus battery and compares
//! measured retire-to-retire cycle deltas, data-bus activity, and leak
//! events against the declared clauses. A core whose divider takes
//! longer than its contract admits, or whose "fixed-latency" shifter
//! secretly depends on the amount, fails here with a named instruction
//! class — not later as an opaque FPS divergence. The `contract`
//! pipeline stage (crates/pipeline) caches that check, and the asm
//! lint consumes the same clauses to decide CT-LATENCY / CT-MEM
//! applicability (crates/analyzer).

use parfait_riscv::asm::assemble;
use parfait_riscv::isa::AluOp;
use parfait_rtl::W;

use crate::datapath::{Core, LeakKind, MemIf, OpClass};

/// The shared instruction-class vocabulary.
///
/// This is the *value-free* projection of [`OpClass`] (which carries
/// operand values and taint for latency evaluation): one name per
/// timing-relevant instruction family, used identically by the cores'
/// contracts, the contract-check battery, and the asm lint — no
/// parallel enums to drift apart.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum InstrClass {
    /// Simple ALU ops, lui/auipc, and anything else single-issue.
    Alu,
    /// Shifts (sll/srl/sra and immediate forms).
    Shift,
    /// Multiplies (mul/mulh/mulhsu/mulhu).
    Mul,
    /// Divides and remainders (div/divu/rem/remu).
    Div,
    /// Memory loads.
    Load,
    /// Memory stores.
    Store,
    /// Conditional branches.
    Branch,
    /// jal/jalr.
    Jump,
    /// fence.
    Fence,
}

impl InstrClass {
    /// Every class, in the canonical (serialization) order.
    pub const ALL: [InstrClass; 9] = [
        InstrClass::Alu,
        InstrClass::Shift,
        InstrClass::Mul,
        InstrClass::Div,
        InstrClass::Load,
        InstrClass::Store,
        InstrClass::Branch,
        InstrClass::Jump,
        InstrClass::Fence,
    ];

    /// Stable lowercase name (used in contract text and error messages).
    pub fn as_str(self) -> &'static str {
        match self {
            InstrClass::Alu => "alu",
            InstrClass::Shift => "shift",
            InstrClass::Mul => "mul",
            InstrClass::Div => "div",
            InstrClass::Load => "load",
            InstrClass::Store => "store",
            InstrClass::Branch => "branch",
            InstrClass::Jump => "jump",
            InstrClass::Fence => "fence",
        }
    }

    /// Index into a contract's clause table.
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|c| *c == self).unwrap()
    }

    /// Classify an executed operation.
    pub fn of(op: &OpClass) -> InstrClass {
        match op {
            OpClass::Alu => InstrClass::Alu,
            OpClass::Shift { .. } => InstrClass::Shift,
            OpClass::Mul { .. } => InstrClass::Mul,
            OpClass::Div { .. } => InstrClass::Div,
            OpClass::Load => InstrClass::Load,
            OpClass::Store => InstrClass::Store,
            OpClass::Branch { .. } => InstrClass::Branch,
            OpClass::Jump => InstrClass::Jump,
            OpClass::Fence => InstrClass::Fence,
        }
    }

    /// Classify a register-register / register-immediate ALU opcode —
    /// the mapping the asm lint uses, so its variable-latency rules
    /// come from the same vocabulary the cores declare against.
    pub fn of_alu(op: AluOp) -> InstrClass {
        match op {
            AluOp::Sll | AluOp::Srl | AluOp::Sra => InstrClass::Shift,
            AluOp::Mul | AluOp::Mulh | AluOp::Mulhsu | AluOp::Mulhu => InstrClass::Mul,
            AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu => InstrClass::Div,
            _ => InstrClass::Alu,
        }
    }
}

impl std::fmt::Display for InstrClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The operand an operand-dependent latency counts from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LatencyDep {
    /// Significant bits of the dividend (`32 − leading_zeros`) — an
    /// iterative divider.
    DividendBits,
    /// Shift amount processed `bits_per_cycle` bits per cycle — a
    /// serial shifter.
    ShiftChunks {
        /// Bits retired per shifter cycle.
        bits_per_cycle: u32,
    },
}

impl LatencyDep {
    /// Extra cycles contributed by the governing operand `value`.
    pub fn units(self, value: u32) -> u32 {
        match self {
            LatencyDep::DividendBits => 32 - value.leading_zeros(),
            LatencyDep::ShiftChunks { bits_per_cycle } => value.div_ceil(bits_per_cycle),
        }
    }

    /// The governing operand of `op` under this dependence, if the
    /// operation carries one.
    fn governing(self, op: &OpClass) -> Option<u32> {
        match (self, op) {
            (LatencyDep::DividendBits, OpClass::Div { dividend, .. }) => Some(*dividend),
            (LatencyDep::ShiftChunks { .. }, OpClass::Shift { amount, .. }) => Some(*amount),
            _ => None,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            LatencyDep::DividendBits => "dividend-bits",
            LatencyDep::ShiftChunks { .. } => "shift-chunks",
        }
    }
}

/// Declared execute latency of one instruction class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Latency {
    /// The same cycle count for every operand value.
    Fixed(u32),
    /// `base + dep.units(governing operand)` cycles — the dependence
    /// function is part of the declaration, so "variable latency"
    /// is never an unbounded claim.
    Operand {
        /// Cycles charged independently of the operand.
        base: u32,
        /// How the operand contributes cycles.
        dep: LatencyDep,
    },
}

impl Latency {
    /// Is the latency a function of operand values?
    pub fn operand_dependent(&self) -> bool {
        matches!(self, Latency::Operand { .. })
    }

    /// Cycles the contract admits for `op`. A mismatched clause/op pair
    /// (contract says shift-dependent, op is not a shift) contributes
    /// no operand units — the battery never produces such pairs.
    pub fn cycles(&self, op: &OpClass) -> u32 {
        match self {
            Latency::Fixed(n) => *n,
            Latency::Operand { base, dep } => base + dep.governing(op).map_or(0, |v| dep.units(v)),
        }
    }

    /// Cycles the contract admits over *every* operand value — the
    /// per-instruction cost the static WCET bound charges. Dividend
    /// bits max out at 32 (a full-width dividend); shift chunks at a
    /// 31-bit amount (RV32 shifts mask the amount to 5 bits).
    pub fn worst_cycles(&self) -> u32 {
        match self {
            Latency::Fixed(n) => *n,
            Latency::Operand { base, dep } => {
                base + match dep {
                    LatencyDep::DividendBits => 32,
                    LatencyDep::ShiftChunks { .. } => dep.units(31),
                }
            }
        }
    }
}

/// The declared observable model of one instruction class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Clause {
    /// Execute-stage cycles (total occupancy, in the core's own
    /// normalized unit — see [`LeakageContract::overhead`]).
    pub latency: Latency,
    /// Does this class place an operand-derived address on the data
    /// bus (an address trace the adversary observes)?
    pub addr_trace: bool,
    /// The leak event the core raises when the class's governing
    /// operand (dividend, shift amount, address base, branch
    /// condition, jump target) is tainted — `None` means the core
    /// performs no taint check on this path and relies on the
    /// dual-world FPS comparison instead.
    pub leak_on_tainted: Option<LeakKind>,
}

/// A core's complete declared leakage model.
///
/// `overhead` and `redirect_penalty` normalize per-class latencies
/// across microarchitectures: a retire-to-retire delta in steady state
/// is `overhead + clause.latency.cycles(op)`, plus `redirect_penalty`
/// for the instruction following a taken branch or jump. For the
/// 2-stage Ibex, overhead is 0 (IF overlaps EX) and a redirect costs
/// one squashed fetch; for the multi-cycle Pico, overhead is the
/// 2-cycle fetch and redirects are free (it refetches every
/// instruction anyway).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeakageContract {
    /// Core name (matches the platform `Cpu` display name).
    pub core: &'static str,
    /// Contract revision — bumped on any semantic re-declaration, so
    /// cached checks against the old declaration are invalidated even
    /// if the clause table happens to coincide.
    pub revision: u32,
    /// Per-instruction fetch/decode cycles in steady state.
    pub overhead: u32,
    /// Extra cycles charged to the instruction after a redirect.
    pub redirect_penalty: u32,
    /// Clause per [`InstrClass`], indexed by [`InstrClass::index`].
    pub clauses: [Clause; 9],
}

impl LeakageContract {
    /// The clause governing `class`.
    pub fn clause(&self, class: InstrClass) -> &Clause {
        &self.clauses[class.index()]
    }

    /// Execute cycles the contract admits for `op`.
    pub fn cycles(&self, op: &OpClass) -> u32 {
        self.clause(InstrClass::of(op)).latency.cycles(op)
    }

    /// The worst-case retire-to-retire cost of one instruction of
    /// `class` in steady state (no redirect): per-instruction overhead
    /// plus the clause's worst latency over all operand values. The
    /// static bound analysis adds [`Self::redirect_penalty`] on taken
    /// branches and jumps.
    pub fn worst_cost(&self, class: InstrClass) -> u32 {
        self.overhead + self.clause(class).latency.worst_cycles()
    }

    /// Canonical text rendering — the content that is hashed into the
    /// certificate-cache keys of every pipeline stage that trusts this
    /// contract (contract check, ctcheck, fps). Editing a contract
    /// therefore invalidates exactly the dependent certificates.
    pub fn canonical(&self) -> String {
        use std::fmt::Write;
        let mut s = format!(
            "leakage-contract-v1 core={} rev={} overhead={} redirect-penalty={}\n",
            self.core, self.revision, self.overhead, self.redirect_penalty
        );
        for class in InstrClass::ALL {
            let c = self.clause(class);
            let lat = match c.latency {
                Latency::Fixed(n) => format!("fixed({n})"),
                Latency::Operand { base, dep } => match dep {
                    LatencyDep::ShiftChunks { bits_per_cycle } => {
                        format!(
                            "operand({} bits-per-cycle={bits_per_cycle} base={base})",
                            dep.as_str()
                        )
                    }
                    LatencyDep::DividendBits => format!("operand({} base={base})", dep.as_str()),
                },
            };
            let leak = match c.leak_on_tainted {
                None => "-".to_string(),
                Some(k) => format!("{k:?}"),
            };
            let _ = writeln!(
                s,
                "{class}: latency={lat} addr-trace={} leak-on-tainted={leak}",
                if c.addr_trace { "yes" } else { "no" }
            );
        }
        s
    }
}

/// The contract term a recorded leak event violates or witnesses —
/// shared vocabulary for the FPS checker's leak classification, so a
/// hardware-level taint report and the contract that declared it use
/// the same words.
pub fn leak_term(kind: LeakKind, class: InstrClass) -> &'static str {
    match kind {
        LeakKind::VarLatencySecret => match class {
            InstrClass::Shift => "operand-dependent latency clause [shift] on tainted amount",
            InstrClass::Div => "operand-dependent latency clause [div] on tainted operand",
            _ => "operand-dependent latency clause on tainted operand",
        },
        LeakKind::AddrSecret => match class {
            InstrClass::Store => "address-trace clause [store] on tainted address",
            _ => "address-trace clause [load] on tainted address",
        },
        LeakKind::BranchOnSecret => "pc-trace clause [branch] on tainted condition",
        LeakKind::JumpTargetSecret => "pc-trace clause [jump] on tainted target",
    }
}

/// A contract check failure, naming the instruction class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContractError {
    /// The instruction class whose observed behavior exceeded (or fell
    /// short of) its declared clause.
    pub class: InstrClass,
    /// The stimulus and the measured-vs-admitted discrepancy.
    pub detail: String,
}

impl std::fmt::Display for ContractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "instruction class [{}]: {}", self.class, self.detail)
    }
}

/// Stimulus-battery version — bumped whenever the battery's programs
/// or checks change, so cached contract-check certificates keyed on it
/// are invalidated exactly when the check itself changes.
pub const BATTERY_VERSION: u32 = 1;

/// What the stimulus battery ran, for reporting and metrics.
#[derive(Clone, Debug, Default)]
pub struct BatteryReport {
    /// Stimulus programs run per instruction class, in
    /// [`InstrClass::ALL`] order (classes with zero stimuli omitted).
    pub stimuli: Vec<(InstrClass, u32)>,
    /// Total stimulus programs run.
    pub total: u32,
    /// Total measured instruction retirements across all stimuli.
    pub measured_retirements: u32,
}

/// Flat assembler-backed stimulus memory with taintable data words and
/// a recorded data-bus trace (the "observable wires" of the check).
struct StimMem {
    words: Vec<W>,
    /// Data-bus accesses: (is_write, word address).
    bus: Vec<(bool, u32)>,
}

impl StimMem {
    fn from_asm(src: &str) -> StimMem {
        let p = assemble(src).expect("contract stimulus assembles");
        let mut words = vec![W::default(); 4096];
        for (i, w) in p.text.iter().enumerate() {
            words[i] = W::pub32(*w);
        }
        StimMem { words, bus: Vec::new() }
    }

    fn set_word(&mut self, addr: u32, w: W) {
        self.words[(addr / 4) as usize] = w;
    }
}

impl MemIf for StimMem {
    fn fetch(&mut self, addr: u32) -> u32 {
        self.words[(addr / 4) as usize].v
    }
    fn read(&mut self, addr: u32) -> W {
        self.bus.push((false, addr));
        self.words[(addr / 4) as usize]
    }
    fn write(&mut self, addr: u32, val: W, mask: u8) {
        self.bus.push((true, addr));
        let old = self.words[(addr / 4) as usize];
        let mut v = old.v;
        for lane in 0..4 {
            if mask & (1 << lane) != 0 {
                let sh = 8 * lane;
                v = (v & !(0xFF << sh)) | (val.v & (0xFF << sh));
            }
        }
        self.words[(addr / 4) as usize] = W { v, t: old.t || val.t };
    }
}

/// One stimulus program: setup instructions, then a measured window of
/// instructions whose retire-to-retire deltas and leak events are
/// checked against the contract.
struct Stimulus {
    class: InstrClass,
    name: &'static str,
    asm: String,
    /// Instructions before the measured window (their timing is not
    /// checked; the last one anchors the first measured delta).
    setup: u32,
    /// Expected retirement sequence of the measured window: the
    /// operation (with operand values, for latency evaluation) and
    /// whether it redirects the fetch stream.
    ops: Vec<(OpClass, bool)>,
    /// Instruction classes whose governing operand is tainted in this
    /// stimulus. The *expected* leak set is derived from the contract
    /// under test (each tainted class must raise exactly its clause's
    /// `leak_on_tainted`, and nothing else may leak) — so a core that
    /// declares no taint check is held to silence, and one that
    /// declares a leak is held to raising it.
    tainted: Vec<InstrClass>,
    /// Data words poked before the run: (byte addr, value, tainted).
    data: Vec<(u32, u32, bool)>,
    /// Word addresses that must appear on the data bus during the
    /// window ((is_write, addr)) — the address-trace clause made
    /// observable.
    bus: Vec<(bool, u32)>,
}

fn shift_op(amount: u32, from_reg: bool, tainted: bool) -> OpClass {
    OpClass::Shift { amount, from_reg, amount_tainted: tainted }
}

/// The battery: every contract clause gets stimuli that distinguish it
/// from its neighbors — multiple operand magnitudes for the
/// operand-dependent clauses (so an undeclared dependence or an
/// understated base shows up as a delta mismatch), tainted and
/// untainted governing operands for the leak clauses, and bus-trace
/// assertions for the address-visibility clauses.
fn stimuli() -> Vec<Stimulus> {
    let mut v = Vec::new();

    // Scratch data page, far enough from the text to never collide.
    const DATA: u32 = 0x700;
    const TAINTED: u32 = 0x740;

    v.push(Stimulus {
        class: InstrClass::Alu,
        name: "add chain",
        asm: "addi t0, zero, 5\naddi t1, zero, 9\nadd t2, t0, t1\nadd t3, t1, t0\n\
              add t4, t0, t0\nnop\nnop\nnop"
            .into(),
        setup: 2,
        ops: vec![(OpClass::Alu, false), (OpClass::Alu, false), (OpClass::Alu, false)],
        tainted: vec![],
        data: vec![],
        bus: vec![],
    });

    for amt in [0u32, 1, 13, 31] {
        v.push(Stimulus {
            class: InstrClass::Shift,
            name: "immediate shift",
            asm: format!("addi t0, zero, 1\nslli t2, t0, {amt}\nslli t3, t0, {amt}\nnop\nnop\nnop"),
            setup: 1,
            ops: vec![(shift_op(amt, false, false), false), (shift_op(amt, false, false), false)],
            tainted: vec![],
            data: vec![],
            bus: vec![],
        });
        v.push(Stimulus {
            class: InstrClass::Shift,
            name: "register shift",
            asm: format!(
                "addi t0, zero, 1\naddi t1, zero, {amt}\nsll t2, t0, t1\nsll t3, t0, t1\n\
                 nop\nnop\nnop"
            ),
            setup: 2,
            ops: vec![(shift_op(amt, true, false), false), (shift_op(amt, true, false), false)],
            tainted: vec![],
            data: vec![],
            bus: vec![],
        });
    }

    for (a, b, asm_a, asm_b) in [
        (0u32, 0u32, "addi t0, zero, 0", "addi t1, zero, 0"),
        (3, 0xFFFF_FFFF, "addi t0, zero, 3", "addi t1, zero, -1"),
        (0x7FF, 0x7FF, "addi t0, zero, 2047", "addi t1, zero, 2047"),
        (1, 1, "addi t0, zero, 1", "addi t1, zero, 1"),
    ] {
        v.push(Stimulus {
            class: InstrClass::Mul,
            name: "multiply",
            asm: format!("{asm_a}\n{asm_b}\nmul t2, t0, t1\nmul t3, t0, t1\nnop\nnop\nnop"),
            setup: 2,
            ops: vec![
                (OpClass::Mul { a, b, operands_tainted: false }, false),
                (OpClass::Mul { a, b, operands_tainted: false }, false),
            ],
            tainted: vec![],
            data: vec![],
            bus: vec![],
        });
    }

    for (dividend, setup_asm) in [
        (0u32, "addi t0, zero, 0"),
        (1, "addi t0, zero, 1"),
        (0x80, "addi t0, zero, 128"),
        (0xFFFF_FFFF, "addi t0, zero, -1"),
    ] {
        v.push(Stimulus {
            class: InstrClass::Div,
            name: "divide",
            asm: format!(
                "{setup_asm}\naddi t1, zero, 3\ndivu t2, t0, t1\ndivu t3, t0, t1\nnop\nnop\nnop"
            ),
            setup: 2,
            ops: vec![
                (OpClass::Div { dividend, operand_tainted: false }, false),
                (OpClass::Div { dividend, operand_tainted: false }, false),
            ],
            tainted: vec![],
            data: vec![],
            bus: vec![],
        });
    }

    // Tainted governing operands: the leak clauses. The tainted word
    // is loaded with a *public* base (no AddrSecret from the setup).
    v.push(Stimulus {
        class: InstrClass::Div,
        name: "divide on tainted dividend",
        asm: format!("lw t0, {TAINTED}(zero)\naddi t1, zero, 3\ndivu t2, t0, t1\nnop\nnop\nnop"),
        setup: 2,
        ops: vec![(OpClass::Div { dividend: 100, operand_tainted: true }, false)],
        tainted: vec![InstrClass::Div],
        data: vec![(TAINTED, 100, true)],
        bus: vec![],
    });
    v.push(Stimulus {
        class: InstrClass::Shift,
        name: "register shift by tainted amount",
        asm: format!("addi t0, zero, 1\nlw t1, {TAINTED}(zero)\nsll t2, t0, t1\nnop\nnop\nnop"),
        setup: 2,
        ops: vec![(shift_op(13, true, true), false)],
        tainted: vec![InstrClass::Shift],
        data: vec![(TAINTED, 13, true)],
        bus: vec![],
    });

    v.push(Stimulus {
        class: InstrClass::Load,
        name: "load (public address)",
        asm: format!("addi t0, zero, {DATA}\nlw t2, 0(t0)\nlw t3, 4(t0)\nnop\nnop\nnop"),
        setup: 1,
        ops: vec![(OpClass::Load, false), (OpClass::Load, false)],
        tainted: vec![],
        data: vec![(DATA, 0x1234, false), (DATA + 4, 0x5678, false)],
        bus: vec![(false, DATA), (false, DATA + 4)],
    });
    v.push(Stimulus {
        class: InstrClass::Load,
        name: "load via tainted base",
        asm: format!("lw t0, {TAINTED}(zero)\nlw t2, 0(t0)\nnop\nnop\nnop"),
        setup: 1,
        ops: vec![(OpClass::Load, false)],
        tainted: vec![InstrClass::Load],
        data: vec![(TAINTED, DATA, true), (DATA, 0x9abc, false)],
        bus: vec![(false, DATA)],
    });
    v.push(Stimulus {
        class: InstrClass::Store,
        name: "store (public address)",
        asm: format!(
            "addi t0, zero, {DATA}\naddi t1, zero, 42\nsw t1, 0(t0)\nsw t1, 4(t0)\nnop\nnop\nnop"
        ),
        setup: 2,
        ops: vec![(OpClass::Store, false), (OpClass::Store, false)],
        tainted: vec![],
        data: vec![],
        bus: vec![(true, DATA), (true, DATA + 4)],
    });
    v.push(Stimulus {
        class: InstrClass::Store,
        name: "store via tainted base",
        asm: format!("lw t0, {TAINTED}(zero)\nsw zero, 0(t0)\nnop\nnop\nnop"),
        setup: 1,
        ops: vec![(OpClass::Store, false)],
        tainted: vec![InstrClass::Store],
        data: vec![(TAINTED, DATA, true)],
        bus: vec![(true, DATA)],
    });

    v.push(Stimulus {
        class: InstrClass::Branch,
        name: "branch not taken",
        asm: "addi t0, zero, 1\nbne zero, zero, away\nadd t2, t0, t0\naway:\nnop\nnop\nnop".into(),
        setup: 1,
        ops: vec![(OpClass::Branch { taken: false }, false), (OpClass::Alu, false)],
        tainted: vec![],
        data: vec![],
        bus: vec![],
    });
    v.push(Stimulus {
        class: InstrClass::Branch,
        name: "branch taken",
        asm: "addi t0, zero, 1\nbeq zero, zero, over\nadd t2, t0, t0\nover:\n\
              add t3, t0, t0\nnop\nnop\nnop"
            .into(),
        setup: 1,
        ops: vec![(OpClass::Branch { taken: true }, true), (OpClass::Alu, false)],
        tainted: vec![],
        data: vec![],
        bus: vec![],
    });
    v.push(Stimulus {
        class: InstrClass::Branch,
        name: "branch on tainted condition",
        asm: format!("lw t0, {TAINTED}(zero)\nbne t0, t0, away\naway:\nnop\nnop\nnop"),
        setup: 1,
        ops: vec![(OpClass::Branch { taken: false }, false)],
        tainted: vec![InstrClass::Branch],
        data: vec![(TAINTED, 7, true)],
        bus: vec![],
    });

    v.push(Stimulus {
        class: InstrClass::Jump,
        name: "jal",
        asm: "addi t0, zero, 1\njal t3, over\nadd t2, t0, t0\nover:\n\
              add t4, t0, t0\nnop\nnop\nnop"
            .into(),
        setup: 1,
        ops: vec![(OpClass::Jump, true), (OpClass::Alu, false)],
        tainted: vec![],
        data: vec![],
        bus: vec![],
    });
    v.push(Stimulus {
        class: InstrClass::Jump,
        name: "jalr via tainted target",
        // The tainted word holds the (valid) target pc, so the jump
        // lands on real code while its target register is tainted.
        asm: format!(
            "lw t0, {TAINTED}(zero)\njalr t3, t0, 0\nnop\nover:\nadd t4, zero, zero\n\
             nop\nnop\nnop"
        ),
        setup: 1,
        ops: vec![(OpClass::Jump, true), (OpClass::Alu, false)],
        tainted: vec![InstrClass::Jump],
        // Target = instruction index 3 ("over") × 4 bytes.
        data: vec![(TAINTED, 12, true)],
        bus: vec![],
    });

    v.push(Stimulus {
        class: InstrClass::Fence,
        name: "fence",
        asm: "addi t0, zero, 1\nfence\nfence\nnop\nnop\nnop".into(),
        setup: 1,
        ops: vec![(OpClass::Fence, false), (OpClass::Fence, false)],
        tainted: vec![],
        data: vec![],
        bus: vec![],
    });

    v
}

/// Check a core against its declared contract by running the stimulus
/// battery. `make` constructs a fresh core booted at pc 0 — pass the
/// same seeded fault the system under test carries, so a mutated core
/// is checked, not a pristine stand-in.
pub fn check_core(
    make: &mut dyn FnMut() -> Box<dyn Core>,
    contract: &LeakageContract,
) -> Result<BatteryReport, ContractError> {
    let mut report = BatteryReport::default();
    for stim in stimuli() {
        run_stimulus(&mut make(), &stim, contract)?;
        report.total += 1;
        report.measured_retirements += stim.ops.len() as u32;
        match report.stimuli.iter_mut().find(|(c, _)| *c == stim.class) {
            Some((_, n)) => *n += 1,
            None => report.stimuli.push((stim.class, 1)),
        }
    }
    report.stimuli.sort_by_key(|(c, _)| c.index());
    Ok(report)
}

fn run_stimulus(
    core: &mut Box<dyn Core>,
    stim: &Stimulus,
    contract: &LeakageContract,
) -> Result<(), ContractError> {
    let fail = |detail: String| ContractError { class: stim.class, detail };
    let mut mem = StimMem::from_asm(&stim.asm);
    for &(addr, value, tainted) in &stim.data {
        mem.set_word(addr, W { v: value, t: tainted });
    }
    let total = stim.setup as u64 + stim.ops.len() as u64;
    let mut retire_cycles: Vec<u64> = Vec::new();
    let mut guard = 0u32;
    while core.retired() < total {
        core.step(&mut mem);
        if core.last_retired().is_some() {
            retire_cycles.push(core.cycles());
        }
        guard += 1;
        if guard > 10_000 {
            return Err(fail(format!(
                "stimulus `{}` did not retire {total} instructions in 10000 cycles",
                stim.name
            )));
        }
    }
    if let Some(f) = core.fault() {
        return Err(fail(format!("stimulus `{}` faulted: {f:?}", stim.name)));
    }
    // Retire-to-retire deltas over the measured window, each predicted
    // from the clause: overhead + admitted cycles (+ redirect penalty
    // when the previous instruction redirected the fetch stream).
    let mut prev_redirected = false;
    for (i, (op, redirects)) in stim.ops.iter().enumerate() {
        let at = stim.setup as usize + i;
        let delta = retire_cycles[at] - retire_cycles[at - 1];
        let admitted = u64::from(
            contract.overhead
                + contract.cycles(op)
                + if prev_redirected { contract.redirect_penalty } else { 0 },
        );
        if delta != admitted {
            let class = InstrClass::of(op);
            return Err(ContractError {
                class,
                detail: format!(
                    "stimulus `{}` instruction {i}: measured {delta} cycles, contract \
                     admits {admitted} ({})",
                    stim.name,
                    match contract.clause(class).latency {
                        Latency::Fixed(n) => format!("fixed latency {n}"),
                        Latency::Operand { base, dep } =>
                            format!("operand-dependent: base {base} + {}", dep.as_str()),
                    }
                ),
            });
        }
        prev_redirected = *redirects;
    }
    // Leak events: each tainted class must raise exactly its clause's
    // declared `leak_on_tainted`, and nothing else may leak.
    let got: Vec<(LeakKind, InstrClass)> = {
        let mut kinds: Vec<(LeakKind, InstrClass)> =
            core.leaks().iter().map(|l| (l.kind, l.class)).collect();
        kinds.sort_by_key(|(k, c)| (*k as u32, c.index()));
        kinds.dedup();
        kinds
    };
    let want: Vec<(LeakKind, InstrClass)> = stim
        .tainted
        .iter()
        .filter_map(|c| contract.clause(*c).leak_on_tainted.map(|k| (k, *c)))
        .collect();
    for (k, c) in &want {
        if !got.contains(&(*k, *c)) {
            return Err(ContractError {
                class: *c,
                detail: format!(
                    "stimulus `{}`: declared leak {k:?} on tainted operand was not raised",
                    stim.name
                ),
            });
        }
    }
    for (k, c) in &got {
        if !want.contains(&(*k, *c)) {
            return Err(ContractError {
                class: *c,
                detail: format!("stimulus `{}`: undeclared leak {k:?} was raised", stim.name),
            });
        }
    }
    // The observable data-bus trace must contain the declared accesses.
    for (is_write, addr) in &stim.bus {
        if !mem.bus.iter().any(|(w, a)| w == is_write && a & !3 == addr & !3) {
            return Err(fail(format!(
                "stimulus `{}`: expected {} of {addr:#x} never appeared on the data bus",
                stim.name,
                if *is_write { "a write" } else { "a read" }
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ibex::IbexCore;
    use crate::pico::PicoCore;

    #[test]
    fn both_cores_pass_their_own_contracts() {
        let mut mk_ibex = || -> Box<dyn Core> { Box::new(IbexCore::new(0)) };
        let r = check_core(&mut mk_ibex, crate::ibex::contract()).expect("ibex honors contract");
        assert!(r.total >= 20, "battery should be substantive, ran {}", r.total);
        assert_eq!(r.stimuli.len(), InstrClass::ALL.len(), "every class exercised");
        let mut mk_pico = || -> Box<dyn Core> { Box::new(PicoCore::new(0)) };
        check_core(&mut mk_pico, crate::pico::contract()).expect("pico honors contract");
    }

    #[test]
    fn cores_fail_each_others_contracts() {
        // The contracts genuinely differ (overhead, shifter, divider
        // base): swapping them must fail with a named class.
        let mut mk_ibex = || -> Box<dyn Core> { Box::new(IbexCore::new(0)) };
        let err = check_core(&mut mk_ibex, crate::pico::contract()).unwrap_err();
        assert!(!err.to_string().is_empty());
        let mut mk_pico = || -> Box<dyn Core> { Box::new(PicoCore::new(0)) };
        check_core(&mut mk_pico, crate::ibex::contract()).unwrap_err();
    }

    #[test]
    fn understated_fixed_latency_is_caught_with_the_class_named() {
        // Ibex with a contract that understates the load/store clause.
        let mut c = crate::ibex::contract().clone();
        c.clauses[InstrClass::Load.index()].latency = Latency::Fixed(1);
        let mut mk = || -> Box<dyn Core> { Box::new(IbexCore::new(0)) };
        let err = check_core(&mut mk, &c).unwrap_err();
        assert_eq!(err.class, InstrClass::Load);
        assert!(err.to_string().contains("[load]"), "{err}");
    }

    #[test]
    fn hidden_operand_dependence_is_caught() {
        // Declaring Pico's serial shifter as fixed-latency fails on the
        // amount sweep: the dependence is real and must be declared.
        let mut c = crate::pico::contract().clone();
        c.clauses[InstrClass::Shift.index()].latency = Latency::Fixed(2);
        let mut mk = || -> Box<dyn Core> { Box::new(PicoCore::new(0)) };
        let err = check_core(&mut mk, &c).unwrap_err();
        assert_eq!(err.class, InstrClass::Shift);
    }

    #[test]
    fn undeclared_leak_clause_is_caught_both_ways() {
        // Pico declares VarLatencySecret on tainted division; a
        // contract claiming no leak fails on the "undeclared leak"
        // side. Ibex performs no div taint check; a contract claiming
        // it does fails on the "declared but not raised" side.
        let mut c = crate::pico::contract().clone();
        c.clauses[InstrClass::Div.index()].leak_on_tainted = None;
        let mut mk_pico = || -> Box<dyn Core> { Box::new(PicoCore::new(0)) };
        let err = check_core(&mut mk_pico, &c).unwrap_err();
        assert!(err.detail.contains("undeclared leak"), "{err}");

        let mut c = crate::ibex::contract().clone();
        c.clauses[InstrClass::Div.index()].leak_on_tainted = Some(LeakKind::VarLatencySecret);
        let mut mk_ibex = || -> Box<dyn Core> { Box::new(IbexCore::new(0)) };
        let err = check_core(&mut mk_ibex, &c).unwrap_err();
        assert!(err.detail.contains("was not raised"), "{err}");
    }

    #[test]
    fn canonical_text_is_stable_and_revision_sensitive() {
        let a = crate::ibex::contract().canonical();
        assert!(a.contains("core=Ibex"));
        assert!(a.contains("div: latency=operand(dividend-bits base=3)"));
        let mut edited = crate::ibex::contract().clone();
        edited.revision += 1;
        assert_ne!(a, edited.canonical(), "revision bumps must change the hashable text");
        assert_eq!(a, crate::ibex::contract().canonical(), "rendering is deterministic");
    }

    #[test]
    fn latency_evaluation_matches_the_dependence_functions() {
        let div = |d: u32| OpClass::Div { dividend: d, operand_tainted: false };
        let ibex = crate::ibex::contract();
        assert_eq!(ibex.cycles(&div(0)), 3);
        assert_eq!(ibex.cycles(&div(1)), 4);
        assert_eq!(ibex.cycles(&div(0xFFFF_FFFF)), 35);
        let pico = crate::pico::contract();
        assert_eq!(pico.cycles(&shift_op(0, true, false)), 1);
        assert_eq!(pico.cycles(&shift_op(31, true, false)), 9);
        assert_eq!(pico.cycles(&OpClass::Mul { a: 1, b: 1, operands_tainted: false }), 32);
    }

    #[test]
    fn worst_case_costs_dominate_every_operand_value() {
        let ibex = crate::ibex::contract();
        // Div: base 3 + full 32-bit dividend = 35, matching cycles()'s
        // own maximum; plus overhead 0 on Ibex.
        assert_eq!(ibex.worst_cost(InstrClass::Div), 35);
        assert_eq!(ibex.clause(InstrClass::Div).latency.worst_cycles(), 35);
        let pico = crate::pico::contract();
        // Pico charges 2 fetch cycles on every instruction.
        assert_eq!(pico.worst_cost(InstrClass::Shift), 2 + pico.cycles(&shift_op(31, true, false)));
        for class in InstrClass::ALL {
            for c in [ibex, pico] {
                assert!(c.worst_cost(class) >= c.overhead, "{class}");
                assert!(
                    c.clause(class).latency.worst_cycles() >= 1,
                    "{class}: every instruction takes at least a cycle"
                );
            }
        }
    }

    #[test]
    fn leak_terms_name_the_contract_clause() {
        assert!(leak_term(LeakKind::VarLatencySecret, InstrClass::Div).contains("[div]"));
        assert!(leak_term(LeakKind::AddrSecret, InstrClass::Store).contains("[store]"));
        assert!(leak_term(LeakKind::BranchOnSecret, InstrClass::Branch).contains("branch"));
    }
}
