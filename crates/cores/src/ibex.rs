//! An Ibex-like 2-stage pipelined RV32IM core model.
//!
//! Timing model (cycle-accurate at the granularity the verification
//! cares about):
//!
//! * 1 instruction per cycle in steady state (IF overlaps ID/EX);
//! * loads and stores occupy the EX stage for 2 cycles;
//! * taken branches and jumps squash the fetched instruction (2 cycles);
//! * multiply is single-cycle (the paper replaces Ibex's multiplier with
//!   a full-width combinational multiply, §7.1);
//! * divide is **data-dependent**: `3 + bitlen(dividend)` cycles,
//!   modeling an iterative divider. This is the hardware-level
//!   variable-latency instruction of §7.2 that verification must catch
//!   when it executes on secret data.

use std::sync::Arc;

use parfait_riscv::decode::{decode, DecodeError};
use parfait_riscv::isa::Instr;
use parfait_riscv::predecode::DecodeCache;
use parfait_rtl::W;

use crate::contract::{Clause, Latency, LatencyDep, LeakageContract};
use crate::datapath::{
    execute, execute_decoded, instr_dest, instr_sources, Core, Exec, Fault, LeakEvent, LeakKind,
    MemIf, OpClass, SeededFault,
};

/// Ibex's exported leakage contract (DESIGN.md §15): the declarative
/// observable model this core's tick loop *derives* its cycle charging
/// from, and which the contract battery checks it against.
///
/// The divider clause is deliberately operand-dependent — the declared
/// analogue of the retained variable-latency divider (§7.2) — and its
/// `leak_on_tainted` is `None`: Ibex performs no taint check on that
/// path, so secret-dependent division is caught by the dual-world FPS
/// timing comparison, not by a self-reported event.
pub fn contract() -> &'static LeakageContract {
    const FIXED1: Clause =
        Clause { latency: Latency::Fixed(1), addr_trace: false, leak_on_tainted: None };
    static CONTRACT: LeakageContract = LeakageContract {
        core: "Ibex",
        revision: 1,
        // IF overlaps EX: no per-instruction overhead in steady state.
        overhead: 0,
        // A taken branch or jump squashes one fetched instruction.
        redirect_penalty: 1,
        clauses: [
            // alu
            FIXED1,
            // shift: full barrel shifter.
            FIXED1,
            // mul: the paper's full-width single-cycle multiplier (§7.1).
            FIXED1,
            // div: iterative, dividend-bit dependent, no taint check.
            Clause {
                latency: Latency::Operand { base: 3, dep: LatencyDep::DividendBits },
                addr_trace: false,
                leak_on_tainted: None,
            },
            // load
            Clause {
                latency: Latency::Fixed(2),
                addr_trace: true,
                leak_on_tainted: Some(LeakKind::AddrSecret),
            },
            // store
            Clause {
                latency: Latency::Fixed(2),
                addr_trace: true,
                leak_on_tainted: Some(LeakKind::AddrSecret),
            },
            // branch
            Clause {
                latency: Latency::Fixed(1),
                addr_trace: false,
                leak_on_tainted: Some(LeakKind::BranchOnSecret),
            },
            // jump
            Clause {
                latency: Latency::Fixed(1),
                addr_trace: false,
                leak_on_tainted: Some(LeakKind::JumpTargetSecret),
            },
            // fence
            FIXED1,
        ],
    };
    &CONTRACT
}

/// The 2-stage core.
#[derive(Clone)]
pub struct IbexCore {
    regs: [W; 32],
    /// Fetch PC (next instruction address to fetch).
    fetch_pc: u32,
    /// Instruction sitting in ID/EX: (word, its pc).
    id_ex: Option<(u32, u32)>,
    /// Remaining stall cycles of a multi-cycle operation.
    busy: u32,
    /// Instruction completing when `busy` hits 0: (word, pc).
    pending: Option<(u32, u32)>,
    cycles: u64,
    retired: u64,
    last_retired: Option<(u32, u32)>,
    leaks: Vec<LeakEvent>,
    fault: Option<Fault>,
    /// Seeded micro-architectural bug (mutation testing only).
    seeded: Option<SeededFault>,
    /// With `StaleForwarding` seeded: the register the previous executed
    /// instruction wrote and its value *before* that write.
    stale: Option<(usize, W)>,
    /// Pre-decoded ROM image (shared across snapshots); `None` runs the
    /// uncached fetch + decode path everywhere.
    cache: Option<Arc<DecodeCache>>,
    /// Decode latch: the cache's decoded form of the word the last
    /// fetch served, carried alongside `id_ex` so the exec stage does
    /// not repeat the cache lookup. `None` whenever the word came off
    /// the bus (exec then decodes it live).
    fetched: Option<Result<Instr, DecodeError>>,
    cache_hits: u64,
    cache_misses: u64,
}

impl IbexCore {
    /// A core reset to fetch from `boot_pc`.
    pub fn new(boot_pc: u32) -> IbexCore {
        IbexCore::with_fault(boot_pc, None)
    }

    /// A core with a deliberately seeded bug (see [`SeededFault`]);
    /// `None` is exactly [`IbexCore::new`]. The seed survives `reset`,
    /// like a silicon bug survives a power cycle.
    pub fn with_fault(boot_pc: u32, seeded: Option<SeededFault>) -> IbexCore {
        IbexCore {
            regs: [W::default(); 32],
            fetch_pc: boot_pc,
            id_ex: None,
            busy: 0,
            pending: None,
            cycles: 0,
            retired: 0,
            last_retired: None,
            leaks: Vec::new(),
            fault: None,
            seeded,
            stale: None,
            cache: None,
            fetched: None,
            cache_hits: 0,
            cache_misses: 0,
        }
    }

    /// Latency charged in the EX stage beyond the issuing cycle —
    /// derived from the exported [`contract`] (total occupancy minus
    /// the issuing cycle), so the declared model and the tick loop
    /// cannot drift apart. Seeded contract-violation faults add cycles
    /// *on top of* the declaration; the contract battery measures the
    /// discrepancy.
    fn extra_latency(&self, class: &OpClass) -> u32 {
        let mut extra = contract().cycles(class) - 1;
        match (self.seeded, class) {
            (Some(SeededFault::ContractLatencyUnderstated), OpClass::Div { .. }) => extra += 3,
            (Some(SeededFault::ContractHiddenOperandDep), OpClass::Shift { amount, .. }) => {
                extra += amount / 8;
            }
            _ => {}
        }
        extra
    }

    /// Instruction fetch: the pre-decoded cache serves covered pcs
    /// without touching the bus; everything else (no cache, pc outside
    /// the image, misaligned) takes the bus path bit-for-bit. A cache
    /// hit also latches the entry's decoded form for the exec stage
    /// (the entry pairs the word with its decode, so the latch is the
    /// decode of exactly the word returned here).
    #[inline]
    fn fetch(&mut self, mem: &mut dyn MemIf, pc: u32) -> u32 {
        if let Some(c) = &self.cache {
            if let Some(&(word, decoded)) = c.entry(pc) {
                self.cache_hits += 1;
                self.fetched = Some(decoded);
                return word;
            }
            self.cache_misses += 1;
        }
        self.fetched = None;
        mem.fetch(pc)
    }

    /// Execute `word` at `ipc`, skipping the decoder when fetch latched
    /// the pre-decoded form of this word.
    #[inline]
    fn exec(&mut self, word: u32, ipc: u32, mem: &mut dyn MemIf) -> Exec {
        match self.fetched.take() {
            Some(Ok(i)) => execute_decoded(
                i,
                ipc,
                &mut self.regs,
                mem,
                self.cycles,
                &mut self.leaks,
                &mut self.fault,
            ),
            Some(Err(_)) => {
                self.fault = Some(Fault::Illegal { pc: ipc, word });
                Exec { next_pc: ipc, class: OpClass::Alu }
            }
            None => execute(
                word,
                ipc,
                &mut self.regs,
                mem,
                self.cycles,
                &mut self.leaks,
                &mut self.fault,
            ),
        }
    }
}

impl Core for IbexCore {
    fn clone_box(&self) -> Box<dyn Core> {
        Box::new(self.clone())
    }

    fn step(&mut self, mem: &mut dyn MemIf) {
        if self.fault.is_some() {
            self.cycles += 1;
            self.last_retired = None;
            return;
        }
        self.cycles += 1;
        self.last_retired = None;
        // Multi-cycle operation in progress.
        if self.busy > 0 {
            self.busy -= 1;
            if self.busy == 0 {
                self.last_retired = self.pending.take();
                self.retired += 1;
                // Refill the pipeline in the same cycle the op completes.
                let word = self.fetch(mem, self.fetch_pc);
                self.id_ex = Some((word, self.fetch_pc));
                self.fetch_pc = self.fetch_pc.wrapping_add(4);
            }
            return;
        }
        match self.id_ex.take() {
            None => {
                // Bubble: fetch only.
                let word = self.fetch(mem, self.fetch_pc);
                self.id_ex = Some((word, self.fetch_pc));
                self.fetch_pc = self.fetch_pc.wrapping_add(4);
            }
            Some((word, ipc)) => {
                // Seeded forwarding bug: if this instruction reads the
                // register the previous one wrote, the EX stage sees the
                // pre-write (stale) value instead of the forwarded one.
                let mut unstale: Option<(usize, W)> = None;
                let mut wrote: Option<usize> = None;
                if self.seeded == Some(SeededFault::StaleForwarding) {
                    if let Ok(i) = decode(word) {
                        wrote = instr_dest(&i).map(|r| r.0 as usize);
                        if let Some((idx, old)) = self.stale {
                            let (s1, s2) = instr_sources(&i);
                            if [s1, s2].iter().flatten().any(|r| r.0 as usize == idx) {
                                unstale = Some((idx, self.regs[idx]));
                                self.regs[idx] = old;
                            }
                        }
                    }
                    self.stale = wrote.map(|d| (d, self.regs[d]));
                }
                let Exec { next_pc, class } = self.exec(word, ipc, mem);
                if let Some((idx, fresh)) = unstale {
                    // The write-back of the *current* instruction (if it
                    // targeted the same register) wins; otherwise undo
                    // the stale substitution in the register file.
                    if wrote != Some(idx) {
                        self.regs[idx] = fresh;
                    }
                }
                if self.fault.is_some() {
                    return;
                }
                let extra = self.extra_latency(&class);
                let redirect = next_pc != ipc.wrapping_add(4);
                if redirect {
                    // Squash the would-be fetched instruction.
                    self.fetch_pc = next_pc;
                    self.id_ex = None;
                    self.retired += 1;
                    self.last_retired = Some((word, ipc));
                    debug_assert_eq!(extra, 0, "control ops are single-cycle");
                } else if extra > 0 {
                    self.busy = extra;
                    self.pending = Some((word, ipc));
                    // The pipeline stalls; fetch resumes when busy ends.
                } else {
                    self.retired += 1;
                    self.last_retired = Some((word, ipc));
                    // Overlapped fetch of the next instruction.
                    let w = self.fetch(mem, self.fetch_pc);
                    self.id_ex = Some((w, self.fetch_pc));
                    self.fetch_pc = self.fetch_pc.wrapping_add(4);
                }
            }
        }
    }

    fn regs(&self) -> &[W; 32] {
        &self.regs
    }

    fn pc(&self) -> u32 {
        self.fetch_pc
    }

    fn instr_in_decode(&self) -> Option<(u32, u32)> {
        self.id_ex
    }

    fn last_retired(&self) -> Option<(u32, u32)> {
        self.last_retired
    }

    fn retired(&self) -> u64 {
        self.retired
    }

    fn cycles(&self) -> u64 {
        self.cycles
    }

    fn leaks(&self) -> &[LeakEvent] {
        &self.leaks
    }

    fn fault(&self) -> Option<&Fault> {
        self.fault.as_ref()
    }

    fn reset(&mut self, pc: u32) {
        // The cache (immutable, image-keyed) and its lifetime stats
        // survive a power cycle, like the ROM itself.
        let cache = self.cache.take();
        let (hits, misses) = (self.cache_hits, self.cache_misses);
        *self = IbexCore::with_fault(pc, self.seeded);
        self.cache = cache;
        self.cache_hits = hits;
        self.cache_misses = misses;
    }

    fn attach_decode_cache(&mut self, cache: Arc<DecodeCache>) {
        self.cache = Some(cache);
    }

    fn take_decode_stats(&mut self) -> (u64, u64) {
        (std::mem::take(&mut self.cache_hits), std::mem::take(&mut self.cache_misses))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datapath::tests_support::ProgMem;

    #[test]
    fn straightline_is_one_per_cycle() {
        // addi x5, x0, 1 ; addi x6, x0, 2 ; addi x7, x5, 3 (no hazards in
        // this 2-stage model: EX completes before the next decode).
        let mut mem = ProgMem::from_asm(
            "
            addi t0, zero, 1
            addi t1, zero, 2
            addi t2, t0, 3
            nop
            nop
            ",
        );
        let mut c = IbexCore::new(0);
        // Cycle 1 is the initial fetch bubble; then 1 instr/cycle.
        for _ in 0..4 {
            c.step(&mut mem);
        }
        assert_eq!(c.retired(), 3);
        assert_eq!(c.regs()[5].v, 1);
        assert_eq!(c.regs()[6].v, 2);
        assert_eq!(c.regs()[7].v, 4);
    }

    #[test]
    fn taken_branch_costs_extra_cycle() {
        let mut mem = ProgMem::from_asm(
            "
            beq zero, zero, target
            addi t0, zero, 99
            target:
            addi t1, zero, 1
            nop
            nop
            ",
        );
        let mut c = IbexCore::new(0);
        // bubble(1) + branch(1) + bubble(1) + addi(1) = 4 cycles, 2 retired
        for _ in 0..4 {
            c.step(&mut mem);
        }
        assert_eq!(c.retired(), 2);
        assert_eq!(c.regs()[5].v, 0, "skipped instruction must not execute");
        assert_eq!(c.regs()[6].v, 1);
    }

    #[test]
    fn load_takes_two_cycles() {
        let mut mem = ProgMem::from_asm(
            "
            lw t0, 16(zero)
            addi t1, zero, 1
            nop
            nop
            ",
        );
        mem.set_word(16, W::pub32(0x1234));
        let mut c = IbexCore::new(0);
        // bubble(1) + lw issue(1) + lw complete(1) + addi(1)
        for _ in 0..4 {
            c.step(&mut mem);
        }
        assert_eq!(c.retired(), 2);
        assert_eq!(c.regs()[5].v, 0x1234);
        assert_eq!(c.regs()[6].v, 1);
    }

    #[test]
    fn divider_latency_is_data_dependent() {
        let run = |load_t0: &str| -> u64 {
            let mut mem = ProgMem::from_asm(&format!(
                "
                {load_t0}
                addi t1, zero, 3
                divu t2, t0, t1
                nop
                nop
                nop
                "
            ));
            let mut c = IbexCore::new(0);
            let before_retired = 3; // li, li, divu
            let mut cycles = 0;
            while c.retired() < before_retired {
                c.step(&mut mem);
                cycles += 1;
                assert!(cycles < 200);
            }
            cycles
        };
        let small = run("addi t0, zero, 1");
        let large = run("lui t0, 0xfffff");
        assert!(large > small, "divider latency must depend on the dividend: {small} vs {large}");
    }

    #[test]
    fn fault_freezes_core() {
        let mut mem = ProgMem::from_asm("ebreak\nnop\nnop");
        let mut c = IbexCore::new(0);
        for _ in 0..5 {
            c.step(&mut mem);
        }
        assert!(matches!(c.fault(), Some(Fault::Env { .. })));
        assert_eq!(c.retired(), 0);
    }
}

#[cfg(test)]
mod timing_tests {
    use super::*;
    use crate::datapath::tests_support::ProgMem;

    fn cycles_to_retire(src: &str, n: u64) -> u64 {
        let mut mem = ProgMem::from_asm(src);
        let mut c = IbexCore::new(0);
        let mut cycles = 0;
        while c.retired() < n {
            c.step(&mut mem);
            cycles += 1;
            assert!(cycles < 100_000);
        }
        cycles
    }

    #[test]
    fn store_takes_two_cycles() {
        // bubble + sw issue + sw complete + addi = 4 cycles for 2 instrs.
        let c = cycles_to_retire("sw zero, 16(zero)\naddi t0, zero, 1\nnop\nnop", 2);
        assert_eq!(c, 4);
    }

    #[test]
    fn jal_squashes_fetch() {
        // bubble(1) + jal(1) + bubble(1) + addi(1).
        let c = cycles_to_retire(
            "
            jal zero, target
            addi t0, zero, 99
            target:
            addi t1, zero, 1
            nop
            nop
            ",
            2,
        );
        assert_eq!(c, 4);
    }

    #[test]
    fn not_taken_branch_is_single_cycle() {
        // bubble + bne(not taken) + addi = 3 cycles for 2 instrs.
        let c = cycles_to_retire(
            "
            bne zero, zero, away
            addi t0, zero, 1
            away:
            nop
            nop
            ",
            2,
        );
        assert_eq!(c, 3);
    }

    #[test]
    fn multiply_is_single_cycle() {
        // The paper's modified Ibex: full-width single-cycle multiplier.
        let mul = cycles_to_retire("mul t0, t1, t2\naddi t3, zero, 1\nnop\nnop", 2);
        let add = cycles_to_retire("add t0, t1, t2\naddi t3, zero, 1\nnop\nnop", 2);
        assert_eq!(mul, add);
    }

    #[test]
    fn divide_latency_exceeds_multiply() {
        let div =
            cycles_to_retire("addi t1, zero, 100\naddi t2, zero, 3\ndivu t0, t1, t2\nnop\nnop", 3);
        let mul =
            cycles_to_retire("addi t1, zero, 100\naddi t2, zero, 3\nmul t0, t1, t2\nnop\nnop", 3);
        assert!(div > mul, "div {div} vs mul {mul}");
    }

    #[test]
    fn fetch_pc_tracks_decode_stage() {
        let mut mem = ProgMem::from_asm("addi t0, zero, 1\naddi t1, zero, 2\nnop\nnop");
        let mut c = IbexCore::new(0);
        c.step(&mut mem); // fetch bubble: first instr now in decode
        let (word, pc) = c.instr_in_decode().unwrap();
        assert_eq!(pc, 0);
        assert_eq!(word & 0x7F, 0x13); // an OP-IMM
    }
}
