//! `bench_fps` — FPS checking throughput, sequential vs. parallel.
//!
//! Runs the Table 4 verification matrix ({ECDSA, hasher} × {Ibex,
//! PicoRV32}) twice: once sequentially (the oracle) and once through
//! the matrix-parallel pipeline (cases fan out across the thread
//! budget; each case's FPS check uses the snapshot-fork segment
//! checker with its share). Reports per-case cycles, wall time, and
//! simulation rate, plus the aggregate wall-clock speedup.
//!
//! ```sh
//! cargo run -p parfait-bench --release --bin bench_fps -- --quick --json BENCH_fps.json
//! ```
//!
//! Note the speedup ceiling: within one script the two world-chains
//! (real pre-pass, emulator replay) are inherently sequential, so
//! segment parallelism alone saturates near 2x; the matrix level is
//! what scales further — given physical cores to run on.

use std::time::{Duration, Instant};

use parfait_bench::{json_output_path, render_table, threads_arg, write_json, App};
use parfait_hsms::platform::Cpu;
use parfait_knox2::{FpsConfig, FpsObserver, FpsReport};
use parfait_littlec::codegen::OptLevel;
use parfait_parallel::parallel_map;
use parfait_pipeline::{CertCache, Pipeline};
use parfait_telemetry::json::Json;

struct Case {
    cpu: Cpu,
    app: App,
    seq: (FpsReport, Duration),
    par: (FpsReport, Duration),
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let threads = threads_arg();
    let apps: &[App] = if quick { &[App::Hasher] } else { &[App::Ecdsa, App::Hasher] };
    let matrix: Vec<(Cpu, App)> = [Cpu::Ibex, Cpu::Pico]
        .into_iter()
        .flat_map(|cpu| apps.iter().map(move |&app| (cpu, app)))
        .collect();
    let cases = matrix.len();
    let threads_per_case = (threads / cases).max(1);
    // This benchmark measures *checking* throughput, so it deliberately
    // bypasses the certificate cache (run_fps): a cache hit would
    // measure a file read, not the checker.
    let pipeline = Pipeline::new(CertCache::disabled(), parfait_telemetry::Telemetry::disabled());
    let pipeline = &pipeline;
    let timeout = FpsConfig::default_timeout();
    let obs = FpsObserver::default();
    let obs = &obs;

    // Baseline: the sequential oracle, one case at a time.
    let mut seq = Vec::new();
    let t_seq = Instant::now();
    for &(cpu, app) in &matrix {
        let t0 = Instant::now();
        let report = pipeline
            .run_fps(&app.pipeline(), cpu, OptLevel::O2, obs, 1, timeout)
            .expect("verification passes");
        seq.push((report, t0.elapsed()));
    }
    let seq_total = t_seq.elapsed();

    // The parallel pipeline: matrix fan-out × segment workers.
    let t_par = Instant::now();
    let par = parallel_map(cases.min(threads), matrix.clone(), move |_, (cpu, app)| {
        let t0 = Instant::now();
        let report = pipeline
            .run_fps(&app.pipeline(), cpu, OptLevel::O2, obs, threads_per_case, timeout)
            .expect("verification passes");
        (report, t0.elapsed())
    });
    let par_total = t_par.elapsed();

    let cases_out: Vec<Case> = matrix
        .iter()
        .zip(seq)
        .zip(par)
        .map(|((&(cpu, app), seq), par)| Case { cpu, app, seq, par })
        .collect();

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for c in &cases_out {
        let (seq_report, seq_wall) = &c.seq;
        let (par_report, par_wall) = &c.par;
        assert_eq!(seq_report.cycles, par_report.cycles, "checkers must agree");
        let speedup = seq_wall.as_secs_f64() / par_wall.as_secs_f64().max(1e-9);
        rows.push(vec![
            c.cpu.to_string(),
            c.app.to_string(),
            format!("{}", seq_report.cycles),
            format!("{:.2}s", seq_wall.as_secs_f64()),
            format!("{:.2}s", par_wall.as_secs_f64()),
            format!("{:.2}M", seq_report.cycles_per_second() / 1e6),
            format!("{:.2}M", par_report.cycles_per_second() / 1e6),
            format!("{:.2}x", speedup),
        ]);
        json_rows.push(Json::obj([
            ("platform", Json::str(c.cpu.to_string())),
            ("app", Json::str(c.app.to_string())),
            ("cycles", Json::Int(seq_report.cycles as i64)),
            ("seq_seconds", Json::Num(seq_wall.as_secs_f64())),
            ("par_seconds", Json::Num(par_wall.as_secs_f64())),
            ("seq_cycles_per_second", Json::Num(seq_report.cycles_per_second())),
            ("par_cycles_per_second", Json::Num(par_report.cycles_per_second())),
            ("par_cpu_seconds", Json::Num(par_report.cpu.as_secs_f64())),
            ("speedup", Json::Num(speedup)),
        ]));
    }
    let aggregate = seq_total.as_secs_f64() / par_total.as_secs_f64().max(1e-9);
    println!(
        "{}",
        render_table(
            "FPS checking throughput: sequential vs. parallel",
            &[
                "Platform",
                "App",
                "Cycles",
                "Seq wall",
                "Par wall",
                "Seq cyc/s",
                "Par cyc/s",
                "Speedup"
            ],
            &rows
        )
    );
    println!(
        "aggregate: {:.2}s sequential vs {:.2}s parallel = {:.2}x across {} case(s), \
         {} thread(s) ({} per case)",
        seq_total.as_secs_f64(),
        par_total.as_secs_f64(),
        aggregate,
        cases,
        threads,
        threads_per_case
    );
    if let Some(path) = json_output_path() {
        let doc = Json::obj([
            ("artifact", Json::str("bench_fps")),
            ("threads", Json::Int(threads as i64)),
            ("threads_per_case", Json::Int(threads_per_case as i64)),
            ("seq_total_seconds", Json::Num(seq_total.as_secs_f64())),
            ("par_total_seconds", Json::Num(par_total.as_secs_f64())),
            ("aggregate_speedup", Json::Num(aggregate)),
            ("rows", Json::Arr(json_rows)),
        ]);
        write_json(&path, &doc).expect("write --json output");
        eprintln!("wrote {}", path.display());
    }
    // `--metrics <path>` writes the run manifest (bin, build id,
    // env knobs, metrics snapshot); absent flag is a no-op.
    parfait_bench::emit_manifest("bench_fps", threads, 0);
}
