//! `perfstat` — the deterministic performance ratchet driver.
//!
//! Runs three fixed workloads with the certificate cache disabled:
//!
//! 1. **lint**: the full static constant-time analysis of the hasher
//!    at `-O2` (IR taint + sparse assembly fixpoint).
//! 2. **fps**: the hasher's FPS hardware check on both platforms at
//!    two checker threads (exercising the producer/verifier split, the
//!    pre-decoded instruction cache, and the firmware-build memo —
//!    the second platform must reuse the first platform's build). Each
//!    check first runs the static bound analysis that prices its cycle
//!    budget, so the `bound_` coverage counters are gated here too.
//! 3. **contract**: the per-instruction-class stimulus battery that
//!    holds both cores to their declared leakage contracts (stimulus
//!    coverage is gated higher-is-better, wall under a ceiling).
//!
//! It then reads the counter *deltas* off the global metrics registry
//! and gates them against `perf_baseline.json` (see
//! [`parfait_bench::perf`]): deterministic counters must not get
//! worse, wall clock must stay under a generous ceiling. `--update`
//! rewrites the baseline but refuses regressions.
//!
//! ```sh
//! cargo run -p parfait-bench --release --bin perfstat -- --baseline perf_baseline.json
//! cargo run -p parfait-bench --release --bin perfstat -- --baseline perf_baseline.json --update
//! ```

use std::process::ExitCode;
use std::time::Instant;

use parfait_bench::perf::{check, update, Baseline, Measurement};
use parfait_bench::{emit_manifest, render_table, write_json, App};
use parfait_hsms::platform::Cpu;
use parfait_knox2::FpsObserver;
use parfait_littlec::codegen::OptLevel;
use parfait_pipeline::{CertCache, Pipeline};
use parfait_telemetry::json::Json;
use parfait_telemetry::metrics::Metrics;
use parfait_telemetry::Telemetry;

/// FPS checker threads for the fixed workload. Two: the smallest
/// count that exercises the producer/verifier pipeline.
const FPS_THREADS: usize = 2;

fn usage() -> u8 {
    eprintln!("usage: perfstat --baseline <path> [--update] [--json <path>] [--metrics <path>]");
    1
}

/// Counter value by (name, labels) from the global registry.
fn counter(name: &str, labels: &[(&str, &str)]) -> u64 {
    Metrics::global().counter_with(name, labels).get()
}

fn run_workloads() -> Result<Measurement, String> {
    // The gate's counters assume the decode cache is live; pin the
    // knob so an ambient `PARFAIT_DECODE_CACHE=0` (or a future default
    // flip) can't make the gate compare different configurations.
    std::env::set_var("PARFAIT_DECODE_CACHE", "1");
    let mut m = Measurement::default();
    let tel = Telemetry::disabled();

    // -- workload 1: static lint of the hasher at -O2
    let asm_iters0 = counter("analyzer_fixpoint_iterations_total", &[("layer", "asm")]);
    let ir_iters0 = counter("analyzer_fixpoint_iterations_total", &[("layer", "ir")]);
    let memo0 = counter("analyzer_memo_hits_total", &[("layer", "asm")]);
    eprintln!("perfstat: linting {} at -O2...", App::Hasher.slug());
    let t0 = Instant::now();
    let report = parfait_analyzer::lint_source(&App::Hasher.source(), OptLevel::O2, &tel)
        .map_err(|e| format!("lint workload: {e}"))?;
    m.walls.insert("lint_s".into(), t0.elapsed().as_secs_f64());
    if !report.is_clean() {
        return Err("lint workload: hasher unexpectedly has findings".into());
    }
    m.counters.insert(
        "lint_asm_fixpoint_iters".into(),
        counter("analyzer_fixpoint_iterations_total", &[("layer", "asm")]) - asm_iters0,
    );
    m.counters.insert(
        "lint_ir_fixpoint_iters".into(),
        counter("analyzer_fixpoint_iterations_total", &[("layer", "ir")]) - ir_iters0,
    );
    m.counters.insert(
        "lint_asm_memo_hits".into(),
        counter("analyzer_memo_hits_total", &[("layer", "asm")]) - memo0,
    );

    // -- workload 2: FPS hardware checks, both platforms, cache off
    let cycles0 = counter("fps_cycles_total", &[]);
    let prepass0 = counter("fps_prepass_cycles_total", &[]);
    let hit0 = counter("decode_cache_hit", &[]);
    let miss0 = counter("decode_cache_miss", &[]);
    let builds_hit0 = counter("pipeline_firmware_builds_total", &[("outcome", "hit")]);
    let builds_miss0 = counter("pipeline_firmware_builds_total", &[("outcome", "miss")]);
    let pipeline = Pipeline::new(CertCache::disabled(), tel);
    let app = App::Hasher.pipeline();
    // The bound stage runs (uncached) inside each fps_stage call; its
    // coverage counters are labeled per cell, so sum both platforms.
    let bound_sum = |name: &str| {
        ["Ibex", "PicoRV32"]
            .iter()
            .map(|cpu| counter(name, &[("app", app.slug.as_str()), ("cpu", cpu), ("opt", "-O2")]))
            .sum::<u64>()
    };
    let bound_fns0 = bound_sum("bound_functions_total");
    let bound_loops0 = bound_sum("bound_loops_total");
    let t0 = Instant::now();
    for cpu in [Cpu::Ibex, Cpu::Pico] {
        eprintln!("perfstat: fps {}/{cpu} at -O2, {FPS_THREADS} threads...", app.name);
        pipeline
            .fps_stage(&app, cpu, OptLevel::O2, &FpsObserver::default(), FPS_THREADS)
            .map_err(|e| format!("fps workload ({cpu}): {e}"))?;
    }
    m.walls.insert("fps_s".into(), t0.elapsed().as_secs_f64());
    m.counters.insert("fps_cycles".into(), counter("fps_cycles_total", &[]) - cycles0);
    m.counters
        .insert("fps_producer_cycles".into(), counter("fps_prepass_cycles_total", &[]) - prepass0);
    let hits = counter("decode_cache_hit", &[]) - hit0;
    let misses = counter("decode_cache_miss", &[]) - miss0;
    let rate_ppm = (hits * 1_000_000).checked_div(hits + misses).unwrap_or(0);
    m.counters.insert("decode_cache_hit_rate_ppm".into(), rate_ppm);
    m.counters.insert(
        "firmware_build_hits".into(),
        counter("pipeline_firmware_builds_total", &[("outcome", "hit")]) - builds_hit0,
    );
    m.counters.insert(
        "firmware_build_misses".into(),
        counter("pipeline_firmware_builds_total", &[("outcome", "miss")]) - builds_miss0,
    );
    m.counters.insert("bound_functions".into(), bound_sum("bound_functions_total") - bound_fns0);
    m.counters.insert("bound_loops".into(), bound_sum("bound_loops_total") - bound_loops0);

    // -- workload 3: contract batteries, both cores
    let stim0 = counter("contract_stimuli_total", &[("cpu", "Ibex")])
        + counter("contract_stimuli_total", &[("cpu", "PicoRV32")]);
    let t0 = Instant::now();
    for cpu in [Cpu::Ibex, Cpu::Pico] {
        eprintln!("perfstat: contract battery on {cpu}...");
        pipeline
            .contract_stage(&app, cpu)
            .map_err(|e| format!("contract workload ({cpu}): {e}"))?;
    }
    m.walls.insert("contract_s".into(), t0.elapsed().as_secs_f64());
    let stim = counter("contract_stimuli_total", &[("cpu", "Ibex")])
        + counter("contract_stimuli_total", &[("cpu", "PicoRV32")]);
    m.counters.insert("contract_stimuli_total".into(), stim - stim0);
    Ok(m)
}

fn main() -> ExitCode {
    let code = run();
    emit_manifest("perfstat", FPS_THREADS, i32::from(code));
    ExitCode::from(code)
}

fn run() -> u8 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_path: Option<String> = None;
    let mut do_update = false;
    let mut json_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => match it.next() {
                Some(p) => baseline_path = Some(p.clone()),
                None => return usage(),
            },
            "--update" => do_update = true,
            "--json" => match it.next() {
                Some(p) => json_path = Some(p.clone()),
                None => return usage(),
            },
            "--metrics" => {
                if it.next().is_none() {
                    return usage();
                }
            }
            _ => return usage(),
        }
    }
    if let Err(e) = parfait_bench::metrics_path_from(args.iter().cloned()) {
        eprintln!("error: {e}");
        return usage();
    }
    let Some(baseline_path) = baseline_path else { return usage() };

    let m = match run_workloads() {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };

    let mut rows: Vec<Vec<String>> =
        m.counters.iter().map(|(k, v)| vec![k.clone(), v.to_string()]).collect();
    rows.extend(m.walls.iter().map(|(k, v)| vec![k.clone(), format!("{v:.2}")]));
    println!(
        "{}",
        render_table("perfstat: deterministic hot-path counters", &["Metric", "Value"], &rows)
    );

    if let Some(path) = &json_path {
        let doc = Json::obj([
            ("artifact", Json::str("perfstat")),
            (
                "counters",
                Json::Obj(
                    m.counters.iter().map(|(k, &v)| (k.clone(), Json::Int(v as i64))).collect(),
                ),
            ),
            (
                "walls_s",
                Json::Obj(m.walls.iter().map(|(k, &v)| (k.clone(), Json::Num(v))).collect()),
            ),
        ]);
        if let Err(e) = write_json(std::path::Path::new(path), &doc) {
            eprintln!("error: cannot write {path}: {e}");
            return 1;
        }
        eprintln!("wrote {path}");
    }

    let prev = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match parfait_telemetry::json::parse(&text)
            .map_err(|e| e.to_string())
            .and_then(|doc| Baseline::from_json(&doc))
        {
            Ok(b) => Some(b),
            Err(e) => {
                eprintln!("error: {baseline_path}: {e}");
                return 1;
            }
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => {
            eprintln!("error: {baseline_path}: {e}");
            return 1;
        }
    };

    if do_update {
        match update(prev.as_ref(), &m) {
            Ok(b) => {
                if let Err(e) = write_json(std::path::Path::new(&baseline_path), &b.to_json()) {
                    eprintln!("error: cannot write {baseline_path}: {e}");
                    return 1;
                }
                println!("perf baseline updated: {baseline_path}");
                0
            }
            Err(regressions) => {
                eprintln!(
                    "error: refusing to update {baseline_path}: {} counter(s) regressed:",
                    regressions.len()
                );
                for r in &regressions {
                    eprintln!("  {r}");
                }
                eprintln!("(fix the regression, or delete the baseline to accept it explicitly)");
                1
            }
        }
    } else {
        let Some(prev) = prev else {
            eprintln!(
                "error: {baseline_path} does not exist; create it with `perfstat --baseline \
                 {baseline_path} --update`"
            );
            return 1;
        };
        let verdict = check(&prev, &m);
        for note in &verdict.notes {
            eprintln!("note: {note}");
        }
        if !verdict.pass() {
            eprintln!("error: performance ratchet: {} violation(s):", verdict.violations.len());
            for v in &verdict.violations {
                eprintln!("  {v}");
            }
            return 1;
        }
        println!(
            "perf: ok ({} gated counters, {} wall ceilings)",
            prev.counters.len(),
            prev.wall_ceilings.len()
        );
        0
    }
}
