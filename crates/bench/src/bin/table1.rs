//! Table 1: the levels of abstraction used to verify the case-study
//! HSMs, printed from the live registry (`parfait::levels`) — the same
//! one the proof pipeline's stage certificates label their claims with.

use parfait::levels::registry;
use parfait_bench::render_table;

fn main() {
    let rows: Vec<Vec<String>> = registry()
        .iter()
        .map(|info| {
            vec![info.title.to_string(), info.state.into(), info.io.into(), info.step.into()]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Table 1: levels of abstraction (state machines in the theory of IPR)",
            &["Level", "State", "I/O", "Step"],
            &rows
        )
    );
    println!("IPR chain: Spec =lockstep= interp =equiv= IR =equiv= Asm =FPS= SoC");
    println!("(composed by parfait::transitive into the top-level theorem)");
    // `--metrics <path>` writes the run manifest (bin, build id,
    // env knobs, metrics snapshot); absent flag is a no-op.
    parfait_bench::emit_manifest("table1", 1, 0);
}
