//! Table 1: the levels of abstraction used to verify the case-study
//! HSMs, printed from the live system's types.

use parfait_bench::render_table;

fn main() {
    let rows = vec![
        vec![
            "App Spec [Rust]".into(),
            "EcdsaState / HasherState".into(),
            "Command / Response enums".into(),
            "StateMachine::step()".into(),
        ],
        vec![
            "App Impl [littlec interp]".into(),
            "bytes".into(),
            "bytes".into(),
            "handle() under interp::Interp".into(),
        ],
        vec![
            "App Impl [IR]".into(),
            "bytes".into(),
            "bytes".into(),
            "handle() under ireval::IrEval".into(),
        ],
        vec![
            "App Impl [Asm]".into(),
            "bytes".into(),
            "bytes".into(),
            "handle() under riscv::AsmStateMachine".into(),
        ],
        vec![
            "System-on-a-Chip".into(),
            "registers & memories".into(),
            "wires".into(),
            "rtl::Circuit::tick()".into(),
        ],
    ];
    println!(
        "{}",
        render_table(
            "Table 1: levels of abstraction (state machines in the theory of IPR)",
            &["Level", "State", "I/O", "Step"],
            &rows
        )
    );
    println!("IPR chain: Spec =lockstep= interp =equiv= IR =equiv= Asm =FPS= SoC");
    println!("(composed by parfait::transitive into the top-level theorem)");
}
