//! `bench_lint` — wall time of the static constant-time analysis.
//!
//! Times `parfait_analyzer::lint_source` (both layers, cold, no cache)
//! per application. The point of the measurement is the contrast with
//! the dynamic leakage check: a cold FPS run on the same firmware costs
//! minutes of wire-level simulation (see `BENCH_pipeline.json` /
//! EXPERIMENTS.md), while the static lint answers in seconds — which is
//! why it runs as the pipeline's `ctcheck` stage ahead of FPS.
//!
//! ```sh
//! cargo run -p parfait-bench --release --bin bench_lint -- --quick --json BENCH_lint.json
//! ```

use std::time::Instant;

use parfait_analyzer::lint_source;
use parfait_bench::{json_output_path, render_table, write_json, App};
use parfait_littlec::codegen::OptLevel;
use parfait_telemetry::json::Json;
use parfait_telemetry::Telemetry;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let matrix: Vec<(App, OptLevel)> = if quick {
        vec![(App::Hasher, OptLevel::O2)]
    } else {
        vec![
            (App::Hasher, OptLevel::O0),
            (App::Hasher, OptLevel::O2),
            (App::Totp, OptLevel::O0),
            (App::Totp, OptLevel::O2),
            (App::Ecdsa, OptLevel::O2),
        ]
    };
    let tel = Telemetry::disabled();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for &(app, opt) in &matrix {
        eprintln!("linting {} at {opt}...", app.slug());
        let t0 = Instant::now();
        let report = lint_source(&app.source(), opt, &tel).expect("production app is analyzable");
        let wall = t0.elapsed();
        assert!(report.is_clean(), "{}: {:#?}", app.slug(), report.findings);
        let per_instr = wall.as_secs_f64() * 1e6 / report.asm_instrs.max(1) as f64;
        rows.push(vec![
            app.slug().to_string(),
            opt.to_string(),
            report.ir_insts.to_string(),
            report.asm_instrs.to_string(),
            format!("{:.2}s", wall.as_secs_f64()),
            format!("{per_instr:.0}us"),
        ]);
        json_rows.push(Json::obj([
            ("app", Json::str(app.slug())),
            ("opt", Json::str(opt.to_string())),
            ("ir_insts", Json::Int(report.ir_insts as i64)),
            ("asm_instrs", Json::Int(report.asm_instrs as i64)),
            ("findings", Json::Int(report.findings.len() as i64)),
            ("seconds", Json::Num(wall.as_secs_f64())),
        ]));
    }
    println!(
        "{}",
        render_table(
            "Static constant-time lint: cold analysis wall time (both layers)",
            &["App", "Opt", "IR insts", "Asm instrs", "Wall", "Per asm instr"],
            &rows
        )
    );
    println!("all runs clean (asserted); compare the cold FPS columns in BENCH_pipeline.json.");
    if let Some(path) = json_output_path() {
        let doc = Json::obj([
            ("artifact", Json::str("bench_lint")),
            ("ruleset", Json::str(parfait_analyzer::RULESET_VERSION)),
            ("rows", Json::Arr(json_rows)),
        ]);
        write_json(&path, &doc).expect("write --json output");
        eprintln!("wrote {}", path.display());
    }
    // `--metrics <path>` writes the run manifest (bin, build id,
    // env knobs, metrics snapshot); absent flag is a no-op.
    parfait_bench::emit_manifest("bench_lint", 1, 0);
}
