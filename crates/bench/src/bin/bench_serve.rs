//! `bench_serve` — serve-daemon throughput vs. the sequential batch
//! path, on identical request mixes.
//!
//! Builds a two-tenant request mix with heavy duplication (every
//! (tenant, cell) appears several times, the service's actual workload
//! shape: many clients asking for the same proofs), then runs it twice
//! against private, guaranteed-cold caches:
//!
//! - **sequential leg**: every request is its own one-shot session
//!   (`verify` + `flush`) on a single-threaded core — the batch tool's
//!   behavior, where a duplicate costs a full warm cache pass.
//! - **serve leg**: the whole mix as one session batch — duplicates
//!   collapse in the stage DAG, shared stages run once per tenant.
//!
//! Asserts (a) both legs answer every request with no error frames,
//! (b) the composed certificates agree byte-for-byte across legs for
//! every (tenant, cell), (c) both legs ran the same number of cold
//! stage computations (the dedup never *recomputes*), and (d) the
//! serve leg's request throughput is at least the sequential leg's.
//! On a one-core box that last bound comes from doing strictly less
//! warm-path work, not from parallel wall-clock speedup — no speedup
//! factor is reported or claimed (see EXPERIMENTS.md).
//!
//! ```sh
//! cargo run -p parfait-bench --release --bin bench_serve -- --quick --json BENCH_serve.json
//! ```

use std::collections::BTreeMap;
use std::io::Cursor;
use std::time::Instant;

use parfait_bench::{json_output_path, render_table, threads_arg, write_json};
use parfait_pipeline::serve::server::handle_session;
use parfait_pipeline::{CertCache, ServeCore};
use parfait_telemetry::json::{parse, Json};
use parfait_telemetry::metrics::Metrics;
use parfait_telemetry::Telemetry;

const TENANTS: [&str; 2] = ["alpha", "beta"];
/// Copies of every (tenant, cell) request in the mix.
const DUPLICATES: usize = 6;

/// One leg's outcome: wall seconds, per-(tenant, cell) composed
/// certificates (canonical JSON), and cold stage computations.
struct Leg {
    wall: f64,
    requests: usize,
    composed: BTreeMap<String, String>,
    misses: u64,
}

fn request_line(id: usize, tenant: &str, cell: &(&str, &str, &str)) -> String {
    let (app, cpu, opt) = cell;
    format!(
        r#"{{"op":"verify","id":"r{id}","tenant":"{tenant}","app":"{app}","cpu":"{cpu}","opt":"{opt}"}}"#
    )
}

/// Run `sessions` (each a JSONL string) against one fresh core,
/// collecting every result frame and failing loudly on error frames.
fn run_leg(label: &str, threads: usize, sessions: &[String]) -> Leg {
    let dir =
        std::env::temp_dir().join(format!("parfait-bench-serve-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let metrics = Metrics::new();
    let cache = CertCache::at_with(dir.clone(), metrics);
    let core = ServeCore::new(cache, Telemetry::disabled(), threads);
    let mut composed = BTreeMap::new();
    let mut requests = 0usize;
    let t0 = Instant::now();
    for session in sessions {
        let mut out = Vec::new();
        handle_session(&core, Cursor::new(session.as_bytes()), &mut out)
            .expect("in-memory session cannot fail transport");
        for line in String::from_utf8(out).expect("frames are utf-8").lines() {
            let frame = parse(line).expect("frames are valid JSON");
            match frame.get("frame").and_then(Json::as_str) {
                Some("result") => {
                    requests += 1;
                    let key = format!(
                        "{}/{}/{}/{}",
                        frame.get("tenant").and_then(Json::as_str).unwrap_or("?"),
                        frame.get("app").and_then(Json::as_str).unwrap_or("?"),
                        frame.get("cpu").and_then(Json::as_str).unwrap_or("?"),
                        frame.get("opt").and_then(Json::as_str).unwrap_or("?"),
                    );
                    let cert = frame.get("composed").expect("result carries composed").to_string();
                    // Duplicate requests must agree with each other too.
                    if let Some(prev) = composed.insert(key.clone(), cert.clone()) {
                        assert_eq!(prev, cert, "{label}: duplicates of {key} diverged");
                    }
                }
                Some("error") => panic!("{label}: unexpected error frame: {line}"),
                _ => {}
            }
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    let misses = core
        .metrics()
        .snapshot()
        .counters
        .iter()
        .filter(|(k, _)| {
            k.name == "pipeline_stage_runs_total"
                && k.labels.iter().any(|(lk, lv)| lk == "outcome" && lv == "miss")
        })
        .map(|(_, v)| *v)
        .sum();
    let _ = std::fs::remove_dir_all(&dir);
    Leg { wall, requests, composed, misses }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let threads = threads_arg();
    let mut cells: Vec<(&str, &str, &str)> =
        vec![("hasher", "pico", "-O0"), ("hasher", "pico", "-O1"), ("hasher", "pico", "-O2")];
    if !quick {
        cells.extend([("hasher", "ibex", "-O0"), ("hasher", "ibex", "-O2")]);
    }
    let mut lines = Vec::new();
    for _ in 0..DUPLICATES {
        for tenant in TENANTS {
            for cell in &cells {
                lines.push(request_line(lines.len(), tenant, cell));
            }
        }
    }

    // Sequential leg first (one-core box: never interleave the legs):
    // every request is its own session on a single-threaded core.
    eprintln!("sequential leg: {} one-shot sessions...", lines.len());
    let seq_sessions: Vec<String> =
        lines.iter().map(|l| format!("{l}\n{{\"op\":\"flush\"}}\n")).collect();
    let seq = run_leg("seq", 1, &seq_sessions);

    // Serve leg: the same mix as one batch, closed by a shutdown.
    eprintln!("serve leg: one batch of {} requests...", lines.len());
    let serve_session = format!("{}\n{{\"op\":\"shutdown\"}}\n", lines.join("\n"));
    let serve = run_leg("serve", threads, &[serve_session]);

    assert_eq!(seq.requests, lines.len(), "sequential leg answered every request");
    assert_eq!(serve.requests, lines.len(), "serve leg answered every request");
    assert_eq!(
        seq.composed, serve.composed,
        "composed certificates must be byte-identical across legs"
    );
    assert_eq!(
        seq.misses, serve.misses,
        "both legs cold-compute the same unique stage set (dedup never recomputes)"
    );
    let seq_rps = seq.requests as f64 / seq.wall.max(1e-9);
    let serve_rps = serve.requests as f64 / serve.wall.max(1e-9);
    assert!(
        serve_rps >= seq_rps,
        "serve throughput ({serve_rps:.1} req/s) fell below sequential ({seq_rps:.1} req/s)"
    );

    println!(
        "{}",
        render_table(
            "parfait-serve: batched service vs. sequential one-shot sessions",
            &["Leg", "Requests", "Cold stages", "Wall", "Req/s"],
            &[
                vec![
                    "sequential".into(),
                    seq.requests.to_string(),
                    seq.misses.to_string(),
                    format!("{:.3}s", seq.wall),
                    format!("{seq_rps:.1}"),
                ],
                vec![
                    "serve".into(),
                    serve.requests.to_string(),
                    serve.misses.to_string(),
                    format!("{:.3}s", serve.wall),
                    format!("{serve_rps:.1}"),
                ],
            ]
        )
    );
    println!(
        "certificates byte-identical across legs for {} (tenant, cell) keys;",
        serve.composed.len()
    );
    println!("equal cold-stage counts show the DAG dedup reuses, never recomputes.");

    if let Some(path) = json_output_path() {
        let doc = Json::obj([
            ("artifact", Json::str("bench_serve")),
            ("threads", Json::Int(threads as i64)),
            ("tenants", Json::Int(TENANTS.len() as i64)),
            ("cells", Json::Int(cells.len() as i64)),
            ("requests", Json::Int(lines.len() as i64)),
            ("sequential_seconds", Json::Num(seq.wall)),
            ("serve_seconds", Json::Num(serve.wall)),
            ("sequential_rps", Json::Num(seq_rps)),
            ("serve_rps", Json::Num(serve_rps)),
            ("cold_stages", Json::Int(serve.misses as i64)),
            ("certificates_identical", Json::Bool(true)),
        ]);
        write_json(&path, &doc).expect("write --json output");
        eprintln!("wrote {}", path.display());
    }
    parfait_bench::emit_manifest("bench_serve", threads, 0);
}
