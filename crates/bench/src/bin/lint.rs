//! `lint` — the standalone constant-time lint driver.
//!
//! Runs the `parfait-analyzer` static leakage analysis (IR taint +
//! assembly abstract interpretation, DESIGN.md §10) over the standard
//! applications and exits nonzero on any finding not recorded in the
//! baseline. The baseline (`lint_baseline.json`) is a ratchet: CI runs
//! with `--baseline lint_baseline.json`, so new findings fail loudly
//! while the recorded set can only shrink.
//!
//! ```sh
//! cargo run -p parfait-bench --release --bin lint -- --baseline lint_baseline.json
//! cargo run -p parfait-bench --release --bin lint -- --app hasher --opt O0 --json lint.json
//! ```

use std::collections::BTreeSet;
use std::process::ExitCode;

use parfait_analyzer::{lint_source, Finding};
use parfait_bench::emit_manifest;
use parfait_bench::{render_table, write_json, App};
use parfait_littlec::codegen::OptLevel;
use parfait_telemetry::json::Json;
use parfait_telemetry::Telemetry;

fn usage() -> u8 {
    eprintln!(
        "usage: lint [--app <ecdsa|hasher|totp>]... [--opt <O0|O1|O2>] \
         [--baseline <path>] [--json <path>] [--metrics <path>]"
    );
    1
}

fn parse_opt(s: &str) -> Option<OptLevel> {
    match s {
        "O0" | "o0" | "0" => Some(OptLevel::O0),
        "O1" | "o1" | "1" => Some(OptLevel::O1),
        "O2" | "o2" | "2" => Some(OptLevel::O2),
        _ => None,
    }
}

/// Parse a baseline document: `{"ruleset": ..., "findings": [key...]}`.
/// A ruleset mismatch invalidates every recorded key (the rules that
/// justified them changed), so it is treated as an empty baseline.
fn read_baseline(path: &str) -> Result<BTreeSet<String>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = parfait_telemetry::json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let ruleset = doc.get("ruleset").and_then(|v| v.as_str()).unwrap_or("");
    if ruleset != parfait_analyzer::RULESET_VERSION {
        eprintln!(
            "warning: baseline {path} is for rule set {ruleset:?}, current is {:?}; \
             treating as empty",
            parfait_analyzer::RULESET_VERSION
        );
        return Ok(BTreeSet::new());
    }
    let keys = doc
        .get("findings")
        .and_then(|v| v.as_array())
        .ok_or_else(|| format!("{path}: missing findings array"))?;
    keys.iter()
        .map(|k| k.as_str().map(str::to_string).ok_or_else(|| format!("{path}: non-string key")))
        .collect()
}

fn main() -> ExitCode {
    let code = run();
    // Manifest (only with `--metrics`) records the exit status, so
    // failed lints leave an artifact too.
    emit_manifest("lint", 1, i32::from(code));
    ExitCode::from(code)
}

fn run() -> u8 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut apps: Vec<App> = Vec::new();
    let mut opt = OptLevel::O2;
    let mut baseline_path: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--app" => match it.next().and_then(|s| App::from_slug(s)) {
                Some(app) => apps.push(app),
                None => return usage(),
            },
            "--opt" => match it.next().and_then(|s| parse_opt(s)) {
                Some(o) => opt = o,
                None => return usage(),
            },
            "--baseline" => match it.next() {
                Some(p) => baseline_path = Some(p.clone()),
                None => return usage(),
            },
            "--json" => match it.next() {
                Some(p) => json_path = Some(p.clone()),
                None => return usage(),
            },
            "--metrics" => {
                // Validated below by metrics_path_from over the full args.
                if it.next().is_none() {
                    return usage();
                }
            }
            _ => return usage(),
        }
    }
    if let Err(e) = parfait_bench::metrics_path_from(args.iter().cloned()) {
        eprintln!("error: {e}");
        return usage();
    }
    if apps.is_empty() {
        apps = App::ALL.to_vec();
    }

    let tel = Telemetry::disabled();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut findings: Vec<(App, Finding)> = Vec::new();
    for &app in &apps {
        eprintln!("linting {} at {opt}...", app.slug());
        let report = match lint_source(&app.source(), opt, &tel) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {}: {e}", app.slug());
                return 1;
            }
        };
        rows.push(vec![
            app.slug().to_string(),
            opt.to_string(),
            report.ir_insts.to_string(),
            report.asm_instrs.to_string(),
            report.findings.len().to_string(),
        ]);
        json_rows.push(Json::obj([
            ("app", Json::str(app.slug())),
            ("opt", Json::str(opt.to_string())),
            ("ir_insts", Json::Int(report.ir_insts as i64)),
            ("asm_instrs", Json::Int(report.asm_instrs as i64)),
            ("findings", Json::Arr(report.findings.iter().map(Finding::to_json).collect())),
        ]));
        findings.extend(report.findings.into_iter().map(|f| (app, f)));
    }

    println!(
        "{}",
        render_table(
            &format!(
                "parfait-lint: constant-time analysis ({})",
                parfait_analyzer::RULESET_VERSION
            ),
            &["App", "Opt", "IR insts", "Asm instrs", "Findings"],
            &rows
        )
    );

    if let Some(path) = &json_path {
        let doc = Json::obj([
            ("artifact", Json::str("lint")),
            ("ruleset", Json::str(parfait_analyzer::RULESET_VERSION)),
            ("opt", Json::str(opt.to_string())),
            ("rows", Json::Arr(json_rows)),
        ]);
        if let Err(e) = write_json(std::path::Path::new(path), &doc) {
            eprintln!("error: cannot write {path}: {e}");
            return 1;
        }
        eprintln!("wrote {path}");
    }

    let allowed = match &baseline_path {
        Some(p) => match read_baseline(p) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        },
        None => BTreeSet::new(),
    };
    let fresh: Vec<&(App, Finding)> =
        findings.iter().filter(|(_, f)| !allowed.contains(&f.baseline_key())).collect();
    let seen: BTreeSet<String> = findings.iter().map(|(_, f)| f.baseline_key()).collect();
    for key in allowed.difference(&seen) {
        eprintln!("note: baseline entry no longer fires (ratchet it out): {key}");
    }
    if !fresh.is_empty() {
        eprintln!("error: {} constant-time finding(s) not in the baseline:", fresh.len());
        for (app, f) in &fresh {
            eprintln!("  [{}] {f}", app.slug());
            eprintln!("    baseline key: {}", f.baseline_key());
        }
        return 1;
    }
    println!("constant-time: clean ({} apps at {opt}, 0 non-baseline findings)", apps.len());
    0
}
