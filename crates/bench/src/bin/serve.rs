//! `serve` — the parfait proof daemon (`parfait-serve`).
//!
//! Turns the batch pipeline into a long-running service: clients stream
//! JSONL verify requests (DESIGN.md §17), the daemon schedules the
//! deduplicated stage DAG across its thread budget, and every result is
//! a composed certificate byte-identical to what the batch `verify`
//! tool would have produced. Two transports share one
//! [`parfait_pipeline::ServeCore`] — one single-flight certificate
//! cache, one metrics registry:
//!
//! - **stdio** (default): one session over stdin/stdout, so
//!   `serve < requests.jsonl > replies.jsonl` is a complete CI
//!   invocation with no socket setup.
//! - **Unix socket** (`--socket <path>` or `PARFAIT_SOCKET`): one
//!   thread per connection until some client sends `shutdown`;
//!   concurrent sessions asking for the same cold certificate run the
//!   stage once (single-flight), everyone waits for the leader.
//!
//! Tenants are isolated by cache namespace: a request's `tenant` field
//! selects a subdirectory of `PARFAIT_CACHE_DIR`, and one tenant's
//! certificates are never served to another.
//!
//! ```sh
//! PARFAIT_CACHE_DIR=/tmp/certs serve < session.jsonl
//! PARFAIT_CACHE_DIR=/tmp/certs serve --socket /tmp/parfait.sock --threads 4
//! ```

use std::process::ExitCode;

use parfait_bench::{emit_manifest, metrics_path_from, threads_from};
use parfait_pipeline::{CertCache, ServeCore};
use parfait_telemetry::sinks::LogSink;
use parfait_telemetry::Telemetry;

fn usage() -> u8 {
    eprintln!("usage: serve [--threads <n>] [--socket <path>] [--metrics <path>] [--trace]");
    1
}

fn main() -> ExitCode {
    let mut threads_used = 1usize;
    let code = run(&mut threads_used);
    emit_manifest("serve", threads_used, i32::from(code));
    ExitCode::from(code)
}

fn run(threads_used: &mut usize) -> u8 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut socket: Option<String> = None;
    let mut trace = std::env::var_os("PARFAIT_TRACE").is_some();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => match it.next() {
                Some(p) => socket = Some(p.clone()),
                None => return usage(),
            },
            "--trace" => trace = true,
            "--threads" | "--metrics" => {
                // Validated below over the full args.
                if it.next().is_none() {
                    return usage();
                }
            }
            _ => return usage(),
        }
    }
    let threads = match threads_from(args.iter().cloned()) {
        Ok(Some(n)) => n,
        Ok(None) => parfait_parallel::default_threads(),
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    *threads_used = threads;
    if let Err(e) = metrics_path_from(args.iter().cloned()) {
        eprintln!("error: {e}");
        return usage();
    }
    let socket = socket.map(std::path::PathBuf::from).or_else(parfait_telemetry::env::socket_loud);
    let tel =
        if trace { Telemetry::new(Box::new(LogSink::stderr())) } else { Telemetry::disabled() };
    let heartbeat = parfait_telemetry::env::heartbeat_loud();
    let cache = CertCache::from_env();
    eprintln!(
        "serve: {} threads, cache {}, {}",
        threads,
        cache.dir().map_or("per-process memo only".into(), |d| d.display().to_string()),
        socket.as_ref().map_or("stdio session".into(), |p| format!("socket {}", p.display())),
    );
    let core = ServeCore::new(cache, tel.clone(), threads).with_heartbeat(heartbeat);
    let outcome = match &socket {
        Some(path) => parfait_pipeline::serve::server::serve_socket(&core, path),
        None => parfait_pipeline::serve::server::serve_stdio(&core).map(|_| ()),
    };
    tel.finish();
    match outcome {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("serve: transport failed: {e}");
            1
        }
    }
}
