//! `boundstat` — the certified-resource-bound ratchet driver.
//!
//! Runs the `bound` pipeline stage (whole-firmware WCET and stack
//! analysis, DESIGN.md §16) for every production verification cell —
//! each app at each of its opt levels on both platforms — and gates
//! the certified bounds against `bound_baseline.json`: bounds may only
//! *tighten* without `--update`, and `--update` refuses regressions
//! (see [`parfait_bench::bound_ratchet`]). The run is fully static —
//! no simulation — so the whole matrix certifies in seconds.
//!
//! ```sh
//! cargo run -p parfait-bench --release --bin boundstat -- --baseline bound_baseline.json
//! cargo run -p parfait-bench --release --bin boundstat -- --baseline bound_baseline.json --update
//! ```

use std::collections::BTreeMap;
use std::process::ExitCode;

use parfait_bench::bound_ratchet::{check, update, BoundBaseline, BoundRow};
use parfait_bench::{render_table, write_json, App};
use parfait_hsms::platform::Cpu;
use parfait_pipeline::{CertCache, Pipeline};
use parfait_telemetry::json::Json;
use parfait_telemetry::Telemetry;

fn usage() -> u8 {
    eprintln!("usage: boundstat --baseline <path> [--update] [--json <path>]");
    1
}

/// Certify every production cell, returning `"app/cpu/opt"` → bounds.
fn measure() -> Result<BTreeMap<String, BoundRow>, String> {
    let pipeline = Pipeline::new(CertCache::disabled(), Telemetry::disabled());
    let mut rows = BTreeMap::new();
    for app in [App::Hasher, App::Totp, App::Ecdsa] {
        let a = app.pipeline();
        for &opt in &a.opt_levels.clone() {
            for cpu in [Cpu::Ibex, Cpu::Pico] {
                let cell = format!("{}/{cpu}/{opt}", a.slug);
                let outcome =
                    pipeline.bound_stage(&a, cpu, opt).map_err(|e| format!("{cell}: {e}"))?;
                let stat = |name: &str| {
                    outcome
                        .certificate
                        .stat(name)
                        .filter(|&v| v >= 0)
                        .map(|v| v as u64)
                        .ok_or_else(|| format!("{cell}: certificate lacks stat {name}"))
                };
                let row = BoundRow {
                    wcet_cycles: stat("wcet_cycles")?,
                    stack_depth: stat("stack_depth")?,
                };
                rows.insert(cell, row);
            }
        }
    }
    Ok(rows)
}

fn main() -> ExitCode {
    ExitCode::from(run())
}

fn run() -> u8 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_path: Option<String> = None;
    let mut do_update = false;
    let mut json_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => match it.next() {
                Some(p) => baseline_path = Some(p.clone()),
                None => return usage(),
            },
            "--update" => do_update = true,
            "--json" => match it.next() {
                Some(p) => json_path = Some(p.clone()),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(baseline_path) = baseline_path else { return usage() };

    let measured = match measure() {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };

    let rows: Vec<Vec<String>> = measured
        .iter()
        .map(|(cell, r)| vec![cell.clone(), r.wcet_cycles.to_string(), r.stack_depth.to_string()])
        .collect();
    println!(
        "{}",
        render_table(
            "boundstat: certified resource bounds",
            &["Cell", "WCET (cycles)", "Stack (bytes)"],
            &rows
        )
    );

    if let Some(path) = &json_path {
        let doc = Json::obj([
            ("artifact", Json::str("boundstat")),
            ("bounds", BoundBaseline { rows: measured.clone() }.to_json()),
        ]);
        if let Err(e) = write_json(std::path::Path::new(path), &doc) {
            eprintln!("error: cannot write {path}: {e}");
            return 1;
        }
        eprintln!("wrote {path}");
    }

    let prev = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match parfait_telemetry::json::parse(&text)
            .map_err(|e| e.to_string())
            .and_then(|doc| BoundBaseline::from_json(&doc))
        {
            Ok(b) => Some(b),
            Err(e) => {
                eprintln!("error: {baseline_path}: {e}");
                return 1;
            }
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => {
            eprintln!("error: {baseline_path}: {e}");
            return 1;
        }
    };

    if do_update {
        match update(prev.as_ref(), &measured) {
            Ok(b) => {
                if let Err(e) = write_json(std::path::Path::new(&baseline_path), &b.to_json()) {
                    eprintln!("error: cannot write {baseline_path}: {e}");
                    return 1;
                }
                println!("bound baseline updated: {baseline_path}");
                0
            }
            Err(regressions) => {
                eprintln!(
                    "error: refusing to update {baseline_path}: {} bound(s) loosened:",
                    regressions.len()
                );
                for r in &regressions {
                    eprintln!("  {r}");
                }
                eprintln!("(tighten the bound, or delete the baseline to accept it explicitly)");
                1
            }
        }
    } else {
        let Some(prev) = prev else {
            eprintln!(
                "error: {baseline_path} does not exist; create it with `boundstat --baseline \
                 {baseline_path} --update`"
            );
            return 1;
        };
        let verdict = check(&prev, &measured);
        for note in &verdict.notes {
            eprintln!("note: {note}");
        }
        if !verdict.pass() {
            eprintln!("error: bound ratchet: {} violation(s):", verdict.violations.len());
            for v in &verdict.violations {
                eprintln!("  {v}");
            }
            return 1;
        }
        println!("bounds: ok ({} cells ratcheted)", prev.rows.len());
        0
    }
}
