//! `bench_pipeline` — cold-vs-warm proof pipeline timings.
//!
//! Verifies each (app × platform) cell twice against a private, fresh
//! `PARFAIT_CACHE_DIR`: once cold (every stage runs) and once warm
//! through a brand-new pipeline handle (every stage must be an on-disk
//! cache hit). Asserts the warm run is fully cached and that the
//! composed certificates are byte-identical, then reports the speedup.
//!
//! ```sh
//! cargo run -p parfait-bench --release --bin bench_pipeline -- --quick --json BENCH_pipeline.json
//! ```

use std::time::Instant;

use parfait_bench::{json_output_path, render_table, threads_arg, write_json, App};
use parfait_hsms::platform::Cpu;
use parfait_knox2::FpsObserver;
use parfait_littlec::codegen::OptLevel;
use parfait_pipeline::{CertCache, Pipeline};
use parfait_telemetry::json::Json;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let threads = threads_arg();
    let matrix: Vec<(App, Cpu)> = if quick {
        vec![(App::Hasher, Cpu::Ibex)]
    } else {
        [App::Ecdsa, App::Hasher]
            .into_iter()
            .flat_map(|app| [Cpu::Ibex, Cpu::Pico].into_iter().map(move |cpu| (app, cpu)))
            .collect()
    };
    // A private, guaranteed-cold cache directory: this benchmark's
    // whole point is the cold/warm contrast, so it must not inherit a
    // pre-warmed PARFAIT_CACHE_DIR.
    let cache_dir =
        std::env::temp_dir().join(format!("parfait-bench-pipeline-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let obs = FpsObserver::default();
    let opt = OptLevel::O2;

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for &(app, cpu) in &matrix {
        let a = app.pipeline();
        eprintln!("cold-verifying {app} on {cpu}...");
        let cold_pipeline = Pipeline::new(
            CertCache::at(cache_dir.clone()),
            parfait_telemetry::Telemetry::disabled(),
        );
        let t0 = Instant::now();
        let cold = cold_pipeline
            .verify_cell(&a, cpu, opt, &obs, threads)
            .expect("cold verification passes");
        let cold_wall = t0.elapsed();
        assert!(!cold.fully_cached(), "first run against a fresh cache must be cold");

        // A brand-new handle (empty memo) forces the warm run through
        // the on-disk cache, the cross-process path.
        let warm_pipeline = Pipeline::new(
            CertCache::at(cache_dir.clone()),
            parfait_telemetry::Telemetry::disabled(),
        );
        let t0 = Instant::now();
        let warm = warm_pipeline
            .verify_cell(&a, cpu, opt, &obs, threads)
            .expect("warm verification passes");
        let warm_wall = t0.elapsed();
        assert!(warm.fully_cached(), "second run must hit the cache in every stage");
        assert_eq!(
            warm.composed.canonical(),
            cold.composed.canonical(),
            "cached certificates must be byte-identical to fresh ones"
        );

        let speedup = cold_wall.as_secs_f64() / warm_wall.as_secs_f64().max(1e-9);
        rows.push(vec![
            app.to_string(),
            cpu.to_string(),
            format!("{}", cold.stages.len()),
            format!("{:.2}s", cold_wall.as_secs_f64()),
            format!("{:.4}s", warm_wall.as_secs_f64()),
            format!("{speedup:.0}x"),
        ]);
        json_rows.push(Json::obj([
            ("app", Json::str(app.to_string())),
            ("platform", Json::str(cpu.to_string())),
            ("stages", Json::Int(cold.stages.len() as i64)),
            ("cold_seconds", Json::Num(cold_wall.as_secs_f64())),
            ("warm_seconds", Json::Num(warm_wall.as_secs_f64())),
            ("speedup", Json::Num(speedup)),
            ("warm_fully_cached", Json::Bool(warm.fully_cached())),
            ("claim_from", Json::str(&cold.composed.claim.0)),
            ("claim_to", Json::str(&cold.composed.claim.1)),
        ]));
    }
    let _ = std::fs::remove_dir_all(&cache_dir);

    println!(
        "{}",
        render_table(
            "Proof pipeline: cold vs. warm verification (content-addressed cache)",
            &["App", "Platform", "Stages", "Cold", "Warm", "Speedup"],
            &rows
        )
    );
    println!("warm runs hit the on-disk certificate cache in every stage; certificates");
    println!("are byte-identical to the cold run's (asserted above).");
    if let Some(path) = json_output_path() {
        let doc = Json::obj([
            ("artifact", Json::str("bench_pipeline")),
            ("threads", Json::Int(threads as i64)),
            ("rows", Json::Arr(json_rows)),
        ]);
        write_json(&path, &doc).expect("write --json output");
        eprintln!("wrote {}", path.display());
    }
    // `--metrics <path>` writes the run manifest (bin, build id,
    // env knobs, metrics snapshot); absent flag is a no-op.
    parfait_bench::emit_manifest("bench_pipeline", threads, 0);
}
