//! `cachestat` — introspection for the on-disk certificate cache and
//! for metrics snapshots.
//!
//! Lists every `*.cert.json` entry under the cache directory
//! (`PARFAIT_CACHE_DIR`, or `--dir <path>`): stage kind, key prefix,
//! byte size, and age, with per-stage and grand totals. The listing is
//! read-only — unlike the verifiers, `cachestat` never creates or
//! probes the directory.
//!
//! `--check-metrics <path>` instead loads a metrics snapshot (bare, or
//! wrapped in a `RunManifest` as written by `--metrics`) and asserts it
//! parses and contains the expected metric families — the CI gate that
//! an instrumented run actually recorded what it claims to. The
//! `@stages` require token expands to per-stage coverage derived from
//! `StageKind::ALL`, so the gate tracks the pipeline's stage set
//! automatically; the `@nomiss` token asserts the snapshot recorded
//! **zero** stage cache misses (the warm-run gate for the serve
//! daemon: a warm replay must be all hits).
//!
//! ```sh
//! PARFAIT_CACHE_DIR=/tmp/certs cachestat
//! cachestat --dir /tmp/certs --json
//! cachestat --check-metrics /tmp/m.json --require pipeline_stage_,certcache_,@stages
//! cachestat --check-metrics /tmp/warm.json --require serve_,@nomiss
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::SystemTime;

use parfait_bench::render_table;
use parfait_telemetry::json::Json;

fn usage() -> u8 {
    eprintln!(
        "usage: cachestat [--dir <path>] [--json <path>] | \
         cachestat --check-metrics <path> [--require <prefix,prefix,...>]"
    );
    1
}

/// One on-disk cache entry, parsed from its file name and metadata.
struct Entry {
    stage: String,
    key_prefix: String,
    bytes: u64,
    age_secs: u64,
}

fn scan(dir: &PathBuf) -> Result<Vec<Entry>, String> {
    let mut entries = scan_flat(dir, "")?;
    // Tenant namespaces (serve daemon) are one level of
    // subdirectories under the cache root; label their entries
    // "tenant/stage".
    let listing =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for item in listing.flatten() {
        if item.file_type().map(|t| t.is_dir()).unwrap_or(false) {
            let tenant = item.file_name().to_string_lossy().into_owned();
            entries.extend(scan_flat(&item.path().to_path_buf(), &format!("{tenant}/"))?);
        }
    }
    entries.sort_by(|a, b| (&a.stage, &a.key_prefix).cmp(&(&b.stage, &b.key_prefix)));
    Ok(entries)
}

fn scan_flat(dir: &PathBuf, stage_prefix: &str) -> Result<Vec<Entry>, String> {
    let listing =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let now = SystemTime::now();
    let mut entries = Vec::new();
    for item in listing {
        let item = item.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let name = item.file_name().to_string_lossy().into_owned();
        let Some(key) = name.strip_suffix(".cert.json") else { continue };
        // Keys are "{stage}-{input-hash-hex}".
        let (stage, hash) = key.split_once('-').unwrap_or((key, ""));
        let meta = item.metadata().map_err(|e| format!("{name}: {e}"))?;
        let age_secs = meta
            .modified()
            .ok()
            .and_then(|m| now.duration_since(m).ok())
            .map_or(0, |d| d.as_secs());
        entries.push(Entry {
            stage: format!("{stage_prefix}{stage}"),
            key_prefix: hash.chars().take(12).collect(),
            bytes: meta.len(),
            age_secs,
        });
    }
    Ok(entries)
}

fn human_age(secs: u64) -> String {
    match secs {
        0..=119 => format!("{secs}s"),
        120..=7199 => format!("{}m", secs / 60),
        7200..=172_799 => format!("{}h", secs / 3600),
        _ => format!("{}d", secs / 86_400),
    }
}

/// Default metric families a `--check-metrics` snapshot must contain.
const DEFAULT_FAMILIES: &str = "pipeline_stage_,certcache_";

/// Expand the `@stages` require token: every pipeline stage in
/// [`parfait_pipeline::StageKind::ALL`] must have recorded at least one
/// `pipeline_stage_runs_total{stage=...}` sample. Deriving the list
/// from the pipeline's own stage enum means a newly added stage is
/// covered by the gate the moment it exists — no per-stage editing of
/// CI invocations.
fn check_stage_coverage(snap: &parfait_telemetry::metrics::MetricsSnapshot) -> Vec<String> {
    let mut missing = Vec::new();
    for kind in parfait_pipeline::StageKind::ALL {
        let seen = snap.counters.iter().any(|(k, _)| {
            k.name == "pipeline_stage_runs_total"
                && k.labels.iter().any(|(lk, lv)| lk == "stage" && lv == kind.as_str())
        });
        if seen {
            println!("ok: snapshot ran stage {kind}");
        } else {
            missing.push(format!("stage:{kind}"));
        }
    }
    missing
}

/// Expand the `@nomiss` require token: the snapshot must contain **no**
/// `pipeline_stage_runs_total{outcome="miss"}` samples with a nonzero
/// count. This is the warm-run gate for the serve daemon: replaying a
/// session against a populated cache must be hits all the way down.
fn check_no_misses(snap: &parfait_telemetry::metrics::MetricsSnapshot) -> Vec<String> {
    let misses: Vec<String> = snap
        .counters
        .iter()
        .filter(|(k, v)| {
            *v > 0
                && k.name == "pipeline_stage_runs_total"
                && k.labels.iter().any(|(lk, lv)| lk == "outcome" && lv == "miss")
        })
        .map(|(k, v)| {
            let stage =
                k.labels.iter().find(|(lk, _)| lk == "stage").map_or("?", |(_, lv)| lv.as_str());
            format!("@nomiss(stage {stage} recorded {v} miss(es))")
        })
        .collect();
    if misses.is_empty() {
        println!("ok: snapshot recorded zero stage cache misses");
    }
    misses
}

fn check_metrics(path: &str, require: &str) -> u8 {
    let snap = match parfait_telemetry::manifest::snapshot_from_file(std::path::Path::new(path)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let mut missing = Vec::new();
    for prefix in require.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        if prefix == "@stages" {
            missing.extend(check_stage_coverage(&snap));
        } else if prefix == "@nomiss" {
            missing.extend(check_no_misses(&snap));
        } else if snap.has_family(prefix) {
            println!("ok: snapshot has {prefix}* metrics");
        } else {
            missing.push(prefix.to_string());
        }
    }
    if missing.is_empty() {
        println!(
            "{path}: snapshot ok ({} counters, {} gauges, {} histograms)",
            snap.counters.len(),
            snap.gauges.len(),
            snap.hists.len()
        );
        0
    } else {
        eprintln!("error: {path}: missing metric families: {}", missing.join(", "));
        1
    }
}

fn main() -> ExitCode {
    ExitCode::from(run())
}

fn run() -> u8 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dir: Option<PathBuf> = None;
    let mut json = false;
    let mut check: Option<String> = None;
    let mut require = DEFAULT_FAMILIES.to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dir" => match it.next() {
                Some(p) => dir = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--json" => json = true,
            "--check-metrics" => match it.next() {
                Some(p) => check = Some(p.clone()),
                None => return usage(),
            },
            "--require" => match it.next() {
                Some(p) => require = p.clone(),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    if let Some(path) = check {
        return check_metrics(&path, &require);
    }
    // Listing mode. Resolve the directory without creating it: a
    // cachestat must never mutate the cache it reports on.
    let dir = match dir.or_else(parfait_telemetry::env::cache_dir_loud) {
        Some(d) => d,
        None => {
            eprintln!("error: no cache directory (set PARFAIT_CACHE_DIR or pass --dir)");
            return 1;
        }
    };
    let entries = match scan(&dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let total_bytes: u64 = entries.iter().map(|e| e.bytes).sum();
    if json {
        let doc = Json::obj([
            ("artifact", Json::str("cachestat")),
            ("dir", Json::str(dir.display().to_string())),
            ("entries", Json::Int(entries.len() as i64)),
            ("total_bytes", Json::Int(total_bytes as i64)),
            (
                "certs",
                Json::Arr(
                    entries
                        .iter()
                        .map(|e| {
                            Json::obj([
                                ("stage", Json::str(&e.stage)),
                                ("key_prefix", Json::str(&e.key_prefix)),
                                ("bytes", Json::Int(e.bytes as i64)),
                                ("age_secs", Json::Int(e.age_secs as i64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        println!("{doc}");
        return 0;
    }
    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|e| {
            vec![e.stage.clone(), e.key_prefix.clone(), e.bytes.to_string(), human_age(e.age_secs)]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!("certificate cache: {}", dir.display()),
            &["Stage", "Key", "Bytes", "Age"],
            &rows
        )
    );
    // Per-stage totals, in stage order of first appearance (entries
    // are sorted, so this groups correctly).
    let mut by_stage: Vec<(String, usize, u64)> = Vec::new();
    for e in &entries {
        match by_stage.last_mut() {
            Some((s, n, b)) if *s == e.stage => {
                *n += 1;
                *b += e.bytes;
            }
            _ => by_stage.push((e.stage.clone(), 1, e.bytes)),
        }
    }
    for (stage, n, bytes) in &by_stage {
        println!("  {stage}: {n} cert(s), {bytes} bytes");
    }
    println!("total: {} cert(s), {} bytes", entries.len(), total_bytes);
    0
}
