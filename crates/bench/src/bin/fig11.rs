//! Figure 11: synchronization points and actions, as realized during an
//! actual verified execution — for each instruction class retired while
//! `handle` ran, the sync action the fig. 11 policy performs.

use std::collections::BTreeMap;

use parfait_bench::{json_output_path, render_table, write_json, App};
use parfait_hsms::platform::Cpu;
use parfait_knox2::sync::{run_until_decode, snapshot_isa_machine};
use parfait_littlec::codegen::OptLevel;
use parfait_parallel::parallel_map;
use parfait_riscv::decode::decode;
use parfait_riscv::isa::Instr;
use parfait_rtl::Circuit;
use parfait_soc::host;
use parfait_telemetry::json::Json;

fn class_of(i: Instr) -> (&'static str, &'static str) {
    match i {
        Instr::Branch { .. } => ("branch (beq/bne/blt/...)", "sync registers + buffers"),
        Instr::Jal { .. } | Instr::Jalr { .. } => {
            ("call/return (jal/jalr)", "sync registers + buffers")
        }
        Instr::Load { .. } => ("load (lw/lbu/...)", "sync registers + buffers"),
        Instr::Store { .. } => ("store (sw/sb/...)", "sync registers + buffers"),
        Instr::Op { op, .. } if op.is_muldiv() => ("mul/div", "sync registers"),
        Instr::OpImm { .. } | Instr::Op { .. } | Instr::Lui { .. } | Instr::Auipc { .. } => {
            ("arithmetic", "no sync (checked at next point)")
        }
        _ => ("other", "no sync"),
    }
}

/// Walk one verified Hash command on `cpu`, classifying the
/// instructions `handle` retires.
fn profile(cpu: Cpu) -> BTreeMap<(&'static str, &'static str), u64> {
    // The pipeline's app description is the single source of firmware,
    // provisioned state, and workload encodings.
    let mut soc = App::Hasher.soc(cpu, OptLevel::O2);
    let cmd = App::Hasher.workload_command();
    host::send_bytes(&mut soc, &cmd, 10_000_000).unwrap();
    let handle_addr = soc.firmware().address_of("handle").unwrap();
    run_until_decode(&mut soc, handle_addr, 50_000_000).unwrap();
    // Walk handle's execution, classifying retired instructions.
    let isa = snapshot_isa_machine(&soc);
    let return_addr = isa.regs[1];
    let mut counts: BTreeMap<(&str, &str), u64> = BTreeMap::new();
    let mut done = false;
    while !done {
        soc.tick();
        if let Some((word, _pc)) = soc.core.last_retired() {
            if let Ok(i) = decode(word) {
                *counts.entry(class_of(i)).or_insert(0) += 1;
                if let Instr::Jalr { rs1, rd, off: 0 } = i {
                    // handle's final return: jalr zero, ra, 0 back to main.
                    if rd == parfait_riscv::isa::Reg::ZERO
                        && rs1 == parfait_riscv::isa::Reg::RA
                        && soc.core.pc() == return_addr
                    {
                        done = true;
                    }
                }
            }
        }
    }
    counts
}

fn main() {
    // Both platforms profile concurrently (each is an independent SoC
    // run); one thread each is plenty for this figure.
    let cpus = [Cpu::Ibex, Cpu::Pico];
    let profiles = parallel_map(cpus.len(), cpus.to_vec(), |_, cpu| (cpu, profile(cpu)));
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut json_rows: Vec<Json> = Vec::new();
    for (cpu, counts) in &profiles {
        for ((class, action), n) in counts {
            rows.push(vec![cpu.to_string(), class.to_string(), action.to_string(), n.to_string()]);
            json_rows.push(Json::obj([
                ("platform", Json::str(cpu.to_string())),
                ("class", Json::str(*class)),
                ("action", Json::str(*action)),
                ("retired", Json::Int(*n as i64)),
            ]));
        }
    }
    println!(
        "{}",
        render_table(
            "Figure 11 (realized): sync points during one verified Hash command",
            &["Platform", "Instruction class", "Knox2 action", "Retired"],
            &rows
        )
    );
    if let Some(path) = json_output_path() {
        let doc = Json::obj([("artifact", Json::str("fig11")), ("rows", Json::Arr(json_rows))]);
        write_json(&path, &doc).expect("write --json output");
        eprintln!("wrote {}", path.display());
    }
    // `--metrics <path>` writes the run manifest (bin, build id,
    // env knobs, metrics snapshot); absent flag is a no-op.
    parfait_bench::emit_manifest("fig11", 1, 0);
}
