//! Ablation: the cost/benefit of assembly-circuit synchronization
//! policies (§5.4's design choice). The paper's motivation: without
//! incremental synchronization, the final equivalence check is one huge
//! query; with it, many small ones.

use std::time::Instant;

use parfait::lockstep::Codec;
use parfait_bench::render_table;
use parfait_hsms::firmware::hasher_app_source;
use parfait_hsms::hasher::{
    HasherCodec, HasherCommand, HasherState, COMMAND_SIZE, RESPONSE_SIZE, STATE_SIZE,
};
use parfait_hsms::platform::{build_firmware, make_soc, AppSizes, Cpu};
use parfait_knox2::sync::{run_until_decode, sync_handle_execution, SyncPolicy, SyncWhen};
use parfait_littlec::codegen::OptLevel;
use parfait_soc::host;

fn run(policy: SyncWhen) -> (parfait_knox2::SyncStats, f64) {
    let sizes = AppSizes { state: STATE_SIZE, command: COMMAND_SIZE, response: RESPONSE_SIZE };
    let fw = build_firmware(&hasher_app_source(), sizes, OptLevel::O2).unwrap();
    let codec = HasherCodec;
    let mut soc = make_soc(Cpu::Ibex, fw, &codec.encode_state(&HasherState { secret: [9; 32] }));
    let cmd = codec.encode_command(&HasherCommand::Hash { message: [5; 32] });
    host::send_bytes(&mut soc, &cmd, 10_000_000).unwrap();
    let handle_addr = soc.firmware().address_of("handle").unwrap();
    run_until_decode(&mut soc, handle_addr, 50_000_000).unwrap();
    let t0 = Instant::now();
    let stats = sync_handle_execution(
        &mut soc,
        &SyncPolicy { registers: policy, max_instructions: 100_000_000 },
    )
    .expect("sync passes");
    (stats, t0.elapsed().as_secs_f64())
}

fn main() {
    let mut rows = Vec::new();
    for (label, policy) in [
        ("every instruction", SyncWhen::EveryInstruction),
        ("control+mem (fig. 11)", SyncWhen::ControlAndMem),
        ("end of execution only", SyncWhen::Never),
    ] {
        let (stats, secs) = run(policy);
        rows.push(vec![
            label.to_string(),
            stats.instructions.to_string(),
            stats.sync_points.to_string(),
            stats.component_checks.to_string(),
            format!("{secs:.3}s"),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Ablation: synchronization policy cost (one Hash command, Ibex)",
            &["Policy", "Instructions", "Sync points", "Component checks", "Wall time"],
            &rows
        )
    );
    println!("The fig. 11 policy checks at control/memory boundaries only — a");
    println!("fraction of the per-instruction cost, while still localizing any");
    println!("divergence to a small window (end-only gives no localization).");
    // `--metrics <path>` writes the run manifest (bin, build id,
    // env knobs, metrics snapshot); absent flag is a no-op.
    parfait_bench::emit_manifest("ablation", 1, 0);
}
