//! `verify` — the command-line verification driver, the analogue of
//! running the Knox2/Starling toolchain on an app×platform combination
//! (§8.1: "the only requirement is to run Knox2 on the new
//! software/hardware combination").
//!
//! ```sh
//! cargo run -p parfait-bench --release --bin verify -- --app hasher --platform ibex
//! cargo run -p parfait-bench --release --bin verify -- --app ecdsa  --platform pico --software-only
//! cargo run -p parfait-bench --release --bin verify -- --app totp   --platform both
//! ```

use std::process::ExitCode;
use std::time::Instant;

use parfait::lockstep::Codec;
use parfait::StateMachine;
use parfait_bench::{threads_from, write_json};
use parfait_hsms::platform::{build_firmware, make_soc, AppSizes, Cpu};
use parfait_hsms::{ecdsa, hasher, syssw, totp};
use parfait_knox2::{check_fps_parallel, CircuitEmulator, FpsConfig, FpsObserver, HostOp};
use parfait_littlec::codegen::OptLevel;
use parfait_littlec::validate::asm_machine;
use parfait_parallel::parallel_map;
use parfait_soc::Soc;
use parfait_starling::{verify_app_traced, StarlingConfig};
use parfait_telemetry::json::Json;
use parfait_telemetry::sinks::LogSink;
use parfait_telemetry::Telemetry;

type StarlingRunner =
    Box<dyn Fn(&Telemetry) -> Result<parfait_starling::StarlingReport, String> + Send + Sync>;

struct AppSpec {
    name: &'static str,
    source: String,
    sizes: AppSizes,
    /// Encoded secret initial state for the hardware check.
    secret_state: Vec<u8>,
    /// Encoded public default state for the emulator's dummy circuit.
    dummy_state: Vec<u8>,
    /// One representative expensive command.
    workload: Vec<u8>,
    /// Closure running the Starling software verification.
    run_starling: StarlingRunner,
}

fn app(name: &str) -> Option<AppSpec> {
    match name {
        "hasher" => {
            let codec = hasher::HasherCodec;
            Some(AppSpec {
                name: "password hasher",
                source: parfait_hsms::firmware::hasher_app_source(),
                sizes: AppSizes {
                    state: hasher::STATE_SIZE,
                    command: hasher::COMMAND_SIZE,
                    response: hasher::RESPONSE_SIZE,
                },
                secret_state: codec.encode_state(&hasher::HasherState { secret: [0x61; 32] }),
                dummy_state: codec.encode_state(&hasher::HasherSpec.init()),
                workload: codec
                    .encode_command(&hasher::HasherCommand::Hash { message: [0x11; 32] }),
                run_starling: Box::new(|tel| {
                    let config = StarlingConfig {
                        state_size: hasher::STATE_SIZE,
                        command_size: hasher::COMMAND_SIZE,
                        response_size: hasher::RESPONSE_SIZE,
                        ..StarlingConfig::default()
                    };
                    verify_app_traced(
                        &hasher::HasherCodec,
                        &hasher::HasherSpec,
                        &parfait_hsms::firmware::hasher_app_source(),
                        &config,
                        &[hasher::HasherSpec.init(), hasher::HasherState { secret: [7; 32] }],
                        &[
                            hasher::HasherCommand::Initialize { secret: [1; 32] },
                            hasher::HasherCommand::Hash { message: [2; 32] },
                        ],
                        &[hasher::HasherResponse::Initialized],
                        tel,
                    )
                    .map_err(|e| e.to_string())
                }),
            })
        }
        "totp" => {
            let codec = totp::TotpCodec;
            Some(AppSpec {
                name: "one-time password",
                source: totp::totp_app_source(),
                sizes: AppSizes {
                    state: totp::STATE_SIZE,
                    command: totp::COMMAND_SIZE,
                    response: totp::RESPONSE_SIZE,
                },
                secret_state: codec.encode_state(&totp::TotpState { seed: [0x29; 32] }),
                dummy_state: codec.encode_state(&totp::TotpSpec.init()),
                workload: codec.encode_command(&totp::TotpCommand::Code { counter: 42 }),
                run_starling: Box::new(|tel| {
                    let config = StarlingConfig {
                        state_size: totp::STATE_SIZE,
                        command_size: totp::COMMAND_SIZE,
                        response_size: totp::RESPONSE_SIZE,
                        ..StarlingConfig::default()
                    };
                    verify_app_traced(
                        &totp::TotpCodec,
                        &totp::TotpSpec,
                        &totp::totp_app_source(),
                        &config,
                        &[totp::TotpSpec.init(), totp::TotpState { seed: [7; 32] }],
                        &[
                            totp::TotpCommand::Initialize { seed: [1; 32] },
                            totp::TotpCommand::Code { counter: 5 },
                        ],
                        &[totp::TotpResponse::Initialized, totp::TotpResponse::Code(0)],
                        tel,
                    )
                    .map_err(|e| e.to_string())
                }),
            })
        }
        "ecdsa" => {
            let codec = ecdsa::EcdsaCodec;
            Some(AppSpec {
                name: "ECDSA signer",
                source: parfait_hsms::firmware::ecdsa_app_source(),
                sizes: AppSizes {
                    state: ecdsa::STATE_SIZE,
                    command: ecdsa::COMMAND_SIZE,
                    response: ecdsa::RESPONSE_SIZE,
                },
                secret_state: codec.encode_state(&ecdsa::EcdsaState {
                    prf_key: [0x13; 32],
                    prf_counter: 0,
                    sig_key: [0x57; 32],
                }),
                dummy_state: codec.encode_state(&ecdsa::EcdsaSpec.init()),
                workload: codec.encode_command(&ecdsa::EcdsaCommand::Sign { msg: [0x3C; 32] }),
                run_starling: Box::new(|tel| {
                    let config = StarlingConfig {
                        state_size: ecdsa::STATE_SIZE,
                        command_size: ecdsa::COMMAND_SIZE,
                        response_size: ecdsa::RESPONSE_SIZE,
                        adversarial_inputs: 3,
                        opt_levels: vec![OptLevel::O2],
                        ..StarlingConfig::default()
                    };
                    verify_app_traced(
                        &ecdsa::EcdsaCodec,
                        &ecdsa::EcdsaSpec,
                        &parfait_hsms::firmware::ecdsa_app_source(),
                        &config,
                        &[ecdsa::EcdsaState { prf_key: [7; 32], prf_counter: 0, sig_key: [9; 32] }],
                        &[ecdsa::EcdsaCommand::Initialize { prf_key: [1; 32], sig_key: [2; 32] }],
                        &[ecdsa::EcdsaResponse::Initialized],
                        tel,
                    )
                    .map_err(|e| e.to_string())
                }),
            })
        }
        _ => None,
    }
}

fn verify_hardware(
    a: &AppSpec,
    cpu: Cpu,
    obs: &FpsObserver,
    threads: usize,
) -> Result<parfait_knox2::FpsReport, String> {
    let fw = build_firmware(&a.source, a.sizes, OptLevel::O2).map_err(|e| e.to_string())?;
    let program = parfait_littlec::frontend(&a.source).map_err(|e| e.to_string())?;
    let spec =
        asm_machine(&program, OptLevel::O2, a.sizes.state, a.sizes.command, a.sizes.response)
            .map_err(|e| e.to_string())?;
    let mut real = make_soc(cpu, fw.clone(), &a.secret_state);
    let dummy_soc = make_soc(cpu, fw, &a.dummy_state);
    let mut emu = CircuitEmulator::new(dummy_soc, &spec, a.secret_state.clone(), a.sizes.command);
    let cfg = FpsConfig {
        command_size: a.sizes.command,
        response_size: a.sizes.response,
        timeout: 8_000_000_000,
        state_size: a.sizes.state,
    };
    let state_size = a.sizes.state;
    let project = move |soc: &Soc| syssw::active_state(&soc.fram_bytes(0, 256), state_size);
    let script =
        vec![HostOp::Command(a.workload.clone()), HostOp::Command(vec![0xEE; a.sizes.command])];
    check_fps_parallel(&mut real, &mut emu, &cfg, &project, &script, obs, threads)
        .map_err(|f| f.to_string())
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: verify --app <ecdsa|hasher|totp> --platform <ibex|pico|both> \
         [--software-only|--hardware-only] [--threads <n>] [--json <path>] [--trace]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut app_name = None;
    let mut platform = "ibex".to_string();
    let mut software = true;
    let mut hardware = true;
    let mut json_path: Option<String> = None;
    let mut trace = std::env::var_os("PARFAIT_TRACE").is_some();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--app" => app_name = it.next().cloned(),
            "--platform" => platform = it.next().cloned().unwrap_or_default(),
            "--software-only" => hardware = false,
            "--hardware-only" => software = false,
            "--json" => match it.next() {
                Some(p) => json_path = Some(p.clone()),
                None => return usage(),
            },
            "--trace" => trace = true,
            "--threads" => {
                // Validated below by threads_from over the full args.
                if it.next().is_none() {
                    return usage();
                }
            }
            _ => return usage(),
        }
    }
    let threads = match threads_from(args.iter().cloned()) {
        Ok(Some(n)) => n,
        Ok(None) => parfait_parallel::default_threads(),
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let Some(name) = app_name else { return usage() };
    let Some(a) = app(&name) else { return usage() };
    let cpus: Vec<Cpu> = match platform.as_str() {
        "ibex" => vec![Cpu::Ibex],
        "pico" => vec![Cpu::Pico],
        "both" => vec![Cpu::Ibex, Cpu::Pico],
        _ => return usage(),
    };
    // `--trace` (or PARFAIT_TRACE=1) streams spans, counters, and
    // periodic FPS heartbeats to stderr while the checks run.
    let tel =
        if trace { Telemetry::new(Box::new(LogSink::stderr())) } else { Telemetry::disabled() };
    // Heartbeat cadence in simulated cycles (PARFAIT_HEARTBEAT
    // overrides); the hasher check runs a few hundred thousand cycles,
    // the ECDSA checks tens of millions.
    let heartbeat_cycles =
        std::env::var("PARFAIT_HEARTBEAT").ok().and_then(|v| v.parse().ok()).unwrap_or(100_000);
    let obs = FpsObserver { telemetry: tel.clone(), heartbeat_cycles };
    let mut json_results: Vec<Json> = Vec::new();
    println!("verifying {} ...", a.name);
    if software {
        let t0 = Instant::now();
        match (a.run_starling)(&tel) {
            Ok(report) => {
                println!(
                    "  [starling] software OK in {:.1}s: {} lockstep cases, {} validation runs, {} IPR ops",
                    t0.elapsed().as_secs_f64(),
                    report.lockstep_cases,
                    report.validation_cases,
                    report.ipr_operations
                );
                json_results.push(Json::obj([
                    ("stage", Json::str("starling")),
                    ("seconds", Json::Num(t0.elapsed().as_secs_f64())),
                    ("lockstep_cases", Json::Int(report.lockstep_cases as i64)),
                    ("validation_cases", Json::Int(report.validation_cases as i64)),
                    ("ipr_operations", Json::Int(report.ipr_operations as i64)),
                ]));
            }
            Err(e) => {
                println!("  [starling] FAILED: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if hardware {
        // The matrix level of the parallel pipeline: independent
        // platform checks fan out across the thread budget, and each
        // check splits its share across FPS segment workers.
        let cases = cpus.len();
        let threads_per_case = (threads / cases).max(1);
        let a = &a;
        let obs = &obs;
        let outcomes = parallel_map(cases.min(threads), cpus, move |_, cpu| {
            let t0 = Instant::now();
            (cpu, verify_hardware(a, cpu, obs, threads_per_case), t0.elapsed())
        });
        for (cpu, outcome, wall) in outcomes {
            match outcome {
                Ok(report) => {
                    println!(
                        "  [knox2/{cpu}] hardware OK in {:.1}s ({:.1}s cpu, {} threads): {} cycles at {:.2}M cyc/s, {} spec queries",
                        wall.as_secs_f64(),
                        report.cpu.as_secs_f64(),
                        threads_per_case,
                        report.cycles,
                        report.cycles_per_second() / 1e6,
                        report.spec_queries
                    );
                    json_results.push(Json::obj([
                        ("stage", Json::str("knox2")),
                        ("platform", Json::str(cpu.to_string())),
                        ("seconds", Json::Num(wall.as_secs_f64())),
                        ("cpu_seconds", Json::Num(report.cpu.as_secs_f64())),
                        ("threads", Json::Int(threads_per_case as i64)),
                        ("cycles", Json::Int(report.cycles as i64)),
                        ("cycles_per_second", Json::Num(report.cycles_per_second())),
                        ("spec_queries", Json::Int(report.spec_queries as i64)),
                    ]));
                }
                Err(e) => {
                    println!("  [knox2/{cpu}] FAILED: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    tel.finish();
    if let Some(path) = json_path {
        let doc = Json::obj([("app", Json::str(a.name)), ("results", Json::Arr(json_results))]);
        let path = std::path::PathBuf::from(path);
        if let Err(e) = write_json(&path, &doc) {
            eprintln!("could not write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
    }
    println!("verification complete: the SoC refines the {} specification", a.name);
    ExitCode::SUCCESS
}
