//! `verify` — the command-line verification driver, the analogue of
//! running the Knox2/Starling toolchain on an app×platform combination
//! (§8.1: "the only requirement is to run Knox2 on the new
//! software/hardware combination").
//!
//! Runs the unified proof pipeline: `speccheck → lockstep →
//! equivalence → ctcheck → contract → fps`, composing the per-stage
//! certificates into one end-to-end IPR claim per platform (the
//! contract battery executes before FPS but its certificate is a
//! self-loop at the SoC level, so it composes after). With `PARFAIT_CACHE_DIR` set,
//! stages whose inputs are unchanged are near-instant cache hits, so
//! re-verifying an unchanged app costs milliseconds.
//!
//! When stderr is a terminal, a live matrix view shows one lane per
//! verification cell (current stage, cache fast-forwards, cycles/s fed
//! by FPS heartbeats). `--metrics <path>` writes a
//! [`parfait_telemetry::manifest::RunManifest`] — build id, env knobs,
//! thread count, exit status, and the full metrics snapshot.
//!
//! ```sh
//! cargo run -p parfait-bench --release --bin verify -- --app hasher --platform ibex
//! cargo run -p parfait-bench --release --bin verify -- --app ecdsa  --platform pico --software-only
//! cargo run -p parfait-bench --release --bin verify -- --app totp   --platform both --metrics m.json
//! ```

use std::process::ExitCode;

use parfait_bench::{emit_manifest, metrics_path_from, threads_from, write_json};
use parfait_hsms::platform::Cpu;
use parfait_knox2::FpsObserver;
use parfait_littlec::codegen::OptLevel;
use parfait_parallel::parallel_map;
use parfait_pipeline::{compose, Pipeline, StageCertificate, StageOutcome, StdApp};
use parfait_telemetry::json::Json;
use parfait_telemetry::progress::MatrixView;
use parfait_telemetry::sinks::{Fanout, LogSink};
use parfait_telemetry::{Recorder, Telemetry};

fn usage() -> u8 {
    eprintln!(
        "usage: verify --app <ecdsa|hasher|totp> --platform <ibex|pico|both> \
         [--software-only|--hardware-only] [--threads <n>] [--json <path>] \
         [--metrics <path>] [--trace]"
    );
    1
}

/// One stage outcome as a table/JSON row: name, stats, cache flag.
fn describe(outcome: &StageOutcome, platform: Option<Cpu>) -> (String, Json) {
    let cert = &outcome.certificate;
    let stats = cert.stats.iter().map(|(k, v)| format!("{k}={v}")).collect::<Vec<_>>().join(", ");
    let line = format!(
        "  [{}{}] OK in {:.2}s{}: {stats}",
        cert.stage,
        platform.map(|c| format!("/{c}")).unwrap_or_default(),
        outcome.wall.as_secs_f64(),
        if outcome.cache_hit { " [cached]" } else { "" },
    );
    let mut fields = vec![
        ("stage".to_string(), Json::str(cert.stage.as_str())),
        ("claim_from".to_string(), Json::str(&cert.claim.0)),
        ("claim_to".to_string(), Json::str(&cert.claim.1)),
        ("inputs".to_string(), Json::str(cert.inputs.to_string())),
        ("cached".to_string(), Json::Bool(outcome.cache_hit)),
        ("seconds".to_string(), Json::Num(outcome.wall.as_secs_f64())),
    ];
    if let Some(cpu) = platform {
        fields.insert(1, ("platform".to_string(), Json::str(cpu.to_string())));
    }
    fields.extend(cert.stats.iter().map(|(k, v)| (k.clone(), Json::Int(*v))));
    (line, Json::Obj(fields))
}

fn main() -> ExitCode {
    let mut threads_used = 1usize;
    let code = run(&mut threads_used);
    // The manifest records the exit status, so it is written for
    // failed verifications too (only when `--metrics` was given).
    emit_manifest("verify", threads_used, i32::from(code));
    ExitCode::from(code)
}

fn run(threads_used: &mut usize) -> u8 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut app_name = None;
    let mut platform = "ibex".to_string();
    let mut software = true;
    let mut hardware = true;
    let mut json_path: Option<String> = None;
    let mut trace = std::env::var_os("PARFAIT_TRACE").is_some();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--app" => app_name = it.next().cloned(),
            "--platform" => platform = it.next().cloned().unwrap_or_default(),
            "--software-only" => hardware = false,
            "--hardware-only" => software = false,
            "--json" => match it.next() {
                Some(p) => json_path = Some(p.clone()),
                None => return usage(),
            },
            "--trace" => trace = true,
            "--threads" | "--metrics" => {
                // Validated below (threads_from / metrics_path_from)
                // over the full args.
                if it.next().is_none() {
                    return usage();
                }
            }
            _ => return usage(),
        }
    }
    let threads = match threads_from(args.iter().cloned()) {
        Ok(Some(n)) => n,
        Ok(None) => parfait_parallel::default_threads(),
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    *threads_used = threads;
    if let Err(e) = metrics_path_from(args.iter().cloned()) {
        eprintln!("error: {e}");
        return usage();
    }
    let Some(name) = app_name else { return usage() };
    let Some(app) = StdApp::from_slug(&name) else { return usage() };
    let cpus: Vec<Cpu> = match platform.as_str() {
        "ibex" => vec![Cpu::Ibex],
        "pico" => vec![Cpu::Pico],
        "both" => vec![Cpu::Ibex, Cpu::Pico],
        _ => return usage(),
    };
    // The live matrix view, only when stderr is really a terminal (CI
    // logs and pipes never see ANSI control sequences).
    let view = MatrixView::stderr_if_tty();
    // `--trace` (or PARFAIT_TRACE=1) streams spans, counters, and
    // periodic FPS heartbeats to stderr while the checks run. The view
    // taps the same event stream for its cycles/s lanes.
    let mut sinks: Vec<Box<dyn Recorder>> = Vec::new();
    if trace {
        sinks.push(Box::new(LogSink::stderr()));
    }
    if let Some(v) = &view {
        sinks.push(Box::new(v.sink()));
    }
    let tel = match sinks.len() {
        0 => Telemetry::disabled(),
        1 => Telemetry::new(sinks.pop().expect("len checked")),
        _ => Telemetry::new(Box::new(Fanout::new(sinks))),
    };
    // Heartbeat cadence in simulated cycles (PARFAIT_HEARTBEAT
    // overrides; 0 disables; garbage is a loud error). The hasher check
    // runs a few hundred thousand cycles, the ECDSA checks tens of
    // millions.
    let heartbeat_cycles = parfait_telemetry::env::heartbeat_loud();
    let opt = OptLevel::O2;
    let pipeline = Pipeline::from_env(tel.clone());
    let a = app.pipeline();

    // Lane ids double as the `cell` value FPS heartbeats carry, and as
    // the `cell` label on the `fps_cycles_per_second` gauge — so the
    // display and the metrics snapshot agree by construction. Without a
    // view the ids are still allocated, keeping the gauge labels
    // distinct per platform.
    let mut next_cell = 0u64;
    let mut lane = |label: &str| match &view {
        Some(v) => v.add_lane(label),
        None => {
            let c = next_cell;
            next_cell += 1;
            c
        }
    };
    let sw_cell = if software { Some(lane(&format!("{}/starling/{opt}", a.name))) } else { None };
    let hw_cells: Vec<(Cpu, u64)> = if hardware {
        cpus.iter().map(|&cpu| (cpu, lane(&format!("{}/{cpu}/{opt}", a.name)))).collect()
    } else {
        Vec::new()
    };
    let finish = |code: u8| {
        tel.finish();
        if let Some(v) = &view {
            v.finish();
        }
        code
    };

    let mut json_results: Vec<Json> = Vec::new();
    let mut hits = 0usize;
    let mut total = 0usize;
    println!(
        "verifying {} ... (cache: {})",
        a.name,
        pipeline.cache.dir().map_or("per-process memo".into(), |d| d.display().to_string())
    );
    let mut software_certs: Vec<StageCertificate> = Vec::new();
    if software {
        let cell = sw_cell.expect("allocated above");
        if let Some(v) = &view {
            v.set_stage(cell, "speccheck", false);
        }
        match pipeline.software_stages(&a, opt) {
            Ok(stages) => {
                for s in &stages {
                    if let Some(v) = &view {
                        v.set_stage(cell, s.certificate.stage.as_str(), s.cache_hit);
                    }
                    let (line, json) = describe(s, None);
                    println!("{line}");
                    json_results.push(json);
                    hits += s.cache_hit as usize;
                    total += 1;
                }
                software_certs = stages.into_iter().map(|s| s.certificate).collect();
                if let Some(v) = &view {
                    v.finish_lane(cell, true);
                }
            }
            Err(e) => {
                if let Some(v) = &view {
                    v.finish_lane(cell, false);
                }
                println!("  [starling] FAILED: {e}");
                return finish(1);
            }
        }
    }
    if hardware {
        // The matrix level of the parallel pipeline: independent
        // platform checks fan out across the thread budget, and each
        // check splits its share across FPS segment workers.
        let cases = hw_cells.len();
        let threads_per_case = (threads / cases).max(1);
        let (a, pipeline, tel, view) = (&a, &pipeline, &tel, &view);
        let outcomes = parallel_map(cases.min(threads), hw_cells, move |_, (cpu, cell)| {
            // Execution order mirrors `verify_cell`: the cheap contract
            // battery holds the core to its declared leakage contract,
            // then the static bound analysis certifies the resource
            // envelope (and prices the FPS budget), before the
            // expensive FPS check spins up.
            if let Some(v) = view {
                v.set_stage(cell, "contract", false);
            }
            let outcome = pipeline.contract_stage(a, cpu).and_then(|contract| {
                if let Some(v) = view {
                    v.set_stage(cell, "bound", false);
                }
                let bound = pipeline.bound_stage(a, cpu, opt)?;
                if let Some(v) = view {
                    v.set_stage(cell, "fps", false);
                }
                let obs = FpsObserver { telemetry: tel.clone(), heartbeat_cycles, cell };
                pipeline
                    .fps_stage_bounded(a, cpu, opt, &obs, threads_per_case, &bound)
                    .map(|fps| (contract, bound, fps))
            });
            (cpu, cell, outcome)
        });
        for (cpu, cell, outcome) in outcomes {
            match outcome {
                Ok((contract, bound, s)) => {
                    if let Some(v) = view {
                        v.set_stage(cell, "fps", s.cache_hit);
                        v.finish_lane(cell, true);
                    }
                    for o in [&contract, &bound, &s] {
                        let (line, json) = describe(o, Some(cpu));
                        println!("{line}");
                        json_results.push(json);
                        hits += o.cache_hit as usize;
                        total += 1;
                    }
                    if software {
                        // Chain the cell's seven certificates into the
                        // end-to-end claim (the transitivity theorem);
                        // the bound cert is a self-loop at the asm
                        // level and the contract cert a self-loop at
                        // the SoC level, so they compose around FPS.
                        let mut certs = software_certs.clone();
                        certs.push(bound.certificate);
                        certs.push(s.certificate);
                        certs.push(contract.certificate);
                        match compose(&certs) {
                            Ok(c) => {
                                println!(
                                    "  [composed/{cpu}] {} ≈IPR {} ({} stages, inputs {})",
                                    c.claim.0,
                                    c.claim.1,
                                    c.stages.len(),
                                    c.inputs.short()
                                );
                                json_results.push(Json::obj([
                                    ("stage", Json::str("composed")),
                                    ("platform", Json::str(cpu.to_string())),
                                    ("claim_from", Json::str(&c.claim.0)),
                                    ("claim_to", Json::str(&c.claim.1)),
                                    ("inputs", Json::str(c.inputs.to_string())),
                                    ("stages", Json::Int(c.stages.len() as i64)),
                                ]));
                            }
                            Err(e) => {
                                println!("  [composed/{cpu}] FAILED: {e}");
                                return finish(1);
                            }
                        }
                    }
                }
                Err(e) => {
                    if let Some(v) = view {
                        v.finish_lane(cell, false);
                    }
                    println!("  [knox2/{cpu}] FAILED: {e}");
                    return finish(1);
                }
            }
        }
    }
    if let Some(path) = json_path {
        let doc = Json::obj([
            ("app", Json::str(&a.name)),
            ("cache_hits", Json::Int(hits as i64)),
            ("stages", Json::Int(total as i64)),
            ("results", Json::Arr(json_results)),
        ]);
        let path = std::path::PathBuf::from(path);
        if let Err(e) = write_json(&path, &doc) {
            eprintln!("could not write {}: {e}", path.display());
            return finish(1);
        }
        eprintln!("wrote {}", path.display());
    }
    println!(
        "verification complete: the SoC refines the {} specification ({hits}/{total} stages cached)",
        a.name
    );
    finish(0)
}
