//! Table 2: lines of code for the case studies, counted from the
//! repository's actual sources.

use parfait_bench::{loc, render_table, App};

/// Lines the app developer writes for the spec (state machine + step).
fn spec_loc(app: App) -> usize {
    // Count the spec region of the source file: types + StateMachine
    // impl, excluding the codec and tests.
    let src = match app {
        App::Ecdsa => include_str!("../../../hsms/src/ecdsa/spec.rs"),
        App::Hasher => include_str!("../../../hsms/src/hasher/spec.rs"),
        App::Totp => include_str!("../../../hsms/src/totp/spec.rs"),
    };
    let spec_part = src.split("/// Byte-level encodings").next().unwrap_or(src);
    loc(spec_part)
}

/// Lines of the driver (codec + wire protocol), shared per app.
fn driver_loc(app: App) -> usize {
    let src = match app {
        App::Ecdsa => include_str!("../../../hsms/src/ecdsa/spec.rs"),
        App::Hasher => include_str!("../../../hsms/src/hasher/spec.rs"),
        App::Totp => include_str!("../../../hsms/src/totp/spec.rs"),
    };
    let codec_part = src
        .split("/// Byte-level encodings")
        .nth(1)
        .and_then(|s| s.split("#[cfg(test)]").next())
        .unwrap_or("");
    let wire = include_str!("../../../knox2/src/driver.rs");
    loc(codec_part) + loc(wire)
}

/// Software: the littlec application + generated system software.
fn software_loc(app: App) -> usize {
    let sizes = app.sizes();
    let syssw = parfait_hsms::syssw::syssw_source(sizes.state, sizes.command, sizes.response);
    loc(&app.source()) + loc(&syssw)
}

/// Hardware: the platform's RTL (core model + SoC + peripherals).
fn hardware_loc(cpu: &str) -> usize {
    let core = match cpu {
        "Ibex" => loc(include_str!("../../../cores/src/ibex.rs")),
        _ => loc(include_str!("../../../cores/src/pico.rs")),
    };
    let shared = loc(include_str!("../../../cores/src/datapath.rs"))
        + loc(include_str!("../../../soc/src/lib.rs"))
        + loc(include_str!("../../../rtl/src/mem.rs"))
        + loc(include_str!("../../../rtl/src/fifo.rs"))
        + loc(include_str!("../../../rtl/src/circuit.rs"));
    core + shared
}

fn main() {
    let mut rows = Vec::new();
    for app in [App::Ecdsa, App::Hasher, App::Totp] {
        for cpu in ["Ibex", "PicoRV32"] {
            rows.push(vec![
                app.to_string(),
                spec_loc(app).to_string(),
                driver_loc(app).to_string(),
                cpu.to_string(),
                software_loc(app).to_string(),
                hardware_loc(cpu).to_string(),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            "Table 2: lines of code for case studies (counted from this repository)",
            &["HSM", "Spec (LoC)", "Driver (LoC)", "Platform", "Software (LoC)", "Hardware (LoC)"],
            &rows
        )
    );
    println!("Paper shape: spec is tens of lines; implementations are 1-2 orders larger.");
    println!("Paper values: ECDSA 40/100 spec/driver, 2300 SW, 13500 HW (Ibex), 3000 HW (Pico).");
    // `--metrics <path>` writes the run manifest (bin, build id,
    // env knobs, metrics snapshot); absent flag is a no-op.
    parfait_bench::emit_manifest("table2", 1, 0);
}
