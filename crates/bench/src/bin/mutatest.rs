//! `mutatest` — the cross-level mutation-testing driver.
//!
//! Runs the `parfait-adversary` catalog (DESIGN.md §12): seeded faults
//! at every implementation level, each driven through the full
//! seven-stage pipeline, recording which stage kills it. Exits nonzero
//! on any survivor, on any kill that moved to a different stage than
//! the ratcheted baseline records, or on a catalog class the baseline
//! has never seen.
//!
//! ```sh
//! cargo run -p parfait-bench --release --bin mutatest -- --baseline mutation_baseline.json
//! cargo run -p parfait-bench --release --bin mutatest -- --quick --json mutants.json
//! cargo run -p parfait-bench --release --bin mutatest -- --level crypto --level soc
//! cargo run -p parfait-bench --release --bin mutatest -- --baseline mutation_baseline.json --update
//! ```

use std::process::ExitCode;

use parfait_adversary::{catalog, controls, diff, reports_to_json, run_catalog, Baseline, Level};
use parfait_bench::{emit_manifest, write_json};
use parfait_pipeline::{CertCache, Pipeline};
use parfait_telemetry::Telemetry;

fn usage() -> u8 {
    eprintln!(
        "usage: mutatest [--quick] [--level <crypto|codegen|isa|core|soc|emulator>]... \
         [--baseline <path>] [--update] [--threads N] [--json <path>] [--metrics <path>]"
    );
    1
}

fn main() -> ExitCode {
    let mut threads_used = 1usize;
    let code = run(&mut threads_used);
    // Manifest (only with `--metrics`) records the exit status, so
    // failed runs leave an artifact too.
    emit_manifest("mutatest", threads_used, i32::from(code));
    ExitCode::from(code)
}

fn run(threads_used: &mut usize) -> u8 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut update = false;
    let mut levels: Vec<Level> = Vec::new();
    let mut baseline_path: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut threads = parfait_parallel::default_threads();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--update" => update = true,
            "--level" => match it.next().and_then(|s| Level::from_name(s)) {
                Some(l) => levels.push(l),
                None => return usage(),
            },
            "--baseline" => match it.next() {
                Some(p) => baseline_path = Some(p.clone()),
                None => return usage(),
            },
            "--json" => match it.next() {
                Some(p) => json_path = Some(p.clone()),
                None => return usage(),
            },
            "--threads" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => threads = n,
                _ => return usage(),
            },
            "--metrics" => {
                // Validated below by metrics_path_from over the full args.
                if it.next().is_none() {
                    return usage();
                }
            }
            _ => return usage(),
        }
    }
    *threads_used = threads;
    if let Err(e) = parfait_bench::metrics_path_from(args.iter().cloned()) {
        eprintln!("error: {e}");
        return usage();
    }
    if update && baseline_path.is_none() {
        eprintln!("error: --update needs --baseline <path>");
        return usage();
    }

    // Select the run set: the full catalog plus clean controls, or the
    // deterministic one-per-level `--quick` sample (no controls —
    // quick mode is the CI smoke gate), optionally filtered by level.
    let mut muts = catalog();
    let sampled = quick || !levels.is_empty();
    if quick {
        muts.retain(|m| m.quick);
    }
    if !levels.is_empty() {
        muts.retain(|m| levels.contains(&m.level));
    }
    if !sampled {
        muts.extend(controls());
    }
    if muts.is_empty() {
        eprintln!("error: no mutations selected");
        return 1;
    }

    let pipeline = Pipeline::new(CertCache::from_env(), Telemetry::default());
    let reports = run_catalog(&pipeline, &muts, threads);

    // Controls are *expected* to survive; everything else must die.
    let is_control = |class: &str| class.starts_with("clean-");
    let bad_survivors: Vec<&str> = reports
        .iter()
        .filter(|r| r.killed_by.is_none() && !is_control(&r.class))
        .map(|r| r.class.as_str())
        .collect();
    let killed_controls: Vec<&str> = reports
        .iter()
        .filter(|r| r.killed_by.is_some() && is_control(&r.class))
        .map(|r| r.class.as_str())
        .collect();
    println!(
        "mutatest: {} mutant(s), {} thread(s){}",
        reports.len(),
        threads,
        if quick { " [quick]" } else { "" }
    );
    for r in &reports {
        println!(
            "  {:<28} {:<9} {:<20} {:>6} ms  {}",
            r.class,
            r.level.as_str(),
            r.verdict(),
            r.wall.as_millis(),
            r.detail.lines().next().unwrap_or("")
        );
    }
    println!("\n{}", parfait_adversary::Matrix::tally(&reports).render());

    if let Some(path) = &json_path {
        if let Err(e) = write_json(std::path::Path::new(path), &reports_to_json(&reports, threads))
        {
            eprintln!("error: {e}");
            return 1;
        }
        println!("wrote {path}");
    }

    match (&baseline_path, update) {
        (Some(path), true) => {
            if sampled {
                eprintln!("error: refusing to --update from a sampled run (drop --quick/--level)");
                return 1;
            }
            if !bad_survivors.is_empty() || !killed_controls.is_empty() {
                eprintln!(
                    "error: refusing to ratchet: surviving mutants [{}], killed controls [{}]",
                    bad_survivors.join(", "),
                    killed_controls.join(", ")
                );
                return 1;
            }
            let b = Baseline::from_reports(&reports);
            if let Err(e) = b.store(std::path::Path::new(path)) {
                eprintln!("error: {e}");
                return 1;
            }
            println!("baseline updated: {path} ({} classes)", b.expected.len());
            0
        }
        (Some(path), false) => {
            let baseline = match Baseline::load(std::path::Path::new(path)) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 1;
                }
            };
            let d = diff(&baseline, &reports);
            if !d.unexercised.is_empty() {
                if sampled {
                    println!(
                        "note: {} baseline class(es) not exercised by this sampled run",
                        d.unexercised.len()
                    );
                } else {
                    for class in &d.unexercised {
                        println!(
                            "note: baseline class {class} is no longer in the catalog — \
                             ratchet it out with --update"
                        );
                    }
                }
            }
            if d.violations.is_empty() {
                println!("baseline clean: every exercised class killed by its recorded stage");
                0
            } else {
                for v in &d.violations {
                    eprintln!("error: {v}");
                }
                eprintln!("{} baseline violation(s)", d.violations.len());
                1
            }
        }
        (None, _) => {
            if !bad_survivors.is_empty() {
                eprintln!(
                    "error: {} surviving mutant(s): {}",
                    bad_survivors.len(),
                    bad_survivors.join(", ")
                );
                return 1;
            }
            if !killed_controls.is_empty() {
                eprintln!("error: clean control(s) failed: {}", killed_controls.join(", "));
                return 1;
            }
            println!("all mutants killed; all controls survived");
            0
        }
    }
}
