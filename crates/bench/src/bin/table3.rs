//! Table 3: software (Starling) verification effort — proof size and
//! machine-verification runtime for both apps, produced by the unified
//! proof pipeline (speccheck → lockstep → equivalence). With
//! `PARFAIT_CACHE_DIR` set, a re-run is a cache hit and the table says
//! so.

use std::time::Instant;

use parfait_bench::{json_output_path, loc, render_table, write_json, App};
use parfait_littlec::codegen::OptLevel;
use parfait_pipeline::{Pipeline, StageOutcome};
use parfait_telemetry::json::Json;

/// "Proof LoC": the codec (the lockstep proof's encode/decode artifacts)
/// the app developer writes.
fn proof_loc(src: &str) -> usize {
    let codec = src
        .split("/// Byte-level encodings")
        .nth(1)
        .and_then(|s| s.split("#[cfg(test)]").next())
        .unwrap_or("");
    loc(codec)
}

fn stat(stages: &[StageOutcome], key: &str) -> i64 {
    stages
        .iter()
        .flat_map(|s| s.certificate.stats.iter())
        .find(|(k, _)| k == key)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

fn main() {
    let pipeline = Pipeline::from_env(parfait_telemetry::Telemetry::disabled());
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();

    let specs = [
        (
            App::Ecdsa,
            proof_loc(include_str!("../../../hsms/src/ecdsa/spec.rs")),
            "- (co-developed)",
        ),
        (
            App::Hasher,
            proof_loc(include_str!("../../../hsms/src/hasher/spec.rs")),
            "Δ small (reuses the framework)",
        ),
    ];
    for (app, proof, dev_time) in specs {
        let p = app.pipeline();
        let t0 = Instant::now();
        let stages = pipeline.software_stages(&p, OptLevel::O2).expect("software stages verify");
        let wall = t0.elapsed();
        let cached = stages.iter().all(|s| s.cache_hit);
        let obligations = stat(&stages, "lockstep_cases")
            + stat(&stages, "validation_cases")
            + stat(&stages, "ipr_operations");
        json_rows.push(Json::obj([
            ("app", Json::str(app.to_string())),
            ("proof_loc", Json::Int(proof as i64)),
            ("verify_seconds", Json::Num(wall.as_secs_f64())),
            ("cached", Json::Bool(cached)),
            ("lockstep_cases", Json::Int(stat(&stages, "lockstep_cases"))),
            ("validation_cases", Json::Int(stat(&stages, "validation_cases"))),
            ("ipr_operations", Json::Int(stat(&stages, "ipr_operations"))),
        ]));
        rows.push(vec![
            app.to_string(),
            format!("{proof} LoC"),
            dev_time.into(),
            format!(
                "{:.1}s ({} obligations){}",
                wall.as_secs_f64(),
                obligations,
                if cached { " [cached]" } else { "" }
            ),
        ]);
    }

    println!(
        "{}",
        render_table(
            "Table 3: software verification effort (Starling)",
            &["App", "Proof", "Dev time", "Machine verification"],
            &rows
        )
    );
    println!("Paper shape: proof is hundreds of lines; machine verification runs in");
    println!("under a minute (paper: ECDSA 500 LoC, hasher 200 LoC / Δ2 hours).");
    if let Some(path) = json_output_path() {
        let doc = Json::obj([("artifact", Json::str("table3")), ("rows", Json::Arr(json_rows))]);
        write_json(&path, &doc).expect("write --json output");
        eprintln!("wrote {}", path.display());
    }
    // `--metrics <path>` writes the run manifest (bin, build id,
    // env knobs, metrics snapshot); absent flag is a no-op.
    parfait_bench::emit_manifest("table3", 1, 0);
}
