//! Table 3: software (Starling) verification effort — proof size and
//! machine-verification runtime for both apps.

use std::time::Instant;

use parfait_bench::{json_output_path, loc, render_table, write_json};
use parfait_hsms::ecdsa::{EcdsaCodec, EcdsaCommand, EcdsaResponse, EcdsaSpec, EcdsaState};
use parfait_hsms::firmware::{ecdsa_app_source, hasher_app_source};
use parfait_hsms::hasher::{HasherCodec, HasherCommand, HasherResponse, HasherSpec, HasherState};
use parfait_hsms::{ecdsa, hasher};
use parfait_littlec::codegen::OptLevel;
use parfait_starling::{verify_app, StarlingConfig};
use parfait_telemetry::json::Json;

fn json_row(app: &str, proof: usize, secs: f64, r: &parfait_starling::StarlingReport) -> Json {
    Json::obj([
        ("app", Json::str(app)),
        ("proof_loc", Json::Int(proof as i64)),
        ("verify_seconds", Json::Num(secs)),
        ("lockstep_cases", Json::Int(r.lockstep_cases as i64)),
        ("validation_cases", Json::Int(r.validation_cases as i64)),
        ("ipr_operations", Json::Int(r.ipr_operations as i64)),
    ])
}

/// "Proof LoC": the codec (the lockstep proof's encode/decode artifacts)
/// the app developer writes.
fn proof_loc(src: &str) -> usize {
    let codec = src
        .split("/// Byte-level encodings")
        .nth(1)
        .and_then(|s| s.split("#[cfg(test)]").next())
        .unwrap_or("");
    loc(codec)
}

fn main() {
    let mut rows = Vec::new();

    // ECDSA signer (co-developed with the framework, like the paper).
    let t0 = Instant::now();
    let config = StarlingConfig {
        state_size: ecdsa::STATE_SIZE,
        command_size: ecdsa::COMMAND_SIZE,
        response_size: ecdsa::RESPONSE_SIZE,
        adversarial_inputs: 3,
        opt_levels: vec![OptLevel::O2],
        ..StarlingConfig::default()
    };
    let report = verify_app(
        &EcdsaCodec,
        &EcdsaSpec,
        &ecdsa_app_source(),
        &config,
        &[EcdsaState { prf_key: [7; 32], prf_counter: 1, sig_key: [9; 32] }],
        &[
            EcdsaCommand::Initialize { prf_key: [1; 32], sig_key: [2; 32] },
            EcdsaCommand::Sign { msg: [3; 32] },
        ],
        &[EcdsaResponse::Initialized, EcdsaResponse::Signature(None)],
    )
    .expect("ECDSA verifies");
    let ecdsa_time = t0.elapsed();
    let ecdsa_proof = proof_loc(include_str!("../../../hsms/src/ecdsa/spec.rs"));
    let mut json_rows =
        vec![json_row("ECDSA signer", ecdsa_proof, ecdsa_time.as_secs_f64(), &report)];
    rows.push(vec![
        "ECDSA signer".into(),
        format!("{ecdsa_proof} LoC"),
        "- (co-developed)".into(),
        format!(
            "{:.1}s ({} obligations)",
            ecdsa_time.as_secs_f64(),
            report.lockstep_cases + report.validation_cases + report.ipr_operations
        ),
    ]);

    // Password hasher (the Δ2-hours second app of the paper).
    let t0 = Instant::now();
    let config = StarlingConfig {
        state_size: hasher::STATE_SIZE,
        command_size: hasher::COMMAND_SIZE,
        response_size: hasher::RESPONSE_SIZE,
        adversarial_inputs: 12,
        ..StarlingConfig::default()
    };
    let report = verify_app(
        &HasherCodec,
        &HasherSpec,
        &hasher_app_source(),
        &config,
        &[hasher_spec_init(), HasherState { secret: [0xAB; 32] }],
        &[HasherCommand::Initialize { secret: [1; 32] }, HasherCommand::Hash { message: [2; 32] }],
        &[HasherResponse::Initialized, HasherResponse::Hashed([9; 32])],
    )
    .expect("hasher verifies");
    let hasher_time = t0.elapsed();
    let hasher_proof = proof_loc(include_str!("../../../hsms/src/hasher/spec.rs"));
    json_rows.push(json_row("Password hasher", hasher_proof, hasher_time.as_secs_f64(), &report));
    rows.push(vec![
        "Password hasher".into(),
        format!("{hasher_proof} LoC"),
        "Δ small (reuses the framework)".into(),
        format!(
            "{:.1}s ({} obligations)",
            hasher_time.as_secs_f64(),
            report.lockstep_cases + report.validation_cases + report.ipr_operations
        ),
    ]);

    println!(
        "{}",
        render_table(
            "Table 3: software verification effort (Starling)",
            &["App", "Proof", "Dev time", "Machine verification"],
            &rows
        )
    );
    println!("Paper shape: proof is hundreds of lines; machine verification runs in");
    println!("under a minute (paper: ECDSA 500 LoC, hasher 200 LoC / Δ2 hours).");
    if let Some(path) = json_output_path() {
        let doc = Json::obj([("artifact", Json::str("table3")), ("rows", Json::Arr(json_rows))]);
        write_json(&path, &doc).expect("write --json output");
        eprintln!("wrote {}", path.display());
    }
}

fn hasher_spec_init() -> HasherState {
    use parfait::StateMachine;
    HasherSpec.init()
}
