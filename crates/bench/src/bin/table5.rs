//! Table 5: run-time performance of the ECDSA HSM in signatures per
//! second, comparing compiler optimization levels (the paper compares
//! CompCert -O1 against GCC -O2) and quoting the commercial HSMs.
//!
//! The Ibex runs at 100 MHz (the OpenTitan reference clock), so
//! sig/s = 100e6 / cycles-per-signature.

use parfait::lockstep::Codec;
use parfait_bench::{render_table, App};
use parfait_hsms::ecdsa::{EcdsaCodec, EcdsaCommand};
use parfait_hsms::platform::{make_soc, Cpu};
use parfait_knox2::WireDriver;
use parfait_littlec::codegen::OptLevel;
use parfait_rtl::Circuit;

const CLOCK_HZ: f64 = 100e6;

fn cycles_per_sign(opt: OptLevel) -> u64 {
    let app = App::Ecdsa;
    let sizes = app.sizes();
    let fw = app.firmware(opt);
    let mut soc = make_soc(Cpu::Ibex, fw, &app.secret_state());
    let wire = WireDriver {
        command_size: sizes.command,
        response_size: sizes.response,
        timeout: 20_000_000_000,
    };
    let cmd = EcdsaCodec.encode_command(&EcdsaCommand::Sign { msg: [0x3C; 32] });
    let before = soc.cycles();
    let resp = wire.run(&mut soc, &cmd).expect("sign completes");
    assert_eq!(resp[0], 2, "a real signature came back");
    soc.cycles() - before
}

fn main() {
    let mut rows = Vec::new();
    let mut baseline = None;
    for (label, opt) in [
        ("littlec -O0 (verified-compiler stand-in)", OptLevel::O0),
        ("littlec -O1", OptLevel::O1),
        ("littlec -O2 (GCC -O2 stand-in)", OptLevel::O2),
    ] {
        eprintln!("measuring {label}...");
        let cycles = cycles_per_sign(opt);
        let sig_s = CLOCK_HZ / cycles as f64;
        let base = *baseline.get_or_insert(sig_s);
        rows.push(vec![
            format!("Parfait ECDSA/Ibex, {label}"),
            format!("{sig_s:.2}"),
            format!("{:.1}x", sig_s / base),
            format!("{cycles} cycles/sig"),
        ]);
    }
    // Commercial HSM rows quoted from the paper (we have no hardware).
    rows.push(vec![
        "Nitrokey HSM 2 (quoted from the paper)".into(),
        "12.5".into(),
        format!("{:.1}x", 12.5 / baseline.unwrap()),
        "-".into(),
    ]);
    rows.push(vec![
        "YubiHSM 2 (quoted from the paper)".into(),
        "13.7".into(),
        format!("{:.1}x", 13.7 / baseline.unwrap()),
        "-".into(),
    ]);
    println!(
        "{}",
        render_table(
            "Table 5: ECDSA signing throughput at a 100 MHz clock",
            &["HSM / compiler", "Sig/s", "Speedup", "Detail"],
            &rows
        )
    );
    println!("Paper shape: the unoptimized verified-compiler build is several times");
    println!("slower than the optimized build (paper: 1.1 vs 8.1 sig/s, 7x), and");
    println!("commercial HSMs are within roughly an order of magnitude.");
    // `--metrics <path>` writes the run manifest (bin, build id,
    // env knobs, metrics snapshot); absent flag is a no-op.
    parfait_bench::emit_manifest("table5", 1, 0);
}
