//! Table 4: hardware (Knox2) verification effort — wall-clock time and
//! symbolic-circuit-simulation speed for each platform × app, run
//! through the proof pipeline's FPS stage (so with `PARFAIT_CACHE_DIR`
//! set, already-verified cells are near-instant cache hits).
//!
//! The platform × app matrix fans out across the thread budget
//! (`--threads <n>`, or `PARFAIT_THREADS`, default: available
//! parallelism), and each case's FPS check runs with its share of the
//! budget via the snapshot-fork parallel checker.
//!
//! `--quick` verifies only the password hasher (the ECDSA runs take
//! minutes, like the paper's 80-100 core-hour runs took hours).

use std::time::Instant;

use parfait_bench::{json_output_path, loc, render_table, threads_arg, write_json, App};
use parfait_hsms::platform::Cpu;
use parfait_knox2::FpsObserver;
use parfait_littlec::codegen::OptLevel;
use parfait_parallel::parallel_map;
use parfait_pipeline::Pipeline;
use parfait_telemetry::json::Json;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let threads = threads_arg();
    // Platform proof sizes: emulator + checker code the platform
    // developer maintains, and the 10-line state mapping.
    let emulator_loc = loc(include_str!("../../../knox2/src/emulator.rs"));
    let proof_loc = loc(include_str!("../../../knox2/src/fps.rs"));
    let mapping_loc = 10; // fig. 10: register/pointer/next-instr mapping

    let apps: &[App] = if quick { &[App::Hasher] } else { &[App::Ecdsa, App::Hasher] };
    let matrix: Vec<(Cpu, App)> = [Cpu::Ibex, Cpu::Pico]
        .into_iter()
        .flat_map(|cpu| apps.iter().map(move |&app| (cpu, app)))
        .collect();
    let cases = matrix.len();
    let threads_per_case = (threads / cases).max(1);
    let pipeline = Pipeline::from_env(parfait_telemetry::Telemetry::disabled());
    let pipeline = &pipeline;
    let obs = FpsObserver::default();
    let obs = &obs;
    let outcomes = parallel_map(cases.min(threads), matrix, move |_, (cpu, app)| {
        let t0 = Instant::now();
        let outcome = pipeline
            .fps_stage(&app.pipeline(), cpu, OptLevel::O2, obs, threads_per_case)
            .expect("verification passes");
        (cpu, app, outcome, t0.elapsed())
    });

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for (cpu, app, outcome, wall) in outcomes {
        let stat = |key: &str| {
            outcome.certificate.stats.iter().find(|(k, _)| k == key).map(|(_, v)| *v).unwrap_or(0)
        };
        let rate = outcome.fps.as_ref().map(|r| r.cycles_per_second());
        json_rows.push(Json::obj([
            ("platform", Json::str(cpu.to_string())),
            ("app", Json::str(app.to_string())),
            ("verify_seconds", Json::Num(wall.as_secs_f64())),
            ("cached", Json::Bool(outcome.cache_hit)),
            (
                "cpu_seconds",
                outcome.fps.as_ref().map_or(Json::Null, |r| Json::Num(r.cpu.as_secs_f64())),
            ),
            ("cycles", Json::Int(stat("cycles"))),
            ("cycles_per_second", rate.map_or(Json::Null, Json::Num)),
            ("commands", Json::Int(stat("commands"))),
            ("spec_queries", Json::Int(stat("spec_queries"))),
        ]));
        rows.push(vec![
            cpu.to_string(),
            emulator_loc.to_string(),
            proof_loc.to_string(),
            mapping_loc.to_string(),
            app.to_string(),
            if outcome.cache_hit {
                format!("{:.2}s [cached]", wall.as_secs_f64())
            } else {
                format!("{:.1}s", wall.as_secs_f64())
            },
            format!("{} cycles", stat("cycles")),
            rate.map_or("cached".into(), |r| format!("{:.2}M cyc/s", r / 1e6)),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Table 4: hardware verification (Knox2 functional-physical simulation)",
            &[
                "Platform",
                "Emulator LoC",
                "Checker LoC",
                "Mapping LoC",
                "App",
                "Verif. time",
                "Cycles",
                "Sim speed"
            ],
            &rows
        )
    );
    println!(
        "({} case(s) across {} thread(s), {} FPS thread(s) per case)",
        cases, threads, threads_per_case
    );
    println!("Paper shape to check: ECDSA >> hasher verification time; the PicoRV32");
    println!("needs more total cycles (multi-cycle core) while simulating each cycle");
    println!("faster than the pipelined Ibex; porting = only the 10-line mapping.");
    if let Some(path) = json_output_path() {
        let doc = Json::obj([
            ("artifact", Json::str("table4")),
            ("threads", Json::Int(threads as i64)),
            ("emulator_loc", Json::Int(emulator_loc as i64)),
            ("checker_loc", Json::Int(proof_loc as i64)),
            ("mapping_loc", Json::Int(mapping_loc as i64)),
            ("rows", Json::Arr(json_rows)),
        ]);
        write_json(&path, &doc).expect("write --json output");
        eprintln!("wrote {}", path.display());
    }
    // `--metrics <path>` writes the run manifest (bin, build id,
    // env knobs, metrics snapshot); absent flag is a no-op.
    parfait_bench::emit_manifest("table4", threads, 0);
}
