//! Table 4: hardware (Knox2) verification effort — wall-clock time and
//! symbolic-circuit-simulation speed for each platform × app.
//!
//! `--quick` verifies only the password hasher (the ECDSA runs take
//! minutes, like the paper's 80-100 core-hour runs took hours).

use std::time::Instant;

use parfait_bench::{json_output_path, loc, render_table, write_json, App};
use parfait_hsms::platform::{make_soc, Cpu};
use parfait_hsms::syssw;
use parfait_knox2::{check_fps, CircuitEmulator, FpsConfig, HostOp};
use parfait_littlec::codegen::OptLevel;
use parfait_littlec::validate::asm_machine;
use parfait_soc::Soc;
use parfait_telemetry::json::Json;

fn verify(app: App, cpu: Cpu) -> parfait_knox2::FpsReport {
    let sizes = app.sizes();
    let fw = app.firmware(OptLevel::O2);
    let program = parfait_littlec::frontend(&app.source()).unwrap();
    let spec =
        asm_machine(&program, OptLevel::O2, sizes.state, sizes.command, sizes.response).unwrap();
    let secret = app.secret_state();
    let mut real = make_soc(cpu, fw.clone(), &secret);
    let dummy = vec![0u8; sizes.state];
    let dummy_soc = make_soc(cpu, fw, &dummy);
    let mut emu = CircuitEmulator::new(dummy_soc, &spec, secret, sizes.command);
    let cfg = FpsConfig {
        command_size: sizes.command,
        response_size: sizes.response,
        timeout: 8_000_000_000,
        state_size: sizes.state,
    };
    let state_size = sizes.state;
    let project =
        move |soc: &Soc| syssw::active_state(&soc.fram_bytes(0, 256), state_size);
    let script = vec![
        HostOp::Command(app.workload_command()),
        HostOp::Command(vec![0xEE; sizes.command]),
    ];
    check_fps(&mut real, &mut emu, &cfg, &project, &script).expect("verification passes")
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Platform proof sizes: emulator + checker code the platform
    // developer maintains, and the 10-line state mapping.
    let emulator_loc = loc(include_str!("../../../knox2/src/emulator.rs"));
    let proof_loc = loc(include_str!("../../../knox2/src/fps.rs"));
    let mapping_loc = 10; // fig. 10: register/pointer/next-instr mapping

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for cpu in [Cpu::Ibex, Cpu::Pico] {
        let apps: &[App] =
            if quick { &[App::Hasher] } else { &[App::Ecdsa, App::Hasher] };
        for &app in apps {
            let t0 = Instant::now();
            let report = verify(app, cpu);
            let wall = t0.elapsed();
            json_rows.push(Json::obj([
                ("platform", Json::str(cpu.to_string())),
                ("app", Json::str(app.to_string())),
                ("verify_seconds", Json::Num(wall.as_secs_f64())),
                ("cycles", Json::Int(report.cycles as i64)),
                ("cycles_per_second", Json::Num(report.cycles_per_second())),
                ("commands", Json::Int(report.commands as i64)),
                ("spec_queries", Json::Int(report.spec_queries as i64)),
            ]));
            rows.push(vec![
                cpu.to_string(),
                emulator_loc.to_string(),
                proof_loc.to_string(),
                mapping_loc.to_string(),
                app.to_string(),
                format!("{:.1}s", wall.as_secs_f64()),
                format!("{} cycles", report.cycles),
                format!("{:.2}M cyc/s", report.cycles_per_second() / 1e6),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            "Table 4: hardware verification (Knox2 functional-physical simulation)",
            &[
                "Platform",
                "Emulator LoC",
                "Checker LoC",
                "Mapping LoC",
                "App",
                "Verif. time",
                "Cycles",
                "Sim speed"
            ],
            &rows
        )
    );
    println!("Paper shape to check: ECDSA >> hasher verification time; the PicoRV32");
    println!("needs more total cycles (multi-cycle core) while simulating each cycle");
    println!("faster than the pipelined Ibex; porting = only the 10-line mapping.");
    if let Some(path) = json_output_path() {
        let doc = Json::obj([
            ("artifact", Json::str("table4")),
            ("emulator_loc", Json::Int(emulator_loc as i64)),
            ("checker_loc", Json::Int(proof_loc as i64)),
            ("mapping_loc", Json::Int(mapping_loc as i64)),
            ("rows", Json::Arr(json_rows)),
        ]);
        write_json(&path, &doc).expect("write --json output");
        eprintln!("wrote {}", path.display());
    }
}
