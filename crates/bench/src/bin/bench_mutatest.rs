//! `bench_mutatest` — time-to-detection for the adversary catalog.
//!
//! Runs every mutation in the `parfait-adversary` catalog (DESIGN.md
//! §12) through the seven-stage pipeline and measures the wall time from
//! "mutant built" to "stage rejects it" — the latency a developer pays
//! for each class of seeded bug. Aggregates per killing stage: faults
//! caught by the software stages die in milliseconds, faults that only
//! the wire-level FPS check can see cost the cycles it takes the
//! simulated SoC to reach the corrupted response.
//!
//! ```sh
//! cargo run -p parfait-bench --release --bin bench_mutatest -- --threads 8 --json BENCH_mutatest.json
//! ```

use std::collections::BTreeMap;

use parfait_adversary::{catalog, reports_to_json, run_catalog, Matrix};
use parfait_bench::{json_output_path, render_table, write_json};
use parfait_pipeline::{CertCache, Pipeline, StageKind};
use parfait_telemetry::json::Json;
use parfait_telemetry::Telemetry;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut threads = parfait_parallel::default_threads();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threads" {
            match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => threads = n,
                _ => {
                    eprintln!("usage: bench_mutatest [--quick] [--threads N] [--json <path>]");
                    std::process::exit(2);
                }
            }
        }
    }

    let mut muts = catalog();
    if quick {
        muts.retain(|m| m.quick);
    }
    // A cold cache per run: the benchmark measures detection latency,
    // not cache hits (mutants are content-addressed, so a warm repo
    // cache would short-circuit the very work being measured).
    let pipeline = Pipeline::new(CertCache::disabled(), Telemetry::disabled());
    eprintln!("running {} mutant(s) on {threads} thread(s)...", muts.len());
    let reports = run_catalog(&pipeline, &muts, threads);

    let survivors: Vec<&str> =
        reports.iter().filter(|r| r.killed_by.is_none()).map(|r| r.class.as_str()).collect();
    assert!(survivors.is_empty(), "surviving mutants: {}", survivors.join(", "));

    let mut rows = Vec::new();
    for r in &reports {
        rows.push(vec![
            r.class.clone(),
            r.level.as_str().to_string(),
            r.verdict(),
            format!("{:.3}s", r.wall.as_secs_f64()),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Adversary catalog: time from mutant build to stage rejection",
            &["Class", "Level", "Verdict", "Wall"],
            &rows
        )
    );

    // Per-stage aggregates: how fast does each stage kill what it owns?
    let mut by_stage: BTreeMap<&'static str, Vec<f64>> = BTreeMap::new();
    for r in &reports {
        if let Some(stage) = r.killed_by {
            by_stage.entry(stage.as_str()).or_default().push(r.wall.as_secs_f64());
        }
    }
    let mut stage_rows = Vec::new();
    let mut stage_json = Vec::new();
    for kind in StageKind::ALL {
        let Some(walls) = by_stage.get(kind.as_str()) else { continue };
        let min = walls.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = walls.iter().cloned().fold(0.0f64, f64::max);
        let mean = walls.iter().sum::<f64>() / walls.len() as f64;
        stage_rows.push(vec![
            kind.as_str().to_string(),
            walls.len().to_string(),
            format!("{min:.3}s"),
            format!("{mean:.3}s"),
            format!("{max:.3}s"),
        ]);
        stage_json.push((
            kind.as_str().to_string(),
            Json::obj([
                ("kills", Json::Int(walls.len() as i64)),
                ("min_s", Json::Num(min)),
                ("mean_s", Json::Num(mean)),
                ("max_s", Json::Num(max)),
            ]),
        ));
    }
    println!(
        "{}",
        render_table(
            "Detection latency by killing stage",
            &["Stage", "Kills", "Min", "Mean", "Max"],
            &stage_rows
        )
    );
    println!("{}", Matrix::tally(&reports).render());

    if let Some(path) = json_output_path() {
        let doc = Json::obj([
            ("artifact", Json::str("bench_mutatest")),
            ("run", reports_to_json(&reports, threads)),
            ("by_stage", Json::Obj(stage_json)),
        ]);
        write_json(&path, &doc).expect("write --json output");
        eprintln!("wrote {}", path.display());
    }
    // `--metrics <path>` writes the run manifest (bin, build id,
    // env knobs, metrics snapshot); absent flag is a no-op.
    parfait_bench::emit_manifest("bench_mutatest", threads, 0);
}
