//! `servestat` — summarize and gate a `parfait-serve` session
//! transcript.
//!
//! Reads a JSONL reply stream (the daemon's stdout, captured to a
//! file), tallies the frames, and renders a per-request table: id,
//! tenant, cell, outcome, and whether every stage was a cache hit. With
//! expectation flags it becomes a CI gate — the serve gate in
//! `scripts/ci.sh` replays a recorded session twice and asserts the
//! cold run produced results and the warm run was all hits:
//!
//! ```sh
//! servestat replies.jsonl
//! servestat cold.jsonl --expect-results 4 --expect-errors 0
//! servestat warm.jsonl --expect-results 4 --expect-all-cached --expect-bye
//! ```
//!
//! Exit status is 0 only when the transcript parses and every given
//! expectation holds.

use std::process::ExitCode;

use parfait_bench::render_table;
use parfait_telemetry::json::{parse, Json};

fn usage() -> u8 {
    eprintln!(
        "usage: servestat <transcript.jsonl> [--json <path>] [--expect-results <n>] \
         [--expect-errors <n>] [--expect-all-cached] [--expect-bye]"
    );
    1
}

/// One `result` frame, reduced to its table row.
struct ResultRow {
    id: String,
    tenant: String,
    cell: String,
    cached: bool,
    stages: usize,
    stage_hits: usize,
}

/// Frame tallies across one transcript.
#[derive(Default)]
struct Tally {
    results: Vec<ResultRow>,
    errors: Vec<(String, String)>,
    status: usize,
    pong: usize,
    metrics: usize,
    bye: usize,
}

fn field(v: &Json, key: &str) -> String {
    v.get(key).and_then(Json::as_str).unwrap_or("?").to_string()
}

fn tally(text: &str) -> Result<Tally, String> {
    let mut t = Tally::default();
    for (n, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse(line).map_err(|e| format!("line {}: {e}", n + 1))?;
        match v.get("frame").and_then(Json::as_str) {
            Some("status") => t.status += 1,
            Some("pong") => t.pong += 1,
            Some("metrics") => t.metrics += 1,
            Some("bye") => t.bye += 1,
            Some("error") => {
                let id =
                    v.get("id").and_then(Json::as_str).unwrap_or("(unrecoverable)").to_string();
                t.errors.push((id, field(&v, "error")));
            }
            Some("result") => {
                let stages = v.get("stages").and_then(Json::as_array).unwrap_or(&[]);
                t.results.push(ResultRow {
                    id: field(&v, "id"),
                    tenant: field(&v, "tenant"),
                    cell: format!("{}/{}/{}", field(&v, "app"), field(&v, "cpu"), field(&v, "opt")),
                    cached: matches!(v.get("cached"), Some(Json::Bool(true))),
                    stages: stages.len(),
                    stage_hits: stages
                        .iter()
                        .filter(|s| matches!(s.get("cache_hit"), Some(Json::Bool(true))))
                        .count(),
                });
            }
            Some(other) => return Err(format!("line {}: unknown frame {other:?}", n + 1)),
            None => return Err(format!("line {}: not a frame (no \"frame\" member)", n + 1)),
        }
    }
    Ok(t)
}

fn main() -> ExitCode {
    ExitCode::from(run())
}

fn run() -> u8 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut expect_results: Option<usize> = None;
    let mut expect_errors: Option<usize> = None;
    let mut expect_all_cached = false;
    let mut expect_bye = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => match it.next() {
                Some(p) => json_path = Some(p.clone()),
                None => return usage(),
            },
            "--expect-results" | "--expect-errors" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    return usage();
                };
                if a == "--expect-results" {
                    expect_results = Some(n);
                } else {
                    expect_errors = Some(n);
                }
            }
            "--expect-all-cached" => expect_all_cached = true,
            "--expect-bye" => expect_bye = true,
            other if !other.starts_with('-') && path.is_none() => path = Some(other.to_string()),
            _ => return usage(),
        }
    }
    let Some(path) = path else { return usage() };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return 1;
        }
    };
    let t = match tally(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return 1;
        }
    };

    let rows: Vec<Vec<String>> = t
        .results
        .iter()
        .map(|r| {
            vec![
                r.id.clone(),
                r.tenant.clone(),
                r.cell.clone(),
                if r.cached { "all-hits".into() } else { format!("{}/{}", r.stage_hits, r.stages) },
            ]
        })
        .collect();
    if !rows.is_empty() {
        println!(
            "{}",
            render_table(
                &format!("serve session: {path}"),
                &["Id", "Tenant", "Cell", "Cached"],
                &rows
            )
        );
    }
    for (id, e) in &t.errors {
        println!("  error[{id}]: {e}");
    }
    println!(
        "frames: {} result(s), {} error(s), {} status, {} pong, {} metrics, {} bye",
        t.results.len(),
        t.errors.len(),
        t.status,
        t.pong,
        t.metrics,
        t.bye
    );

    if let Some(jp) = json_path {
        let doc = Json::obj([
            ("artifact", Json::str("servestat")),
            ("transcript", Json::str(&path)),
            ("results", Json::Int(t.results.len() as i64)),
            ("errors", Json::Int(t.errors.len() as i64)),
            ("all_cached", Json::Bool(!t.results.is_empty() && t.results.iter().all(|r| r.cached))),
            ("bye", Json::Int(t.bye as i64)),
        ]);
        let jp = std::path::PathBuf::from(jp);
        if let Err(e) = parfait_bench::write_json(&jp, &doc) {
            eprintln!("could not write {}: {e}", jp.display());
            return 1;
        }
        eprintln!("wrote {}", jp.display());
    }

    // The gate: every stated expectation must hold.
    let mut failed = Vec::new();
    if let Some(n) = expect_results {
        if t.results.len() != n {
            failed.push(format!("expected {n} result frame(s), saw {}", t.results.len()));
        }
    }
    if let Some(n) = expect_errors {
        if t.errors.len() != n {
            failed.push(format!("expected {n} error frame(s), saw {}", t.errors.len()));
        }
    }
    if expect_all_cached {
        for r in t.results.iter().filter(|r| !r.cached) {
            failed.push(format!(
                "expected all-cached, but {} ({}) hit only {}/{} stages",
                r.id, r.cell, r.stage_hits, r.stages
            ));
        }
        if t.results.is_empty() {
            failed.push("expected all-cached, but saw no result frames".into());
        }
    }
    if expect_bye && t.bye == 0 {
        failed.push("expected a bye frame (graceful shutdown), saw none".into());
    }
    if failed.is_empty() {
        println!("{path}: ok");
        0
    } else {
        for f in &failed {
            eprintln!("error: {path}: {f}");
        }
        1
    }
}
