//! The certified-resource-bound ratchet (`boundstat`).
//!
//! The `bound` pipeline stage certifies, per `app × cpu × opt` cell, a
//! worst-case execution time and a worst-case stack depth
//! (DESIGN.md §16). Both are deterministic functions of the linked
//! firmware and the core's leakage contract, which makes them perfect
//! ratchet material: `bound_baseline.json` records the certified
//! bounds, and CI fails if any cell's bound *grows* — a WCET or frame
//! regression must be acknowledged by deleting the baseline in the
//! same change, never silently absorbed. Tighter bounds pass with a
//! note asking for the baseline to be ratcheted forward, exactly like
//! the perf gate in [`crate::perf`].
//!
//! `boundstat --update` rewrites the baseline but refuses regressions,
//! mirroring `perfstat --update`.

use std::collections::BTreeMap;
use std::fmt;

use parfait_telemetry::json::Json;

/// The two ratcheted bounds for one `app/cpu/opt` cell. Lower is
/// better for both.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BoundRow {
    /// Certified worst-case cycles for one command round-trip.
    pub wcet_cycles: u64,
    /// Certified worst-case stack depth in bytes.
    pub stack_depth: u64,
}

/// The recorded baseline (`bound_baseline.json`): cell key
/// (`"app/cpu/opt"`) → certified bounds.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BoundBaseline {
    pub rows: BTreeMap<String, BoundRow>,
}

/// A single gate violation, printable as the CI failure line.
#[derive(Debug, PartialEq, Eq)]
pub enum BoundViolation {
    /// A certified bound grew past its recorded value.
    Loosened { cell: String, metric: &'static str, baseline: u64, measured: u64 },
    /// A baselined cell was not measured (firmware or matrix shrank).
    Missing { cell: String },
}

impl fmt::Display for BoundViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundViolation::Loosened { cell, metric, baseline, measured } => write!(
                f,
                "{cell}: certified {metric} loosened {baseline} -> {measured} \
                 (bounds may only tighten; delete the baseline to accept)"
            ),
            BoundViolation::Missing { cell } => {
                write!(f, "{cell}: baselined cell was not measured (verification matrix shrank?)")
            }
        }
    }
}

/// The gate verdict: hard failures plus informational notes.
#[derive(Debug, Default)]
pub struct BoundVerdict {
    pub violations: Vec<BoundViolation>,
    pub notes: Vec<String>,
}

impl BoundVerdict {
    pub fn pass(&self) -> bool {
        self.violations.is_empty()
    }
}

fn loosened(cell: &str, base: &BoundRow, got: &BoundRow) -> Vec<BoundViolation> {
    let mut v = Vec::new();
    for (metric, b, m) in [
        ("wcet_cycles", base.wcet_cycles, got.wcet_cycles),
        ("stack_depth", base.stack_depth, got.stack_depth),
    ] {
        if m > b {
            v.push(BoundViolation::Loosened {
                cell: cell.to_string(),
                metric,
                baseline: b,
                measured: m,
            });
        }
    }
    v
}

/// Compare measured bounds against the baseline.
pub fn check(baseline: &BoundBaseline, measured: &BTreeMap<String, BoundRow>) -> BoundVerdict {
    let mut v = BoundVerdict::default();
    for (cell, base) in &baseline.rows {
        match measured.get(cell) {
            None => v.violations.push(BoundViolation::Missing { cell: cell.clone() }),
            Some(got) => {
                let l = loosened(cell, base, got);
                if l.is_empty() && got != base {
                    v.notes.push(format!(
                        "{cell}: bounds tightened (wcet {} -> {}, stack {} -> {}); \
                         ratchet with `boundstat --update`",
                        base.wcet_cycles, got.wcet_cycles, base.stack_depth, got.stack_depth
                    ));
                }
                v.violations.extend(l);
            }
        }
    }
    for cell in measured.keys() {
        if !baseline.rows.contains_key(cell) {
            v.notes.push(format!("{cell}: not in baseline yet (add with `boundstat --update`)"));
        }
    }
    v
}

/// Build the new baseline from measured bounds, refusing regressions
/// against `prev` (if any): the updater never launders a loosened
/// bound into the record.
pub fn update(
    prev: Option<&BoundBaseline>,
    measured: &BTreeMap<String, BoundRow>,
) -> Result<BoundBaseline, Vec<BoundViolation>> {
    if let Some(prev) = prev {
        let regressions: Vec<BoundViolation> = prev
            .rows
            .iter()
            .filter_map(|(cell, base)| {
                let got = measured.get(cell)?;
                let l = loosened(cell, base, got);
                (!l.is_empty()).then_some(l)
            })
            .flatten()
            .collect();
        if !regressions.is_empty() {
            return Err(regressions);
        }
    }
    Ok(BoundBaseline { rows: measured.clone() })
}

impl BoundBaseline {
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Int(1)),
            (
                "cells",
                Json::Obj(
                    self.rows
                        .iter()
                        .map(|(cell, r)| {
                            (
                                cell.clone(),
                                Json::obj([
                                    ("wcet_cycles", Json::Int(r.wcet_cycles as i64)),
                                    ("stack_depth", Json::Int(r.stack_depth as i64)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }

    pub fn from_json(doc: &Json) -> Result<BoundBaseline, String> {
        let cells = doc
            .get("cells")
            .and_then(|c| match c {
                Json::Obj(fields) => Some(fields),
                _ => None,
            })
            .ok_or("missing cells object")?;
        let mut out = BoundBaseline::default();
        for (cell, entry) in cells {
            let field = |name: &str| {
                entry
                    .get(name)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("cell {cell}: missing {name}"))
            };
            out.rows.insert(
                cell.clone(),
                BoundRow { wcet_cycles: field("wcet_cycles")?, stack_depth: field("stack_depth")? },
            );
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(pairs: &[(&str, u64, u64)]) -> BTreeMap<String, BoundRow> {
        pairs
            .iter()
            .map(|&(c, w, s)| (c.to_string(), BoundRow { wcet_cycles: w, stack_depth: s }))
            .collect()
    }

    fn baseline(pairs: &[(&str, u64, u64)]) -> BoundBaseline {
        BoundBaseline { rows: rows(pairs) }
    }

    #[test]
    fn equal_bounds_pass_quietly() {
        let b = baseline(&[("hasher/Ibex/-O2", 100_000, 640)]);
        let v = check(&b, &rows(&[("hasher/Ibex/-O2", 100_000, 640)]));
        assert!(v.pass(), "{:?}", v.violations);
        assert!(v.notes.is_empty());
    }

    #[test]
    fn a_loosened_bound_fails_the_gate() {
        let b = baseline(&[("hasher/Ibex/-O2", 100_000, 640)]);
        let v = check(&b, &rows(&[("hasher/Ibex/-O2", 100_001, 640)]));
        assert_eq!(v.violations.len(), 1, "{:?}", v.violations);
        assert!(v.violations[0].to_string().contains("wcet_cycles"), "{}", v.violations[0]);
        let v = check(&b, &rows(&[("hasher/Ibex/-O2", 100_000, 644)]));
        assert_eq!(v.violations.len(), 1, "{:?}", v.violations);
        assert!(v.violations[0].to_string().contains("stack_depth"), "{}", v.violations[0]);
    }

    #[test]
    fn tightened_bounds_pass_with_a_ratchet_note() {
        let b = baseline(&[("totp/PicoRV32/-O0", 500, 64)]);
        let v = check(&b, &rows(&[("totp/PicoRV32/-O0", 400, 64)]));
        assert!(v.pass());
        assert_eq!(v.notes.len(), 1);
        assert!(v.notes[0].contains("--update"), "{}", v.notes[0]);
    }

    #[test]
    fn vanished_and_unenrolled_cells_are_loud() {
        let b = baseline(&[("hasher/Ibex/-O2", 100, 64)]);
        let v = check(&b, &rows(&[("totp/Ibex/-O2", 100, 64)]));
        assert_eq!(v.violations.len(), 1);
        assert!(matches!(v.violations[0], BoundViolation::Missing { .. }));
        assert_eq!(v.notes.len(), 1, "new cell noted: {:?}", v.notes);
    }

    #[test]
    fn update_refuses_loosened_bounds() {
        let prev = baseline(&[("hasher/Ibex/-O2", 100, 64)]);
        let err = update(Some(&prev), &rows(&[("hasher/Ibex/-O2", 200, 64)])).unwrap_err();
        assert_eq!(err.len(), 1);
        let b = update(Some(&prev), &rows(&[("hasher/Ibex/-O2", 90, 64)])).unwrap();
        assert_eq!(b.rows["hasher/Ibex/-O2"].wcet_cycles, 90);
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let b = baseline(&[("hasher/Ibex/-O2", 123, 456), ("ecdsa/PicoRV32/-O2", 7, 8)]);
        let text = b.to_json().to_string();
        let parsed =
            BoundBaseline::from_json(&parfait_telemetry::json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, b);
    }
}
