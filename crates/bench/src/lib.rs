//! parfait-bench — regenerates every table and figure of the paper's
//! evaluation (§8) from the live system.
//!
//! One binary per artifact:
//!
//! | Artifact | Binary | What it measures |
//! |---|---|---|
//! | Table 1  | `table1` | the levels of abstraction, from the live registry |
//! | Table 2  | `table2` | lines of code per case study, counted from the repo |
//! | Table 3  | `table3` | software (Starling) verification effort and runtime |
//! | Table 4  | `table4` | hardware (Knox2) verification time and cycles/s |
//! | Table 5  | `table5` | run-time performance in signatures/second |
//! | Fig. 11  | `fig11`  | realized synchronization points per instruction class |
//! | Ablation | `ablation` | sync-policy cost (the §5.4 design choice) |
//!
//! Criterion micro-benchmarks live in `benches/`.

#![forbid(unsafe_code)]

/// The case-study applications, re-exported from the proof pipeline —
/// the single home of app sources, sizes, sample states, and build
/// plumbing (`parfait_pipeline::Pipeline` replaces the per-binary
/// firmware/spec/SoC construction this crate used to duplicate).
pub use parfait_pipeline::apps::StdApp as App;

/// The deterministic-counter performance ratchet behind the `perfstat`
/// binary and CI's `perf_baseline.json` gate.
pub mod perf;

/// The certified-resource-bound ratchet behind the `boundstat` binary
/// and CI's `bound_baseline.json` gate.
pub mod bound_ratchet;

/// Extract `--json <path>` from an argument list. Distinguishes the
/// flag being absent (`Ok(None)`) from it being malformed — missing its
/// path, or followed by another flag (`Err`), so a typo'd invocation
/// can't silently drop the artifact the caller asked for. Both
/// malformed shapes (`--json --whatever` and a trailing lone `--json`)
/// produce the same error text, so callers and CI greps see one
/// diagnostic for one mistake.
pub fn json_output_path_from<I>(args: I) -> Result<Option<std::path::PathBuf>, String>
where
    I: IntoIterator<Item = String>,
{
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        if a == "--json" {
            return match args.next() {
                Some(p) if !p.starts_with("--") => Ok(Some(std::path::PathBuf::from(p))),
                _ => Err("--json expects a file path".to_string()),
            };
        }
    }
    Ok(None)
}

/// Extract `--json <path>` from this process's command line, if given.
/// The bench binaries use it to emit machine-readable results next to
/// the human-readable tables. Malformed usage (no path, or a flag in
/// the path position) is a hard error: exiting loudly beats a CI run
/// that "succeeds" without the requested artifact.
pub fn json_output_path() -> Option<std::path::PathBuf> {
    match json_output_path_from(std::env::args().skip(1)) {
        Ok(path) => path,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// Extract `--threads <n>` from an argument list; `Ok(None)` when the
/// flag is absent (callers fall back to
/// [`parfait_parallel::default_threads`], which honors
/// `PARFAIT_THREADS`).
pub fn threads_from<I>(args: I) -> Result<Option<usize>, String>
where
    I: IntoIterator<Item = String>,
{
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        if a == "--threads" {
            return match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => Ok(Some(n)),
                Some(_) => Err("--threads expects a positive integer".to_string()),
                None => Err("--threads expects a thread count".to_string()),
            };
        }
    }
    Ok(None)
}

/// `--threads <n>` from this process's command line, defaulting to
/// [`parfait_parallel::default_threads`]. Malformed usage exits loudly.
pub fn threads_arg() -> usize {
    match threads_from(std::env::args().skip(1)) {
        Ok(Some(n)) => n,
        Ok(None) => parfait_parallel::default_threads(),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// Extract `--metrics <path>` from an argument list, with the same
/// strictness contract as [`json_output_path_from`]: absent is
/// `Ok(None)`, a missing or flag-shaped path is a loud `Err`.
pub fn metrics_path_from<I>(args: I) -> Result<Option<std::path::PathBuf>, String>
where
    I: IntoIterator<Item = String>,
{
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        if a == "--metrics" {
            return match args.next() {
                Some(p) if !p.starts_with("--") => Ok(Some(std::path::PathBuf::from(p))),
                _ => Err("--metrics expects a file path".to_string()),
            };
        }
    }
    Ok(None)
}

/// `--metrics <path>` from this process's command line, if given.
/// Malformed usage exits loudly, like [`json_output_path`].
pub fn metrics_path() -> Option<std::path::PathBuf> {
    match metrics_path_from(std::env::args().skip(1)) {
        Ok(path) => path,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// If `--metrics <path>` was given, capture a [`RunManifest`] for this
/// bin — name, build id, env knobs, thread count, exit status, and a
/// snapshot of the global metrics registry — and write it to the path.
/// Call once, just before returning the bin's exit code. Write failures
/// exit loudly (a CI run must not "succeed" without its artifact).
pub fn emit_manifest(bin: &str, threads: usize, exit_code: i32) {
    if let Some(path) = metrics_path() {
        parfait_telemetry::manifest::RunManifest::capture(
            bin,
            threads,
            exit_code,
            parfait_telemetry::metrics::Metrics::global(),
        )
        .write(&path);
        eprintln!("wrote {}", path.display());
    }
}

/// Write a JSON document to `path` (with a trailing newline).
pub fn write_json(
    path: &std::path::Path,
    value: &parfait_telemetry::json::Json,
) -> std::io::Result<()> {
    let mut text = value.to_string();
    text.push('\n');
    std::fs::write(path, text)
}

/// Count the non-blank, non-comment lines of a source string.
pub fn loc(source: &str) -> usize {
    source
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with("#"))
        .count()
}

/// Render an ASCII table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    for (i, h) in headers.iter().enumerate() {
        out.push_str(&format!("| {:w$} ", h, w = widths[i]));
    }
    out.push_str("|\n");
    sep(&mut out);
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(&format!("| {:w$} ", cell, w = widths[i]));
        }
        out.push_str("|\n");
    }
    sep(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_counts_code_lines() {
        assert_eq!(loc("a\n\n// c\n  b\n# d\n"), 2);
    }

    #[test]
    fn render_is_aligned() {
        let t = render_table(
            "T",
            &["col", "x"],
            &[vec!["a".into(), "123".into()], vec!["long".into(), "4".into()]],
        );
        assert!(t.contains("| col  | x   |"));
    }

    #[test]
    fn apps_build() {
        let _ = App::Hasher.firmware(parfait_littlec::codegen::OptLevel::O2);
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn json_flag_absent_is_none() {
        assert_eq!(json_output_path_from(args(&["--quick"])).unwrap(), None);
        assert_eq!(json_output_path_from(args(&[])).unwrap(), None);
    }

    #[test]
    fn json_flag_with_path_parses() {
        assert_eq!(
            json_output_path_from(args(&["--quick", "--json", "out.json"])).unwrap(),
            Some(std::path::PathBuf::from("out.json"))
        );
    }

    #[test]
    fn json_flag_without_path_is_a_loud_error() {
        assert!(json_output_path_from(args(&["--json"])).is_err());
    }

    #[test]
    fn json_flag_swallowing_another_flag_is_a_loud_error() {
        // The old implementation silently wrote to a file named
        // "--quick" here; now it is rejected.
        assert!(json_output_path_from(args(&["--json", "--quick"])).is_err());
    }

    #[test]
    fn json_flag_errors_share_one_text_path() {
        // `--json --` style and a trailing lone `--json` are the same
        // user mistake (no path given) and must produce the same error
        // text, so one grep in CI catches both shapes.
        let trailing = json_output_path_from(args(&["--json"])).unwrap_err();
        let flag_like = json_output_path_from(args(&["--json", "--quick"])).unwrap_err();
        let bare_dashes = json_output_path_from(args(&["--json", "--"])).unwrap_err();
        assert_eq!(trailing, flag_like);
        assert_eq!(trailing, bare_dashes);
        assert_eq!(trailing, "--json expects a file path");
    }

    #[test]
    fn metrics_flag_mirrors_json_flag_contract() {
        assert_eq!(metrics_path_from(args(&["--quick"])).unwrap(), None);
        assert_eq!(
            metrics_path_from(args(&["--metrics", "m.json"])).unwrap(),
            Some(std::path::PathBuf::from("m.json"))
        );
        assert!(metrics_path_from(args(&["--metrics"])).is_err());
        assert!(metrics_path_from(args(&["--metrics", "--json"])).is_err());
    }

    #[test]
    fn threads_flag_parses_and_rejects_garbage() {
        assert_eq!(threads_from(args(&[])).unwrap(), None);
        assert_eq!(threads_from(args(&["--threads", "4"])).unwrap(), Some(4));
        assert!(threads_from(args(&["--threads"])).is_err());
        assert!(threads_from(args(&["--threads", "zero"])).is_err());
        assert!(threads_from(args(&["--threads", "0"])).is_err());
    }
}
