//! parfait-bench — regenerates every table and figure of the paper's
//! evaluation (§8) from the live system.
//!
//! One binary per artifact:
//!
//! | Artifact | Binary | What it measures |
//! |---|---|---|
//! | Table 1  | `table1` | the levels of abstraction, from the live registry |
//! | Table 2  | `table2` | lines of code per case study, counted from the repo |
//! | Table 3  | `table3` | software (Starling) verification effort and runtime |
//! | Table 4  | `table4` | hardware (Knox2) verification time and cycles/s |
//! | Table 5  | `table5` | run-time performance in signatures/second |
//! | Fig. 11  | `fig11`  | realized synchronization points per instruction class |
//! | Ablation | `ablation` | sync-policy cost (the §5.4 design choice) |
//!
//! Criterion micro-benchmarks live in `benches/`.

use parfait_hsms::platform::{build_firmware, make_soc, AppSizes, Cpu};
use parfait_hsms::{ecdsa, firmware, hasher};
use parfait_littlec::codegen::OptLevel;
use parfait_soc::{Firmware, Soc};

/// Which case-study application.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum App {
    /// The ECDSA certificate signer.
    Ecdsa,
    /// The password hasher.
    Hasher,
}

impl std::fmt::Display for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            App::Ecdsa => f.write_str("ECDSA signer"),
            App::Hasher => f.write_str("Password hasher"),
        }
    }
}

impl App {
    /// The app's littlec source.
    pub fn source(self) -> String {
        match self {
            App::Ecdsa => firmware::ecdsa_app_source(),
            App::Hasher => firmware::hasher_app_source(),
        }
    }

    /// Buffer sizes.
    pub fn sizes(self) -> AppSizes {
        match self {
            App::Ecdsa => AppSizes {
                state: ecdsa::STATE_SIZE,
                command: ecdsa::COMMAND_SIZE,
                response: ecdsa::RESPONSE_SIZE,
            },
            App::Hasher => AppSizes {
                state: hasher::STATE_SIZE,
                command: hasher::COMMAND_SIZE,
                response: hasher::RESPONSE_SIZE,
            },
        }
    }

    /// Build firmware at the given optimization level.
    pub fn firmware(self, opt: OptLevel) -> Firmware {
        build_firmware(&self.source(), self.sizes(), opt).expect("firmware builds")
    }

    /// A provisioned SoC with a fixed secret state.
    pub fn soc(self, cpu: Cpu, opt: OptLevel) -> Soc {
        let state = self.secret_state();
        make_soc(cpu, self.firmware(opt), &state)
    }

    /// A fixed "provisioned" state encoding for benchmarking.
    pub fn secret_state(self) -> Vec<u8> {
        use parfait::lockstep::Codec;
        match self {
            App::Ecdsa => ecdsa::EcdsaCodec.encode_state(&ecdsa::EcdsaState {
                prf_key: [0x11; 32],
                prf_counter: 0,
                sig_key: [0x22; 32],
            }),
            App::Hasher => {
                hasher::HasherCodec.encode_state(&hasher::HasherState { secret: [0x33; 32] })
            }
        }
    }

    /// One representative command encoding (the expensive operation).
    pub fn workload_command(self) -> Vec<u8> {
        use parfait::lockstep::Codec;
        match self {
            App::Ecdsa => ecdsa::EcdsaCodec
                .encode_command(&ecdsa::EcdsaCommand::Sign { msg: [0x3C; 32] }),
            App::Hasher => hasher::HasherCodec
                .encode_command(&hasher::HasherCommand::Hash { message: [0x3C; 32] }),
        }
    }
}

/// Extract `--json <path>` from this process's command line, if given.
/// The bench binaries use it to emit machine-readable results next to
/// the human-readable tables.
pub fn json_output_path() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            let path = args.next().map(std::path::PathBuf::from);
            if path.is_none() {
                eprintln!("warning: --json given without a path; no JSON will be written");
            }
            return path;
        }
    }
    None
}

/// Write a JSON document to `path` (with a trailing newline).
pub fn write_json(
    path: &std::path::Path,
    value: &parfait_telemetry::json::Json,
) -> std::io::Result<()> {
    let mut text = value.to_string();
    text.push('\n');
    std::fs::write(path, text)
}

/// Count the non-blank, non-comment lines of a source string.
pub fn loc(source: &str) -> usize {
    source
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with("#"))
        .count()
}

/// Render an ASCII table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    for (i, h) in headers.iter().enumerate() {
        out.push_str(&format!("| {:w$} ", h, w = widths[i]));
    }
    out.push_str("|\n");
    sep(&mut out);
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(&format!("| {:w$} ", cell, w = widths[i]));
        }
        out.push_str("|\n");
    }
    sep(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_counts_code_lines() {
        assert_eq!(loc("a\n\n// c\n  b\n# d\n"), 2);
    }

    #[test]
    fn render_is_aligned() {
        let t = render_table(
            "T",
            &["col", "x"],
            &[vec!["a".into(), "123".into()], vec!["long".into(), "4".into()]],
        );
        assert!(t.contains("| col  | x   |"));
    }

    #[test]
    fn apps_build() {
        let _ = App::Hasher.firmware(OptLevel::O2);
    }
}
