//! parfait-bench — regenerates every table and figure of the paper's
//! evaluation (§8) from the live system.
//!
//! One binary per artifact:
//!
//! | Artifact | Binary | What it measures |
//! |---|---|---|
//! | Table 1  | `table1` | the levels of abstraction, from the live registry |
//! | Table 2  | `table2` | lines of code per case study, counted from the repo |
//! | Table 3  | `table3` | software (Starling) verification effort and runtime |
//! | Table 4  | `table4` | hardware (Knox2) verification time and cycles/s |
//! | Table 5  | `table5` | run-time performance in signatures/second |
//! | Fig. 11  | `fig11`  | realized synchronization points per instruction class |
//! | Ablation | `ablation` | sync-policy cost (the §5.4 design choice) |
//!
//! Criterion micro-benchmarks live in `benches/`.

use parfait_hsms::platform::{build_firmware, make_soc, AppSizes, Cpu};
use parfait_hsms::{ecdsa, firmware, hasher, syssw};
use parfait_knox2::{
    check_fps_parallel, CircuitEmulator, FpsConfig, FpsFailure, FpsObserver, FpsReport, HostOp,
};
use parfait_littlec::codegen::OptLevel;
use parfait_littlec::validate::asm_machine;
use parfait_soc::{Firmware, Soc};

/// Which case-study application.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum App {
    /// The ECDSA certificate signer.
    Ecdsa,
    /// The password hasher.
    Hasher,
}

impl std::fmt::Display for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            App::Ecdsa => f.write_str("ECDSA signer"),
            App::Hasher => f.write_str("Password hasher"),
        }
    }
}

impl App {
    /// The app's littlec source.
    pub fn source(self) -> String {
        match self {
            App::Ecdsa => firmware::ecdsa_app_source(),
            App::Hasher => firmware::hasher_app_source(),
        }
    }

    /// Buffer sizes.
    pub fn sizes(self) -> AppSizes {
        match self {
            App::Ecdsa => AppSizes {
                state: ecdsa::STATE_SIZE,
                command: ecdsa::COMMAND_SIZE,
                response: ecdsa::RESPONSE_SIZE,
            },
            App::Hasher => AppSizes {
                state: hasher::STATE_SIZE,
                command: hasher::COMMAND_SIZE,
                response: hasher::RESPONSE_SIZE,
            },
        }
    }

    /// Build firmware at the given optimization level.
    pub fn firmware(self, opt: OptLevel) -> Firmware {
        build_firmware(&self.source(), self.sizes(), opt).expect("firmware builds")
    }

    /// A provisioned SoC with a fixed secret state.
    pub fn soc(self, cpu: Cpu, opt: OptLevel) -> Soc {
        let state = self.secret_state();
        make_soc(cpu, self.firmware(opt), &state)
    }

    /// A fixed "provisioned" state encoding for benchmarking.
    pub fn secret_state(self) -> Vec<u8> {
        use parfait::lockstep::Codec;
        match self {
            App::Ecdsa => ecdsa::EcdsaCodec.encode_state(&ecdsa::EcdsaState {
                prf_key: [0x11; 32],
                prf_counter: 0,
                sig_key: [0x22; 32],
            }),
            App::Hasher => {
                hasher::HasherCodec.encode_state(&hasher::HasherState { secret: [0x33; 32] })
            }
        }
    }

    /// One representative command encoding (the expensive operation).
    pub fn workload_command(self) -> Vec<u8> {
        use parfait::lockstep::Codec;
        match self {
            App::Ecdsa => {
                ecdsa::EcdsaCodec.encode_command(&ecdsa::EcdsaCommand::Sign { msg: [0x3C; 32] })
            }
            App::Hasher => hasher::HasherCodec
                .encode_command(&hasher::HasherCommand::Hash { message: [0x3C; 32] }),
        }
    }
}

/// The standard FPS verification run the bench binaries measure: one
/// expensive workload command followed by one invalid command, checked
/// with `threads` worker threads (`<= 1` = the sequential checker).
pub fn verify_app_hardware(
    app: App,
    cpu: Cpu,
    obs: &FpsObserver,
    threads: usize,
) -> Result<FpsReport, FpsFailure> {
    let sizes = app.sizes();
    let fw = app.firmware(OptLevel::O2);
    let program = parfait_littlec::frontend(&app.source()).expect("app source parses");
    let spec = asm_machine(&program, OptLevel::O2, sizes.state, sizes.command, sizes.response)
        .expect("assembly spec builds");
    let secret = app.secret_state();
    let mut real = make_soc(cpu, fw.clone(), &secret);
    let dummy = vec![0u8; sizes.state];
    let dummy_soc = make_soc(cpu, fw, &dummy);
    let mut emu = CircuitEmulator::new(dummy_soc, &spec, secret, sizes.command);
    let cfg = FpsConfig {
        command_size: sizes.command,
        response_size: sizes.response,
        timeout: 8_000_000_000,
        state_size: sizes.state,
    };
    let state_size = sizes.state;
    let project = move |soc: &Soc| syssw::active_state(&soc.fram_bytes(0, 256), state_size);
    let script =
        vec![HostOp::Command(app.workload_command()), HostOp::Command(vec![0xEE; sizes.command])];
    check_fps_parallel(&mut real, &mut emu, &cfg, &project, &script, obs, threads)
}

/// Extract `--json <path>` from an argument list. Distinguishes the
/// flag being absent (`Ok(None)`) from it being malformed — missing its
/// path, or followed by another flag (`Err`), so a typo'd invocation
/// can't silently drop the artifact the caller asked for.
pub fn json_output_path_from<I>(args: I) -> Result<Option<std::path::PathBuf>, String>
where
    I: IntoIterator<Item = String>,
{
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        if a == "--json" {
            return match args.next() {
                Some(p) if !p.starts_with("--") => Ok(Some(std::path::PathBuf::from(p))),
                Some(p) => {
                    Err(format!("--json expects a file path, but got the flag-like argument {p:?}"))
                }
                None => Err("--json expects a file path".to_string()),
            };
        }
    }
    Ok(None)
}

/// Extract `--json <path>` from this process's command line, if given.
/// The bench binaries use it to emit machine-readable results next to
/// the human-readable tables. Malformed usage (no path, or a flag in
/// the path position) is a hard error: exiting loudly beats a CI run
/// that "succeeds" without the requested artifact.
pub fn json_output_path() -> Option<std::path::PathBuf> {
    match json_output_path_from(std::env::args().skip(1)) {
        Ok(path) => path,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// Extract `--threads <n>` from an argument list; `Ok(None)` when the
/// flag is absent (callers fall back to
/// [`parfait_parallel::default_threads`], which honors
/// `PARFAIT_THREADS`).
pub fn threads_from<I>(args: I) -> Result<Option<usize>, String>
where
    I: IntoIterator<Item = String>,
{
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        if a == "--threads" {
            return match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => Ok(Some(n)),
                Some(_) => Err("--threads expects a positive integer".to_string()),
                None => Err("--threads expects a thread count".to_string()),
            };
        }
    }
    Ok(None)
}

/// `--threads <n>` from this process's command line, defaulting to
/// [`parfait_parallel::default_threads`]. Malformed usage exits loudly.
pub fn threads_arg() -> usize {
    match threads_from(std::env::args().skip(1)) {
        Ok(Some(n)) => n,
        Ok(None) => parfait_parallel::default_threads(),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// Write a JSON document to `path` (with a trailing newline).
pub fn write_json(
    path: &std::path::Path,
    value: &parfait_telemetry::json::Json,
) -> std::io::Result<()> {
    let mut text = value.to_string();
    text.push('\n');
    std::fs::write(path, text)
}

/// Count the non-blank, non-comment lines of a source string.
pub fn loc(source: &str) -> usize {
    source
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with("#"))
        .count()
}

/// Render an ASCII table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    for (i, h) in headers.iter().enumerate() {
        out.push_str(&format!("| {:w$} ", h, w = widths[i]));
    }
    out.push_str("|\n");
    sep(&mut out);
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(&format!("| {:w$} ", cell, w = widths[i]));
        }
        out.push_str("|\n");
    }
    sep(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_counts_code_lines() {
        assert_eq!(loc("a\n\n// c\n  b\n# d\n"), 2);
    }

    #[test]
    fn render_is_aligned() {
        let t = render_table(
            "T",
            &["col", "x"],
            &[vec!["a".into(), "123".into()], vec!["long".into(), "4".into()]],
        );
        assert!(t.contains("| col  | x   |"));
    }

    #[test]
    fn apps_build() {
        let _ = App::Hasher.firmware(OptLevel::O2);
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn json_flag_absent_is_none() {
        assert_eq!(json_output_path_from(args(&["--quick"])).unwrap(), None);
        assert_eq!(json_output_path_from(args(&[])).unwrap(), None);
    }

    #[test]
    fn json_flag_with_path_parses() {
        assert_eq!(
            json_output_path_from(args(&["--quick", "--json", "out.json"])).unwrap(),
            Some(std::path::PathBuf::from("out.json"))
        );
    }

    #[test]
    fn json_flag_without_path_is_a_loud_error() {
        assert!(json_output_path_from(args(&["--json"])).is_err());
    }

    #[test]
    fn json_flag_swallowing_another_flag_is_a_loud_error() {
        // The old implementation silently wrote to a file named
        // "--quick" here; now it is rejected.
        assert!(json_output_path_from(args(&["--json", "--quick"])).is_err());
    }

    #[test]
    fn threads_flag_parses_and_rejects_garbage() {
        assert_eq!(threads_from(args(&[])).unwrap(), None);
        assert_eq!(threads_from(args(&["--threads", "4"])).unwrap(), Some(4));
        assert!(threads_from(args(&["--threads"])).is_err());
        assert!(threads_from(args(&["--threads", "zero"])).is_err());
        assert!(threads_from(args(&["--threads", "0"])).is_err());
    }
}
