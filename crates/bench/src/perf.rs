//! The CI performance ratchet (`perfstat`).
//!
//! The hot paths this repo optimizes — the tick loop's pre-decoded
//! instruction cache, the producer/verifier parallel FPS split, the
//! sparse analyzer fixpoint, the firmware-build memo — are all
//! *deterministic*: the same workload executes the same number of
//! simulated cycles, worklist pops, memo hits, and cache probes on
//! every run. Wall-clock benchmarks flake with machine load, but these
//! counters cannot, so they make a perfect regression gate: CI runs a
//! fixed workload, reads the counter deltas, and compares them to
//! `perf_baseline.json`.
//!
//! Each gated counter has a direction. A measurement *worse* than the
//! baseline (more fixpoint iterations, a lower decode-cache hit rate)
//! fails the gate; a better one passes and prints a note asking for
//! the baseline to be ratcheted forward. Wall-clock is a backstop
//! only: each workload records a generous ceiling (several multiples
//! of the measured time at update), so a pathological slowdown still
//! fails even if no counter moved.
//!
//! `perfstat --update` rewrites the baseline from the current run but
//! **refuses regressions**: if any gated counter is worse than the
//! recorded baseline, the update fails loudly. Shipping a deliberate
//! perf regression requires deleting the baseline file in the same
//! change — visible in review — not just re-running the updater.

use std::collections::BTreeMap;
use std::fmt;

use parfait_telemetry::json::Json;

/// Which way a gated counter is allowed to move.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// e.g. fixpoint iterations, simulated cycles, cache misses.
    LowerIsBetter,
    /// e.g. memo hits, cache hit rate.
    HigherIsBetter,
}

impl Direction {
    pub fn as_str(self) -> &'static str {
        match self {
            Direction::LowerIsBetter => "lower",
            Direction::HigherIsBetter => "higher",
        }
    }

    pub fn parse(s: &str) -> Option<Direction> {
        match s {
            "lower" => Some(Direction::LowerIsBetter),
            "higher" => Some(Direction::HigherIsBetter),
            _ => None,
        }
    }

    /// Is `measured` strictly worse than `baseline` in this direction?
    pub fn is_regression(self, measured: u64, baseline: u64) -> bool {
        match self {
            Direction::LowerIsBetter => measured > baseline,
            Direction::HigherIsBetter => measured < baseline,
        }
    }

    /// Is `measured` strictly better than `baseline`?
    pub fn is_improvement(self, measured: u64, baseline: u64) -> bool {
        baseline != measured && !self.is_regression(measured, baseline)
    }
}

/// The gated counters, their directions, and the workload each comes
/// from. This table is the single source of truth: the measurement
/// collector, the gate, and the updater all iterate it, so a counter
/// added here is automatically measured, gated, and written to new
/// baselines.
pub const GATES: &[(&str, Direction)] = &[
    // Sparse asm-analyzer fixpoint over the hasher at -O2.
    ("lint_asm_fixpoint_iters", Direction::LowerIsBetter),
    ("lint_ir_fixpoint_iters", Direction::LowerIsBetter),
    ("lint_asm_memo_hits", Direction::HigherIsBetter),
    // Full FPS checks (hasher, ibex + pico, -O2): simulated work.
    ("fps_cycles", Direction::LowerIsBetter),
    ("fps_producer_cycles", Direction::LowerIsBetter),
    // Pre-decoded instruction cache efficiency across those checks,
    // in parts per million of fetches served from the cache.
    ("decode_cache_hit_rate_ppm", Direction::HigherIsBetter),
    // The firmware-compile memo: the second platform's check must
    // reuse the first one's build.
    ("firmware_build_misses", Direction::LowerIsBetter),
    ("firmware_build_hits", Direction::HigherIsBetter),
    // Contract batteries on both cores: stimulus coverage must only
    // ever grow (a shrink means instruction classes lost checks).
    ("contract_stimuli_total", Direction::HigherIsBetter),
    // Static resource-bound analysis (runs inside the FPS workload):
    // analysis coverage must only ever grow — fewer functions or loops
    // certified means the bound stage silently lost sight of code.
    ("bound_functions", Direction::HigherIsBetter),
    ("bound_loops", Direction::HigherIsBetter),
];

/// One run's worth of gate inputs: counter deltas plus wall seconds
/// per workload.
#[derive(Debug, Default, Clone)]
pub struct Measurement {
    pub counters: BTreeMap<String, u64>,
    pub walls: BTreeMap<String, f64>,
}

/// The recorded baseline (`perf_baseline.json`).
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    pub counters: BTreeMap<String, (u64, Direction)>,
    /// Workload → wall-clock ceiling in seconds.
    pub wall_ceilings: BTreeMap<String, f64>,
}

/// A single gate violation, printable as the CI failure line.
#[derive(Debug, PartialEq)]
pub enum Violation {
    Counter { name: String, direction: Direction, baseline: u64, measured: u64 },
    Wall { workload: String, ceiling: f64, measured: f64 },
    Missing { name: String },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Counter { name, direction, baseline, measured } => write!(
                f,
                "{name}: {measured} is worse than baseline {baseline} ({} is better)",
                direction.as_str()
            ),
            Violation::Wall { workload, ceiling, measured } => {
                write!(f, "{workload}: {measured:.2}s exceeds the wall ceiling {ceiling:.2}s")
            }
            Violation::Missing { name } => {
                write!(f, "{name}: baselined counter was not measured (workload changed?)")
            }
        }
    }
}

/// The gate verdict: hard failures plus informational notes
/// (improvements to ratchet in, counters not yet baselined).
#[derive(Debug, Default)]
pub struct Verdict {
    pub violations: Vec<Violation>,
    pub notes: Vec<String>,
}

impl Verdict {
    pub fn pass(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Compare a measurement against the baseline.
pub fn check(baseline: &Baseline, m: &Measurement) -> Verdict {
    let mut v = Verdict::default();
    for (name, &(base, dir)) in &baseline.counters {
        match m.counters.get(name) {
            None => v.violations.push(Violation::Missing { name: name.clone() }),
            Some(&got) if dir.is_regression(got, base) => v.violations.push(Violation::Counter {
                name: name.clone(),
                direction: dir,
                baseline: base,
                measured: got,
            }),
            Some(&got) if dir.is_improvement(got, base) => v.notes.push(format!(
                "{name}: improved {base} -> {got}; ratchet with `perfstat --update`"
            )),
            Some(_) => {}
        }
    }
    for (name, &got) in &m.counters {
        if !baseline.counters.contains_key(name) {
            v.notes.push(format!("{name}: not in baseline yet (measured {got})"));
        }
    }
    for (workload, &ceiling) in &baseline.wall_ceilings {
        if let Some(&got) = m.walls.get(workload) {
            if got > ceiling {
                v.violations.push(Violation::Wall {
                    workload: workload.clone(),
                    ceiling,
                    measured: got,
                });
            }
        }
    }
    v
}

/// How generous the wall ceiling is relative to the measured wall at
/// `--update` time: room for machine noise without ever letting a
/// multi-x slowdown through.
const WALL_CEILING_FACTOR: f64 = 5.0;
const WALL_CEILING_FLOOR_S: f64 = 20.0;

/// Build the new baseline from a measurement, refusing regressions
/// against `prev` (if any). The error lists every counter that got
/// worse — the updater never launders a slowdown into the record.
pub fn update(prev: Option<&Baseline>, m: &Measurement) -> Result<Baseline, Vec<Violation>> {
    if let Some(prev) = prev {
        let regressions: Vec<Violation> = prev
            .counters
            .iter()
            .filter_map(|(name, &(base, dir))| {
                let &got = m.counters.get(name)?;
                dir.is_regression(got, base).then(|| Violation::Counter {
                    name: name.clone(),
                    direction: dir,
                    baseline: base,
                    measured: got,
                })
            })
            .collect();
        if !regressions.is_empty() {
            return Err(regressions);
        }
    }
    let counters = GATES
        .iter()
        .filter_map(|&(name, dir)| m.counters.get(name).map(|&v| (name.to_string(), (v, dir))))
        .collect();
    let wall_ceilings = m
        .walls
        .iter()
        .map(|(w, &s)| (w.clone(), (s * WALL_CEILING_FACTOR).max(WALL_CEILING_FLOOR_S)))
        .collect();
    Ok(Baseline { counters, wall_ceilings })
}

impl Baseline {
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Int(1)),
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(name, &(v, dir))| {
                            (
                                name.clone(),
                                Json::obj([
                                    ("value", Json::Int(v as i64)),
                                    ("better", Json::str(dir.as_str())),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "wall_ceilings_s",
                Json::Obj(
                    self.wall_ceilings.iter().map(|(w, &s)| (w.clone(), Json::Num(s))).collect(),
                ),
            ),
        ])
    }

    pub fn from_json(doc: &Json) -> Result<Baseline, String> {
        let counters = doc
            .get("counters")
            .and_then(|c| match c {
                Json::Obj(fields) => Some(fields),
                _ => None,
            })
            .ok_or("missing counters object")?;
        let mut out = Baseline::default();
        for (name, entry) in counters {
            let value = entry
                .get("value")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("counter {name}: missing value"))?;
            let better = entry
                .get("better")
                .and_then(Json::as_str)
                .and_then(Direction::parse)
                .ok_or_else(|| format!("counter {name}: missing/invalid direction"))?;
            out.counters.insert(name.clone(), (value, better));
        }
        if let Some(Json::Obj(walls)) = doc.get("wall_ceilings_s") {
            for (w, s) in walls {
                let s = s.as_f64().ok_or_else(|| format!("wall ceiling {w}: not a number"))?;
                out.wall_ceilings.insert(w.clone(), s);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measurement(pairs: &[(&str, u64)]) -> Measurement {
        Measurement {
            counters: pairs.iter().map(|&(n, v)| (n.to_string(), v)).collect(),
            walls: BTreeMap::new(),
        }
    }

    fn baseline(pairs: &[(&str, u64, Direction)]) -> Baseline {
        Baseline {
            counters: pairs.iter().map(|&(n, v, d)| (n.to_string(), (v, d))).collect(),
            wall_ceilings: BTreeMap::new(),
        }
    }

    #[test]
    fn equal_measurement_passes() {
        let b = baseline(&[("iters", 100, Direction::LowerIsBetter)]);
        let v = check(&b, &measurement(&[("iters", 100)]));
        assert!(v.pass(), "{:?}", v.violations);
        assert!(v.notes.is_empty());
    }

    #[test]
    fn a_deliberate_regression_fails_the_gate() {
        let b = baseline(&[
            ("iters", 100, Direction::LowerIsBetter),
            ("hits", 50, Direction::HigherIsBetter),
        ]);
        // More iterations: worse.
        let v = check(&b, &measurement(&[("iters", 101), ("hits", 50)]));
        assert_eq!(v.violations.len(), 1, "{:?}", v.violations);
        assert!(v.violations[0].to_string().contains("iters"), "{}", v.violations[0]);
        // Fewer memo hits: also worse, opposite direction.
        let v = check(&b, &measurement(&[("iters", 100), ("hits", 49)]));
        assert_eq!(v.violations.len(), 1, "{:?}", v.violations);
        assert!(v.violations[0].to_string().contains("hits"), "{}", v.violations[0]);
    }

    #[test]
    fn improvements_pass_with_a_ratchet_note() {
        let b = baseline(&[("iters", 100, Direction::LowerIsBetter)]);
        let v = check(&b, &measurement(&[("iters", 90)]));
        assert!(v.pass());
        assert_eq!(v.notes.len(), 1);
        assert!(v.notes[0].contains("--update"), "{}", v.notes[0]);
    }

    #[test]
    fn a_vanished_counter_fails_loudly() {
        let b = baseline(&[("iters", 100, Direction::LowerIsBetter)]);
        let v = check(&b, &measurement(&[]));
        assert_eq!(v.violations.len(), 1);
        assert!(matches!(v.violations[0], Violation::Missing { .. }));
    }

    #[test]
    fn wall_ceiling_is_a_backstop() {
        let mut b = baseline(&[]);
        b.wall_ceilings.insert("fps_s".into(), 10.0);
        let mut m = measurement(&[]);
        m.walls.insert("fps_s".into(), 10.5);
        let v = check(&b, &m);
        assert_eq!(v.violations.len(), 1);
        assert!(v.violations[0].to_string().contains("ceiling"), "{}", v.violations[0]);
        m.walls.insert("fps_s".into(), 9.5);
        assert!(check(&b, &m).pass());
    }

    #[test]
    fn update_refuses_regressions() {
        let prev = baseline(&[("lint_asm_fixpoint_iters", 100, Direction::LowerIsBetter)]);
        let worse = measurement(&[("lint_asm_fixpoint_iters", 200)]);
        let err = update(Some(&prev), &worse).unwrap_err();
        assert_eq!(err.len(), 1);
        // An honest improvement updates the record.
        let better = measurement(&[("lint_asm_fixpoint_iters", 50)]);
        let b = update(Some(&prev), &better).unwrap();
        assert_eq!(b.counters["lint_asm_fixpoint_iters"], (50, Direction::LowerIsBetter));
    }

    #[test]
    fn update_sets_generous_wall_ceilings() {
        let mut m = measurement(&[]);
        m.walls.insert("lint_s".into(), 2.0);
        m.walls.insert("fps_s".into(), 30.0);
        let b = update(None, &m).unwrap();
        // Small walls get the floor, large ones the factor.
        assert_eq!(b.wall_ceilings["lint_s"], WALL_CEILING_FLOOR_S);
        assert_eq!(b.wall_ceilings["fps_s"], 150.0);
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let mut b = baseline(&[
            ("iters", 123, Direction::LowerIsBetter),
            ("hits", 7, Direction::HigherIsBetter),
        ]);
        b.wall_ceilings.insert("fps_s".into(), 42.5);
        let text = b.to_json().to_string();
        let parsed = Baseline::from_json(&parfait_telemetry::json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed.counters, b.counters);
        assert_eq!(parsed.wall_ceilings, b.wall_ceilings);
    }
}
