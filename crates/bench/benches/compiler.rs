//! Criterion benches for the littlec compiler pipeline: compile time
//! and generated-code quality across optimization levels.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use parfait_hsms::firmware::{ecdsa_app_source, hasher_app_source};
use parfait_littlec::codegen::{compile, OptLevel};
use parfait_littlec::frontend;

fn bench_compile(c: &mut Criterion) {
    let hasher = hasher_app_source();
    let ecdsa = ecdsa_app_source();
    c.bench_function("frontend/hasher", |b| b.iter(|| frontend(black_box(&hasher)).unwrap()));
    let prog = frontend(&ecdsa).unwrap();
    for opt in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
        c.bench_function(format!("compile/ecdsa/{opt}"), |b| {
            b.iter(|| compile(black_box(&prog), opt).unwrap())
        });
    }
}

fn bench_generated_code_quality(c: &mut Criterion) {
    // Dynamic instruction count of one hasher handle step per opt level
    // (lower is better; the Table 5 effect at micro scale).
    let src = hasher_app_source();
    let prog = frontend(&src).unwrap();
    let mut group = c.benchmark_group("handle-step");
    group.sample_size(10);
    for opt in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
        let asm = parfait_littlec::validate::asm_machine(&prog, opt, 32, 33, 33).unwrap();
        let state = vec![7u8; 32];
        let mut cmd = vec![0u8; 33];
        cmd[0] = 2;
        group.bench_function(format!("{opt}").as_str(), |b| {
            b.iter(|| asm.step(black_box(&state), black_box(&cmd)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compile, bench_generated_code_quality);
criterion_main!(benches);
