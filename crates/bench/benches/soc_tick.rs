//! Criterion benches for the SoC's per-cycle hot path: `tick` plus
//! `get_output`, on both cores. The FPS checker samples the output
//! wires of both worlds every cycle, so `get_output` sits directly on
//! the simulation's critical path — it must stay a field read (the
//! cached-output fast path), not a FIFO peek.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use parfait::lockstep::Codec;
use parfait_hsms::firmware::hasher_app_source;
use parfait_hsms::hasher::{HasherCodec, HasherState, COMMAND_SIZE, RESPONSE_SIZE, STATE_SIZE};
use parfait_hsms::platform::{build_firmware, make_soc, AppSizes, Cpu};
use parfait_littlec::codegen::OptLevel;
use parfait_rtl::Circuit;

const CYCLES: u64 = 10_000;

fn bench_tick_and_sample(c: &mut Criterion) {
    let sizes = AppSizes { state: STATE_SIZE, command: COMMAND_SIZE, response: RESPONSE_SIZE };
    let fw = build_firmware(&hasher_app_source(), sizes, OptLevel::O2).unwrap();
    let state = HasherCodec.encode_state(&HasherState { secret: [5; 32] });
    let mut group = c.benchmark_group("soc-tick");
    group.throughput(Throughput::Elements(CYCLES));
    for cpu in [Cpu::Ibex, Cpu::Pico] {
        // The checker's per-cycle loop: sample the observable output
        // wires, then advance. The firmware idles polling RX, the
        // steady state the fast idle path targets.
        group.bench_function(format!("{cpu}/tick+get_output"), |b| {
            let mut soc = make_soc(cpu, fw.clone(), &state);
            b.iter(|| {
                let mut acc = 0u64;
                for _ in 0..CYCLES {
                    let out = soc.get_output().observable();
                    acc = acc.wrapping_add(out.2 as u64);
                    soc.tick();
                }
                black_box(acc)
            })
        });
        group.bench_function(format!("{cpu}/get_output-only"), |b| {
            let soc = make_soc(cpu, fw.clone(), &state);
            b.iter(|| {
                let mut acc = 0u64;
                for _ in 0..CYCLES {
                    acc = acc.wrapping_add(black_box(&soc).get_output().tx_data as u64);
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tick_and_sample);
criterion_main!(benches);
