//! Criterion benches for the crypto substrate (the HACL* stand-in):
//! spec-level primitives and the full littlec ECDSA at the ISA level.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use parfait_crypto::{blake2s_256, hmac_sha256, p256, sha256};

fn bench_hashes(c: &mut Criterion) {
    let data = vec![0xA5u8; 96];
    c.bench_function("sha256/96B", |b| b.iter(|| sha256(black_box(&data))));
    c.bench_function("blake2s/96B", |b| b.iter(|| blake2s_256(black_box(&data))));
    let key = [7u8; 32];
    let msg = [9u8; 8];
    c.bench_function("hmac_sha256/8B", |b| {
        b.iter(|| hmac_sha256(black_box(&key), black_box(&msg)))
    });
}

fn bench_p256(c: &mut Criterion) {
    let f = p256::field();
    let a = f.to_mont(&parfait_crypto::bignum::from_hex("deadbeefcafebabe0123456789abcdef"));
    let b2 = f.to_mont(&parfait_crypto::bignum::from_hex("fedcba9876543210"));
    c.bench_function("p256/mont_mul", |b| b.iter(|| f.mul(black_box(&a), black_box(&b2))));
    c.bench_function("p256/field_inv", |b| b.iter(|| f.inv(black_box(&a))));
    let g = p256::Point::generator();
    let k = parfait_crypto::bignum::from_hex(
        "4c3b17aa873382b0f24d6129493d8aad60a6e3c57dd01abe90086538398355dd",
    );
    let mut group = c.benchmark_group("p256-scalar");
    group.sample_size(10);
    group.bench_function("scalar_mul", |b| b.iter(|| g.mul_scalar(black_box(&k))));
    group.finish();
}

fn bench_ecdsa(c: &mut Criterion) {
    let msg = [3u8; 32];
    let sk = {
        let mut k = [7u8; 32];
        k[0] = 0;
        k
    };
    let nonce = {
        let mut k = [9u8; 32];
        k[0] = 0;
        k
    };
    let mut group = c.benchmark_group("ecdsa");
    group.sample_size(10);
    group.bench_function("sign(spec)", |b| {
        b.iter(|| parfait_crypto::ecdsa_p256_sign(black_box(&msg), &sk, &nonce))
    });
    group.finish();
}

criterion_group!(benches, bench_hashes, bench_p256, bench_ecdsa);
criterion_main!(benches);
