//! Criterion benches for the hardware substrate: raw SoC simulation
//! throughput on both cores (the "Cycles/s" column of Table 4 at
//! micro-benchmark granularity).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use parfait::lockstep::Codec;
use parfait_hsms::firmware::hasher_app_source;
use parfait_hsms::hasher::{HasherCodec, HasherState, COMMAND_SIZE, RESPONSE_SIZE, STATE_SIZE};
use parfait_hsms::platform::{build_firmware, make_soc, AppSizes, Cpu};
use parfait_littlec::codegen::OptLevel;
use parfait_rtl::Circuit;

fn bench_soc(c: &mut Criterion) {
    let sizes = AppSizes { state: STATE_SIZE, command: COMMAND_SIZE, response: RESPONSE_SIZE };
    let fw = build_firmware(&hasher_app_source(), sizes, OptLevel::O2).unwrap();
    let codec = HasherCodec;
    let state = codec.encode_state(&HasherState { secret: [5; 32] });
    let mut group = c.benchmark_group("soc-cycles");
    group.throughput(Throughput::Elements(10_000));
    for cpu in [Cpu::Ibex, Cpu::Pico] {
        group.bench_function(format!("{cpu}/10k-idle-poll-cycles"), |b| {
            // The firmware polls RX while idle: a realistic steady state.
            let mut soc = make_soc(cpu, fw.clone(), &state);
            b.iter(|| {
                for _ in 0..10_000 {
                    soc.tick();
                }
                black_box(soc.cycles())
            })
        });
    }
    group.finish();
}

fn bench_riscette(c: &mut Criterion) {
    // ISA-level simulation speed (the spec side of Knox2).
    let prog = parfait_riscv::assemble(
        "
        start:
            li t0, 10000
        loop:
            addi t1, t1, 3
            xor t2, t2, t1
            slli t3, t1, 2
            add t2, t2, t3
            addi t0, t0, -1
            bnez t0, loop
            ebreak
        ",
    )
    .unwrap();
    let mut group = c.benchmark_group("riscette");
    group.throughput(Throughput::Elements(60_001));
    group.bench_function("60k-instructions", |b| {
        b.iter(|| {
            let mut m = parfait_riscv::Machine::with_program(&prog);
            m.run(1_000_000).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_soc, bench_riscette);
criterion_main!(benches);
