//! Property-based tests for the crypto substrate: algebraic laws of the
//! bignum/field/scalar arithmetic and ECDSA round-trips.

use proptest::prelude::*;

use parfait_crypto::bignum::{self, U256};
use parfait_crypto::{ecdsa_p256_sign, ecdsa_p256_verify, p256};

fn arb_u256() -> impl Strategy<Value = U256> {
    any::<[u32; 8]>()
}

/// A field element strictly below p.
fn arb_fe() -> impl Strategy<Value = U256> {
    arb_u256().prop_map(|mut v| {
        // Clear the top bits so v < p (p > 2^255).
        v[7] &= 0x7FFF_FFFF;
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_sub_inverse(a in arb_u256(), b in arb_u256()) {
        let (s, carry) = bignum::add(&a, &b);
        let (d, borrow) = bignum::sub(&s, &b);
        prop_assert_eq!(d, a);
        // A carry out of the add means the sub must borrow back.
        prop_assert_eq!(carry, borrow);
    }

    #[test]
    fn comparison_is_strict_order(a in arb_u256(), b in arb_u256()) {
        let lt = bignum::lt(&a, &b);
        let gt = bignum::lt(&b, &a);
        let eq = a == b;
        prop_assert_eq!(lt as u8 + gt as u8 + eq as u8, 1, "exactly one relation");
    }

    #[test]
    fn be_bytes_roundtrip(a in arb_u256()) {
        prop_assert_eq!(bignum::from_be_bytes(&bignum::to_be_bytes(&a)), a);
    }

    #[test]
    fn mont_roundtrip(a in arb_fe()) {
        let f = p256::field();
        prop_assert_eq!(f.from_mont(&f.to_mont(&a)), f.reduce_once(&a));
    }

    #[test]
    fn field_mul_commutes(a in arb_fe(), b in arb_fe()) {
        let f = p256::field();
        let (am, bm) = (f.to_mont(&a), f.to_mont(&b));
        prop_assert_eq!(f.mul(&am, &bm), f.mul(&bm, &am));
    }

    #[test]
    fn field_mul_associates(a in arb_fe(), b in arb_fe(), c in arb_fe()) {
        let f = p256::field();
        let (am, bm, cm) = (f.to_mont(&a), f.to_mont(&b), f.to_mont(&c));
        prop_assert_eq!(f.mul(&f.mul(&am, &bm), &cm), f.mul(&am, &f.mul(&bm, &cm)));
    }

    #[test]
    fn field_distributes(a in arb_fe(), b in arb_fe(), c in arb_fe()) {
        let f = p256::field();
        let (am, bm, cm) = (f.to_mont(&a), f.to_mont(&b), f.to_mont(&c));
        let lhs = f.mul(&am, &f.add(&bm, &cm));
        let rhs = f.add(&f.mul(&am, &bm), &f.mul(&am, &cm));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn field_add_sub_inverse(a in arb_fe(), b in arb_fe()) {
        let f = p256::field();
        let (am, bm) = (f.to_mont(&a), f.to_mont(&b));
        prop_assert_eq!(f.sub(&f.add(&am, &bm), &bm), f.reduce_once(&am));
    }

    #[test]
    fn field_inverse_law(a in arb_fe()) {
        let f = p256::field();
        prop_assume!(!bignum::is_zero(&a));
        let am = f.to_mont(&f.reduce_once(&a));
        prop_assume!(!bignum::is_zero(&am));
        prop_assert_eq!(f.mul(&am, &f.inv(&am)), f.one);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn point_add_commutes(a in 1u64..u64::MAX, b in 1u64..u64::MAX) {
        let g = p256::Point::generator();
        let mut ka = [0u32; 8];
        ka[0] = a as u32;
        ka[1] = (a >> 32) as u32;
        let mut kb = [0u32; 8];
        kb[0] = b as u32;
        kb[1] = (b >> 32) as u32;
        let pa = g.mul_scalar(&ka);
        let pb = g.mul_scalar(&kb);
        prop_assert_eq!(pa.add(&pb).to_affine(), pb.add(&pa).to_affine());
    }

    #[test]
    fn ecdsa_roundtrip(sk in 1u64..u64::MAX, nonce in 1u64..u64::MAX, msg: [u8; 32]) {
        let mut sk_bytes = [0u8; 32];
        sk_bytes[24..].copy_from_slice(&sk.to_be_bytes());
        let mut nonce_bytes = [0u8; 32];
        nonce_bytes[24..].copy_from_slice(&nonce.to_be_bytes());
        let sig = ecdsa_p256_sign(&msg, &sk_bytes, &nonce_bytes).expect("in-range inputs");
        let pk = parfait_crypto::ecdsa::public_key(&sk_bytes).unwrap();
        prop_assert!(ecdsa_p256_verify(&msg, &pk, &sig));
        // A flipped message bit must not verify.
        let mut bad = msg;
        bad[0] ^= 1;
        prop_assert!(!ecdsa_p256_verify(&bad, &pk, &sig));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn hashes_are_deterministic_and_length_sensitive(data: Vec<u8>) {
        let a = parfait_crypto::sha256(&data);
        prop_assert_eq!(a, parfait_crypto::sha256(&data));
        let b = parfait_crypto::blake2s_256(&data);
        prop_assert_eq!(b, parfait_crypto::blake2s_256(&data));
        // Appending a byte changes both digests.
        let mut longer = data.clone();
        longer.push(0);
        prop_assert_ne!(a, parfait_crypto::sha256(&longer));
        prop_assert_ne!(b, parfait_crypto::blake2s_256(&longer));
    }

    #[test]
    fn hmac_keys_separate(key1: [u8; 32], key2: [u8; 32], msg: [u8; 16]) {
        prop_assume!(key1 != key2);
        prop_assert_ne!(
            parfait_crypto::hmac_sha256(&key1, &msg),
            parfait_crypto::hmac_sha256(&key2, &msg)
        );
    }
}
