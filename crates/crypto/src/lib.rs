//! parfait-crypto — from-scratch cryptographic algorithms.
//!
//! In the Parfait paper, HSM applications reuse specifications,
//! implementations, and proofs from the HACL\* verified cryptography
//! library. This crate is the Rust-native stand-in: it provides
//! *specification-level* implementations of every algorithm the four
//! case-study HSMs need, written for clarity and tested against
//! published test vectors. The littlec firmware implementations in
//! `parfait-hsms` are differentially verified against this crate.
//!
//! Algorithms:
//!
//! * [`sha256`](mod@sha256) — FIPS 180-4 SHA-256;
//! * [`blake2s`] — RFC 7693 BLAKE2s-256;
//! * [`hmac`] — RFC 2104 HMAC over either hash;
//! * [`p256`] — NIST P-256 field/scalar arithmetic in Montgomery form
//!   and Jacobian-coordinate group operations;
//! * [`ecdsa`] — ECDSA-P256 signing and verification (pre-hashed
//!   messages, the paper's `NoHash` instantiation);
//! * [`ct`] — constant-time selection/masking helpers mirroring the
//!   idioms the firmware uses (paper §7.1: "computes a signature
//!   unconditionally, and then applies a mask to the buffer").

//! ```
//! // Sign and verify with the specification-level ECDSA.
//! let sk = [7u8; 32];
//! let msg = parfait_crypto::sha256(b"hello");
//! let nonce = parfait_crypto::hmac_sha256(&sk, b"nonce derivation");
//! let sig = parfait_crypto::ecdsa_p256_sign(&msg, &sk, &nonce).unwrap();
//! let pk = parfait_crypto::ecdsa::public_key(&sk).unwrap();
//! assert!(parfait_crypto::ecdsa_p256_verify(&msg, &pk, &sig));
//! ```

#![forbid(unsafe_code)]

pub mod bignum;
pub mod blake2s;
pub mod ct;
pub mod ecdsa;
pub mod hmac;
pub mod p256;
pub mod sha256;

pub use blake2s::blake2s_256;
pub use ecdsa::{ecdsa_p256_sign, ecdsa_p256_verify, Signature};
pub use hmac::{hmac_blake2s, hmac_sha256};
pub use sha256::sha256;
