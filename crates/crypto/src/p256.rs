//! NIST P-256 arithmetic: Montgomery-form field and scalar operations,
//! Jacobian-coordinate group law, and scalar multiplication.
//!
//! This is the specification-level counterpart of the littlec firmware's
//! bignum code (the paper's app developer "represents bignums as arrays
//! of machine words, implements performance optimizations such as
//! Montgomery multiplication" at the Low\* level, §3).

use std::sync::OnceLock;

use crate::bignum::{self, U256};

/// Montgomery parameters for a 256-bit odd modulus.
#[derive(Clone, Debug)]
pub struct Monty {
    /// The modulus.
    pub m: U256,
    /// `-m^-1 mod 2^32`.
    pub m_inv32: u32,
    /// `R^2 mod m` where `R = 2^256`.
    pub r2: U256,
    /// `R mod m` (the Montgomery form of 1).
    pub one: U256,
}

impl Monty {
    /// Precompute parameters for modulus `m` (must be odd).
    pub fn new(m: U256) -> Self {
        assert!(m[0] & 1 == 1, "modulus must be odd");
        // Newton iteration for the 32-bit inverse: x_{k+1} = x_k (2 - m x_k).
        let m0 = m[0];
        let mut inv = 1u32;
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u32.wrapping_sub(m0.wrapping_mul(inv)));
        }
        let m_inv32 = inv.wrapping_neg();
        // R mod m by 256 modular doublings of 1.
        let mut r = [0u32; 8];
        r[0] = 1;
        // Reduce 1 (already < m) then double 256 times.
        for _ in 0..256 {
            let (d, carry) = bignum::add(&r, &r);
            let (sub, borrow) = bignum::sub(&d, &m);
            r = if carry == 1 || borrow == 0 { sub } else { d };
        }
        let one = r;
        // R^2 mod m by 256 more doublings.
        let mut r2 = one;
        for _ in 0..256 {
            let (d, carry) = bignum::add(&r2, &r2);
            let (sub, borrow) = bignum::sub(&d, &m);
            r2 = if carry == 1 || borrow == 0 { sub } else { d };
        }
        Monty { m, m_inv32, r2, one }
    }

    /// Montgomery product `a * b * R^-1 mod m` (CIOS).
    pub fn mul(&self, a: &U256, b: &U256) -> U256 {
        let mut t = [0u32; 10]; // 8 limbs + 2 carry limbs
        for &limb in b.iter().take(8) {
            // t += a * limb
            let bi = limb as u64;
            let mut carry = 0u64;
            for j in 0..8 {
                let v = t[j] as u64 + a[j] as u64 * bi + carry;
                t[j] = v as u32;
                carry = v >> 32;
            }
            let v = t[8] as u64 + carry;
            t[8] = v as u32;
            t[9] = (v >> 32) as u32;
            // u = t[0] * m' mod 2^32; t += u * m; t >>= 32
            let u = (t[0].wrapping_mul(self.m_inv32)) as u64;
            let v = t[0] as u64 + u * self.m[0] as u64;
            let mut carry = v >> 32;
            for j in 1..8 {
                let v = t[j] as u64 + u * self.m[j] as u64 + carry;
                t[j - 1] = v as u32;
                carry = v >> 32;
            }
            let v = t[8] as u64 + carry;
            t[7] = v as u32;
            let v2 = t[9] as u64 + (v >> 32);
            t[8] = v2 as u32;
            t[9] = (v2 >> 32) as u32;
        }
        let mut out = [0u32; 8];
        out.copy_from_slice(&t[..8]);
        // Final conditional subtraction: result < 2m.
        if t[8] != 0 || !bignum::lt(&out, &self.m) {
            let (d, _) = bignum::sub(&out, &self.m);
            return d;
        }
        out
    }

    /// Modular addition.
    pub fn add(&self, a: &U256, b: &U256) -> U256 {
        let (s, carry) = bignum::add(a, b);
        let (d, borrow) = bignum::sub(&s, &self.m);
        if carry == 1 || borrow == 0 {
            d
        } else {
            s
        }
    }

    /// Modular subtraction.
    pub fn sub(&self, a: &U256, b: &U256) -> U256 {
        let (d, borrow) = bignum::sub(a, b);
        if borrow == 1 {
            let (r, _) = bignum::add(&d, &self.m);
            r
        } else {
            d
        }
    }

    /// Convert into Montgomery form.
    pub fn to_mont(&self, a: &U256) -> U256 {
        self.mul(a, &self.r2)
    }

    /// Convert out of Montgomery form.
    pub fn from_mont(&self, a: &U256) -> U256 {
        let one = {
            let mut o = [0u32; 8];
            o[0] = 1;
            o
        };
        self.mul(a, &one)
    }

    /// Montgomery-form exponentiation with a public exponent
    /// (square-and-multiply over the exponent's fixed bit pattern).
    pub fn pow(&self, a: &U256, e: &U256) -> U256 {
        let mut acc = self.one;
        for i in (0..256).rev() {
            acc = self.mul(&acc, &acc);
            if bignum::bit(e, i) == 1 {
                acc = self.mul(&acc, a);
            }
        }
        acc
    }

    /// Montgomery-form modular inverse via Fermat (`a^(m-2)`);
    /// valid for prime moduli only.
    pub fn inv(&self, a: &U256) -> U256 {
        let two = {
            let mut t = [0u32; 8];
            t[0] = 2;
            t
        };
        let (e, _) = bignum::sub(&self.m, &two);
        self.pow(a, &e)
    }

    /// Reduce an arbitrary 256-bit value modulo `m`, assuming `m > 2^255`
    /// (true for both the P-256 field and group orders), so a single
    /// conditional subtraction suffices.
    pub fn reduce_once(&self, a: &U256) -> U256 {
        let (d, borrow) = bignum::sub(a, &self.m);
        if borrow == 0 {
            d
        } else {
            *a
        }
    }
}

/// The field modulus p.
pub fn field() -> &'static Monty {
    static F: OnceLock<Monty> = OnceLock::new();
    F.get_or_init(|| {
        Monty::new(bignum::from_hex(
            "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff",
        ))
    })
}

/// The group order n.
pub fn order() -> &'static Monty {
    static N: OnceLock<Monty> = OnceLock::new();
    N.get_or_init(|| {
        Monty::new(bignum::from_hex(
            "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551",
        ))
    })
}

/// Curve coefficient `b` (affine).
pub fn coeff_b() -> U256 {
    bignum::from_hex("5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b")
}

/// Base point G, affine x.
pub fn gx() -> U256 {
    bignum::from_hex("6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296")
}

/// Base point G, affine y.
pub fn gy() -> U256 {
    bignum::from_hex("4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5")
}

/// A point in Jacobian coordinates, components in Montgomery form.
/// The point at infinity has `z = 0`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Point {
    pub x: U256,
    pub y: U256,
    pub z: U256,
}

impl Point {
    /// The point at infinity.
    pub fn infinity() -> Point {
        let f = field();
        Point { x: f.one, y: f.one, z: [0u32; 8] }
    }

    /// The base point G.
    pub fn generator() -> Point {
        let f = field();
        Point { x: f.to_mont(&gx()), y: f.to_mont(&gy()), z: f.one }
    }

    /// Construct from affine coordinates (not checked for curve
    /// membership; see [`Point::is_on_curve`]).
    pub fn from_affine(x: &U256, y: &U256) -> Point {
        let f = field();
        Point { x: f.to_mont(x), y: f.to_mont(y), z: f.one }
    }

    /// Whether this is the point at infinity.
    pub fn is_infinity(&self) -> bool {
        bignum::is_zero(&self.z)
    }

    /// Convert to affine coordinates (returns `None` for infinity).
    pub fn to_affine(&self) -> Option<(U256, U256)> {
        if self.is_infinity() {
            return None;
        }
        let f = field();
        let zinv = f.inv(&self.z);
        let zinv2 = f.mul(&zinv, &zinv);
        let zinv3 = f.mul(&zinv2, &zinv);
        let x = f.mul(&self.x, &zinv2);
        let y = f.mul(&self.y, &zinv3);
        Some((f.from_mont(&x), f.from_mont(&y)))
    }

    /// Check the affine curve equation `y^2 = x^3 - 3x + b`.
    pub fn is_on_curve(&self) -> bool {
        if self.is_infinity() {
            return true;
        }
        let f = field();
        let (x, y) = self.to_affine().expect("not infinity");
        let xm = f.to_mont(&x);
        let ym = f.to_mont(&y);
        let y2 = f.mul(&ym, &ym);
        let x2 = f.mul(&xm, &xm);
        let x3 = f.mul(&x2, &xm);
        let three_x = f.add(&f.add(&xm, &xm), &xm);
        let b = f.to_mont(&coeff_b());
        let rhs = f.add(&f.sub(&x3, &three_x), &b);
        y2 == rhs
    }

    /// Point doubling (dbl-2001-b, a = -3). Doubling infinity yields
    /// infinity; doubling a point of order 2 (none exist on P-256 since
    /// the group order is prime) would yield z = 0.
    pub fn double(&self) -> Point {
        let f = field();
        let delta = f.mul(&self.z, &self.z);
        let gamma = f.mul(&self.y, &self.y);
        let beta = f.mul(&self.x, &gamma);
        let t1 = f.sub(&self.x, &delta);
        let t2 = f.add(&self.x, &delta);
        let t3 = f.mul(&t1, &t2);
        let alpha = f.add(&f.add(&t3, &t3), &t3);
        let alpha2 = f.mul(&alpha, &alpha);
        let beta2 = f.add(&beta, &beta);
        let beta4 = f.add(&beta2, &beta2);
        let beta8 = f.add(&beta4, &beta4);
        let x3 = f.sub(&alpha2, &beta8);
        let yz = f.add(&self.y, &self.z);
        let yz2 = f.mul(&yz, &yz);
        let z3 = f.sub(&f.sub(&yz2, &gamma), &delta);
        let g2 = f.mul(&gamma, &gamma);
        let g2_2 = f.add(&g2, &g2);
        let g2_4 = f.add(&g2_2, &g2_2);
        let g2_8 = f.add(&g2_4, &g2_4);
        let y3 = f.sub(&f.mul(&alpha, &f.sub(&beta4, &x3)), &g2_8);
        Point { x: x3, y: y3, z: z3 }
    }

    /// Complete point addition: handles infinity inputs, doubling, and
    /// inverse points.
    pub fn add(&self, other: &Point) -> Point {
        if self.is_infinity() {
            return *other;
        }
        if other.is_infinity() {
            return *self;
        }
        let f = field();
        let z1z1 = f.mul(&self.z, &self.z);
        let z2z2 = f.mul(&other.z, &other.z);
        let u1 = f.mul(&self.x, &z2z2);
        let u2 = f.mul(&other.x, &z1z1);
        let s1 = f.mul(&self.y, &f.mul(&other.z, &z2z2));
        let s2 = f.mul(&other.y, &f.mul(&self.z, &z1z1));
        let h = f.sub(&u2, &u1);
        let r = f.sub(&s2, &s1);
        if bignum::is_zero(&h) {
            if bignum::is_zero(&r) {
                return self.double();
            }
            return Point::infinity();
        }
        let hh = f.mul(&h, &h);
        let hhh = f.mul(&h, &hh);
        let v = f.mul(&u1, &hh);
        let r2 = f.mul(&r, &r);
        let v2 = f.add(&v, &v);
        let x3 = f.sub(&f.sub(&r2, &hhh), &v2);
        let y3 = f.sub(&f.mul(&r, &f.sub(&v, &x3)), &f.mul(&s1, &hhh));
        let z3 = f.mul(&f.mul(&self.z, &other.z), &h);
        Point { x: x3, y: y3, z: z3 }
    }

    /// Scalar multiplication by double-and-add over the scalar's bits
    /// (most-significant first).
    pub fn mul_scalar(&self, k: &U256) -> Point {
        let mut acc = Point::infinity();
        for i in (0..256).rev() {
            acc = acc.double();
            if bignum::bit(k, i) == 1 {
                acc = acc.add(self);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn montgomery_roundtrip() {
        let f = field();
        let a =
            bignum::from_hex("123456789abcdef0fedcba9876543210aabbccddeeff00112233445566778899");
        let am = f.to_mont(&a);
        assert_eq!(f.from_mont(&am), a);
    }

    #[test]
    fn montgomery_mul_matches_schoolbook() {
        // (a*b mod p) computed via mont mul vs via wide mul + slow reduce.
        let f = field();
        let a = bignum::from_hex("0fedcba987654321");
        let b = bignum::from_hex("123456789");
        let am = f.to_mont(&a);
        let bm = f.to_mont(&b);
        let prod = f.from_mont(&f.mul(&am, &bm));
        // a*b < 2^96, fits in 256 bits and is < p, so prod == a*b.
        let wide = bignum::mul_wide(&a, &b);
        let mut expect = [0u32; 8];
        expect.copy_from_slice(&wide[..8]);
        assert_eq!(prod, expect);
    }

    #[test]
    fn field_inverse() {
        let f = field();
        let a = f.to_mont(&bignum::from_hex("deadbeefcafebabe"));
        let ainv = f.inv(&a);
        assert_eq!(f.mul(&a, &ainv), f.one);
    }

    #[test]
    fn order_inverse() {
        let n = order();
        let a = n.to_mont(&bignum::from_hex("1234567890abcdef"));
        let ainv = n.inv(&a);
        assert_eq!(n.mul(&a, &ainv), n.one);
    }

    #[test]
    fn generator_is_on_curve() {
        assert!(Point::generator().is_on_curve());
    }

    #[test]
    fn double_generator_known_value() {
        // 2G, a published P-256 test vector.
        let g2 = Point::generator().double();
        let (x, y) = g2.to_affine().unwrap();
        assert_eq!(
            x,
            bignum::from_hex("7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978")
        );
        assert_eq!(
            y,
            bignum::from_hex("07775510db8ed040293d9ac69f7430dbba7dade63ce982299e04b79d227873d1")
        );
        assert!(g2.is_on_curve());
    }

    #[test]
    fn order_times_generator_is_infinity() {
        let n = order().m;
        let p = Point::generator().mul_scalar(&n);
        assert!(p.is_infinity());
    }

    #[test]
    fn one_times_generator_is_generator() {
        let mut one = [0u32; 8];
        one[0] = 1;
        let p = Point::generator().mul_scalar(&one);
        let (x, y) = p.to_affine().unwrap();
        assert_eq!(x, gx());
        assert_eq!(y, gy());
    }

    #[test]
    fn scalar_mult_homomorphism() {
        // (a + b) G == aG + bG for values with a + b < n.
        let a = bignum::from_hex("1111111111111111111111111111111111111111");
        let b = bignum::from_hex("2222222222222222222222222222222222222222");
        let (s, carry) = bignum::add(&a, &b);
        assert_eq!(carry, 0);
        let g = Point::generator();
        let lhs = g.mul_scalar(&s);
        let rhs = g.mul_scalar(&a).add(&g.mul_scalar(&b));
        assert_eq!(lhs.to_affine(), rhs.to_affine());
    }

    #[test]
    fn add_inverse_is_infinity() {
        // G + (-G) = infinity; -G has y negated mod p.
        let g = Point::generator();
        let f = field();
        let neg = Point { x: g.x, y: f.sub(&[0u32; 8], &g.y), z: g.z };
        assert!(g.add(&neg).is_infinity());
    }

    #[test]
    fn add_same_point_doubles() {
        let g = Point::generator();
        assert_eq!(g.add(&g).to_affine(), g.double().to_affine());
    }

    #[test]
    fn mixed_scalar_muls_consistent() {
        // k(2G) == (2k)G for k small enough not to wrap.
        let k = bignum::from_hex("abcdef0123456789");
        let (k2, _) = bignum::add(&k, &k);
        let g = Point::generator();
        let lhs = g.double().mul_scalar(&k);
        let rhs = g.mul_scalar(&k2);
        assert_eq!(lhs.to_affine(), rhs.to_affine());
    }
}
