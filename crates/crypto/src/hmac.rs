//! HMAC (RFC 2104) over SHA-256 and BLAKE2s.
//!
//! The ECDSA HSM uses `hmac SHA2_256` as the PRF for deterministic nonce
//! generation (paper fig. 4), and the password hasher uses
//! `hmac Blake2S` (paper fig. 12) — both reused here as-is.

use crate::blake2s::blake2s_256;
use crate::sha256::sha256;

const BLOCK: usize = 64;

fn hmac_with(hash: fn(&[u8]) -> [u8; 32], key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        k[..32].copy_from_slice(&hash(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut inner = Vec::with_capacity(BLOCK + message.len());
    for b in &k {
        inner.push(b ^ 0x36);
    }
    inner.extend_from_slice(message);
    let ih = hash(&inner);
    let mut outer = Vec::with_capacity(BLOCK + 32);
    for b in &k {
        outer.push(b ^ 0x5c);
    }
    outer.extend_from_slice(&ih);
    hash(&outer)
}

/// HMAC-SHA-256.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    hmac_with(sha256, key, message)
}

/// HMAC-BLAKE2s-256 (BLAKE2s used as a plain hash with a 64-byte block).
pub fn hmac_blake2s(key: &[u8], message: &[u8]) -> [u8; 32] {
    hmac_with(blake2s_256, key, message)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    #[test]
    fn rfc4231_case1() {
        let key = vec![0x0b; 20];
        let out = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            out.to_vec(),
            hex("b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7")
        );
    }

    #[test]
    fn rfc4231_case2() {
        let out = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            out.to_vec(),
            hex("5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843")
        );
    }

    #[test]
    fn rfc4231_case3() {
        let key = vec![0xaa; 20];
        let data = vec![0xdd; 50];
        let out = hmac_sha256(&key, &data);
        assert_eq!(
            out.to_vec(),
            hex("773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe")
        );
    }

    #[test]
    fn rfc4231_long_key() {
        // Test case 6: key longer than the block size is hashed first.
        let key = vec![0xaa; 131];
        let out = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            out.to_vec(),
            hex("60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54")
        );
    }

    #[test]
    fn hmac_blake2s_properties() {
        // No published RFC vectors for HMAC-BLAKE2s; check structural
        // properties: key and message sensitivity, determinism.
        let a = hmac_blake2s(b"key1", b"message");
        let b = hmac_blake2s(b"key2", b"message");
        let c = hmac_blake2s(b"key1", b"messagf");
        let d = hmac_blake2s(b"key1", b"message");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, d);
        let long_key = vec![7u8; 100];
        let _ = hmac_blake2s(&long_key, b"x");
    }
}
