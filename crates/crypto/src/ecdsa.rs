//! ECDSA over P-256 with pre-hashed messages (the paper's `NoHash`
//! instantiation of HACL\*'s `ecdsa_signature_agile`).

use crate::bignum::{self, U256};
use crate::p256::{order, Point};

/// An ECDSA signature, big-endian `r || s`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Signature {
    /// Big-endian `r`.
    pub r: [u8; 32],
    /// Big-endian `s`.
    pub s: [u8; 32],
}

impl Signature {
    /// Serialize as the 64-byte `r || s` wire form.
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&self.r);
        out[32..].copy_from_slice(&self.s);
        out
    }

    /// Parse the 64-byte `r || s` wire form.
    pub fn from_bytes(bytes: &[u8]) -> Option<Signature> {
        if bytes.len() != 64 {
            return None;
        }
        let mut r = [0u8; 32];
        let mut s = [0u8; 32];
        r.copy_from_slice(&bytes[..32]);
        s.copy_from_slice(&bytes[32..]);
        Some(Signature { r, s })
    }
}

fn scalar_in_range(k: &U256) -> bool {
    !bignum::is_zero(k) && bignum::lt(k, &order().m)
}

/// Sign a 32-byte pre-hashed message.
///
/// Mirrors HACL\*'s behaviour referenced in §7.1: returns `None` when the
/// nonce or signing key is not in `[1, n-1]`, or when `r = 0` or `s = 0`.
/// (The HSM implementation computes the signature unconditionally and
/// masks the output, so that these error cases are not distinguishable
/// through timing.)
pub fn ecdsa_p256_sign(
    msg: &[u8; 32],
    private_key: &[u8; 32],
    nonce: &[u8; 32],
) -> Option<Signature> {
    let n = order();
    let d = bignum::from_be_bytes(private_key);
    let k = bignum::from_be_bytes(nonce);
    if !scalar_in_range(&d) || !scalar_in_range(&k) {
        return None;
    }
    // R = kG; r = R.x mod n.
    let rp = Point::generator().mul_scalar(&k);
    let (rx, _) = rp.to_affine().expect("k in [1, n-1] cannot yield infinity");
    let r = n.reduce_once(&rx);
    if bignum::is_zero(&r) {
        return None;
    }
    // s = k^-1 (z + r d) mod n.
    let z = n.reduce_once(&bignum::from_be_bytes(msg));
    let km = n.to_mont(&k);
    let kinv = n.inv(&km); // Montgomery form of k^-1
    let rm = n.to_mont(&r);
    let dm = n.to_mont(&d);
    let rd = n.mul(&rm, &dm);
    let zm = n.to_mont(&z);
    let sum = n.add(&zm, &rd);
    let sm = n.mul(&kinv, &sum);
    let s = n.from_mont(&sm);
    if bignum::is_zero(&s) {
        return None;
    }
    Some(Signature { r: bignum::to_be_bytes(&r), s: bignum::to_be_bytes(&s) })
}

/// Verify a signature on a 32-byte pre-hashed message against an affine
/// public key.
pub fn ecdsa_p256_verify(msg: &[u8; 32], public_key: &(U256, U256), sig: &Signature) -> bool {
    let n = order();
    let r = bignum::from_be_bytes(&sig.r);
    let s = bignum::from_be_bytes(&sig.s);
    if !scalar_in_range(&r) || !scalar_in_range(&s) {
        return false;
    }
    let q = Point::from_affine(&public_key.0, &public_key.1);
    if !q.is_on_curve() {
        return false;
    }
    let z = n.reduce_once(&bignum::from_be_bytes(msg));
    let sm = n.to_mont(&s);
    let sinv = n.inv(&sm);
    let u1 = n.from_mont(&n.mul(&sinv, &n.to_mont(&z)));
    let u2 = n.from_mont(&n.mul(&sinv, &n.to_mont(&r)));
    let rp = Point::generator().mul_scalar(&u1).add(&q.mul_scalar(&u2));
    match rp.to_affine() {
        Some((x, _)) => n.reduce_once(&x) == r,
        None => false,
    }
}

/// Derive the affine public key for a private key (`None` if the key is
/// out of range).
pub fn public_key(private_key: &[u8; 32]) -> Option<(U256, U256)> {
    let d = bignum::from_be_bytes(private_key);
    if !scalar_in_range(&d) {
        return None;
    }
    Point::generator().mul_scalar(&d).to_affine()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b32(seed: u8) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, b) in out.iter_mut().enumerate() {
            *b = seed.wrapping_add(i as u8).wrapping_mul(31) ^ 0x5A;
        }
        out
    }

    #[test]
    fn sign_verify_roundtrip() {
        let sk = b32(1);
        let msg = b32(2);
        let nonce = b32(3);
        let sig = ecdsa_p256_sign(&msg, &sk, &nonce).unwrap();
        let pk = public_key(&sk).unwrap();
        assert!(ecdsa_p256_verify(&msg, &pk, &sig));
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let sk = b32(1);
        let msg = b32(2);
        let nonce = b32(3);
        let sig = ecdsa_p256_sign(&msg, &sk, &nonce).unwrap();
        let pk = public_key(&sk).unwrap();
        let mut bad = msg;
        bad[0] ^= 1;
        assert!(!ecdsa_p256_verify(&bad, &pk, &sig));
    }

    #[test]
    fn verify_rejects_tampered_signature() {
        let sk = b32(7);
        let msg = b32(8);
        let nonce = b32(9);
        let sig = ecdsa_p256_sign(&msg, &sk, &nonce).unwrap();
        let pk = public_key(&sk).unwrap();
        let mut bad = sig;
        bad.s[31] ^= 1;
        assert!(!ecdsa_p256_verify(&msg, &pk, &bad));
        let mut bad2 = sig;
        bad2.r[0] ^= 0x80;
        assert!(!ecdsa_p256_verify(&msg, &pk, &bad2));
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let sig = ecdsa_p256_sign(&b32(2), &b32(1), &b32(3)).unwrap();
        let other = public_key(&b32(4)).unwrap();
        assert!(!ecdsa_p256_verify(&b32(2), &other, &sig));
    }

    #[test]
    fn out_of_range_inputs_rejected() {
        let zero = [0u8; 32];
        let big = [0xFFu8; 32]; // >= n
        let msg = b32(2);
        let good = b32(1);
        assert!(ecdsa_p256_sign(&msg, &zero, &good).is_none());
        assert!(ecdsa_p256_sign(&msg, &big, &good).is_none());
        assert!(ecdsa_p256_sign(&msg, &good, &zero).is_none());
        assert!(ecdsa_p256_sign(&msg, &good, &big).is_none());
    }

    #[test]
    fn deterministic_given_nonce() {
        let a = ecdsa_p256_sign(&b32(2), &b32(1), &b32(3)).unwrap();
        let b = ecdsa_p256_sign(&b32(2), &b32(1), &b32(3)).unwrap();
        assert_eq!(a, b);
        let c = ecdsa_p256_sign(&b32(2), &b32(1), &b32(4)).unwrap();
        assert_ne!(a.to_bytes().to_vec(), c.to_bytes().to_vec());
    }

    #[test]
    fn signature_wire_roundtrip() {
        let sig = ecdsa_p256_sign(&b32(2), &b32(1), &b32(3)).unwrap();
        let bytes = sig.to_bytes();
        assert_eq!(Signature::from_bytes(&bytes), Some(sig));
        assert_eq!(Signature::from_bytes(&bytes[..63]), None);
    }
}
