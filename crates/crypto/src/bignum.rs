//! Fixed-width 256-bit big-number arithmetic over 8 little-endian
//! `u32` limbs — the representation the littlec firmware also uses.

/// A 256-bit value as 8 little-endian 32-bit limbs.
pub type U256 = [u32; 8];

/// `a + b`, returning the sum and the carry-out (0 or 1).
pub fn add(a: &U256, b: &U256) -> (U256, u32) {
    let mut out = [0u32; 8];
    let mut carry = 0u64;
    for i in 0..8 {
        let t = a[i] as u64 + b[i] as u64 + carry;
        out[i] = t as u32;
        carry = t >> 32;
    }
    (out, carry as u32)
}

/// `a - b`, returning the difference and the borrow-out (0 or 1).
pub fn sub(a: &U256, b: &U256) -> (U256, u32) {
    let mut out = [0u32; 8];
    let mut borrow = 0i64;
    for i in 0..8 {
        let t = a[i] as i64 - b[i] as i64 - borrow;
        out[i] = t as u32;
        borrow = (t < 0) as i64;
    }
    (out, borrow as u32)
}

/// Unsigned comparison: `a < b`.
pub fn lt(a: &U256, b: &U256) -> bool {
    sub(a, b).1 == 1
}

/// Whether `a` is zero.
pub fn is_zero(a: &U256) -> bool {
    a.iter().all(|&l| l == 0)
}

/// Whether `a == b`.
pub fn eq(a: &U256, b: &U256) -> bool {
    a == b
}

/// Full 256×256 → 512-bit product (schoolbook).
pub fn mul_wide(a: &U256, b: &U256) -> [u32; 16] {
    let mut out = [0u32; 16];
    for i in 0..8 {
        let mut carry = 0u64;
        for j in 0..8 {
            let t = out[i + j] as u64 + a[i] as u64 * b[j] as u64 + carry;
            out[i + j] = t as u32;
            carry = t >> 32;
        }
        out[i + 8] = carry as u32;
    }
    out
}

/// Parse 32 big-endian bytes into limbs.
pub fn from_be_bytes(bytes: &[u8]) -> U256 {
    assert_eq!(bytes.len(), 32);
    let mut out = [0u32; 8];
    for (i, limb) in out.iter_mut().enumerate() {
        let o = 32 - 4 * (i + 1);
        *limb = u32::from_be_bytes([bytes[o], bytes[o + 1], bytes[o + 2], bytes[o + 3]]);
    }
    out
}

/// Serialize limbs to 32 big-endian bytes.
pub fn to_be_bytes(a: &U256) -> [u8; 32] {
    let mut out = [0u8; 32];
    for (i, limb) in a.iter().enumerate() {
        let o = 32 - 4 * (i + 1);
        out[o..o + 4].copy_from_slice(&limb.to_be_bytes());
    }
    out
}

/// Parse a (possibly shorter) big-endian hex string.
pub fn from_hex(s: &str) -> U256 {
    let mut bytes = [0u8; 32];
    let s = s.trim_start_matches("0x");
    assert!(s.len() <= 64, "hex too long");
    let padded = format!("{s:0>64}");
    for i in 0..32 {
        bytes[i] = u8::from_str_radix(&padded[2 * i..2 * i + 2], 16).expect("valid hex");
    }
    from_be_bytes(&bytes)
}

/// Bit `i` of `a` (0 = least significant).
pub fn bit(a: &U256, i: usize) -> u32 {
    (a[i / 32] >> (i % 32)) & 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let a = from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff");
        let b = from_hex("1");
        let (s, c) = add(&a, &b);
        assert!(is_zero(&s));
        assert_eq!(c, 1);
        let (d, bo) = sub(&s, &b);
        assert_eq!(d, a);
        assert_eq!(bo, 1); // wrapped
    }

    #[test]
    fn comparison() {
        let a = from_hex("deadbeef");
        let b = from_hex("deadbef0");
        assert!(lt(&a, &b));
        assert!(!lt(&b, &a));
        assert!(!lt(&a, &a));
        assert!(eq(&a, &a));
    }

    #[test]
    fn be_bytes_roundtrip() {
        let a = from_hex("0102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20");
        let bytes = to_be_bytes(&a);
        assert_eq!(bytes[0], 0x01);
        assert_eq!(bytes[31], 0x20);
        assert_eq!(from_be_bytes(&bytes), a);
    }

    #[test]
    fn mul_wide_simple() {
        let a = from_hex("100000000"); // 2^32
        let b = from_hex("100000000");
        let p = mul_wide(&a, &b);
        // 2^64: limb 2 set.
        let mut expect = [0u32; 16];
        expect[2] = 1;
        assert_eq!(p, expect);
    }

    #[test]
    fn mul_wide_max() {
        let a = [u32::MAX; 8];
        let p = mul_wide(&a, &a);
        // (2^256-1)^2 = 2^512 - 2^257 + 1
        assert_eq!(p[0], 1);
        for &l in &p[1..8] {
            assert_eq!(l, 0);
        }
        assert_eq!(p[8], 0xFFFF_FFFE);
        for &l in &p[9..16] {
            assert_eq!(l, u32::MAX);
        }
    }

    #[test]
    fn bits() {
        let a = from_hex("8000000000000000000000000000000000000000000000000000000000000001");
        assert_eq!(bit(&a, 0), 1);
        assert_eq!(bit(&a, 1), 0);
        assert_eq!(bit(&a, 255), 1);
    }
}
