//! BLAKE2s-256 (RFC 7693), unkeyed.

/// Initialization vector (same words as SHA-256's IV).
pub const IV: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Message word schedule (SIGMA), rounds 0–9.
pub const SIGMA: [[usize; 16]; 10] = [
    [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15],
    [14, 10, 4, 8, 9, 15, 13, 6, 1, 12, 0, 2, 11, 7, 5, 3],
    [11, 8, 12, 0, 5, 2, 15, 13, 10, 14, 3, 6, 7, 1, 9, 4],
    [7, 9, 3, 1, 13, 12, 11, 14, 2, 6, 5, 10, 4, 0, 15, 8],
    [9, 0, 5, 7, 2, 4, 10, 15, 14, 1, 11, 12, 6, 8, 3, 13],
    [2, 12, 6, 10, 0, 11, 8, 3, 4, 13, 7, 5, 15, 14, 1, 9],
    [12, 5, 1, 15, 14, 13, 4, 10, 0, 7, 6, 3, 9, 2, 8, 11],
    [13, 11, 7, 14, 12, 1, 3, 9, 5, 0, 15, 4, 8, 6, 2, 10],
    [6, 15, 14, 9, 11, 3, 0, 8, 12, 2, 13, 7, 1, 4, 10, 5],
    [10, 2, 8, 4, 7, 6, 1, 5, 15, 11, 9, 14, 3, 12, 13, 0],
];

#[inline]
fn g(v: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize, x: u32, y: u32) {
    v[a] = v[a].wrapping_add(v[b]).wrapping_add(x);
    v[d] = (v[d] ^ v[a]).rotate_right(16);
    v[c] = v[c].wrapping_add(v[d]);
    v[b] = (v[b] ^ v[c]).rotate_right(12);
    v[a] = v[a].wrapping_add(v[b]).wrapping_add(y);
    v[d] = (v[d] ^ v[a]).rotate_right(8);
    v[c] = v[c].wrapping_add(v[d]);
    v[b] = (v[b] ^ v[c]).rotate_right(7);
}

/// The BLAKE2s compression function.
///
/// `t` is the byte counter, `last` marks the final block.
pub fn compress(h: &mut [u32; 8], block: &[u8], t: u64, last: bool) {
    debug_assert_eq!(block.len(), 64);
    let mut m = [0u32; 16];
    for (i, mi) in m.iter_mut().enumerate() {
        *mi = u32::from_le_bytes([
            block[4 * i],
            block[4 * i + 1],
            block[4 * i + 2],
            block[4 * i + 3],
        ]);
    }
    let mut v = [0u32; 16];
    v[..8].copy_from_slice(h);
    v[8..].copy_from_slice(&IV);
    v[12] ^= t as u32;
    v[13] ^= (t >> 32) as u32;
    if last {
        v[14] = !v[14];
    }
    for s in &SIGMA {
        g(&mut v, 0, 4, 8, 12, m[s[0]], m[s[1]]);
        g(&mut v, 1, 5, 9, 13, m[s[2]], m[s[3]]);
        g(&mut v, 2, 6, 10, 14, m[s[4]], m[s[5]]);
        g(&mut v, 3, 7, 11, 15, m[s[6]], m[s[7]]);
        g(&mut v, 0, 5, 10, 15, m[s[8]], m[s[9]]);
        g(&mut v, 1, 6, 11, 12, m[s[10]], m[s[11]]);
        g(&mut v, 2, 7, 8, 13, m[s[12]], m[s[13]]);
        g(&mut v, 3, 4, 9, 14, m[s[14]], m[s[15]]);
    }
    for i in 0..8 {
        h[i] ^= v[i] ^ v[i + 8];
    }
}

/// Compute the 32-byte BLAKE2s-256 digest of `data` (unkeyed).
pub fn blake2s_256(data: &[u8]) -> [u8; 32] {
    let mut h = IV;
    // Parameter block: digest length 32, no key, fanout/depth 1.
    h[0] ^= 0x0101_0020;
    let mut t: u64 = 0;
    if data.len() > 64 {
        // All blocks except the last (data is never empty here).
        let full = (data.len() - 1) / 64;
        for i in 0..full {
            t += 64;
            compress(&mut h, &data[64 * i..64 * i + 64], t, false);
        }
        let rest = &data[64 * full..];
        let mut last = [0u8; 64];
        last[..rest.len()].copy_from_slice(rest);
        t += rest.len() as u64;
        compress(&mut h, &last, t, true);
    } else {
        let mut last = [0u8; 64];
        last[..data.len()].copy_from_slice(data);
        t += data.len() as u64;
        compress(&mut h, &last, t, true);
    }
    let mut out = [0u8; 32];
    for (i, w) in h.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    #[test]
    fn rfc7693_abc() {
        // RFC 7693 appendix B.
        assert_eq!(
            blake2s_256(b"abc").to_vec(),
            hex("508c5e8c327c14e2e1a72ba34eeb452f37458b209ed63a294d999b4c86675982")
        );
    }

    #[test]
    fn empty_input() {
        // Known BLAKE2s-256 of the empty string.
        assert_eq!(
            blake2s_256(b"").to_vec(),
            hex("69217a3079908094e11121d042354a7c1f55b6482ca1a51e1b250dfd1ed0eef9")
        );
    }

    #[test]
    fn multi_block_lengths_distinct() {
        let mut seen = std::collections::HashSet::new();
        for len in 0..200 {
            let d = vec![0x5A; len];
            assert!(seen.insert(blake2s_256(&d)), "collision at len {len}");
        }
    }

    #[test]
    fn block_boundary_exact() {
        // 64 and 128 bytes exercise the "exact block" paths.
        let d64 = vec![1u8; 64];
        let d128 = vec![1u8; 128];
        assert_ne!(blake2s_256(&d64), blake2s_256(&d128));
    }
}
