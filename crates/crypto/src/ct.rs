//! Constant-time helpers.
//!
//! These mirror the idioms the littlec firmware uses so the spec and the
//! implementation compute bit-identical results: branch-free selection,
//! all-ones/all-zero masks, and constant-time equality.

/// `0xFFFF_FFFF` when `c` is true, `0` otherwise, without branching.
#[inline]
pub fn mask(c: bool) -> u32 {
    (c as u32).wrapping_neg()
}

/// Select `a` when `c` is true, `b` otherwise, without branching.
#[inline]
pub fn select(c: bool, a: u32, b: u32) -> u32 {
    let m = mask(c);
    (a & m) | (b & !m)
}

/// Constant-time equality of byte slices of equal length.
pub fn eq(a: &[u8], b: &[u8]) -> bool {
    assert_eq!(a.len(), b.len(), "ct::eq requires equal lengths");
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b) {
        acc |= x ^ y;
    }
    acc == 0
}

/// Apply `mask` (0x00 or 0xFF) to every byte of `buf` — the §7.1 idiom:
/// compute unconditionally, then mask the response.
pub fn apply_mask(buf: &mut [u8], m: u8) {
    debug_assert!(m == 0 || m == 0xFF);
    for b in buf {
        *b &= m;
    }
}

/// Conditionally copy `src` over `dst` (when `c`), without branching.
pub fn cond_assign(c: bool, dst: &mut [u32], src: &[u32]) {
    let m = mask(c);
    for (d, s) in dst.iter_mut().zip(src) {
        *d = (*s & m) | (*d & !m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_values() {
        assert_eq!(mask(true), u32::MAX);
        assert_eq!(mask(false), 0);
    }

    #[test]
    fn select_behaviour() {
        assert_eq!(select(true, 7, 9), 7);
        assert_eq!(select(false, 7, 9), 9);
    }

    #[test]
    fn ct_eq() {
        assert!(eq(b"abc", b"abc"));
        assert!(!eq(b"abc", b"abd"));
        assert!(eq(b"", b""));
    }

    #[test]
    fn masking() {
        let mut buf = [1, 2, 3, 255];
        apply_mask(&mut buf, 0xFF);
        assert_eq!(buf, [1, 2, 3, 255]);
        apply_mask(&mut buf, 0);
        assert_eq!(buf, [0, 0, 0, 0]);
    }

    #[test]
    fn cond_assign_behaviour() {
        let mut d = [1, 2, 3];
        cond_assign(false, &mut d, &[9, 9, 9]);
        assert_eq!(d, [1, 2, 3]);
        cond_assign(true, &mut d, &[9, 8, 7]);
        assert_eq!(d, [9, 8, 7]);
    }
}
