//! Property-based tests for the ISA layer: encode/decode inversion over
//! random words, and machine invariants over random instruction streams.

use proptest::prelude::*;

use parfait_riscv::decode::decode;
use parfait_riscv::encode::encode;
use parfait_riscv::isa::{AluOp, Instr, Reg};
use parfait_riscv::machine::{Machine, StepOutcome};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// Any word that decodes must re-encode to itself (decode is a
    /// partial inverse of encode over the legal-word set).
    #[test]
    fn decode_encode_partial_inverse(word: u32) {
        if let Ok(i) = decode(word) {
            let round = decode(encode(i)).expect("re-encoded instruction decodes");
            prop_assert_eq!(round, i);
        }
    }
}

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg)
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
        Just(AluOp::Mul),
        Just(AluOp::Mulh),
        Just(AluOp::Mulhsu),
        Just(AluOp::Mulhu),
        Just(AluOp::Div),
        Just(AluOp::Divu),
        Just(AluOp::Rem),
        Just(AluOp::Remu),
    ]
}

/// Straight-line ALU instructions only (no control, no memory): safe to
/// execute blindly.
fn arb_alu_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (arb_alu(), arb_reg(), arb_reg(), arb_reg()).prop_map(|(op, rd, rs1, rs2)| Instr::Op {
            op,
            rd,
            rs1,
            rs2
        }),
        (arb_reg(), arb_reg(), -2048i32..2048).prop_map(|(rd, rs1, imm)| Instr::OpImm {
            op: AluOp::Add,
            rd,
            rs1,
            imm
        }),
        (arb_reg(), 0i32..0x100000).prop_map(|(rd, imm)| Instr::Lui { rd, imm }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Machine invariants under random ALU streams: x0 stays zero, the
    /// PC advances by 4 per instruction, instret counts correctly, and
    /// execution is deterministic.
    #[test]
    fn machine_invariants_on_alu_streams(instrs in prop::collection::vec(arb_alu_instr(), 1..64)) {
        let mut m = Machine::new();
        for (i, instr) in instrs.iter().enumerate() {
            m.mem.store_u32(4 * i as u32, encode(*instr));
        }
        m.mem.store_u32(4 * instrs.len() as u32, encode(Instr::Ebreak));
        let mut m2 = m.clone();
        for (i, _) in instrs.iter().enumerate() {
            let out = m.step().expect("legal instruction");
            prop_assert_eq!(out, StepOutcome::Continue);
            prop_assert_eq!(m.pc, 4 * (i as u32 + 1));
            prop_assert_eq!(m.reg(Reg::ZERO), 0);
        }
        prop_assert_eq!(m.instret, instrs.len() as u64);
        // Determinism.
        m2.run(1_000_000).unwrap();
        prop_assert_eq!(m.regs, m2.regs);
    }

    /// ALU semantics agree between Machine::execute and AluOp::eval.
    #[test]
    fn execute_matches_eval(op in arb_alu(), a: u32, b: u32) {
        let mut m = Machine::new();
        m.set_reg(Reg::T0, a);
        m.set_reg(Reg::T1, b);
        m.mem.store_u32(0, encode(Instr::Op { op, rd: Reg::T2, rs1: Reg::T0, rs2: Reg::T1 }));
        m.step().unwrap();
        prop_assert_eq!(m.reg(Reg::T2), op.eval(a, b));
    }

    /// Memory is byte-stable: a store followed by a load returns the
    /// stored bytes regardless of alignment mix.
    #[test]
    fn memory_store_load(addr in 0u32..0xFFF0, v: u32, data: Vec<u8>) {
        let mut m = Machine::new();
        m.mem.store_u32(addr & !3, v);
        prop_assert_eq!(m.mem.load_u32(addr & !3), v);
        m.storebytes(0x8000, &data);
        prop_assert_eq!(m.loadbytes(0x8000, data.len()), data);
    }
}
