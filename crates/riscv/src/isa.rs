//! The RV32IM instruction set: registers, instructions, disassembly.

use std::fmt;

/// An architectural register, `x0`–`x31`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl Reg {
    /// The hard-wired zero register.
    pub const ZERO: Reg = Reg(0);
    /// Return address.
    pub const RA: Reg = Reg(1);
    /// Stack pointer.
    pub const SP: Reg = Reg(2);
    /// Global pointer.
    pub const GP: Reg = Reg(3);
    /// Thread pointer.
    pub const TP: Reg = Reg(4);
    /// Temporaries `t0`-`t2`.
    pub const T0: Reg = Reg(5);
    pub const T1: Reg = Reg(6);
    pub const T2: Reg = Reg(7);
    /// Saved register / frame pointer.
    pub const S0: Reg = Reg(8);
    pub const S1: Reg = Reg(9);
    /// Argument registers `a0`-`a7`.
    pub const A0: Reg = Reg(10);
    pub const A1: Reg = Reg(11);
    pub const A2: Reg = Reg(12);
    pub const A3: Reg = Reg(13);
    pub const A4: Reg = Reg(14);
    pub const A5: Reg = Reg(15);
    pub const A6: Reg = Reg(16);
    pub const A7: Reg = Reg(17);
    pub const S2: Reg = Reg(18);
    pub const S3: Reg = Reg(19);
    pub const S4: Reg = Reg(20);
    pub const S5: Reg = Reg(21);
    pub const S6: Reg = Reg(22);
    pub const S7: Reg = Reg(23);
    pub const S8: Reg = Reg(24);
    pub const S9: Reg = Reg(25);
    pub const S10: Reg = Reg(26);
    pub const S11: Reg = Reg(27);
    pub const T3: Reg = Reg(28);
    pub const T4: Reg = Reg(29);
    pub const T5: Reg = Reg(30);
    pub const T6: Reg = Reg(31);

    /// ABI name of this register (`zero`, `ra`, `sp`, `a0`, ...).
    pub fn abi_name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        NAMES[self.0 as usize & 31]
    }

    /// Parse a register from either its numeric (`x7`) or ABI (`t2`) name.
    pub fn parse(s: &str) -> Option<Reg> {
        if let Some(rest) = s.strip_prefix('x') {
            let n: u8 = rest.parse().ok()?;
            if n < 32 {
                return Some(Reg(n));
            }
            return None;
        }
        let idx = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ]
        .iter()
        .position(|&n| n == s)?;
        // `fp` is an alias for `s0`.
        Some(Reg(idx as u8))
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.abi_name())
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.abi_name())
    }
}

/// A decoded RV32IM instruction.
///
/// Immediates are stored sign-extended in `i32` exactly as the semantics
/// consume them; branch/jump offsets are relative to the instruction's own
/// address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Load upper immediate: `rd = imm << 12`.
    Lui { rd: Reg, imm: i32 },
    /// Add upper immediate to PC: `rd = pc + (imm << 12)`.
    Auipc { rd: Reg, imm: i32 },
    /// Jump and link: `rd = pc + 4; pc += off`.
    Jal { rd: Reg, off: i32 },
    /// Jump and link register: `rd = pc + 4; pc = (rs1 + off) & !1`.
    Jalr { rd: Reg, rs1: Reg, off: i32 },
    /// Conditional branch.
    Branch { op: BranchOp, rs1: Reg, rs2: Reg, off: i32 },
    /// Memory load.
    Load { op: LoadOp, rd: Reg, rs1: Reg, off: i32 },
    /// Memory store.
    Store { op: StoreOp, rs1: Reg, rs2: Reg, off: i32 },
    /// ALU operation with immediate operand.
    OpImm { op: AluOp, rd: Reg, rs1: Reg, imm: i32 },
    /// ALU register-register operation (including the M extension).
    Op { op: AluOp, rd: Reg, rs1: Reg, rs2: Reg },
    /// Memory fence (a no-op in this single-hart model).
    Fence,
    /// Environment call.
    Ecall,
    /// Breakpoint; used as the halt convention by the Riscette machine.
    Ebreak,
}

/// Branch comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BranchOp {
    Eq,
    Ne,
    Lt,
    Ge,
    Ltu,
    Geu,
}

/// Load width/signedness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LoadOp {
    Lb,
    Lh,
    Lw,
    Lbu,
    Lhu,
}

/// Store width.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StoreOp {
    Sb,
    Sh,
    Sw,
}

/// ALU operations, shared between register and immediate forms where the
/// ISA allows, plus the M-extension multiply/divide group.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
}

impl AluOp {
    /// Whether this is an M-extension operation.
    pub fn is_muldiv(self) -> bool {
        matches!(
            self,
            AluOp::Mul
                | AluOp::Mulh
                | AluOp::Mulhsu
                | AluOp::Mulhu
                | AluOp::Div
                | AluOp::Divu
                | AluOp::Rem
                | AluOp::Remu
        )
    }

    /// Evaluate the operation on two 32-bit operands.
    pub fn eval(self, a: u32, b: u32) -> u32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Sll => a.wrapping_shl(b & 31),
            AluOp::Slt => ((a as i32) < (b as i32)) as u32,
            AluOp::Sltu => (a < b) as u32,
            AluOp::Xor => a ^ b,
            AluOp::Srl => a.wrapping_shr(b & 31),
            AluOp::Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
            AluOp::Or => a | b,
            AluOp::And => a & b,
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Mulh => (((a as i32 as i64) * (b as i32 as i64)) >> 32) as u32,
            AluOp::Mulhsu => (((a as i32 as i64) * (b as u64 as i64)) >> 32) as u32,
            AluOp::Mulhu => (((a as u64) * (b as u64)) >> 32) as u32,
            AluOp::Div => {
                if b == 0 {
                    u32::MAX
                } else if a == 0x8000_0000 && b == u32::MAX {
                    a
                } else {
                    ((a as i32).wrapping_div(b as i32)) as u32
                }
            }
            AluOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
            AluOp::Rem => {
                if b == 0 {
                    a
                } else if a == 0x8000_0000 && b == u32::MAX {
                    0
                } else {
                    ((a as i32).wrapping_rem(b as i32)) as u32
                }
            }
            AluOp::Remu => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
        }
    }
}

impl BranchOp {
    /// Evaluate the branch condition on two 32-bit operands.
    pub fn taken(self, a: u32, b: u32) -> bool {
        match self {
            BranchOp::Eq => a == b,
            BranchOp::Ne => a != b,
            BranchOp::Lt => (a as i32) < (b as i32),
            BranchOp::Ge => (a as i32) >= (b as i32),
            BranchOp::Ltu => a < b,
            BranchOp::Geu => a >= b,
        }
    }
}

impl Instr {
    /// Whether executing this instruction can redirect control flow.
    pub fn is_control(self) -> bool {
        matches!(self, Instr::Jal { .. } | Instr::Jalr { .. } | Instr::Branch { .. })
    }

    /// The destination register written by this instruction, if any.
    pub fn dest(self) -> Option<Reg> {
        match self {
            Instr::Lui { rd, .. }
            | Instr::Auipc { rd, .. }
            | Instr::Jal { rd, .. }
            | Instr::Jalr { rd, .. }
            | Instr::Load { rd, .. }
            | Instr::OpImm { rd, .. }
            | Instr::Op { rd, .. } => {
                if rd == Reg::ZERO {
                    None
                } else {
                    Some(rd)
                }
            }
            _ => None,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Lui { rd, imm } => write!(f, "lui {rd}, {imm:#x}"),
            Instr::Auipc { rd, imm } => write!(f, "auipc {rd}, {imm:#x}"),
            Instr::Jal { rd, off } => write!(f, "jal {rd}, {off}"),
            Instr::Jalr { rd, rs1, off } => write!(f, "jalr {rd}, {off}({rs1})"),
            Instr::Branch { op, rs1, rs2, off } => {
                let m = match op {
                    BranchOp::Eq => "beq",
                    BranchOp::Ne => "bne",
                    BranchOp::Lt => "blt",
                    BranchOp::Ge => "bge",
                    BranchOp::Ltu => "bltu",
                    BranchOp::Geu => "bgeu",
                };
                write!(f, "{m} {rs1}, {rs2}, {off}")
            }
            Instr::Load { op, rd, rs1, off } => {
                let m = match op {
                    LoadOp::Lb => "lb",
                    LoadOp::Lh => "lh",
                    LoadOp::Lw => "lw",
                    LoadOp::Lbu => "lbu",
                    LoadOp::Lhu => "lhu",
                };
                write!(f, "{m} {rd}, {off}({rs1})")
            }
            Instr::Store { op, rs1, rs2, off } => {
                let m = match op {
                    StoreOp::Sb => "sb",
                    StoreOp::Sh => "sh",
                    StoreOp::Sw => "sw",
                };
                write!(f, "{m} {rs2}, {off}({rs1})")
            }
            Instr::OpImm { op, rd, rs1, imm } => {
                let m = match op {
                    AluOp::Add => "addi",
                    AluOp::Slt => "slti",
                    AluOp::Sltu => "sltiu",
                    AluOp::Xor => "xori",
                    AluOp::Or => "ori",
                    AluOp::And => "andi",
                    AluOp::Sll => "slli",
                    AluOp::Srl => "srli",
                    AluOp::Sra => "srai",
                    _ => "opimm?",
                };
                write!(f, "{m} {rd}, {rs1}, {imm}")
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                let m = match op {
                    AluOp::Add => "add",
                    AluOp::Sub => "sub",
                    AluOp::Sll => "sll",
                    AluOp::Slt => "slt",
                    AluOp::Sltu => "sltu",
                    AluOp::Xor => "xor",
                    AluOp::Srl => "srl",
                    AluOp::Sra => "sra",
                    AluOp::Or => "or",
                    AluOp::And => "and",
                    AluOp::Mul => "mul",
                    AluOp::Mulh => "mulh",
                    AluOp::Mulhsu => "mulhsu",
                    AluOp::Mulhu => "mulhu",
                    AluOp::Div => "div",
                    AluOp::Divu => "divu",
                    AluOp::Rem => "rem",
                    AluOp::Remu => "remu",
                };
                write!(f, "{m} {rd}, {rs1}, {rs2}")
            }
            Instr::Fence => write!(f, "fence"),
            Instr::Ecall => write!(f, "ecall"),
            Instr::Ebreak => write!(f, "ebreak"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_names_roundtrip() {
        for i in 0..32u8 {
            let r = Reg(i);
            assert_eq!(Reg::parse(r.abi_name()), Some(r));
            assert_eq!(Reg::parse(&format!("x{i}")), Some(r));
        }
        assert_eq!(Reg::parse("x32"), None);
        assert_eq!(Reg::parse("bogus"), None);
    }

    #[test]
    fn alu_signed_edge_cases() {
        assert_eq!(AluOp::Div.eval(7, 0), u32::MAX);
        assert_eq!(AluOp::Div.eval(0x8000_0000, u32::MAX), 0x8000_0000);
        assert_eq!(AluOp::Rem.eval(7, 0), 7);
        assert_eq!(AluOp::Rem.eval(0x8000_0000, u32::MAX), 0);
        assert_eq!(AluOp::Sra.eval(0x8000_0000, 31), 0xFFFF_FFFF);
        assert_eq!(AluOp::Srl.eval(0x8000_0000, 31), 1);
        assert_eq!(AluOp::Mulh.eval(u32::MAX, u32::MAX), 0); // (-1)*(-1) = 1
        assert_eq!(AluOp::Mulhu.eval(u32::MAX, u32::MAX), 0xFFFF_FFFE);
    }

    #[test]
    fn branch_ops() {
        assert!(BranchOp::Lt.taken(0xFFFF_FFFF, 0)); // -1 < 0 signed
        assert!(!BranchOp::Ltu.taken(0xFFFF_FFFF, 0));
        assert!(BranchOp::Geu.taken(0xFFFF_FFFF, 0));
        assert!(BranchOp::Eq.taken(5, 5));
        assert!(BranchOp::Ne.taken(5, 6));
        assert!(BranchOp::Ge.taken(0, 0xFFFF_FFFF));
    }
}
