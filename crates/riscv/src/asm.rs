//! A two-pass RV32IM textual assembler and image builder.
//!
//! Supports the standard mnemonics, the common pseudo-instructions
//! (`li`, `la`, `mv`, `j`, `call`, `ret`, `nop`, `beqz`, ...), `.text` /
//! `.data` sections, and the data directives `.word`, `.byte`, `.zero`,
//! and `.align`. Conditional branches are relaxed automatically: a branch
//! whose target is out of the ±4 KiB range is rewritten as an inverted
//! branch over a `jal`.

use std::collections::HashMap;
use std::fmt;

use crate::encode::encode;
use crate::isa::{AluOp, BranchOp, Instr, LoadOp, Reg, StoreOp};

/// Assembly error, with the 1-based source line where it occurred.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "asm error on line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

/// An assembled program: a text image, a data image, and a symbol table.
#[derive(Clone, Debug)]
pub struct Program {
    /// Base address of the text section.
    pub text_base: u32,
    /// Encoded instruction words.
    pub text: Vec<u32>,
    /// Base address of the data section.
    pub data_base: u32,
    /// Initial contents of the data section.
    pub data: Vec<u8>,
    /// Label → absolute address.
    pub symbols: HashMap<String, u32>,
}

impl Program {
    /// Address of a symbol.
    pub fn address_of(&self, sym: &str) -> Option<u32> {
        self.symbols.get(sym).copied()
    }

    /// The text section as bytes (little-endian words), e.g. ROM contents.
    pub fn text_bytes(&self) -> Vec<u8> {
        self.text.iter().flat_map(|w| w.to_le_bytes()).collect()
    }

    /// Disassemble the text section for debugging.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let mut rev: HashMap<u32, &str> = HashMap::new();
        for (name, &addr) in &self.symbols {
            rev.insert(addr, name);
        }
        for (idx, &word) in self.text.iter().enumerate() {
            let addr = self.text_base + 4 * idx as u32;
            if let Some(name) = rev.get(&addr) {
                let _ = writeln!(out, "{name}:");
            }
            match crate::decode::decode(word) {
                Ok(i) => {
                    let _ = writeln!(out, "  {addr:#010x}: {i}");
                }
                Err(_) => {
                    let _ = writeln!(out, "  {addr:#010x}: .word {word:#010x}");
                }
            }
        }
        out
    }
}

/// One parsed source item before address resolution.
#[derive(Clone, Debug)]
enum Item {
    /// A concrete instruction, possibly with a label operand to patch.
    Instr {
        instr: Instr,
        target: Option<String>,
        line: usize,
    },
    /// `li rd, imm` — expands to 1 or 2 instructions (size fixed at parse).
    Li {
        rd: Reg,
        imm: i64,
    },
    /// `la rd, sym` — always lui+addi.
    La {
        rd: Reg,
        sym: String,
        line: usize,
    },
    /// A conditional branch to a label, subject to relaxation.
    CondBranch {
        op: BranchOp,
        rs1: Reg,
        rs2: Reg,
        target: String,
        line: usize,
        relaxed: bool,
    },
    /// Raw data bytes.
    Bytes(Vec<u8>),
    /// Alignment padding to a power-of-two boundary.
    Align(u32),
    Label(String),
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

/// Options controlling the memory layout of the assembled image.
#[derive(Clone, Copy, Debug)]
pub struct Layout {
    /// Base of the text section.
    pub text_base: u32,
    /// Base of the data section.
    pub data_base: u32,
}

impl Default for Layout {
    fn default() -> Self {
        Layout { text_base: 0, data_base: 0x2000_0000 }
    }
}

/// Assemble `source` with the default layout.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    assemble_with(source, Layout::default())
}

/// Assemble `source` with an explicit memory layout.
pub fn assemble_with(source: &str, layout: Layout) -> Result<Program, AsmError> {
    let (text_items, data_items) = parse(source)?;
    // Data layout: one pass is enough (no size-variable items).
    let mut data = Vec::new();
    let mut symbols = HashMap::new();
    for item in &data_items {
        match item {
            Item::Label(name) => {
                symbols.insert(name.clone(), layout.data_base + data.len() as u32);
            }
            Item::Bytes(b) => data.extend_from_slice(b),
            Item::Align(a) => {
                while !(data.len() as u32).is_multiple_of(*a) {
                    data.push(0);
                }
            }
            _ => unreachable!("instructions are rejected in .data during parsing"),
        }
    }

    // Text layout with branch relaxation: iterate until sizes are stable.
    let mut items = text_items;
    loop {
        let mut addr = layout.text_base;
        let mut text_syms: HashMap<String, u32> = HashMap::new();
        for item in &items {
            match item {
                Item::Label(name) => {
                    text_syms.insert(name.clone(), addr);
                }
                _ => addr += item_size(item),
            }
        }
        // Check every conditional branch; widen out-of-range ones.
        let mut changed = false;
        let mut addr = layout.text_base;
        for item in &mut items {
            let size = if matches!(item, Item::Label(_)) { 0 } else { item_size(item) };
            if let Item::CondBranch { target, line, relaxed, .. } = item {
                if !*relaxed {
                    let t = *text_syms
                        .get(target.as_str())
                        .or_else(|| symbols.get(target.as_str()))
                        .ok_or_else(|| AsmError {
                            line: *line,
                            msg: format!("undefined label `{target}`"),
                        })?;
                    let off = t as i64 - addr as i64;
                    if !(-4096..4096).contains(&off) {
                        *relaxed = true;
                        changed = true;
                    }
                }
            }
            addr += size;
        }
        if !changed {
            // Final emission.
            symbols.extend(text_syms);
            break;
        }
    }

    let mut text = Vec::new();
    let mut addr = layout.text_base;
    // Re-resolve all symbols now that layout is final.
    {
        let mut a = layout.text_base;
        for item in &items {
            match item {
                Item::Label(name) => {
                    symbols.insert(name.clone(), a);
                }
                _ => a += item_size(item),
            }
        }
    }
    let resolve = |sym: &str, line: usize| -> Result<u32, AsmError> {
        symbols
            .get(sym)
            .copied()
            .ok_or_else(|| AsmError { line, msg: format!("undefined label `{sym}`") })
    };
    for item in &items {
        match item {
            Item::Label(_) => {}
            Item::Instr { instr, target, line } => {
                let instr = match (instr, target) {
                    (Instr::Jal { rd, .. }, Some(t)) => {
                        let off = resolve(t, *line)? as i64 - addr as i64;
                        if !(-(1 << 20)..(1 << 20)).contains(&off) {
                            return Err(AsmError {
                                line: *line,
                                msg: format!("jal target `{t}` out of range ({off})"),
                            });
                        }
                        Instr::Jal { rd: *rd, off: off as i32 }
                    }
                    _ => *instr,
                };
                text.push(encode(instr));
                addr += 4;
            }
            Item::Li { rd, imm } => {
                for i in expand_li(*rd, *imm as i32) {
                    text.push(encode(i));
                    addr += 4;
                }
            }
            Item::La { rd, sym, line } => {
                let target = resolve(sym, *line)?;
                for i in expand_li(*rd, target as i32) {
                    text.push(encode(i));
                    addr += 4;
                }
                // `la` is always 2 instructions for stable layout.
                if expand_li(*rd, target as i32).len() == 1 {
                    text.push(encode(Instr::OpImm { op: AluOp::Add, rd: *rd, rs1: *rd, imm: 0 }));
                    addr += 4;
                }
            }
            Item::CondBranch { op, rs1, rs2, target, line, relaxed } => {
                let t = resolve(target, *line)?;
                if *relaxed {
                    // Inverted branch over an unconditional jump.
                    let inv = invert(*op);
                    text.push(encode(Instr::Branch { op: inv, rs1: *rs1, rs2: *rs2, off: 8 }));
                    addr += 4;
                    let off = t as i64 - addr as i64;
                    if !(-(1 << 20)..(1 << 20)).contains(&off) {
                        return Err(AsmError {
                            line: *line,
                            msg: format!("branch target `{target}` out of range ({off})"),
                        });
                    }
                    text.push(encode(Instr::Jal { rd: Reg::ZERO, off: off as i32 }));
                    addr += 4;
                } else {
                    let off = t as i64 - addr as i64;
                    text.push(encode(Instr::Branch {
                        op: *op,
                        rs1: *rs1,
                        rs2: *rs2,
                        off: off as i32,
                    }));
                    addr += 4;
                }
            }
            Item::Bytes(_) | Item::Align(_) => {
                return Err(AsmError { line: 0, msg: "data directive in .text".into() })
            }
        }
    }

    Ok(Program { text_base: layout.text_base, text, data_base: layout.data_base, data, symbols })
}

fn invert(op: BranchOp) -> BranchOp {
    match op {
        BranchOp::Eq => BranchOp::Ne,
        BranchOp::Ne => BranchOp::Eq,
        BranchOp::Lt => BranchOp::Ge,
        BranchOp::Ge => BranchOp::Lt,
        BranchOp::Ltu => BranchOp::Geu,
        BranchOp::Geu => BranchOp::Ltu,
    }
}

fn item_size(item: &Item) -> u32 {
    match item {
        Item::Label(_) => 0,
        Item::Instr { .. } => 4,
        Item::Li { imm, .. } => 4 * expand_li(Reg::ZERO, *imm as i32).len() as u32,
        Item::La { .. } => 8,
        Item::CondBranch { relaxed, .. } => {
            if *relaxed {
                8
            } else {
                4
            }
        }
        Item::Bytes(b) => b.len() as u32,
        Item::Align(_) => 0, // alignment in .text is handled as labels only
    }
}

/// Expand `li rd, imm` into `lui`/`addi` as needed.
pub fn expand_li(rd: Reg, imm: i32) -> Vec<Instr> {
    if (-2048..2048).contains(&imm) {
        vec![Instr::OpImm { op: AluOp::Add, rd, rs1: Reg::ZERO, imm }]
    } else {
        // hi/lo split with rounding so that hi<<12 + sext(lo) == imm.
        let lo = (imm << 20) >> 20;
        let hi = (imm.wrapping_sub(lo) as u32) >> 12;
        let mut v = vec![Instr::Lui { rd, imm: hi as i32 }];
        if lo != 0 {
            v.push(Instr::OpImm { op: AluOp::Add, rd, rs1: rd, imm: lo });
        }
        v
    }
}

fn parse(source: &str) -> Result<(Vec<Item>, Vec<Item>), AsmError> {
    let mut text = Vec::new();
    let mut data = Vec::new();
    let mut section = Section::Text;
    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let mut s = raw;
        if let Some(pos) = s.find(['#', ';']) {
            s = &s[..pos];
        }
        let mut s = s.trim();
        // Labels (possibly several) at the start of the line.
        while let Some(colon) = s.find(':') {
            let (label, rest) = s.split_at(colon);
            let label = label.trim();
            if label.is_empty()
                || !label.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
            {
                break;
            }
            let item = Item::Label(label.to_string());
            match section {
                Section::Text => text.push(item),
                Section::Data => data.push(item),
            }
            s = rest[1..].trim();
        }
        if s.is_empty() {
            continue;
        }
        let (mnemonic, rest) = match s.find(char::is_whitespace) {
            Some(p) => (&s[..p], s[p..].trim()),
            None => (s, ""),
        };
        let err = |msg: String| AsmError { line, msg };
        if let Some(directive) = mnemonic.strip_prefix('.') {
            match directive {
                "text" => section = Section::Text,
                "data" => section = Section::Data,
                "globl" | "global" | "section" | "type" | "size" | "option" | "file"
                | "attribute" => {}
                "word" => {
                    let mut bytes = Vec::new();
                    for part in split_operands(rest) {
                        let v = parse_imm(&part)
                            .ok_or_else(|| err(format!("bad .word operand `{part}`")))?;
                        bytes.extend_from_slice(&(v as u32).to_le_bytes());
                    }
                    push_data(section, &mut text, &mut data, Item::Bytes(bytes), line)?;
                }
                "byte" => {
                    let mut bytes = Vec::new();
                    for part in split_operands(rest) {
                        let v = parse_imm(&part)
                            .ok_or_else(|| err(format!("bad .byte operand `{part}`")))?;
                        bytes.push(v as u8);
                    }
                    push_data(section, &mut text, &mut data, Item::Bytes(bytes), line)?;
                }
                "zero" | "space" => {
                    let n = parse_imm(rest).ok_or_else(|| err(format!("bad .zero `{rest}`")))?;
                    push_data(
                        section,
                        &mut text,
                        &mut data,
                        Item::Bytes(vec![0; n as usize]),
                        line,
                    )?;
                }
                "align" | "balign" => {
                    let n = parse_imm(rest).ok_or_else(|| err(format!("bad .align `{rest}`")))?;
                    let bytes = if directive == "align" { 1u32 << n } else { n as u32 };
                    push_data(section, &mut text, &mut data, Item::Align(bytes), line)?;
                }
                other => return Err(err(format!("unknown directive `.{other}`"))),
            }
            continue;
        }
        if section == Section::Data {
            return Err(err("instruction in .data section".into()));
        }
        let item = parse_instr(mnemonic, rest, line)?;
        text.extend(item);
    }
    Ok((text, data))
}

fn push_data(
    section: Section,
    text: &mut Vec<Item>,
    data: &mut Vec<Item>,
    item: Item,
    line: usize,
) -> Result<(), AsmError> {
    match section {
        Section::Data => {
            data.push(item);
            Ok(())
        }
        Section::Text => match item {
            // Allow .align in text as a no-op (everything is 4-aligned).
            Item::Align(_) => {
                text.push(Item::Label(format!(".align.{line}")));
                Ok(())
            }
            _ => Err(AsmError { line, msg: "data directive in .text is not supported".into() }),
        },
    }
}

fn split_operands(s: &str) -> Vec<String> {
    s.split(',').map(|p| p.trim().to_string()).filter(|p| !p.is_empty()).collect()
}

fn parse_imm(s: &str) -> Option<i64> {
    let s = s.trim();
    let (neg, s) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let v = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()? as i64
    } else if let Some(bin) = s.strip_prefix("0b") {
        u64::from_str_radix(bin, 2).ok()? as i64
    } else {
        s.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

fn parse_reg(s: &str, line: usize) -> Result<Reg, AsmError> {
    let s = s.trim();
    let s = if s == "fp" { "s0" } else { s };
    Reg::parse(s).ok_or_else(|| AsmError { line, msg: format!("bad register `{s}`") })
}

/// Parse `off(reg)` memory operand syntax.
fn parse_mem(s: &str, line: usize) -> Result<(i32, Reg), AsmError> {
    let s = s.trim();
    let open = s
        .find('(')
        .ok_or_else(|| AsmError { line, msg: format!("expected off(reg), got `{s}`") })?;
    let close = s
        .rfind(')')
        .ok_or_else(|| AsmError { line, msg: format!("expected off(reg), got `{s}`") })?;
    let off_str = s[..open].trim();
    let off = if off_str.is_empty() {
        0
    } else {
        parse_imm(off_str)
            .ok_or_else(|| AsmError { line, msg: format!("bad offset `{off_str}`") })?
            as i32
    };
    let reg = parse_reg(&s[open + 1..close], line)?;
    Ok((off, reg))
}

fn parse_instr(mnemonic: &str, rest: &str, line: usize) -> Result<Vec<Item>, AsmError> {
    let ops = split_operands(rest);
    let err = |msg: String| AsmError { line, msg };
    let need = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(AsmError {
                line,
                msg: format!("`{mnemonic}` expects {n} operands, got {}", ops.len()),
            })
        }
    };
    let reg = |i: usize| parse_reg(&ops[i], line);
    let imm = |i: usize| {
        parse_imm(&ops[i]).ok_or_else(|| AsmError { line, msg: format!("bad imm `{}`", ops[i]) })
    };
    let simple = |instr: Instr| Ok(vec![Item::Instr { instr, target: None, line }]);
    let jump_to = |rd: Reg, t: &str| {
        if let Some(v) = parse_imm(t) {
            simple(Instr::Jal { rd, off: v as i32 })
        } else {
            Ok(vec![Item::Instr {
                instr: Instr::Jal { rd, off: 0 },
                target: Some(t.to_string()),
                line,
            }])
        }
    };
    let branch = |op: BranchOp, rs1: Reg, rs2: Reg, t: &str| -> Result<Vec<Item>, AsmError> {
        if let Some(v) = parse_imm(t) {
            simple(Instr::Branch { op, rs1, rs2, off: v as i32 })
        } else {
            Ok(vec![Item::CondBranch { op, rs1, rs2, target: t.to_string(), line, relaxed: false }])
        }
    };

    match mnemonic {
        // --- U-type ---
        "lui" => {
            need(2)?;
            simple(Instr::Lui { rd: reg(0)?, imm: imm(1)? as i32 })
        }
        "auipc" => {
            need(2)?;
            simple(Instr::Auipc { rd: reg(0)?, imm: imm(1)? as i32 })
        }
        // --- jumps ---
        "jal" => match ops.len() {
            1 => jump_to(Reg::RA, &ops[0]),
            2 => jump_to(reg(0)?, &ops[1]),
            n => Err(err(format!("`jal` expects 1-2 operands, got {n}"))),
        },
        "jalr" => match ops.len() {
            1 => simple(Instr::Jalr { rd: Reg::RA, rs1: reg(0)?, off: 0 }),
            3 => simple(Instr::Jalr { rd: reg(0)?, rs1: reg(1)?, off: imm(2)? as i32 }),
            2 => {
                let (off, rs1) = parse_mem(&ops[1], line)?;
                simple(Instr::Jalr { rd: reg(0)?, rs1, off })
            }
            n => Err(err(format!("`jalr` expects 1-3 operands, got {n}"))),
        },
        "j" => {
            need(1)?;
            jump_to(Reg::ZERO, &ops[0])
        }
        "jr" => {
            need(1)?;
            simple(Instr::Jalr { rd: Reg::ZERO, rs1: reg(0)?, off: 0 })
        }
        "call" => {
            need(1)?;
            jump_to(Reg::RA, &ops[0])
        }
        "tail" => {
            need(1)?;
            jump_to(Reg::ZERO, &ops[0])
        }
        "ret" => {
            need(0)?;
            simple(Instr::Jalr { rd: Reg::ZERO, rs1: Reg::RA, off: 0 })
        }
        // --- branches ---
        "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
            need(3)?;
            let op = match mnemonic {
                "beq" => BranchOp::Eq,
                "bne" => BranchOp::Ne,
                "blt" => BranchOp::Lt,
                "bge" => BranchOp::Ge,
                "bltu" => BranchOp::Ltu,
                _ => BranchOp::Geu,
            };
            branch(op, reg(0)?, reg(1)?, &ops[2])
        }
        "bgt" | "ble" | "bgtu" | "bleu" => {
            need(3)?;
            let op = match mnemonic {
                "bgt" => BranchOp::Lt,
                "ble" => BranchOp::Ge,
                "bgtu" => BranchOp::Ltu,
                _ => BranchOp::Geu,
            };
            // Swapped-operand forms.
            branch(op, reg(1)?, reg(0)?, &ops[2])
        }
        "beqz" | "bnez" | "bltz" | "bgez" => {
            need(2)?;
            let op = match mnemonic {
                "beqz" => BranchOp::Eq,
                "bnez" => BranchOp::Ne,
                "bltz" => BranchOp::Lt,
                _ => BranchOp::Ge,
            };
            branch(op, reg(0)?, Reg::ZERO, &ops[1])
        }
        "blez" => {
            need(2)?;
            branch(BranchOp::Ge, Reg::ZERO, reg(0)?, &ops[1])
        }
        "bgtz" => {
            need(2)?;
            branch(BranchOp::Lt, Reg::ZERO, reg(0)?, &ops[1])
        }
        // --- loads/stores ---
        "lb" | "lh" | "lw" | "lbu" | "lhu" => {
            need(2)?;
            let op = match mnemonic {
                "lb" => LoadOp::Lb,
                "lh" => LoadOp::Lh,
                "lw" => LoadOp::Lw,
                "lbu" => LoadOp::Lbu,
                _ => LoadOp::Lhu,
            };
            let (off, rs1) = parse_mem(&ops[1], line)?;
            simple(Instr::Load { op, rd: reg(0)?, rs1, off })
        }
        "sb" | "sh" | "sw" => {
            need(2)?;
            let op = match mnemonic {
                "sb" => StoreOp::Sb,
                "sh" => StoreOp::Sh,
                _ => StoreOp::Sw,
            };
            let (off, rs1) = parse_mem(&ops[1], line)?;
            simple(Instr::Store { op, rs1, rs2: reg(0)?, off })
        }
        // --- ALU immediate ---
        "addi" | "slti" | "sltiu" | "xori" | "ori" | "andi" | "slli" | "srli" | "srai" => {
            need(3)?;
            let op = match mnemonic {
                "addi" => AluOp::Add,
                "slti" => AluOp::Slt,
                "sltiu" => AluOp::Sltu,
                "xori" => AluOp::Xor,
                "ori" => AluOp::Or,
                "andi" => AluOp::And,
                "slli" => AluOp::Sll,
                "srli" => AluOp::Srl,
                _ => AluOp::Sra,
            };
            simple(Instr::OpImm { op, rd: reg(0)?, rs1: reg(1)?, imm: imm(2)? as i32 })
        }
        // --- ALU register ---
        "add" | "sub" | "sll" | "slt" | "sltu" | "xor" | "srl" | "sra" | "or" | "and" | "mul"
        | "mulh" | "mulhsu" | "mulhu" | "div" | "divu" | "rem" | "remu" => {
            need(3)?;
            let op = match mnemonic {
                "add" => AluOp::Add,
                "sub" => AluOp::Sub,
                "sll" => AluOp::Sll,
                "slt" => AluOp::Slt,
                "sltu" => AluOp::Sltu,
                "xor" => AluOp::Xor,
                "srl" => AluOp::Srl,
                "sra" => AluOp::Sra,
                "or" => AluOp::Or,
                "and" => AluOp::And,
                "mul" => AluOp::Mul,
                "mulh" => AluOp::Mulh,
                "mulhsu" => AluOp::Mulhsu,
                "mulhu" => AluOp::Mulhu,
                "div" => AluOp::Div,
                "divu" => AluOp::Divu,
                "rem" => AluOp::Rem,
                _ => AluOp::Remu,
            };
            simple(Instr::Op { op, rd: reg(0)?, rs1: reg(1)?, rs2: reg(2)? })
        }
        // --- pseudo ---
        "li" => {
            need(2)?;
            Ok(vec![Item::Li { rd: reg(0)?, imm: imm(1)? }])
        }
        "la" => {
            need(2)?;
            Ok(vec![Item::La { rd: reg(0)?, sym: ops[1].clone(), line }])
        }
        "mv" => {
            need(2)?;
            simple(Instr::OpImm { op: AluOp::Add, rd: reg(0)?, rs1: reg(1)?, imm: 0 })
        }
        "not" => {
            need(2)?;
            simple(Instr::OpImm { op: AluOp::Xor, rd: reg(0)?, rs1: reg(1)?, imm: -1 })
        }
        "neg" => {
            need(2)?;
            simple(Instr::Op { op: AluOp::Sub, rd: reg(0)?, rs1: Reg::ZERO, rs2: reg(1)? })
        }
        "seqz" => {
            need(2)?;
            simple(Instr::OpImm { op: AluOp::Sltu, rd: reg(0)?, rs1: reg(1)?, imm: 1 })
        }
        "snez" => {
            need(2)?;
            simple(Instr::Op { op: AluOp::Sltu, rd: reg(0)?, rs1: Reg::ZERO, rs2: reg(1)? })
        }
        "nop" => {
            need(0)?;
            simple(Instr::OpImm { op: AluOp::Add, rd: Reg::ZERO, rs1: Reg::ZERO, imm: 0 })
        }
        "fence" => simple(Instr::Fence),
        "ecall" => {
            need(0)?;
            simple(Instr::Ecall)
        }
        "ebreak" => {
            need(0)?;
            simple(Instr::Ebreak)
        }
        other => Err(err(format!("unknown mnemonic `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_program() {
        let p = assemble(
            "
            .text
            main:
                li a0, 42        # the answer
                li a1, 0x12345678
                mv a2, a0
                ebreak
            ",
        )
        .unwrap();
        assert_eq!(p.address_of("main"), Some(0));
        // li 42 = 1 instr, li 0x12345678 = 2 instrs, mv = 1, ebreak = 1.
        assert_eq!(p.text.len(), 5);
    }

    #[test]
    fn data_section_and_symbols() {
        let p = assemble(
            "
            .text
            start:
                la a0, buf
                lw a1, 0(a0)
                ebreak
            .data
            buf: .word 0xdeadbeef, 2
            tail: .byte 1, 2, 3
            pad: .zero 5
            aligned: .align 2
            w: .word 7
            ",
        )
        .unwrap();
        assert_eq!(p.address_of("buf"), Some(0x2000_0000));
        assert_eq!(p.address_of("tail"), Some(0x2000_0008));
        assert_eq!(p.address_of("pad"), Some(0x2000_000B));
        assert_eq!(p.address_of("w"), Some(0x2000_0010));
        assert_eq!(&p.data[0..4], &[0xEF, 0xBE, 0xAD, 0xDE]);
        assert_eq!(p.data[0x10], 7);
    }

    #[test]
    fn branch_relaxation() {
        // A branch across >4 KiB of code must be relaxed.
        let mut src = String::from(".text\nstart:\n beq a0, a1, far\n");
        for _ in 0..2000 {
            src.push_str(" nop\n");
        }
        src.push_str("far: ebreak\n");
        let p = assemble(&src).unwrap();
        // relaxed: bne +8; jal far
        let i0 = crate::decode::decode(p.text[0]).unwrap();
        assert!(matches!(i0, Instr::Branch { op: BranchOp::Ne, off: 8, .. }));
        let i1 = crate::decode::decode(p.text[1]).unwrap();
        match i1 {
            Instr::Jal { rd, off } => {
                assert_eq!(rd, Reg::ZERO);
                assert_eq!(4 + off as u32, p.address_of("far").unwrap());
            }
            other => panic!("expected jal, got {other:?}"),
        }
    }

    #[test]
    fn errors_reported_with_line() {
        let e = assemble(".text\n add a0, a1\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = assemble(".text\n j nowhere\n").unwrap_err();
        assert!(e.msg.contains("nowhere"));
        let e = assemble(".text\n frobnicate a0\n").unwrap_err();
        assert!(e.msg.contains("frobnicate"));
    }

    #[test]
    fn li_hi_lo_split_negative_lo() {
        // Immediates whose low 12 bits are >= 0x800 need a hi adjustment.
        for &imm in &[0x12345FFFu32 as i32, -1, 0x7FFFF800, i32::MIN, 0x800] {
            let is = expand_li(Reg::A0, imm);
            // Emulate.
            let mut v = 0i64;
            for i in is {
                match i {
                    Instr::Lui { imm, .. } => v = ((imm as u32) << 12) as i32 as i64,
                    Instr::OpImm { op: AluOp::Add, imm, .. } => {
                        v = (v as i32).wrapping_add(imm) as i64
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            assert_eq!(v as i32, imm, "li {imm:#x}");
        }
    }
}

#[cfg(test)]
mod pseudo_tests {
    use super::*;
    use crate::machine::Machine;

    fn run(src: &str) -> Machine {
        let p = assemble(src).unwrap();
        let mut m = Machine::with_program(&p);
        m.run(100_000).unwrap();
        m
    }

    #[test]
    fn swapped_branch_forms() {
        let m = run("
                li t0, 5
                li t1, 3
                li a0, 0
                bgt t0, t1, one     # 5 > 3: taken
                j end
            one:
                ori a0, a0, 1
                ble t1, t0, two     # 3 <= 5: taken
                j end
            two:
                ori a0, a0, 2
                bgtu t1, t0, end    # 3 > 5 unsigned: not taken
                ori a0, a0, 4
                bleu t0, t1, end    # 5 <= 3 unsigned: not taken
                ori a0, a0, 8
            end:
                ebreak
            ");
        assert_eq!(m.reg(Reg::A0), 0b1111);
    }

    #[test]
    fn zero_compare_pseudos() {
        let m = run("
                li t0, 0
                li t1, -7
                seqz a0, t0        # 1
                snez a1, t1        # 1
                li a2, 0
                bltz t1, neg
                j end
            neg:
                ori a2, a2, 1
                bgez t0, nonneg
                j end
            nonneg:
                ori a2, a2, 2
                blez t0, le
                j end
            le:
                ori a2, a2, 4
                bgtz t1, end
                ori a2, a2, 8
            end:
                ebreak
            ");
        assert_eq!(m.reg(Reg::A0), 1);
        assert_eq!(m.reg(Reg::A1), 1);
        assert_eq!(m.reg(Reg::A2), 0b1111);
    }

    #[test]
    fn not_neg_mv() {
        let m = run("
            li t0, 0x0f0f0f0f
            not a0, t0
            neg a1, t0
            mv a2, t0
            ebreak
            ");
        assert_eq!(m.reg(Reg::A0), 0xF0F0F0F0);
        assert_eq!(m.reg(Reg::A1), 0x0F0F0F0Fu32.wrapping_neg());
        assert_eq!(m.reg(Reg::A2), 0x0F0F0F0F);
    }

    #[test]
    fn tail_and_jr() {
        let m = run("
            main:
                la t0, target
                jr t0
                li a0, 99
            target:
                li a0, 42
                ebreak
            ");
        assert_eq!(m.reg(Reg::A0), 42);
    }

    #[test]
    fn jalr_memory_operand_form() {
        let m = run("
            main:
                la t0, fn_minus4
                jalr ra, 4(t0)
                ebreak
            fn_minus4:
                nop
                li a0, 7
                ret
            ");
        // jalr to t0+4 skips the nop.
        assert_eq!(m.reg(Reg::A0), 7);
    }

    #[test]
    fn negative_hex_immediates() {
        let m = run("li a0, -0x10\nebreak");
        assert_eq!(m.reg(Reg::A0) as i32, -16);
    }

    #[test]
    fn disassembly_roundtrips_labels() {
        let p = assemble("main:\n li a0, 1\n j main").unwrap();
        let d = p.disassemble();
        assert!(d.contains("main:"), "{d}");
        assert!(d.contains("addi a0, zero, 1"), "{d}");
    }
}

#[cfg(test)]
mod range_tests {
    use super::*;

    #[test]
    fn jal_out_of_range_is_an_error() {
        // Place the target beyond the ±1 MiB jal range using .zero is
        // not possible in .text, so simulate with a huge nop run via
        // data-section symbol distance instead: a data label at
        // 0x2000_0000 is far outside jal range from text at 0.
        let e = assemble(".text\n j faraway\n.data\nfaraway: .word 0\n").unwrap_err();
        assert!(e.msg.contains("out of range"), "{e}");
    }

    #[test]
    fn branch_to_data_symbol_relaxes_to_jal_or_errors() {
        // A conditional branch to a data-section label relaxes to
        // an inverted branch over jal; the jal then detects the range
        // violation.
        let e = assemble(".text\n beq a0, a1, faraway\n.data\nfaraway: .word 0\n");
        assert!(e.is_err());
    }

    #[test]
    fn duplicate_labels_last_wins_is_not_allowed_semantically() {
        // The assembler accepts duplicate labels (last definition wins);
        // make the behaviour explicit so firmware generators can rely
        // on it deterministically.
        let p = assemble("a:\n li a0, 1\na:\n li a0, 2\n ebreak").unwrap();
        // `a` resolves to the later definition.
        assert_eq!(p.address_of("a"), Some(4));
    }

    #[test]
    fn immediates_out_of_encoding_range_panic_in_encode() {
        // The assembler's li expands large immediates instead of
        // overflowing addi.
        let p = assemble("li a0, 1000000\nebreak").unwrap();
        assert!(p.text.len() >= 3);
    }
}
