//! Binary encoding of RV32IM instructions.

use crate::isa::{AluOp, BranchOp, Instr, LoadOp, Reg, StoreOp};

fn r(op: u32, rd: Reg, f3: u32, rs1: Reg, rs2: Reg, f7: u32) -> u32 {
    op | ((rd.0 as u32) << 7)
        | (f3 << 12)
        | ((rs1.0 as u32) << 15)
        | ((rs2.0 as u32) << 20)
        | (f7 << 25)
}

fn i(op: u32, rd: Reg, f3: u32, rs1: Reg, imm: i32) -> u32 {
    op | ((rd.0 as u32) << 7) | (f3 << 12) | ((rs1.0 as u32) << 15) | (((imm as u32) & 0xFFF) << 20)
}

fn s(op: u32, f3: u32, rs1: Reg, rs2: Reg, imm: i32) -> u32 {
    let imm = imm as u32;
    op | ((imm & 0x1F) << 7)
        | (f3 << 12)
        | ((rs1.0 as u32) << 15)
        | ((rs2.0 as u32) << 20)
        | (((imm >> 5) & 0x7F) << 25)
}

fn b(f3: u32, rs1: Reg, rs2: Reg, off: i32) -> u32 {
    let off = off as u32;
    0x63 | (((off >> 11) & 1) << 7)
        | (((off >> 1) & 0xF) << 8)
        | (f3 << 12)
        | ((rs1.0 as u32) << 15)
        | ((rs2.0 as u32) << 20)
        | (((off >> 5) & 0x3F) << 25)
        | (((off >> 12) & 1) << 31)
}

fn u(op: u32, rd: Reg, imm: i32) -> u32 {
    op | ((rd.0 as u32) << 7) | ((imm as u32) << 12)
}

fn j(rd: Reg, off: i32) -> u32 {
    let off = off as u32;
    0x6F | ((rd.0 as u32) << 7)
        | (((off >> 12) & 0xFF) << 12)
        | (((off >> 11) & 1) << 20)
        | (((off >> 1) & 0x3FF) << 21)
        | (((off >> 20) & 1) << 31)
}

/// Encode an instruction to its 32-bit binary form.
///
/// # Panics
///
/// Panics if an immediate or offset is out of range for its encoding; the
/// assembler checks ranges before calling this.
pub fn encode(instr: Instr) -> u32 {
    match instr {
        Instr::Lui { rd, imm } => u(0x37, rd, imm),
        Instr::Auipc { rd, imm } => u(0x17, rd, imm),
        Instr::Jal { rd, off } => {
            assert!((-(1 << 20)..(1 << 20)).contains(&off) && off & 1 == 0, "jal offset {off}");
            j(rd, off)
        }
        Instr::Jalr { rd, rs1, off } => {
            assert!((-2048..2048).contains(&off), "jalr offset {off}");
            i(0x67, rd, 0, rs1, off)
        }
        Instr::Branch { op, rs1, rs2, off } => {
            assert!((-4096..4096).contains(&off) && off & 1 == 0, "branch offset {off}");
            let f3 = match op {
                BranchOp::Eq => 0,
                BranchOp::Ne => 1,
                BranchOp::Lt => 4,
                BranchOp::Ge => 5,
                BranchOp::Ltu => 6,
                BranchOp::Geu => 7,
            };
            b(f3, rs1, rs2, off)
        }
        Instr::Load { op, rd, rs1, off } => {
            assert!((-2048..2048).contains(&off), "load offset {off}");
            let f3 = match op {
                LoadOp::Lb => 0,
                LoadOp::Lh => 1,
                LoadOp::Lw => 2,
                LoadOp::Lbu => 4,
                LoadOp::Lhu => 5,
            };
            i(0x03, rd, f3, rs1, off)
        }
        Instr::Store { op, rs1, rs2, off } => {
            assert!((-2048..2048).contains(&off), "store offset {off}");
            let f3 = match op {
                StoreOp::Sb => 0,
                StoreOp::Sh => 1,
                StoreOp::Sw => 2,
            };
            s(0x23, f3, rs1, rs2, off)
        }
        Instr::OpImm { op, rd, rs1, imm } => match op {
            AluOp::Sll => {
                assert!((0..32).contains(&imm), "slli shamt {imm}");
                i(0x13, rd, 1, rs1, imm)
            }
            AluOp::Srl => {
                assert!((0..32).contains(&imm), "srli shamt {imm}");
                i(0x13, rd, 5, rs1, imm)
            }
            AluOp::Sra => {
                assert!((0..32).contains(&imm), "srai shamt {imm}");
                i(0x13, rd, 5, rs1, imm | 0x400)
            }
            _ => {
                assert!((-2048..2048).contains(&imm), "opimm immediate {imm}");
                let f3 = match op {
                    AluOp::Add => 0,
                    AluOp::Slt => 2,
                    AluOp::Sltu => 3,
                    AluOp::Xor => 4,
                    AluOp::Or => 6,
                    AluOp::And => 7,
                    _ => panic!("{op:?} has no immediate form"),
                };
                i(0x13, rd, f3, rs1, imm)
            }
        },
        Instr::Op { op, rd, rs1, rs2 } => {
            let (f3, f7) = match op {
                AluOp::Add => (0, 0),
                AluOp::Sub => (0, 0x20),
                AluOp::Sll => (1, 0),
                AluOp::Slt => (2, 0),
                AluOp::Sltu => (3, 0),
                AluOp::Xor => (4, 0),
                AluOp::Srl => (5, 0),
                AluOp::Sra => (5, 0x20),
                AluOp::Or => (6, 0),
                AluOp::And => (7, 0),
                AluOp::Mul => (0, 1),
                AluOp::Mulh => (1, 1),
                AluOp::Mulhsu => (2, 1),
                AluOp::Mulhu => (3, 1),
                AluOp::Div => (4, 1),
                AluOp::Divu => (5, 1),
                AluOp::Rem => (6, 1),
                AluOp::Remu => (7, 1),
            };
            r(0x33, rd, f3, rs1, rs2, f7)
        }
        Instr::Fence => 0x0000_000F,
        Instr::Ecall => 0x0000_0073,
        Instr::Ebreak => 0x0010_0073,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_encodings() {
        // Cross-checked against the RISC-V spec / gnu as output.
        assert_eq!(
            encode(Instr::OpImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::ZERO, imm: 1 }),
            0x0010_0513 // addi a0, zero, 1
        );
        assert_eq!(
            encode(Instr::Op { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A2 }),
            0x00C5_8533 // add a0, a1, a2
        );
        assert_eq!(encode(Instr::Ebreak), 0x0010_0073);
        assert_eq!(encode(Instr::Ecall), 0x0000_0073);
        assert_eq!(
            encode(Instr::Lui { rd: Reg::T0, imm: 0x12345 }),
            0x1234_52B7 // lui t0, 0x12345
        );
        assert_eq!(
            encode(Instr::Load { op: LoadOp::Lw, rd: Reg::A0, rs1: Reg::SP, off: 8 }),
            0x0081_2503 // lw a0, 8(sp)
        );
        assert_eq!(
            encode(Instr::Store { op: StoreOp::Sw, rs1: Reg::SP, rs2: Reg::A0, off: 8 }),
            0x00A1_2423 // sw a0, 8(sp)
        );
    }
}
