//! Binary decoding of RV32IM instructions.

use crate::isa::{AluOp, BranchOp, Instr, LoadOp, Reg, StoreOp};

/// An instruction word that could not be decoded as RV32IM.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodeError(pub u32);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "illegal instruction word {:#010x}", self.0)
    }
}

impl std::error::Error for DecodeError {}

fn sext(v: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((v << shift) as i32) >> shift
}

/// Decode a 32-bit word into an [`Instr`].
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    let opcode = word & 0x7F;
    let rd = Reg(((word >> 7) & 31) as u8);
    let f3 = (word >> 12) & 7;
    let rs1 = Reg(((word >> 15) & 31) as u8);
    let rs2 = Reg(((word >> 20) & 31) as u8);
    let f7 = word >> 25;
    let imm_i = sext(word >> 20, 12);
    match opcode {
        0x37 => Ok(Instr::Lui { rd, imm: (word >> 12) as i32 }),
        0x17 => Ok(Instr::Auipc { rd, imm: (word >> 12) as i32 }),
        0x6F => {
            let off = ((word >> 21) & 0x3FF) << 1
                | ((word >> 20) & 1) << 11
                | ((word >> 12) & 0xFF) << 12
                | ((word >> 31) & 1) << 20;
            Ok(Instr::Jal { rd, off: sext(off, 21) })
        }
        0x67 if f3 == 0 => Ok(Instr::Jalr { rd, rs1, off: imm_i }),
        0x63 => {
            let off = ((word >> 8) & 0xF) << 1
                | ((word >> 25) & 0x3F) << 5
                | ((word >> 7) & 1) << 11
                | ((word >> 31) & 1) << 12;
            let op = match f3 {
                0 => BranchOp::Eq,
                1 => BranchOp::Ne,
                4 => BranchOp::Lt,
                5 => BranchOp::Ge,
                6 => BranchOp::Ltu,
                7 => BranchOp::Geu,
                _ => return Err(DecodeError(word)),
            };
            Ok(Instr::Branch { op, rs1, rs2, off: sext(off, 13) })
        }
        0x03 => {
            let op = match f3 {
                0 => LoadOp::Lb,
                1 => LoadOp::Lh,
                2 => LoadOp::Lw,
                4 => LoadOp::Lbu,
                5 => LoadOp::Lhu,
                _ => return Err(DecodeError(word)),
            };
            Ok(Instr::Load { op, rd, rs1, off: imm_i })
        }
        0x23 => {
            let op = match f3 {
                0 => StoreOp::Sb,
                1 => StoreOp::Sh,
                2 => StoreOp::Sw,
                _ => return Err(DecodeError(word)),
            };
            let off = ((word >> 7) & 0x1F) | (f7 << 5);
            Ok(Instr::Store { op, rs1, rs2, off: sext(off, 12) })
        }
        0x13 => {
            let op = match f3 {
                0 => AluOp::Add,
                1 if f7 == 0 => AluOp::Sll,
                2 => AluOp::Slt,
                3 => AluOp::Sltu,
                4 => AluOp::Xor,
                5 if f7 == 0 => AluOp::Srl,
                5 if f7 == 0x20 => AluOp::Sra,
                6 => AluOp::Or,
                7 => AluOp::And,
                _ => return Err(DecodeError(word)),
            };
            let imm = match op {
                AluOp::Sll | AluOp::Srl | AluOp::Sra => imm_i & 31,
                _ => imm_i,
            };
            Ok(Instr::OpImm { op, rd, rs1, imm })
        }
        0x33 => {
            let op = match (f7, f3) {
                (0, 0) => AluOp::Add,
                (0x20, 0) => AluOp::Sub,
                (0, 1) => AluOp::Sll,
                (0, 2) => AluOp::Slt,
                (0, 3) => AluOp::Sltu,
                (0, 4) => AluOp::Xor,
                (0, 5) => AluOp::Srl,
                (0x20, 5) => AluOp::Sra,
                (0, 6) => AluOp::Or,
                (0, 7) => AluOp::And,
                (1, 0) => AluOp::Mul,
                (1, 1) => AluOp::Mulh,
                (1, 2) => AluOp::Mulhsu,
                (1, 3) => AluOp::Mulhu,
                (1, 4) => AluOp::Div,
                (1, 5) => AluOp::Divu,
                (1, 6) => AluOp::Rem,
                (1, 7) => AluOp::Remu,
                _ => return Err(DecodeError(word)),
            };
            Ok(Instr::Op { op, rd, rs1, rs2 })
        }
        // Only the toolchain's canonical fence word: `Instr::Fence`
        // carries no fields, so accepting arbitrary fm/pred/succ bits
        // here would silently normalize them (breaking
        // encode(decode(w)) == w for the lint's CFG recovery).
        0x0F if word == 0x0000_000F => Ok(Instr::Fence),
        0x73 => match word {
            0x0000_0073 => Ok(Instr::Ecall),
            0x0010_0073 => Ok(Instr::Ebreak),
            _ => Err(DecodeError(word)),
        },
        _ => Err(DecodeError(word)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    /// Every encodable instruction must decode back to itself.
    #[test]
    fn roundtrip_exhaustive_ops() {
        let regs = [Reg::ZERO, Reg::RA, Reg::SP, Reg::A0, Reg::A5, Reg::T6, Reg::S11];
        let alu = [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Sll,
            AluOp::Slt,
            AluOp::Sltu,
            AluOp::Xor,
            AluOp::Srl,
            AluOp::Sra,
            AluOp::Or,
            AluOp::And,
            AluOp::Mul,
            AluOp::Mulh,
            AluOp::Mulhsu,
            AluOp::Mulhu,
            AluOp::Div,
            AluOp::Divu,
            AluOp::Rem,
            AluOp::Remu,
        ];
        for &rd in &regs {
            for &rs1 in &regs {
                for &rs2 in &regs {
                    for &op in &alu {
                        let i = Instr::Op { op, rd, rs1, rs2 };
                        assert_eq!(decode(encode(i)), Ok(i));
                    }
                }
            }
        }
    }

    #[test]
    fn roundtrip_immediates() {
        for imm in [-2048, -1, 0, 1, 7, 2047] {
            for op in [AluOp::Add, AluOp::Slt, AluOp::Sltu, AluOp::Xor, AluOp::Or, AluOp::And] {
                let i = Instr::OpImm { op, rd: Reg::A0, rs1: Reg::A1, imm };
                assert_eq!(decode(encode(i)), Ok(i));
            }
            let i = Instr::Load { op: LoadOp::Lw, rd: Reg::A0, rs1: Reg::SP, off: imm };
            assert_eq!(decode(encode(i)), Ok(i));
            let i = Instr::Store { op: StoreOp::Sb, rs1: Reg::SP, rs2: Reg::A0, off: imm };
            assert_eq!(decode(encode(i)), Ok(i));
            let i = Instr::Jalr { rd: Reg::RA, rs1: Reg::A0, off: imm };
            assert_eq!(decode(encode(i)), Ok(i));
        }
        for sh in 0..32 {
            for op in [AluOp::Sll, AluOp::Srl, AluOp::Sra] {
                let i = Instr::OpImm { op, rd: Reg::A0, rs1: Reg::A1, imm: sh };
                assert_eq!(decode(encode(i)), Ok(i));
            }
        }
    }

    #[test]
    fn roundtrip_branches_jumps() {
        for off in [-4096, -2, 0, 2, 4094] {
            for op in [
                BranchOp::Eq,
                BranchOp::Ne,
                BranchOp::Lt,
                BranchOp::Ge,
                BranchOp::Ltu,
                BranchOp::Geu,
            ] {
                let i = Instr::Branch { op, rs1: Reg::A0, rs2: Reg::A1, off };
                assert_eq!(decode(encode(i)), Ok(i));
            }
        }
        for off in [-(1 << 20), -2, 0, 2, (1 << 20) - 2] {
            let i = Instr::Jal { rd: Reg::RA, off };
            assert_eq!(decode(encode(i)), Ok(i));
        }
        for imm in [0, 1, 0xFFFFF] {
            let i = Instr::Lui { rd: Reg::A0, imm };
            assert_eq!(decode(encode(i)), Ok(i));
            let i = Instr::Auipc { rd: Reg::A0, imm };
            assert_eq!(decode(encode(i)), Ok(i));
        }
    }

    #[test]
    fn illegal_words_rejected() {
        assert!(decode(0).is_err());
        assert!(decode(0xFFFF_FFFF).is_err());
        assert!(decode(0x0000_00FF).is_err());
    }
}
