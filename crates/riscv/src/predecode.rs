//! Pre-decoded instruction streams for the cycle-accurate cores.
//!
//! The FPS checker's hot loop is `Soc::tick` → `Core::step`, and each
//! executed instruction used to pay a ROM fetch through the bus plus a
//! full [`decode`] of the same immutable word — every simulated cycle,
//! for hundreds of millions of cycles. A [`DecodeCache`] decodes the
//! whole ROM image once and serves `(word, Result<Instr, _>)` pairs by
//! pc, so the per-cycle cost collapses to one bounds-checked index.
//!
//! Caches are immutable and `Arc`-shared: a SoC snapshot (`Clone`)
//! shares its cache with the original, so the parallel checker's forked
//! worlds, the emulator's dummy SoC, and every mutant run over an
//! unchanged firmware image all decode each ROM word exactly once per
//! process. Sharing is keyed on the *image bytes* (plus base address)
//! via [`DecodeCache::shared`], so a tampered firmware gets its own
//! cache and can never observe the clean image's decode results.

use std::sync::{Arc, Mutex, OnceLock};

use crate::decode::{decode, DecodeError};
use crate::isa::Instr;

/// One ROM image, pre-decoded. Lookup never speculates: a pc outside
/// the image (or misaligned) is reported as uncovered and the core
/// falls back to its bus fetch + live decode, preserving the exact
/// uncached behavior (including bus faults).
pub struct DecodeCache {
    base: u32,
    /// The image this cache was built from, kept for exact identity
    /// comparison in the process-wide registry (hashes only pre-filter).
    image: Vec<u8>,
    hash: u64,
    entries: Vec<(u32, Result<Instr, DecodeError>)>,
}

impl DecodeCache {
    /// Pre-decode `image` as placed at `base`. Trailing bytes that do
    /// not fill a word are not covered (lookups there fall back).
    pub fn new(base: u32, image: &[u8]) -> DecodeCache {
        let entries = image
            .chunks_exact(4)
            .map(|c| {
                let w = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
                (w, decode(w))
            })
            .collect();
        DecodeCache { base, image: image.to_vec(), hash: fnv1a(image), entries }
    }

    /// The `(word, decoded)` entry at `pc`, or `None` when the cache
    /// does not cover it (outside the image, or misaligned).
    #[inline]
    pub fn entry(&self, pc: u32) -> Option<&(u32, Result<Instr, DecodeError>)> {
        let off = pc.wrapping_sub(self.base);
        if off & 3 != 0 {
            return None;
        }
        self.entries.get((off >> 2) as usize)
    }

    /// Base address the image was placed at.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Number of pre-decoded words.
    pub fn words(&self) -> usize {
        self.entries.len()
    }

    /// The process-wide shared cache for `(base, image)`: built on
    /// first request, returned by `Arc` thereafter. Identity is the
    /// full image bytes — two firmwares differing in any byte get
    /// distinct caches — so mutation runs over tampered images can
    /// never alias the clean image's cache.
    pub fn shared(base: u32, image: &[u8]) -> Arc<DecodeCache> {
        static REGISTRY: OnceLock<Mutex<Vec<Arc<DecodeCache>>>> = OnceLock::new();
        /// Distinct images a process realistically holds (apps ×
        /// platforms × a few tampered variants); beyond this the
        /// registry is dropped wholesale rather than grown unboundedly.
        const MAX_SHARED: usize = 64;
        let hash = fnv1a(image);
        let mut reg = REGISTRY.get_or_init(|| Mutex::new(Vec::new())).lock().unwrap();
        if let Some(c) = reg.iter().find(|c| c.hash == hash && c.base == base && c.image == image) {
            return Arc::clone(c);
        }
        if reg.len() >= MAX_SHARED {
            reg.clear();
        }
        let c = Arc::new(DecodeCache::new(base, image));
        reg.push(Arc::clone(&c));
        c
    }
}

/// FNV-1a over the image bytes: a cheap pre-filter for registry
/// lookups (full byte equality still decides).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::isa::Reg;

    fn image(words: &[u32]) -> Vec<u8> {
        words.iter().flat_map(|w| w.to_le_bytes()).collect()
    }

    #[test]
    fn entries_match_live_decode() {
        let words = [
            encode(Instr::OpImm { op: crate::isa::AluOp::Add, rd: Reg::A0, rs1: Reg::A1, imm: 7 }),
            0,           // illegal
            0xFFFF_FFFF, // illegal
            encode(Instr::Jal { rd: Reg::RA, off: -8 }),
        ];
        let cache = DecodeCache::new(0x100, &image(&words));
        assert_eq!(cache.words(), 4);
        for (i, &w) in words.iter().enumerate() {
            let (cw, instr) = cache.entry(0x100 + 4 * i as u32).unwrap();
            assert_eq!(*cw, w);
            assert_eq!(*instr, decode(w));
        }
    }

    #[test]
    fn uncovered_pcs_fall_back() {
        let cache = DecodeCache::new(0x100, &image(&[0x13])); // one word
        assert!(cache.entry(0x0FC).is_none(), "below base");
        assert!(cache.entry(0x104).is_none(), "past the image");
        assert!(cache.entry(0x102).is_none(), "misaligned");
        assert!(cache.entry(0x100).is_some());
    }

    #[test]
    fn shared_registry_dedupes_by_image_bytes() {
        let a = image(&[0x13, 0x6F]);
        let mut b = a.clone();
        b[0] ^= 1;
        let c1 = DecodeCache::shared(0, &a);
        let c2 = DecodeCache::shared(0, &a);
        let c3 = DecodeCache::shared(0, &b);
        assert!(Arc::ptr_eq(&c1, &c2), "same image shares one cache");
        assert!(!Arc::ptr_eq(&c1, &c3), "a tampered image gets its own cache");
    }

    #[test]
    fn trailing_partial_word_is_uncovered() {
        let mut img = image(&[0x13]);
        img.extend_from_slice(&[0xAA, 0xBB]); // 2 stray bytes
        let cache = DecodeCache::new(0, &img);
        assert_eq!(cache.words(), 1);
        assert!(cache.entry(4).is_none());
    }
}
