//! The whole-command state-machine interpretation of assembly code.
//!
//! This implements fig. 8 of the paper ("model-Asm"): the invocation of
//! the `handle` function is treated as a single atomic step of a state
//! machine whose state is the byte contents of the state buffer and whose
//! input/output are the command and response buffers.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::asm::Program;
use crate::isa::Reg;
use crate::machine::{Machine, RunError};

/// Entries the whole-command memo holds before it is dropped wholesale.
/// States and commands are tens of bytes, so this bounds the memo to a
/// few MB; real query streams repeat a handful of (state, command)
/// pairs, far below the cap.
const MEMO_CAP: usize = 4096;

/// Memo of completed whole-command steps, shared (via `Arc`) by every
/// clone of one [`AsmStateMachine`]. The step function is deterministic
/// — fig. 8 runs a fresh machine from nothing but (state, command) — so
/// a completed result can be replayed for free. Distinct machines
/// (e.g. a tampered program under mutation testing) never share a memo:
/// sharing follows the `Arc`, and the `Arc` follows the instance.
#[derive(Default)]
struct StepMemo {
    map: Mutex<HashMap<StepBytes, StepBytes>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// `(state, command)` as a memo key; `(state', response)` as its value.
type StepBytes = (Vec<u8>, Vec<u8>);

/// A whole-command state machine backed by an assembled `handle` function.
///
/// Each [`AsmStateMachine::step`] spins up a fresh abstract machine,
/// copies the state and command into machine memory, points `a0`/`a1`/`a2`
/// at the state, command, and response buffers per the RISC-V calling
/// convention, runs `handle` to completion, and reads the updated state
/// and the response back out — exactly the pseudocode of fig. 8.
#[derive(Clone)]
pub struct AsmStateMachine {
    program: Program,
    handle_addr: u32,
    /// Size in bytes of the state buffer.
    pub state_size: usize,
    /// Size in bytes of the command buffer.
    pub command_size: usize,
    /// Size in bytes of the response buffer.
    pub response_size: usize,
    /// Maximum instructions a single `handle` invocation may retire.
    pub fuel: u64,
    memo: Arc<StepMemo>,
}

impl AsmStateMachine {
    /// Create a model for `program`, whose `handle` symbol implements the
    /// step function.
    ///
    /// Returns `None` if the program has no `handle` symbol.
    pub fn new(
        program: Program,
        state_size: usize,
        command_size: usize,
        response_size: usize,
    ) -> Option<Self> {
        let handle_addr = program.address_of("handle")?;
        Some(AsmStateMachine {
            program,
            handle_addr,
            state_size,
            command_size,
            response_size,
            fuel: 200_000_000,
            memo: Arc::new(StepMemo::default()),
        })
    }

    /// The program backing this model.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Address of the `handle` entry point.
    pub fn handle_addr(&self) -> u32 {
        self.handle_addr
    }

    /// Build the machine poised to execute `handle(state, command, resp)`,
    /// without running it. Returns the machine and the three buffer
    /// pointers. Knox2 uses this to single-step the assembly level during
    /// synchronization.
    pub fn prepare(&self, state: &[u8], command: &[u8]) -> (Machine, u32, u32, u32) {
        assert_eq!(state.len(), self.state_size, "state buffer size");
        assert_eq!(command.len(), self.command_size, "command buffer size");
        let mut m = Machine::new();
        m.load_program(&self.program);
        m.setup_stack();
        let state_ptr = m.alloc(self.state_size as u32);
        m.storebytes(state_ptr, state);
        let command_ptr = m.alloc(self.command_size as u32);
        m.storebytes(command_ptr, command);
        let response_ptr = m.alloc(self.response_size as u32);
        m.set_reg(Reg::A0, state_ptr);
        m.set_reg(Reg::A1, command_ptr);
        m.set_reg(Reg::A2, response_ptr);
        // Return to a sentinel ebreak.
        let sentinel = crate::machine::STACK_TOP.wrapping_add(0x100);
        m.mem.store_u32(sentinel, crate::encode::encode(crate::isa::Instr::Ebreak));
        m.set_reg(Reg::RA, sentinel);
        m.pc = self.handle_addr;
        (m, state_ptr, command_ptr, response_ptr)
    }

    /// Execute one whole-command step: `(state, command) -> (state', response)`.
    ///
    /// Completed steps are memoized across every clone of this machine:
    /// the step function is a deterministic function of its two inputs,
    /// so an identical query — the checker's sequential oracle and its
    /// parallel legs, or one app verified on two platforms, all replay
    /// the same firmware against the same script — returns the recorded
    /// result without re-interpreting the `handle` call. Only `Ok`
    /// results are recorded; a hit replays a run that once completed
    /// within the fuel budget, so later *lowering* `self.fuel` does not
    /// retroactively turn recorded completions into `OutOfFuel`.
    pub fn step(&self, state: &[u8], command: &[u8]) -> Result<(Vec<u8>, Vec<u8>), RunError> {
        let key = (state.to_vec(), command.to_vec());
        if let Some(hit) = self.memo.map.lock().unwrap().get(&key) {
            self.memo.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit.clone());
        }
        let (mut m, state_ptr, _command_ptr, response_ptr) = self.prepare(state, command);
        m.run(self.fuel)?;
        let new_state = m.loadbytes(state_ptr, self.state_size);
        let response = m.loadbytes(response_ptr, self.response_size);
        self.memo.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = self.memo.map.lock().unwrap();
        if map.len() >= MEMO_CAP {
            map.clear();
        }
        map.insert(key, (new_state.clone(), response.clone()));
        Ok((new_state, response))
    }

    /// Drain the whole-command memo's (hits, misses) counters, shared
    /// across clones. Callers with a metrics registry flush these into
    /// it after a run (the crate itself stays dependency-free).
    pub fn take_memo_stats(&self) -> (u64, u64) {
        (self.memo.hits.swap(0, Ordering::Relaxed), self.memo.misses.swap(0, Ordering::Relaxed))
    }

    /// Count the instructions retired by one `handle` invocation.
    ///
    /// Used by timing-oriented checks: at the assembly level there is no
    /// notion of cycles, but a data-dependent instruction *count* is a
    /// strong hint that the circuit level will leak through timing.
    pub fn step_instret(&self, state: &[u8], command: &[u8]) -> Result<u64, RunError> {
        let (mut m, _, _, _) = self.prepare(state, command);
        m.run(self.fuel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    /// A toy handle: state is a 4-byte counter; command byte 0 selects
    /// increment (1) or read (2); response is 4 bytes.
    const TOY: &str = "
        handle:
            lbu t0, 0(a1)       # command tag
            lw t1, 0(a0)        # counter
            li t2, 1
            beq t0, t2, do_inc
            # read: response = counter, state unchanged
            sw t1, 0(a2)
            ret
        do_inc:
            addi t1, t1, 1
            sw t1, 0(a0)
            sw zero, 0(a2)
            ret
    ";

    #[test]
    fn whole_command_step() {
        let p = assemble(TOY).unwrap();
        let sm = AsmStateMachine::new(p, 4, 1, 4).unwrap();
        let s0 = vec![0, 0, 0, 0];
        let (s1, r1) = sm.step(&s0, &[1]).unwrap();
        assert_eq!(s1, vec![1, 0, 0, 0]);
        assert_eq!(r1, vec![0, 0, 0, 0]);
        let (s2, r2) = sm.step(&s1, &[2]).unwrap();
        assert_eq!(s2, s1, "read must not modify state");
        assert_eq!(r2, vec![1, 0, 0, 0]);
    }

    #[test]
    fn steps_are_deterministic_and_isolated() {
        let p = assemble(TOY).unwrap();
        let sm = AsmStateMachine::new(p, 4, 1, 4).unwrap();
        let s = vec![7, 0, 0, 0];
        let a = sm.step(&s, &[2]).unwrap();
        let b = sm.step(&s, &[2]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn missing_handle_symbol() {
        let p = assemble("main: ebreak").unwrap();
        assert!(AsmStateMachine::new(p, 4, 1, 4).is_none());
    }

    #[test]
    fn memo_replays_identical_queries_and_is_shared_by_clones() {
        let p = assemble(TOY).unwrap();
        let sm = AsmStateMachine::new(p, 4, 1, 4).unwrap();
        let s = vec![7, 0, 0, 0];
        let first = sm.step(&s, &[2]).unwrap();
        assert_eq!(sm.take_memo_stats(), (0, 1), "cold query misses");
        let again = sm.step(&s, &[2]).unwrap();
        assert_eq!(again, first, "memo hit is byte-identical");
        // A clone shares the memo (same Arc), so its query hits too.
        let clone = sm.clone();
        let cloned = clone.step(&s, &[2]).unwrap();
        assert_eq!(cloned, first);
        assert_eq!(sm.take_memo_stats(), (2, 0), "hit via original and via clone");
    }

    #[test]
    fn distinct_machines_never_share_a_memo() {
        // Same source assembled twice: two instances, two memos. A
        // tampered program under mutation testing must never observe
        // the clean instance's recorded steps.
        let a = AsmStateMachine::new(assemble(TOY).unwrap(), 4, 1, 4).unwrap();
        let b = AsmStateMachine::new(assemble(TOY).unwrap(), 4, 1, 4).unwrap();
        let s = vec![0, 0, 0, 0];
        a.step(&s, &[1]).unwrap();
        assert_eq!(a.take_memo_stats(), (0, 1));
        b.step(&s, &[1]).unwrap();
        assert_eq!(b.take_memo_stats(), (0, 1), "b computed its own step");
    }
}
