//! The whole-command state-machine interpretation of assembly code.
//!
//! This implements fig. 8 of the paper ("model-Asm"): the invocation of
//! the `handle` function is treated as a single atomic step of a state
//! machine whose state is the byte contents of the state buffer and whose
//! input/output are the command and response buffers.

use crate::asm::Program;
use crate::isa::Reg;
use crate::machine::{Machine, RunError};

/// A whole-command state machine backed by an assembled `handle` function.
///
/// Each [`AsmStateMachine::step`] spins up a fresh abstract machine,
/// copies the state and command into machine memory, points `a0`/`a1`/`a2`
/// at the state, command, and response buffers per the RISC-V calling
/// convention, runs `handle` to completion, and reads the updated state
/// and the response back out — exactly the pseudocode of fig. 8.
#[derive(Clone)]
pub struct AsmStateMachine {
    program: Program,
    handle_addr: u32,
    /// Size in bytes of the state buffer.
    pub state_size: usize,
    /// Size in bytes of the command buffer.
    pub command_size: usize,
    /// Size in bytes of the response buffer.
    pub response_size: usize,
    /// Maximum instructions a single `handle` invocation may retire.
    pub fuel: u64,
}

impl AsmStateMachine {
    /// Create a model for `program`, whose `handle` symbol implements the
    /// step function.
    ///
    /// Returns `None` if the program has no `handle` symbol.
    pub fn new(
        program: Program,
        state_size: usize,
        command_size: usize,
        response_size: usize,
    ) -> Option<Self> {
        let handle_addr = program.address_of("handle")?;
        Some(AsmStateMachine {
            program,
            handle_addr,
            state_size,
            command_size,
            response_size,
            fuel: 200_000_000,
        })
    }

    /// The program backing this model.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Address of the `handle` entry point.
    pub fn handle_addr(&self) -> u32 {
        self.handle_addr
    }

    /// Build the machine poised to execute `handle(state, command, resp)`,
    /// without running it. Returns the machine and the three buffer
    /// pointers. Knox2 uses this to single-step the assembly level during
    /// synchronization.
    pub fn prepare(&self, state: &[u8], command: &[u8]) -> (Machine, u32, u32, u32) {
        assert_eq!(state.len(), self.state_size, "state buffer size");
        assert_eq!(command.len(), self.command_size, "command buffer size");
        let mut m = Machine::new();
        m.load_program(&self.program);
        m.setup_stack();
        let state_ptr = m.alloc(self.state_size as u32);
        m.storebytes(state_ptr, state);
        let command_ptr = m.alloc(self.command_size as u32);
        m.storebytes(command_ptr, command);
        let response_ptr = m.alloc(self.response_size as u32);
        m.set_reg(Reg::A0, state_ptr);
        m.set_reg(Reg::A1, command_ptr);
        m.set_reg(Reg::A2, response_ptr);
        // Return to a sentinel ebreak.
        let sentinel = crate::machine::STACK_TOP.wrapping_add(0x100);
        m.mem.store_u32(sentinel, crate::encode::encode(crate::isa::Instr::Ebreak));
        m.set_reg(Reg::RA, sentinel);
        m.pc = self.handle_addr;
        (m, state_ptr, command_ptr, response_ptr)
    }

    /// Execute one whole-command step: `(state, command) -> (state', response)`.
    pub fn step(&self, state: &[u8], command: &[u8]) -> Result<(Vec<u8>, Vec<u8>), RunError> {
        let (mut m, state_ptr, _command_ptr, response_ptr) = self.prepare(state, command);
        m.run(self.fuel)?;
        let new_state = m.loadbytes(state_ptr, self.state_size);
        let response = m.loadbytes(response_ptr, self.response_size);
        Ok((new_state, response))
    }

    /// Count the instructions retired by one `handle` invocation.
    ///
    /// Used by timing-oriented checks: at the assembly level there is no
    /// notion of cycles, but a data-dependent instruction *count* is a
    /// strong hint that the circuit level will leak through timing.
    pub fn step_instret(&self, state: &[u8], command: &[u8]) -> Result<u64, RunError> {
        let (mut m, _, _, _) = self.prepare(state, command);
        m.run(self.fuel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    /// A toy handle: state is a 4-byte counter; command byte 0 selects
    /// increment (1) or read (2); response is 4 bytes.
    const TOY: &str = "
        handle:
            lbu t0, 0(a1)       # command tag
            lw t1, 0(a0)        # counter
            li t2, 1
            beq t0, t2, do_inc
            # read: response = counter, state unchanged
            sw t1, 0(a2)
            ret
        do_inc:
            addi t1, t1, 1
            sw t1, 0(a0)
            sw zero, 0(a2)
            ret
    ";

    #[test]
    fn whole_command_step() {
        let p = assemble(TOY).unwrap();
        let sm = AsmStateMachine::new(p, 4, 1, 4).unwrap();
        let s0 = vec![0, 0, 0, 0];
        let (s1, r1) = sm.step(&s0, &[1]).unwrap();
        assert_eq!(s1, vec![1, 0, 0, 0]);
        assert_eq!(r1, vec![0, 0, 0, 0]);
        let (s2, r2) = sm.step(&s1, &[2]).unwrap();
        assert_eq!(s2, s1, "read must not modify state");
        assert_eq!(r2, vec![1, 0, 0, 0]);
    }

    #[test]
    fn steps_are_deterministic_and_isolated() {
        let p = assemble(TOY).unwrap();
        let sm = AsmStateMachine::new(p, 4, 1, 4).unwrap();
        let s = vec![7, 0, 0, 0];
        let a = sm.step(&s, &[2]).unwrap();
        let b = sm.step(&s, &[2]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn missing_handle_symbol() {
        let p = assemble("main: ebreak").unwrap();
        assert!(AsmStateMachine::new(p, 4, 1, 4).is_none());
    }
}
