//! The Riscette abstract machine: a single-steppable RV32IM interpreter.
//!
//! This is the Rust analogue of the paper's *Riscette* (§5.1): an
//! executable semantics for the assembly level of abstraction that can be
//! stepped instruction-by-instruction, which Knox2 uses for
//! assembly-circuit synchronization, and that exposes a CompCert-style
//! buffer API (`alloc` / `storebytes` / `loadbytes`) used by the
//! whole-command state machine interpretation (fig. 8).
//!
//! Memory is sparse and paged, so images can live at arbitrary addresses
//! (ROM at 0x0000_0000, RAM at 0x2000_0000, a heap for whole-command
//! buffers at 0x4000_0000, an abstract stack near 0x7FFF_0000).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

use crate::asm::Program;
use crate::decode::decode;
use crate::isa::{Instr, Reg};
use crate::predecode::DecodeCache;

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: u32 = 1 << PAGE_BITS;

/// Multiplicative hasher for page indices. Page numbers are small,
/// dense, attacker-independent integers, so the default SipHash's
/// collision resistance buys nothing while its cost lands on every
/// memory access of the interpreter; one xor-rotate-multiply round
/// (the fxhash recipe) spreads them across the table just as well.
#[derive(Default)]
struct PageHasher(u64);

impl Hasher for PageHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u32(u32::from(b));
        }
    }

    fn write_u32(&mut self, n: u32) {
        self.0 = (self.0.rotate_left(5) ^ u64::from(n)).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

type PageMap = HashMap<u32, Box<[u8; PAGE_SIZE as usize]>, BuildHasherDefault<PageHasher>>;

/// Base of the bump-allocated heap used by [`Machine::alloc`].
pub const HEAP_BASE: u32 = 0x4000_0000;
/// Initial stack pointer used by [`Machine::setup_stack`].
pub const STACK_TOP: u32 = 0x7FFF_F000;

/// Sparse paged byte-addressable memory.
///
/// Word and multi-byte accesses that stay within one page resolve the
/// page once and then index the page array directly; only accesses
/// spanning a page boundary fall back to byte-at-a-time resolution.
/// Either path reads unwritten memory as zero.
#[derive(Clone, Default)]
pub struct Memory {
    pages: PageMap,
}

impl Memory {
    fn page_mut(&mut self, idx: u32) -> &mut [u8; PAGE_SIZE as usize] {
        self.pages.entry(idx).or_insert_with(|| Box::new([0; PAGE_SIZE as usize]))
    }

    /// Read one byte; unwritten memory reads as zero.
    pub fn load_u8(&self, addr: u32) -> u8 {
        match self.pages.get(&(addr >> PAGE_BITS)) {
            Some(p) => p[(addr & (PAGE_SIZE - 1)) as usize],
            None => 0,
        }
    }

    /// Write one byte.
    pub fn store_u8(&mut self, addr: u32, val: u8) {
        self.page_mut(addr >> PAGE_BITS)[(addr & (PAGE_SIZE - 1)) as usize] = val;
    }

    /// Read a little-endian 32-bit word (byte-wise; no alignment demand).
    pub fn load_u32(&self, addr: u32) -> u32 {
        let off = (addr & (PAGE_SIZE - 1)) as usize;
        if off <= PAGE_SIZE as usize - 4 {
            return match self.pages.get(&(addr >> PAGE_BITS)) {
                Some(p) => u32::from_le_bytes([p[off], p[off + 1], p[off + 2], p[off + 3]]),
                None => 0,
            };
        }
        u32::from_le_bytes([
            self.load_u8(addr),
            self.load_u8(addr.wrapping_add(1)),
            self.load_u8(addr.wrapping_add(2)),
            self.load_u8(addr.wrapping_add(3)),
        ])
    }

    /// Write a little-endian 32-bit word.
    pub fn store_u32(&mut self, addr: u32, val: u32) {
        let off = (addr & (PAGE_SIZE - 1)) as usize;
        if off <= PAGE_SIZE as usize - 4 {
            self.page_mut(addr >> PAGE_BITS)[off..off + 4].copy_from_slice(&val.to_le_bytes());
            return;
        }
        for (i, b) in val.to_le_bytes().iter().enumerate() {
            self.store_u8(addr.wrapping_add(i as u32), *b);
        }
    }

    /// Read `len` bytes starting at `addr`.
    pub fn load_bytes(&self, addr: u32, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut addr = addr;
        let mut remaining = len;
        while remaining > 0 {
            let off = (addr & (PAGE_SIZE - 1)) as usize;
            let n = (PAGE_SIZE as usize - off).min(remaining);
            match self.pages.get(&(addr >> PAGE_BITS)) {
                Some(p) => out.extend_from_slice(&p[off..off + n]),
                None => out.resize(out.len() + n, 0),
            }
            addr = addr.wrapping_add(n as u32);
            remaining -= n;
        }
        out
    }

    /// Write `bytes` starting at `addr`.
    pub fn store_bytes(&mut self, addr: u32, bytes: &[u8]) {
        let mut addr = addr;
        let mut bytes = bytes;
        while !bytes.is_empty() {
            let off = (addr & (PAGE_SIZE - 1)) as usize;
            let n = (PAGE_SIZE as usize - off).min(bytes.len());
            self.page_mut(addr >> PAGE_BITS)[off..off + n].copy_from_slice(&bytes[..n]);
            addr = addr.wrapping_add(n as u32);
            bytes = &bytes[n..];
        }
    }
}

/// Why an instruction step trapped instead of completing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrapCause {
    /// The fetched word is not a valid RV32IM instruction.
    IllegalInstruction { pc: u32, word: u32 },
    /// A load/store address was not aligned to the access width.
    MisalignedAccess { pc: u32, addr: u32 },
    /// Instruction fetch from a non-4-aligned PC.
    MisalignedFetch { pc: u32 },
}

impl std::fmt::Display for TrapCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            TrapCause::IllegalInstruction { pc, word } => {
                write!(f, "illegal instruction {word:#010x} at pc={pc:#010x}")
            }
            TrapCause::MisalignedAccess { pc, addr } => {
                write!(f, "misaligned access to {addr:#010x} at pc={pc:#010x}")
            }
            TrapCause::MisalignedFetch { pc } => write!(f, "misaligned fetch at pc={pc:#010x}"),
        }
    }
}

impl std::error::Error for TrapCause {}

/// Result of a successful [`Machine::step`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// An ordinary instruction retired.
    Continue,
    /// An `ebreak` retired; by convention the machine halts.
    Break,
    /// An `ecall` retired; the environment decides what it means.
    Ecall,
}

/// The Riscette abstract machine state.
#[derive(Clone)]
pub struct Machine {
    /// Architectural registers; `regs[0]` is kept at zero.
    pub regs: [u32; 32],
    /// Program counter.
    pub pc: u32,
    /// Byte-addressable sparse memory.
    pub mem: Memory,
    /// Retired-instruction counter.
    pub instret: u64,
    /// Whether an `ebreak` has halted the machine.
    pub halted: bool,
    heap_next: u32,
    /// Pre-decoded text image, installed by [`Machine::load_program`]
    /// and shared process-wide by image bytes. Fetch verifies every hit
    /// against live memory (see [`Machine::next_instr`]), so the cache
    /// is a pure decode memo, never a source of truth.
    fetch: Option<Arc<DecodeCache>>,
}

impl Default for Machine {
    fn default() -> Self {
        Self::new()
    }
}

impl Machine {
    /// Create an empty machine (zeroed registers and memory).
    pub fn new() -> Self {
        Machine {
            regs: [0; 32],
            pc: 0,
            mem: Memory::default(),
            instret: 0,
            halted: false,
            heap_next: HEAP_BASE,
            fetch: None,
        }
    }

    /// Create a machine loaded with `program`, with the PC at the text base
    /// and the stack pointer initialized.
    pub fn with_program(program: &Program) -> Self {
        let mut m = Machine::new();
        m.load_program(program);
        m.setup_stack();
        m
    }

    /// Copy a program's text and data images into memory and set the PC.
    ///
    /// Also installs the process-shared pre-decoded cache for the text
    /// image, so every machine spun up over the same program (one per
    /// whole-command spec query) decodes each text word once per
    /// process instead of once per fetch.
    pub fn load_program(&mut self, program: &Program) {
        let text = program.text_bytes();
        self.mem.store_bytes(program.text_base, &text);
        self.mem.store_bytes(program.data_base, &program.data);
        self.pc = program.text_base;
        self.fetch = Some(DecodeCache::shared(program.text_base, &text));
    }

    /// Point `sp` at the abstract stack region.
    pub fn setup_stack(&mut self) {
        self.regs[Reg::SP.0 as usize] = STACK_TOP;
    }

    /// Bump-allocate `size` bytes in the machine heap (16-byte aligned),
    /// mirroring CompCert's `alloc` in the fig. 8 interpretation.
    pub fn alloc(&mut self, size: u32) -> u32 {
        let addr = self.heap_next;
        self.heap_next = self.heap_next.wrapping_add((size + 15) & !15);
        addr
    }

    /// Write bytes into machine memory (fig. 8 `storebytes`).
    pub fn storebytes(&mut self, addr: u32, bytes: &[u8]) {
        self.mem.store_bytes(addr, bytes);
    }

    /// Read bytes from machine memory (fig. 8 `loadbytes`).
    pub fn loadbytes(&self, addr: u32, len: usize) -> Vec<u8> {
        self.mem.load_bytes(addr, len)
    }

    /// Read a register (register 0 always reads zero).
    pub fn reg(&self, r: Reg) -> u32 {
        if r == Reg::ZERO {
            0
        } else {
            self.regs[r.0 as usize]
        }
    }

    /// Write a register (writes to register 0 are discarded).
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        if r != Reg::ZERO {
            self.regs[r.0 as usize] = v;
        }
    }

    /// The instruction the machine would execute next, if decodable.
    ///
    /// Fetch always reads the live memory word; the pre-decoded cache
    /// is consulted only as a decode memo, and only when its recorded
    /// word still equals the word in memory (the same verify-on-hit
    /// protocol as the cores' exec stage). A store into the text region
    /// simply stops matching, so even self-modifying code sees exact
    /// uncached semantics.
    pub fn next_instr(&self) -> Result<Instr, TrapCause> {
        let pc = self.pc;
        if pc & 3 != 0 {
            return Err(TrapCause::MisalignedFetch { pc });
        }
        let word = self.mem.load_u32(pc);
        match self.fetch.as_deref().and_then(|c| c.entry(pc)) {
            Some(&(cached_word, decoded)) if cached_word == word => decoded,
            _ => decode(word),
        }
        .map_err(|e| TrapCause::IllegalInstruction { pc, word: e.0 })
    }

    /// Execute one instruction.
    pub fn step(&mut self) -> Result<StepOutcome, TrapCause> {
        let instr = self.next_instr()?;
        self.execute(instr)
    }

    /// Execute a pre-decoded instruction as if fetched at the current PC.
    pub fn execute(&mut self, instr: Instr) -> Result<StepOutcome, TrapCause> {
        use crate::isa::{LoadOp, StoreOp};
        let pc = self.pc;
        let mut next_pc = pc.wrapping_add(4);
        let mut outcome = StepOutcome::Continue;
        match instr {
            Instr::Lui { rd, imm } => self.set_reg(rd, (imm as u32) << 12),
            Instr::Auipc { rd, imm } => self.set_reg(rd, pc.wrapping_add((imm as u32) << 12)),
            Instr::Jal { rd, off } => {
                self.set_reg(rd, next_pc);
                next_pc = pc.wrapping_add(off as u32);
            }
            Instr::Jalr { rd, rs1, off } => {
                let target = self.reg(rs1).wrapping_add(off as u32) & !1;
                self.set_reg(rd, next_pc);
                next_pc = target;
            }
            Instr::Branch { op, rs1, rs2, off } => {
                if op.taken(self.reg(rs1), self.reg(rs2)) {
                    next_pc = pc.wrapping_add(off as u32);
                }
            }
            Instr::Load { op, rd, rs1, off } => {
                let addr = self.reg(rs1).wrapping_add(off as u32);
                let v = match op {
                    LoadOp::Lb => self.mem.load_u8(addr) as i8 as i32 as u32,
                    LoadOp::Lbu => self.mem.load_u8(addr) as u32,
                    LoadOp::Lh | LoadOp::Lhu => {
                        if addr & 1 != 0 {
                            return Err(TrapCause::MisalignedAccess { pc, addr });
                        }
                        let h = u16::from_le_bytes([
                            self.mem.load_u8(addr),
                            self.mem.load_u8(addr.wrapping_add(1)),
                        ]);
                        if op == LoadOp::Lh {
                            h as i16 as i32 as u32
                        } else {
                            h as u32
                        }
                    }
                    LoadOp::Lw => {
                        if addr & 3 != 0 {
                            return Err(TrapCause::MisalignedAccess { pc, addr });
                        }
                        self.mem.load_u32(addr)
                    }
                };
                self.set_reg(rd, v);
            }
            Instr::Store { op, rs1, rs2, off } => {
                let addr = self.reg(rs1).wrapping_add(off as u32);
                let v = self.reg(rs2);
                match op {
                    StoreOp::Sb => self.mem.store_u8(addr, v as u8),
                    StoreOp::Sh => {
                        if addr & 1 != 0 {
                            return Err(TrapCause::MisalignedAccess { pc, addr });
                        }
                        self.mem.store_u8(addr, v as u8);
                        self.mem.store_u8(addr.wrapping_add(1), (v >> 8) as u8);
                    }
                    StoreOp::Sw => {
                        if addr & 3 != 0 {
                            return Err(TrapCause::MisalignedAccess { pc, addr });
                        }
                        self.mem.store_u32(addr, v);
                    }
                }
            }
            Instr::OpImm { op, rd, rs1, imm } => {
                let v = op.eval(self.reg(rs1), imm as u32);
                self.set_reg(rd, v);
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                let v = op.eval(self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
            }
            Instr::Fence => {}
            Instr::Ecall => outcome = StepOutcome::Ecall,
            Instr::Ebreak => {
                self.halted = true;
                outcome = StepOutcome::Break;
            }
        }
        self.pc = next_pc;
        self.instret += 1;
        Ok(outcome)
    }

    /// Run until `ebreak`, a trap, or `max_steps` instructions retire.
    ///
    /// Returns the number of instructions retired. An error is returned on
    /// a trap or if the step budget is exhausted before `ebreak`.
    pub fn run(&mut self, max_steps: u64) -> Result<u64, RunError> {
        let start = self.instret;
        while !self.halted {
            if self.instret - start >= max_steps {
                return Err(RunError::OutOfFuel { steps: max_steps, pc: self.pc });
            }
            match self.step() {
                Ok(StepOutcome::Break) => break,
                Ok(_) => {}
                Err(t) => return Err(RunError::Trap(t)),
            }
        }
        Ok(self.instret - start)
    }

    /// Call the function at `entry` with up to 8 arguments in `a0..a7`,
    /// running until it returns (to a sentinel `ebreak`).
    ///
    /// The machine's stack pointer must already be set up. Returns the
    /// value left in `a0`.
    pub fn call(&mut self, entry: u32, args: &[u32], max_steps: u64) -> Result<u32, RunError> {
        assert!(args.len() <= 8, "at most 8 register arguments");
        // Plant an `ebreak` at a sentinel return address.
        let sentinel = STACK_TOP.wrapping_add(0x100);
        self.mem.store_u32(sentinel, crate::encode::encode(Instr::Ebreak));
        for (i, &a) in args.iter().enumerate() {
            self.set_reg(Reg(10 + i as u8), a);
        }
        self.set_reg(Reg::RA, sentinel);
        self.pc = entry;
        self.halted = false;
        self.run(max_steps)?;
        Ok(self.reg(Reg::A0))
    }
}

/// Error from [`Machine::run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunError {
    /// The machine trapped.
    Trap(TrapCause),
    /// The step budget was exhausted.
    OutOfFuel {
        /// The budget that was exhausted.
        steps: u64,
        /// PC at the time the budget ran out.
        pc: u32,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Trap(t) => write!(f, "{t}"),
            RunError::OutOfFuel { steps, pc } => {
                write!(f, "out of fuel after {steps} steps at pc={pc:#010x}")
            }
        }
    }
}

impl std::error::Error for RunError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run_and_get_a0(src: &str) -> u32 {
        let p = assemble(src).unwrap();
        let mut m = Machine::with_program(&p);
        m.run(1_000_000).unwrap();
        m.reg(Reg::A0)
    }

    #[test]
    fn arithmetic_program() {
        let a0 = run_and_get_a0(
            "
            li a0, 6
            li a1, 7
            mul a0, a0, a1
            ebreak
            ",
        );
        assert_eq!(a0, 42);
    }

    #[test]
    fn loop_sums_one_to_ten() {
        let a0 = run_and_get_a0(
            "
                li a0, 0
                li a1, 1
                li a2, 11
            loop:
                add a0, a0, a1
                addi a1, a1, 1
                bne a1, a2, loop
                ebreak
            ",
        );
        assert_eq!(a0, 55);
    }

    #[test]
    fn function_call_and_stack() {
        let a0 = run_and_get_a0(
            "
            main:
                li a0, 5
                call square
                ebreak
            square:
                addi sp, sp, -16
                sw ra, 12(sp)
                mul a0, a0, a0
                lw ra, 12(sp)
                addi sp, sp, 16
                ret
            ",
        );
        assert_eq!(a0, 25);
    }

    #[test]
    fn loads_stores_all_widths() {
        let a0 = run_and_get_a0(
            "
                la t0, buf
                li t1, -2
                sb t1, 0(t0)
                lbu a0, 0(t0)      # 0xfe
                lb t2, 0(t0)       # -2
                add a0, a0, t2     # 0xfe - 2 = 0xfc
                li t1, 0xbeef
                sh t1, 2(t0)
                lhu t3, 2(t0)
                add a0, a0, t3     # + 0xbeef
                lh t4, 2(t0)       # sign-extended negative
                sub a0, a0, t4
                ebreak
            .data
            buf: .zero 8
            ",
        );
        assert_eq!(a0, 0xFCu32.wrapping_add(0xBEEF).wrapping_sub(0xFFFF_BEEF));
    }

    #[test]
    fn misaligned_word_access_traps() {
        let p = assemble("li t0, 2\n lw a0, 0(t0)\n ebreak").unwrap();
        let mut m = Machine::with_program(&p);
        let e = m.run(100).unwrap_err();
        assert!(matches!(e, RunError::Trap(TrapCause::MisalignedAccess { addr: 2, .. })));
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let a0 = run_and_get_a0(
            "
            li t0, 99
            add zero, t0, t0
            add a0, zero, zero
            ebreak
            ",
        );
        assert_eq!(a0, 0);
    }

    #[test]
    fn out_of_fuel_reported() {
        let p = assemble("spin: j spin").unwrap();
        let mut m = Machine::with_program(&p);
        let e = m.run(10).unwrap_err();
        assert!(matches!(e, RunError::OutOfFuel { steps: 10, .. }));
    }

    #[test]
    fn call_api() {
        let p = assemble(
            "
            add3:
                add a0, a0, a1
                add a0, a0, a2
                ret
            ",
        )
        .unwrap();
        let mut m = Machine::with_program(&p);
        let entry = p.address_of("add3").unwrap();
        let r = m.call(entry, &[1, 2, 3], 100).unwrap();
        assert_eq!(r, 6);
    }

    #[test]
    fn alloc_bump_and_buffers() {
        let mut m = Machine::new();
        let a = m.alloc(10);
        let b = m.alloc(1);
        assert_eq!(a, HEAP_BASE);
        assert_eq!(b, HEAP_BASE + 16);
        m.storebytes(a, &[1, 2, 3]);
        assert_eq!(m.loadbytes(a, 4), vec![1, 2, 3, 0]);
    }

    #[test]
    fn page_spanning_accesses_match_bytewise() {
        // A word and a byte run that straddle the page boundary at
        // 0x1000 must behave exactly like four independent byte
        // accesses (the fast path only covers within-page accesses).
        let mut m = Memory::default();
        m.store_u32(0x0FFE, 0xAABB_CCDD);
        assert_eq!(m.load_u8(0x0FFE), 0xDD);
        assert_eq!(m.load_u8(0x0FFF), 0xCC);
        assert_eq!(m.load_u8(0x1000), 0xBB);
        assert_eq!(m.load_u8(0x1001), 0xAA);
        assert_eq!(m.load_u32(0x0FFE), 0xAABB_CCDD);
        m.store_bytes(0x0FFD, &[1, 2, 3, 4, 5, 6]);
        assert_eq!(m.load_bytes(0x0FFD, 6), vec![1, 2, 3, 4, 5, 6]);
        // Unwritten tails still read as zero across the boundary.
        assert_eq!(m.load_bytes(0x1FFE, 4), vec![0, 0, 0, 0]);
    }

    #[test]
    fn self_modifying_text_defeats_the_fetch_cache() {
        // The program overwrites its own `mul` with an `add` word
        // before reaching it. The pre-decoded cache entry no longer
        // matches the live memory word, so fetch must fall back to
        // decoding the stored word — verify-on-hit, never stale.
        let p = assemble(
            "
                la t0, patch      # address of the mul below
                lw t1, 0(t0)      # (touch it so the cache has seen it)
                la t2, repl
                lw t3, 0(t2)      # the add word
                sw t3, 0(t0)      # patch text
                li a0, 6
                li a1, 7
            patch:
                mul a0, a0, a1    # becomes: add a0, a0, a1
                ebreak
            repl:
                add a0, a0, a1
            ",
        )
        .unwrap();
        let mut m = Machine::with_program(&p);
        m.run(1_000).unwrap();
        assert_eq!(m.reg(Reg::A0), 13, "patched add must execute, not the cached mul");
    }
}
