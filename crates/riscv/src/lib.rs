//! RV32IM instruction-set infrastructure for Parfait.
//!
//! This crate is the Rust analogue of two components of the Parfait paper:
//!
//! * the CompCert RISC-V **Asm** level of abstraction (§3, Table 1), and
//! * **Riscette** (§5.1), the single-steppable executable semantics of
//!   RISC-V assembly that Knox2 uses during assembly-circuit
//!   synchronization.
//!
//! It provides:
//!
//! * [`isa`] — the RV32IM instruction type, registers, and disassembly;
//! * [`encode`] / [`decode`] — binary instruction encoding and decoding;
//! * [`asm`] — a two-pass textual assembler and linker producing flat
//!   memory images with a symbol table;
//! * [`machine`] — the Riscette abstract machine: an instruction-by-
//!   instruction steppable RV32IM interpreter with a CompCert-style
//!   `alloc`/`storebytes`/`loadbytes` buffer API;
//! * [`model`] — the "model-Asm" interpretation (paper fig. 8) that treats
//!   one invocation of `handle` as a single whole-command state-machine
//!   step;
//! * [`predecode`] — `Arc`-shared pre-decoded instruction caches over
//!   immutable ROM images, the cycle-accurate cores' fetch/decode fast
//!   path.

#![forbid(unsafe_code)]

pub mod asm;
pub mod decode;
pub mod encode;
pub mod isa;
pub mod machine;
pub mod model;
pub mod predecode;

pub use asm::{assemble, AsmError, Program};
pub use isa::{Instr, Reg};
pub use machine::{Machine, StepOutcome, TrapCause};
pub use model::AsmStateMachine;
