//! parfait-soc — the HSM System-on-a-Chip.
//!
//! This assembles a complete SoC in the shape of the paper's hardware
//! platform (§7.1): a CPU core (Ibex-like or PicoRV32-like), a ROM
//! holding the firmware, a RAM, a ferroelectric RAM (FRAM) as persistent
//! memory, and a byte-parallel ready/valid I/O port (the wire-level
//! abstraction of the paper's 4-wire UART with flow control). Aside from
//! the CPU, these peripherals correspond to the "500 lines of Verilog"
//! of the paper's platform.
//!
//! The SoC implements [`parfait_rtl::Circuit`]: the adversary interface
//! is exactly `set_input` / `get_output` / `tick` over the I/O wires,
//! and the circuit-level state machine of Table 1 is the SoC's registers
//! and memories under the cycle step.
//!
//! # Memory map
//!
//! | Region | Base        | Size    |
//! |--------|-------------|---------|
//! | ROM    | 0x0000_0000 | 256 KiB |
//! | I/O    | 0x1000_0000 | 16 B    |
//! | RAM    | 0x2000_0000 | 256 KiB |
//! | FRAM   | 0x3000_0000 | 8 KiB   |
//!
//! I/O registers: `+0` RX_STATUS (1 = byte available), `+4` RX_DATA
//! (read pops), `+8` TX_STATUS (1 = space available), `+12` TX_DATA
//! (write pushes).

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::sync::Arc;

use parfait_cores::{Core, Fault, MemIf};
use parfait_riscv::asm::Program;
use parfait_riscv::predecode::DecodeCache;
use parfait_rtl::{Circuit, Fifo, TaintMem, WireIn, WireOut, W};

pub mod host;

/// ROM base address.
pub const ROM_BASE: u32 = 0x0000_0000;
/// ROM size in bytes.
pub const ROM_SIZE: u32 = 256 * 1024;
/// I/O base address.
pub const IO_BASE: u32 = 0x1000_0000;
/// RAM base address.
pub const RAM_BASE: u32 = 0x2000_0000;
/// RAM size in bytes.
pub const RAM_SIZE: u32 = 256 * 1024;
/// FRAM (persistent memory) base address.
pub const FRAM_BASE: u32 = 0x3000_0000;
/// FRAM size in bytes.
pub const FRAM_SIZE: u32 = 8 * 1024;
/// The lowest address the stack may grow down to: the boot shim parks
/// `sp` near the top of RAM and the upper half of RAM is reserved for
/// the stack. The bus watches stores into this region so an FPS run
/// can report the observed stack high-water mark, and the `bound`
/// pipeline stage proves the certified worst case stays above it.
pub const STACK_FLOOR: u32 = RAM_BASE + RAM_SIZE / 2;

/// RX status register address.
pub const IO_RX_STATUS: u32 = IO_BASE;
/// RX data register address (read pops the FIFO).
pub const IO_RX_DATA: u32 = IO_BASE + 4;
/// TX status register address.
pub const IO_TX_STATUS: u32 = IO_BASE + 8;
/// TX data register address (write pushes into the FIFO).
pub const IO_TX_DATA: u32 = IO_BASE + 12;

/// A deliberately seeded SoC/peripheral bug, used by the
/// `parfait-adversary` mutation harness (DESIGN.md §12). `None` (the
/// only value production code ever passes) leaves the SoC bit-for-bit
/// identical to the unseeded one; a seed survives [`Soc::power_cycle`],
/// like a silicon bug survives power loss.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeededBug {
    /// The FRAM write port silently drops stores to the journal flag
    /// word (offset 0), so a completed command never commits its state.
    DropJournalWrite,
    /// The TX ready/valid handshake deasserts `valid` one transfer too
    /// late, so every byte the firmware sends is committed to the wire
    /// FIFO twice.
    TxDoubleCommit,
}

/// A linked firmware image: ROM text, initial RAM data, symbols.
#[derive(Clone, Debug)]
pub struct Firmware {
    /// The text image placed at [`ROM_BASE`].
    pub rom: Vec<u8>,
    /// The data image placed at [`RAM_BASE`] (modeling FPGA-initialized
    /// block RAM).
    pub ram_init: Vec<u8>,
    /// Symbol table (label → absolute address).
    pub symbols: HashMap<String, u32>,
}

impl Firmware {
    /// Build firmware from an assembled program. The program must have
    /// been assembled with `text_base = ROM_BASE` and
    /// `data_base = RAM_BASE`.
    pub fn from_program(p: &Program) -> Firmware {
        assert_eq!(p.text_base, ROM_BASE, "firmware text must be at the ROM base");
        assert_eq!(p.data_base, RAM_BASE, "firmware data must be at the RAM base");
        Firmware { rom: p.text_bytes(), ram_init: p.data.clone(), symbols: p.symbols.clone() }
    }

    /// Address of a symbol.
    pub fn address_of(&self, sym: &str) -> Option<u32> {
        self.symbols.get(sym).copied()
    }
}

/// The complete HSM SoC.
///
/// The SoC is `Clone`: a snapshot is cheap because the read-only parts
/// (ROM image, firmware) are behind `Arc` and everything else is plain
/// data. The parallel FPS checker forks verification segments from such
/// snapshots.
#[derive(Clone)]
pub struct Soc {
    /// The CPU core.
    pub core: Box<dyn Core>,
    /// Firmware ROM (read-only, shared between snapshots).
    pub rom: Arc<TaintMem>,
    /// Working RAM.
    pub ram: TaintMem,
    /// Persistent memory; its contents are tainted (secret).
    pub fram: TaintMem,
    /// Host → device FIFO.
    pub rx_fifo: Fifo,
    /// Device → host FIFO.
    pub tx_fifo: Fifo,
    /// A bus access outside any mapped region.
    pub bus_fault: Option<u32>,
    /// Lowest address stored to inside the stack region
    /// ([`STACK_FLOOR`]`..`[`RAM_BASE`]` + `[`RAM_SIZE`]) since
    /// construction; `u32::MAX` when the stack was never written.
    /// Survives power cycles — it is a whole-run high-water mark.
    stack_min_store: u32,
    /// Seeded hardware bug (mutation testing only).
    seeded: Option<SeededBug>,
    firmware: Arc<Firmware>,
    input: WireIn,
    cycles: u64,
    instructions_retired: u64,
    /// Output wires as of the end of the last `tick` (cached so the
    /// host-protocol and checker hot paths read a field instead of
    /// re-deriving the wires from FIFO state several times per cycle).
    output: WireOut,
}

struct Bus<'a> {
    rom: &'a TaintMem,
    ram: &'a mut TaintMem,
    fram: &'a mut TaintMem,
    rx_fifo: &'a mut Fifo,
    tx_fifo: &'a mut Fifo,
    bus_fault: &'a mut Option<u32>,
    stack_min_store: &'a mut u32,
    seeded: Option<SeededBug>,
}

impl MemIf for Bus<'_> {
    fn fetch(&mut self, addr: u32) -> u32 {
        if (ROM_BASE..ROM_BASE + ROM_SIZE).contains(&addr) {
            self.rom.read_word(addr - ROM_BASE).v
        } else {
            *self.bus_fault = Some(addr);
            0
        }
    }

    fn read(&mut self, addr: u32) -> W {
        match addr {
            a if (ROM_BASE..ROM_BASE + ROM_SIZE).contains(&a) => self.rom.read_word(a - ROM_BASE),
            a if (RAM_BASE..RAM_BASE + RAM_SIZE).contains(&a) => self.ram.read_word(a - RAM_BASE),
            a if (FRAM_BASE..FRAM_BASE + FRAM_SIZE).contains(&a) => {
                self.fram.read_word(a - FRAM_BASE)
            }
            IO_RX_STATUS => W::pub32(self.rx_fifo.can_pop() as u32),
            IO_RX_DATA => self.rx_fifo.pop().unwrap_or(W::pub32(0)),
            IO_TX_STATUS => W::pub32(self.tx_fifo.can_push() as u32),
            a => {
                *self.bus_fault = Some(a);
                W::pub32(0)
            }
        }
    }

    fn write(&mut self, addr: u32, val: W, mask: u8) {
        match addr {
            a if (RAM_BASE..RAM_BASE + RAM_SIZE).contains(&a) => {
                if a >= STACK_FLOOR && a < *self.stack_min_store {
                    *self.stack_min_store = a;
                }
                self.ram.write_word(a - RAM_BASE, val, mask)
            }
            a if (FRAM_BASE..FRAM_BASE + FRAM_SIZE).contains(&a) => {
                if a - FRAM_BASE < 4 && self.seeded == Some(SeededBug::DropJournalWrite) {
                    return; // the journal flag word never reaches the FRAM
                }
                self.fram.write_word(a - FRAM_BASE, val, mask)
            }
            IO_TX_DATA => {
                // Byte-wide register; lane 0 carries the data.
                self.tx_fifo.push(W { v: val.v & 0xFF, t: val.t });
                if self.seeded == Some(SeededBug::TxDoubleCommit) {
                    self.tx_fifo.push(W { v: val.v & 0xFF, t: val.t });
                }
            }
            a if (ROM_BASE..ROM_BASE + ROM_SIZE).contains(&a) => {
                // Writes to ROM are silently ignored (as in hardware).
            }
            a => {
                *self.bus_fault = Some(a);
            }
        }
    }
}

impl Soc {
    /// Build an SoC with the given core, firmware, and persistent image.
    ///
    /// The FRAM contents are marked **tainted**: they are the HSM's
    /// secrets, and the taint tracker reports any flow of these values
    /// into control state.
    pub fn new(core: Box<dyn Core>, firmware: Firmware, fram_image: &[u8]) -> Soc {
        let cache = if parfait_telemetry::env::decode_cache_loud() {
            Some(DecodeCache::shared(ROM_BASE, &firmware.rom))
        } else {
            None
        };
        Soc::new_with_decode_cache(core, firmware, fram_image, cache)
    }

    /// [`Soc::new`] with an explicit decode cache (or `None` for the
    /// uncached bus fetch + live decode path), bypassing the
    /// `PARFAIT_DECODE_CACHE` knob. The differential tests use this to
    /// run cached and uncached worlds side by side in one process.
    pub fn new_with_decode_cache(
        mut core: Box<dyn Core>,
        firmware: Firmware,
        fram_image: &[u8],
        cache: Option<Arc<DecodeCache>>,
    ) -> Soc {
        assert!(fram_image.len() <= FRAM_SIZE as usize, "FRAM image too large");
        if let Some(cache) = cache {
            core.attach_decode_cache(cache);
        }
        let rom = Arc::new(TaintMem::rom(&firmware.rom, ROM_SIZE as usize));
        let mut ram = TaintMem::new(RAM_SIZE as usize);
        ram.load_bytes(0, &firmware.ram_init, false);
        let mut fram = TaintMem::new(FRAM_SIZE as usize);
        fram.load_bytes(0, fram_image, true);
        let mut soc = Soc {
            core,
            rom,
            ram,
            fram,
            rx_fifo: Fifo::new(16),
            tx_fifo: Fifo::new(16),
            bus_fault: None,
            stack_min_store: u32::MAX,
            seeded: None,
            firmware: Arc::new(firmware),
            input: WireIn::default(),
            cycles: 0,
            instructions_retired: 0,
            output: WireOut::default(),
        };
        soc.refresh_output();
        soc
    }

    /// Seed a deliberate hardware bug (see [`SeededBug`]). Mutation
    /// testing only; the seed survives power cycles.
    pub fn seed_bug(&mut self, bug: SeededBug) {
        self.seeded = Some(bug);
    }

    /// Recompute the cached output wires from the FIFO state.
    fn refresh_output(&mut self) {
        let tx = self.tx_fifo.peek();
        self.output = WireOut {
            rx_ready: self.rx_fifo.can_push(),
            tx_valid: tx.is_some(),
            tx_data: tx.map(|w| w.v as u8).unwrap_or(0),
            tx_taint: tx.map(|w| w.t).unwrap_or(false),
        };
    }

    /// Read the FRAM word at byte `offset` (values only, no allocation —
    /// the emulator polls the journal flag with this every cycle).
    pub fn fram_word(&self, offset: u32) -> u32 {
        self.fram.read_word(offset).v
    }

    /// How many instructions the core has retired since construction
    /// (power cycles do not reset this; it tracks total simulation
    /// work, the denominator of instructions-per-cycle telemetry).
    pub fn instructions_retired(&self) -> u64 {
        self.instructions_retired
    }

    /// The firmware loaded in this SoC.
    pub fn firmware(&self) -> &Firmware {
        &self.firmware
    }

    /// Drain the core's decode-cache hit/miss counters accumulated
    /// since the last drain (both zero when no cache is attached).
    pub fn take_decode_stats(&mut self) -> (u64, u64) {
        self.core.take_decode_stats()
    }

    /// Dump `len` bytes of FRAM starting at `offset` (values only).
    pub fn fram_bytes(&self, offset: usize, len: usize) -> Vec<u8> {
        self.fram.dump_bytes(offset, len)
    }

    /// The observed stack high-water mark: the lowest address the core
    /// stored to inside the stack region (at or above [`STACK_FLOOR`]),
    /// or `None` if the stack was never written. Monotone over the
    /// SoC's whole life, including across power cycles.
    pub fn stack_high_water(&self) -> Option<u32> {
        (self.stack_min_store != u32::MAX).then_some(self.stack_min_store)
    }

    /// Read `len` bytes of RAM at an absolute address.
    pub fn ram_bytes(&self, addr: u32, len: usize) -> Vec<u8> {
        assert!(addr >= RAM_BASE);
        self.ram.dump_bytes((addr - RAM_BASE) as usize, len)
    }

    /// Write bytes into RAM at an absolute address with given taint.
    pub fn ram_store(&mut self, addr: u32, bytes: &[u8], taint: bool) {
        assert!(addr >= RAM_BASE);
        self.ram.load_bytes((addr - RAM_BASE) as usize, bytes, taint);
    }

    /// Any fatal condition: a core fault or a bus fault.
    pub fn fault(&self) -> Option<String> {
        if let Some(f) = self.core.fault() {
            return Some(match f {
                Fault::Illegal { pc, word } => {
                    format!("illegal instruction {word:#010x} at pc={pc:#010x}")
                }
                Fault::Misaligned { pc, addr } => {
                    format!("misaligned access to {addr:#010x} at pc={pc:#010x}")
                }
                Fault::Env { pc } => format!("ecall/ebreak at pc={pc:#010x}"),
            });
        }
        self.bus_fault.map(|a| format!("bus fault at address {a:#010x}"))
    }

    /// Power-cycle: reset the core and reinitialize RAM from the
    /// firmware image; FRAM (persistent state) is retained.
    pub fn power_cycle(&mut self) {
        self.core.reset(ROM_BASE);
        let mut ram = TaintMem::new(RAM_SIZE as usize);
        ram.load_bytes(0, &self.firmware.ram_init, false);
        self.ram = ram;
        self.rx_fifo = Fifo::new(16);
        self.tx_fifo = Fifo::new(16);
        self.input = WireIn::default();
        self.bus_fault = None;
        self.refresh_output();
    }
}

impl Circuit for Soc {
    fn set_input(&mut self, input: WireIn) {
        self.input = input;
    }

    fn get_output(&self) -> WireOut {
        self.output
    }

    fn tick(&mut self) {
        self.cycles += 1;
        // Host-side handshakes commit at the clock edge.
        let host_idle = !self.input.rx_valid && !self.input.tx_ready;
        if self.input.rx_valid && self.rx_fifo.can_push() {
            self.rx_fifo.push(W::pub32(self.input.rx_data as u32));
            // A transferred byte is consumed; the host must re-assert
            // rx_valid for the next byte.
            self.input.rx_valid = false;
        }
        if self.input.tx_ready && self.tx_fifo.can_pop() {
            self.tx_fifo.pop();
            self.input.tx_ready = false;
        }
        // One CPU cycle.
        let mut bus = Bus {
            rom: &self.rom,
            ram: &mut self.ram,
            fram: &mut self.fram,
            rx_fifo: &mut self.rx_fifo,
            tx_fifo: &mut self.tx_fifo,
            bus_fault: &mut self.bus_fault,
            stack_min_store: &mut self.stack_min_store,
            seeded: self.seeded,
        };
        self.core.step(&mut bus);
        if self.core.last_retired().is_some() {
            self.instructions_retired += 1;
        }
        // Fast idle path: with no host activity and both FIFOs empty
        // after the core stepped, the wires are pinned at the idle
        // pattern (ready to receive, nothing to send) — skip the
        // reconstruction.
        if host_idle && self.rx_fifo.is_empty() && self.tx_fifo.is_empty() {
            self.output = WireOut { rx_ready: true, tx_valid: false, tx_data: 0, tx_taint: false };
        } else {
            self.refresh_output();
        }
    }

    fn cycles(&self) -> u64 {
        self.cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfait_cores::IbexCore;
    use parfait_riscv::asm::{assemble_with, Layout};

    fn firmware(src: &str) -> Firmware {
        let p = assemble_with(src, Layout { text_base: ROM_BASE, data_base: RAM_BASE }).unwrap();
        Firmware::from_program(&p)
    }

    /// Echo firmware: forever { wait rx; byte = rx; wait tx; tx = byte+1 }.
    const ECHO: &str = "
        start:
            li s0, 0x10000000   # IO base
        loop:
            lw t0, 0(s0)        # rx status
            beqz t0, loop
            lw t1, 4(s0)        # rx data
            addi t1, t1, 1
        wait_tx:
            lw t0, 8(s0)        # tx status
            beqz t0, wait_tx
            sw t1, 12(s0)       # tx data
            j loop
    ";

    #[test]
    fn echo_firmware_roundtrip() {
        let fw = firmware(ECHO);
        let mut soc = Soc::new(Box::new(IbexCore::new(ROM_BASE)), fw, &[]);
        host::send_byte(&mut soc, 0x41, 1000).unwrap();
        let b = host::recv_byte(&mut soc, 1000).unwrap();
        assert_eq!(b, 0x42);
        assert!(soc.fault().is_none());
        // And again, to make sure the loop keeps running.
        host::send_byte(&mut soc, 0x7F, 1000).unwrap();
        assert_eq!(host::recv_byte(&mut soc, 1000).unwrap(), 0x80);
    }

    #[test]
    fn fram_is_tainted_and_persistent() {
        let fw = firmware(
            "
            start:
                li s0, 0x30000000   # FRAM
                lw t0, 0(s0)        # load secret
                addi t0, t0, 1
                sw t0, 0(s0)        # store back
            spin:
                j spin
            ",
        );
        let mut soc = Soc::new(Box::new(IbexCore::new(ROM_BASE)), fw, &[5, 0, 0, 0]);
        for _ in 0..50 {
            soc.tick();
        }
        assert_eq!(soc.fram_bytes(0, 4), vec![6, 0, 0, 0]);
        assert!(soc.fram.any_tainted(0, 4), "secret derived data stays tainted");
        assert!(soc.fault().is_none());
        // Persistence across power cycles.
        soc.power_cycle();
        for _ in 0..50 {
            soc.tick();
        }
        assert_eq!(soc.fram_bytes(0, 4), vec![7, 0, 0, 0]);
    }

    #[test]
    fn secret_to_tx_is_taint_tracked() {
        // Firmware leaks the secret to the TX port; the output byte must
        // carry taint (data output is IPR-checked, taint is diagnostic).
        let fw = firmware(
            "
            start:
                li s0, 0x30000000
                lw t0, 0(s0)
                li s1, 0x10000000
                sw t0, 12(s1)
            spin:
                j spin
            ",
        );
        let mut soc = Soc::new(Box::new(IbexCore::new(ROM_BASE)), fw, &[0xAB, 0, 0, 0]);
        for _ in 0..50 {
            soc.tick();
        }
        let out = soc.get_output();
        assert!(out.tx_valid);
        assert_eq!(out.tx_data, 0xAB);
        assert!(out.tx_taint);
    }

    #[test]
    fn bus_fault_detected() {
        let fw = firmware(
            "
            start:
                li t0, 0x50000000
                lw t1, 0(t0)
            spin:
                j spin
            ",
        );
        let mut soc = Soc::new(Box::new(IbexCore::new(ROM_BASE)), fw, &[]);
        for _ in 0..20 {
            soc.tick();
        }
        assert!(soc.fault().unwrap().contains("bus fault"));
    }

    #[test]
    fn data_section_initialized() {
        let fw = firmware(
            "
            .text
            start:
                la t0, value
                lw t1, 0(t0)
                li s1, 0x10000000
            wait_tx:
                lw t0, 8(s1)
                beqz t0, wait_tx
                sw t1, 12(s1)
            spin:
                j spin
            .data
            value: .word 0x77
            ",
        );
        let mut soc = Soc::new(Box::new(IbexCore::new(ROM_BASE)), fw, &[]);
        let b = host::recv_byte(&mut soc, 1000).unwrap();
        assert_eq!(b, 0x77);
    }
}

#[cfg(test)]
mod backpressure_tests {
    use super::*;
    use parfait_cores::IbexCore;
    use parfait_riscv::asm::{assemble_with, Layout};

    /// Firmware that sends 20 bytes without host flow control: the TX
    /// FIFO (depth 16) must fill and the device must block politely.
    const FLOOD: &str = "
        start:
            li s0, 0x10000000
            li s1, 20
            li s2, 0
        loop:
        wait_tx:
            lw t0, 8(s0)
            beqz t0, wait_tx
            sw s2, 12(s0)
            addi s2, s2, 1
            addi s1, s1, -1
            bnez s1, loop
        done:
            j done
    ";

    #[test]
    fn tx_backpressure_blocks_device_without_loss() {
        let p = assemble_with(FLOOD, Layout { text_base: ROM_BASE, data_base: RAM_BASE }).unwrap();
        let fw = Firmware::from_program(&p);
        let mut soc = Soc::new(Box::new(IbexCore::new(ROM_BASE)), fw, &[]);
        // Let the device run with no host: FIFO fills to 16 and it spins.
        host::idle(&mut soc, 20_000);
        assert_eq!(soc.tx_fifo.len(), 16);
        assert!(soc.fault().is_none());
        // Now drain: every byte 0..20 must arrive in order, none lost.
        let bytes = host::recv_bytes(&mut soc, 20, 100_000).unwrap();
        assert_eq!(bytes, (0u8..20).collect::<Vec<_>>());
    }

    #[test]
    fn rx_fifo_refuses_overflow() {
        // A device that never reads: the host can push at most 16 bytes.
        let p = assemble_with("spin: j spin", Layout { text_base: ROM_BASE, data_base: RAM_BASE })
            .unwrap();
        let fw = Firmware::from_program(&p);
        let mut soc = Soc::new(Box::new(IbexCore::new(ROM_BASE)), fw, &[]);
        let mut accepted = 0;
        for b in 0..32u8 {
            if host::send_byte(&mut soc, b, 50).is_ok() {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 16, "FIFO capacity bounds acceptance");
        assert!(!soc.get_output().rx_ready);
    }
}
