//! Host-side wire-protocol helpers.
//!
//! These drive the SoC's wire interface the way a well-behaved host
//! would; the Knox2 driver (the paper's §5.2 driver) is built from
//! exactly these primitives: `set_input`, `get_output`, `tick`.

use parfait_rtl::{Circuit, WireIn};

/// Error driving the wire protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HostTimeout {
    /// What the host was waiting for.
    pub waiting_for: &'static str,
    /// Cycles waited.
    pub cycles: u64,
}

impl std::fmt::Display for HostTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "host timed out after {} cycles waiting for {}", self.cycles, self.waiting_for)
    }
}

impl std::error::Error for HostTimeout {}

/// Offer one byte on the RX wires until the device accepts it.
pub fn send_byte(c: &mut dyn Circuit, byte: u8, max_cycles: u64) -> Result<(), HostTimeout> {
    for _ in 0..max_cycles {
        let accepting = c.get_output().rx_ready;
        c.set_input(WireIn { rx_valid: true, rx_data: byte, tx_ready: false });
        c.tick();
        if accepting {
            c.set_input(WireIn::default());
            return Ok(());
        }
    }
    Err(HostTimeout { waiting_for: "rx_ready", cycles: max_cycles })
}

/// Wait for `tx_valid` and consume one byte from the TX wires.
pub fn recv_byte(c: &mut dyn Circuit, max_cycles: u64) -> Result<u8, HostTimeout> {
    for _ in 0..max_cycles {
        let out = c.get_output();
        if out.tx_valid {
            c.set_input(WireIn { rx_valid: false, rx_data: 0, tx_ready: true });
            c.tick();
            c.set_input(WireIn::default());
            return Ok(out.tx_data);
        }
        c.set_input(WireIn::default());
        c.tick();
    }
    Err(HostTimeout { waiting_for: "tx_valid", cycles: max_cycles })
}

/// Send a buffer byte-by-byte.
pub fn send_bytes(c: &mut dyn Circuit, bytes: &[u8], max_cycles: u64) -> Result<(), HostTimeout> {
    for &b in bytes {
        send_byte(c, b, max_cycles)?;
    }
    Ok(())
}

/// Receive exactly `n` bytes.
pub fn recv_bytes(c: &mut dyn Circuit, n: usize, max_cycles: u64) -> Result<Vec<u8>, HostTimeout> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(recv_byte(c, max_cycles)?);
    }
    Ok(out)
}

/// Run the clock for `n` idle cycles (no host activity).
pub fn idle(c: &mut dyn Circuit, n: u64) {
    c.set_input(WireIn::default());
    for _ in 0..n {
        c.tick();
    }
}
