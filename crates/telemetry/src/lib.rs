//! # parfait-telemetry
//!
//! Structured tracing, metrics, and progress reporting for the Parfait
//! proof pipeline. Zero external dependencies.
//!
//! The pipeline's long-running phases (FPS simulation of tens of
//! millions of cycles, translation validation over hundreds of
//! state×input pairs, compilation passes) report through a shared
//! [`Telemetry`] handle:
//!
//! - **Spans** — nested, wall-clock-timed regions
//!   (`tel.span("fps.command")`); ended by RAII drop.
//! - **Counters** — monotonic totals (`tel.count("fps.spec_queries", 1)`).
//! - **Gauges / high-water marks** — instantaneous values
//!   (`tel.gauge(...)`) and maxima that only emit on a raise
//!   (`tel.gauge_max("soc.rx_fifo.hwm", depth)`).
//! - **Progress** — periodic heartbeats with numeric fields
//!   (`tel.progress("fps.heartbeat", &[("cycles", c), ...])`).
//!
//! Events flow to a [`Recorder`]; three sinks are provided in
//! [`sinks`]: a human-readable indented log, a JSONL event stream, and
//! Chrome trace-event JSON loadable in Perfetto / `chrome://tracing`.
//!
//! The disabled handle (`Telemetry::disabled()`, also `Default`) is a
//! `None` behind the `Clone`: every instrumentation call is a single
//! branch on the hot path and no recorder, clock, or lock is touched.

#![forbid(unsafe_code)]

pub mod env;
pub mod json;
pub mod manifest;
pub mod metrics;
pub mod progress;
pub mod sinks;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One telemetry event, passed by reference to [`Recorder::record`].
///
/// Timestamps (`t_us`) are microseconds since the handle was created;
/// `tid` is a small per-thread integer (Chrome-trace lane).
#[derive(Clone, Debug)]
pub enum Event<'a> {
    SpanBegin { id: u64, parent: u64, depth: usize, tid: u64, name: &'a str, t_us: u64 },
    SpanEnd { id: u64, parent: u64, depth: usize, tid: u64, name: &'a str, t_us: u64, dur_us: u64 },
    Count { name: &'a str, delta: u64, total: u64, tid: u64, t_us: u64 },
    Gauge { name: &'a str, value: u64, tid: u64, t_us: u64 },
    Progress { name: &'a str, fields: &'a [(&'a str, f64)], tid: u64, t_us: u64 },
}

/// A sink for telemetry events.
///
/// Recorders are driven under a lock from the [`Telemetry`] handle, so
/// implementations are free to keep mutable state without their own
/// synchronization.
pub trait Recorder: Send {
    /// Consume one event.
    fn record(&mut self, event: &Event<'_>);

    /// Flush and close the sink (write trailers, final brackets, …).
    /// Called once by [`Telemetry::finish`]; must be idempotent.
    fn finish(&mut self) {}
}

struct Inner {
    epoch: Instant,
    next_span: AtomicU64,
    recorder: Mutex<RecorderState>,
}

struct RecorderState {
    recorder: Box<dyn Recorder>,
    /// Monotonic counter totals, keyed by counter name.
    counters: std::collections::BTreeMap<String, u64>,
    /// High-water marks for `gauge_max`.
    maxima: std::collections::BTreeMap<String, u64>,
    finished: bool,
}

// Per-thread compact id for trace lanes, and the active-span stack for
// parentage. Spans are RAII guards, so per thread they strictly nest.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    static SPAN_STACK: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
}

fn current_tid() -> u64 {
    TID.with(|t| *t)
}

/// The shared instrumentation handle.
///
/// Cloning is cheap (an `Option<Arc>`), and clones feed the same
/// recorder — hand them to every layer that should report. The
/// [`disabled`](Telemetry::disabled) handle makes every call a no-op
/// behind one branch.
#[derive(Clone, Default)]
pub struct Telemetry(Option<Arc<Inner>>);

impl Telemetry {
    /// The no-op handle: all instrumentation compiles down to an
    /// `is_none` check.
    pub fn disabled() -> Telemetry {
        Telemetry(None)
    }

    /// A handle recording into `recorder`.
    pub fn new(recorder: Box<dyn Recorder>) -> Telemetry {
        Telemetry(Some(Arc::new(Inner {
            epoch: Instant::now(),
            next_span: AtomicU64::new(1),
            recorder: Mutex::new(RecorderState {
                recorder,
                counters: Default::default(),
                maxima: Default::default(),
                finished: false,
            }),
        })))
    }

    /// Whether events are being recorded. Callers can gate *expensive
    /// context computation* (not the calls themselves) on this.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    fn t_us(inner: &Inner) -> u64 {
        inner.epoch.elapsed().as_micros() as u64
    }

    /// Open a nested, wall-clock-timed span. Closed when the returned
    /// guard drops.
    pub fn span(&self, name: &str) -> Span {
        let Some(inner) = &self.0 else {
            return Span {
                tel: Telemetry(None),
                id: 0,
                parent: 0,
                depth: 0,
                name: String::new(),
                begin_us: 0,
            };
        };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        let tid = current_tid();
        let (parent, depth) = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied().unwrap_or(0);
            let depth = s.len();
            s.push(id);
            (parent, depth)
        });
        let t_us = Self::t_us(inner);
        {
            let mut state = inner.recorder.lock().unwrap();
            state.recorder.record(&Event::SpanBegin { id, parent, depth, tid, name, t_us });
        }
        Span { tel: self.clone(), id, parent, depth, name: name.to_string(), begin_us: t_us }
    }

    /// Add `delta` to the named monotonic counter.
    pub fn count(&self, name: &str, delta: u64) {
        let Some(inner) = &self.0 else { return };
        let t_us = Self::t_us(inner);
        let tid = current_tid();
        let mut state = inner.recorder.lock().unwrap();
        let total = {
            let slot = state.counters.entry(name.to_string()).or_insert(0);
            *slot += delta;
            *slot
        };
        state.recorder.record(&Event::Count { name, delta, total, tid, t_us });
    }

    /// Record an instantaneous value.
    pub fn gauge(&self, name: &str, value: u64) {
        let Some(inner) = &self.0 else { return };
        let t_us = Self::t_us(inner);
        let tid = current_tid();
        let mut state = inner.recorder.lock().unwrap();
        state.recorder.record(&Event::Gauge { name, value, tid, t_us });
    }

    /// Record a high-water mark: emits only when `value` exceeds the
    /// previously recorded maximum for `name`.
    pub fn gauge_max(&self, name: &str, value: u64) {
        let Some(inner) = &self.0 else { return };
        let t_us = Self::t_us(inner);
        let tid = current_tid();
        let mut state = inner.recorder.lock().unwrap();
        let raised = match state.maxima.get(name) {
            Some(&prev) => value > prev,
            None => true,
        };
        if raised {
            state.maxima.insert(name.to_string(), value);
            state.recorder.record(&Event::Gauge { name, value, tid, t_us });
        }
    }

    /// Emit a progress/heartbeat event with named numeric fields.
    pub fn progress(&self, name: &str, fields: &[(&str, f64)]) {
        let Some(inner) = &self.0 else { return };
        let t_us = Self::t_us(inner);
        let tid = current_tid();
        let mut state = inner.recorder.lock().unwrap();
        state.recorder.record(&Event::Progress { name, fields, tid, t_us });
    }

    /// Flush and close the underlying recorder. Safe to call more than
    /// once; later telemetry calls on the handle still no-op through
    /// the recorder's own idempotence.
    pub fn finish(&self) {
        let Some(inner) = &self.0 else { return };
        let mut state = inner.recorder.lock().unwrap();
        if !state.finished {
            state.finished = true;
            state.recorder.finish();
        }
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry").field("enabled", &self.enabled()).finish()
    }
}

/// RAII guard for an open span; emits `SpanEnd` on drop.
///
/// Spans must be dropped in reverse order of creation within a thread
/// (the natural result of scoping them), or parentage of later spans
/// will be misattributed.
pub struct Span {
    tel: Telemetry,
    id: u64,
    parent: u64,
    depth: usize,
    name: String,
    begin_us: u64,
}

impl Span {
    /// The span's id, usable for correlating external context.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = &self.tel.0 else { return };
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Pop back to (and including) this span; tolerates a
            // mis-nested drop rather than corrupting the stack.
            if let Some(pos) = s.iter().rposition(|&id| id == self.id) {
                s.truncate(pos);
            }
        });
        let t_us = Telemetry::t_us(inner);
        let tid = current_tid();
        let mut state = inner.recorder.lock().unwrap();
        state.recorder.record(&Event::SpanEnd {
            id: self.id,
            parent: self.parent,
            depth: self.depth,
            tid,
            name: &self.name,
            t_us,
            dur_us: t_us.saturating_sub(self.begin_us),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::sinks::SharedBuf;
    use super::*;

    /// Recorder that captures a flat description of each event.
    struct Capture(std::sync::Arc<Mutex<Vec<String>>>);

    impl Recorder for Capture {
        fn record(&mut self, event: &Event<'_>) {
            let line = match event {
                Event::SpanBegin { id, parent, name, depth, .. } => {
                    format!("B {name} id={id} parent={parent} depth={depth}")
                }
                Event::SpanEnd { id, parent, name, depth, .. } => {
                    format!("E {name} id={id} parent={parent} depth={depth}")
                }
                Event::Count { name, delta, total, .. } => format!("C {name} +{delta}={total}"),
                Event::Gauge { name, value, .. } => format!("G {name}={value}"),
                Event::Progress { name, fields, .. } => {
                    format!("P {name} n_fields={}", fields.len())
                }
            };
            self.0.lock().unwrap().push(line);
        }
    }

    #[test]
    fn disabled_handle_is_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.enabled());
        let _outer = tel.span("a");
        tel.count("c", 1);
        tel.gauge("g", 2);
        tel.gauge_max("m", 3);
        tel.progress("p", &[("x", 1.0)]);
        tel.finish();
    }

    #[test]
    fn nested_spans_report_parentage_and_depth() {
        let log = std::sync::Arc::new(Mutex::new(Vec::new()));
        let tel = Telemetry::new(Box::new(Capture(log.clone())));
        {
            let _a = tel.span("outer");
            {
                let _b = tel.span("mid");
                let _c = tel.span("leaf");
            }
            let _d = tel.span("sibling");
        }
        let lines = log.lock().unwrap().clone();
        assert_eq!(
            lines,
            vec![
                "B outer id=1 parent=0 depth=0",
                "B mid id=2 parent=1 depth=1",
                "B leaf id=3 parent=2 depth=2",
                "E leaf id=3 parent=2 depth=2",
                "E mid id=2 parent=1 depth=1",
                "B sibling id=4 parent=1 depth=1",
                "E sibling id=4 parent=1 depth=1",
                "E outer id=1 parent=0 depth=0",
            ]
        );
    }

    #[test]
    fn counters_accumulate_and_gauge_max_filters() {
        let log = std::sync::Arc::new(Mutex::new(Vec::new()));
        let tel = Telemetry::new(Box::new(Capture(log.clone())));
        tel.count("q", 1);
        tel.count("q", 4);
        tel.gauge_max("hwm", 3);
        tel.gauge_max("hwm", 2); // not a raise: suppressed
        tel.gauge_max("hwm", 7);
        let lines = log.lock().unwrap().clone();
        assert_eq!(lines, vec!["C q +1=1", "C q +4=5", "G hwm=3", "G hwm=7"]);
    }

    #[test]
    fn finish_is_idempotent() {
        struct CountFinish(std::sync::Arc<AtomicU64>);
        impl Recorder for CountFinish {
            fn record(&mut self, _: &Event<'_>) {}
            fn finish(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let n = std::sync::Arc::new(AtomicU64::new(0));
        let tel = Telemetry::new(Box::new(CountFinish(n.clone())));
        tel.finish();
        tel.finish();
        assert_eq!(n.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn clones_share_one_recorder() {
        let buf = SharedBuf::new();
        let tel = Telemetry::new(Box::new(sinks::JsonlSink::new(buf.writer())));
        let tel2 = tel.clone();
        tel.count("a", 1);
        tel2.count("a", 1);
        tel.finish();
        let text = buf.take_string();
        let totals: Vec<i64> = text
            .lines()
            .map(|l| json::parse(l).unwrap().get("total").unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(totals, vec![1, 2], "clones must accumulate into one counter");
    }

    use super::sinks;
}
