//! Live matrix progress view: one lane per app × cpu × opt cell.
//!
//! Matrix runs (`verify`, `table4`, …) fan a handful of long FPS
//! simulations out across workers; without feedback a cold ECDSA/Ibex
//! cell is a silent minute. [`MatrixView`] renders one line per cell —
//! current stage, cache-hit fast-forward, cycle count, and cycles/s —
//! redrawn in place when the output is an ANSI terminal:
//!
//! ```text
//! ecdsa/ibex/O1   fps        12.3 Mcy   8.1 Mcy/s
//! hasher/pico/O1  ctcheck [cached]
//! ```
//!
//! Cycle and rate updates arrive through the existing `fps.heartbeat`
//! progress events: [`MatrixView::sink`] returns a [`crate::Recorder`]
//! that picks heartbeats out of the event stream and routes them to the
//! lane named by the heartbeat's numeric `cell` field (lane ids come
//! from [`MatrixView::add_lane`] and ride inside
//! `FpsObserver::cell`). Stage transitions and completions are pushed
//! directly by the driving bin ([`MatrixView::set_stage`],
//! [`MatrixView::finish_lane`]).
//!
//! [`MatrixView::stderr_if_tty`] enables the view only when stderr is
//! really a terminal; tests drive the same code end-to-end through
//! [`MatrixView::new`] with an in-memory sink and assert on
//! [`MatrixView::render`].

use std::io::{IsTerminal, Write};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::{Event, Recorder};

/// Minimum milliseconds between ANSI redraws.
const REDRAW_MS: u128 = 50;

struct Lane {
    label: String,
    stage: String,
    cached: bool,
    cycles: u64,
    cps: f64,
    /// `None` while running, `Some(ok)` once finished.
    done: Option<bool>,
}

struct ViewState {
    out: Box<dyn Write + Send>,
    ansi: bool,
    lanes: Vec<Lane>,
    /// Lines currently on screen from the previous ANSI draw.
    drawn: usize,
    last_draw: Option<Instant>,
}

/// A shared, clonable handle on the progress display.
#[derive(Clone)]
pub struct MatrixView(Arc<Mutex<ViewState>>);

impl MatrixView {
    /// A view writing to `out`; `ansi` enables in-place redraws (tests
    /// pass `false` and read [`render`](Self::render) instead).
    pub fn new(out: Box<dyn Write + Send>, ansi: bool) -> MatrixView {
        MatrixView(Arc::new(Mutex::new(ViewState {
            out,
            ansi,
            lanes: Vec::new(),
            drawn: 0,
            last_draw: None,
        })))
    }

    /// The live stderr view, only when stderr is actually a terminal
    /// (CI logs and pipes never see control sequences).
    pub fn stderr_if_tty() -> Option<MatrixView> {
        std::io::stderr().is_terminal().then(|| MatrixView::new(Box::new(std::io::stderr()), true))
    }

    /// Add a lane for one matrix cell; the returned id is the `cell`
    /// value FPS heartbeats must carry to land in this lane.
    pub fn add_lane(&self, label: &str) -> u64 {
        let mut st = self.0.lock().unwrap();
        st.lanes.push(Lane {
            label: label.to_string(),
            stage: "queued".to_string(),
            cached: false,
            cycles: 0,
            cps: 0.0,
            done: None,
        });
        (st.lanes.len() - 1) as u64
    }

    /// Record that `cell` entered `stage`; `cached` marks a cache-hit
    /// fast-forward (the stage completed from a stored certificate).
    pub fn set_stage(&self, cell: u64, stage: &str, cached: bool) {
        let mut st = self.0.lock().unwrap();
        if let Some(lane) = st.lanes.get_mut(cell as usize) {
            lane.stage = stage.to_string();
            lane.cached = cached;
        }
        st.maybe_draw(false);
    }

    /// Record that `cell` finished (`ok` = verified).
    pub fn finish_lane(&self, cell: u64, ok: bool) {
        let mut st = self.0.lock().unwrap();
        if let Some(lane) = st.lanes.get_mut(cell as usize) {
            lane.done = Some(ok);
            if !st.ansi {
                // Without a terminal, emit one plain completion line
                // per lane instead of redrawing.
                let lane = &st.lanes[cell as usize];
                let line = format!("{}\n", render_lane(lane));
                let _ = st.out.write_all(line.as_bytes());
            }
        }
        st.maybe_draw(false);
    }

    /// A [`Recorder`] that feeds `fps.heartbeat` events into the view.
    /// Chain it into a [`crate::sinks::Fanout`] next to the real sinks.
    pub fn sink(&self) -> ViewSink {
        ViewSink(self.clone())
    }

    /// The current table, one line per lane — what the ANSI mode draws,
    /// exposed for tests and non-TTY summaries.
    pub fn render(&self) -> String {
        let st = self.0.lock().unwrap();
        st.lanes.iter().map(|l| render_lane(l) + "\n").collect()
    }

    /// Force a final draw and release the screen (ANSI mode leaves the
    /// finished table in place).
    pub fn finish(&self) {
        let mut st = self.0.lock().unwrap();
        st.maybe_draw(true);
        let _ = st.out.flush();
    }

    fn heartbeat(&self, cell: u64, cycles: u64, cps: f64) {
        let mut st = self.0.lock().unwrap();
        if let Some(lane) = st.lanes.get_mut(cell as usize) {
            lane.cycles = cycles;
            if cps > 0.0 {
                lane.cps = cps;
            }
        }
        st.maybe_draw(false);
    }
}

impl ViewState {
    /// Redraw in place (ANSI only), rate-limited unless `force`.
    fn maybe_draw(&mut self, force: bool) {
        if !self.ansi || self.lanes.is_empty() {
            return;
        }
        if !force {
            if let Some(last) = self.last_draw {
                if last.elapsed().as_millis() < REDRAW_MS {
                    return;
                }
            }
        }
        let mut frame = String::new();
        // Cursor up over the previous frame; each line is cleared
        // before rewrite so shrinking text leaves no residue.
        if self.drawn > 0 {
            frame.push_str(&format!("\x1b[{}A", self.drawn));
        }
        for lane in &self.lanes {
            frame.push_str("\r\x1b[2K");
            frame.push_str(&render_lane(lane));
            frame.push('\n');
        }
        let _ = self.out.write_all(frame.as_bytes());
        let _ = self.out.flush();
        self.drawn = self.lanes.len();
        self.last_draw = Some(Instant::now());
    }
}

/// One lane's display line.
fn render_lane(lane: &Lane) -> String {
    let status = match lane.done {
        Some(true) => "ok".to_string(),
        Some(false) => "FAIL".to_string(),
        None => lane.stage.clone(),
    };
    let mut line = format!("{:<18} {:<10}", lane.label, status);
    if lane.cached {
        line.push_str(" [cached]");
    }
    if lane.cycles > 0 {
        line.push_str(&format!(" {:>10}", format_count(lane.cycles, "cy")));
    }
    if lane.cps > 0.0 && lane.done.is_none() {
        line.push_str(&format!(" {:>11}", format_rate(lane.cps)));
    }
    line.trim_end().to_string()
}

fn format_count(n: u64, unit: &str) -> String {
    if n >= 1_000_000 {
        format!("{:.1} M{unit}", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1} k{unit}", n as f64 / 1e3)
    } else {
        format!("{n} {unit}")
    }
}

fn format_rate(cps: f64) -> String {
    if cps >= 1e6 {
        format!("{:.1} Mcy/s", cps / 1e6)
    } else if cps >= 1e3 {
        format!("{:.1} kcy/s", cps / 1e3)
    } else {
        format!("{cps:.0} cy/s")
    }
}

/// The [`Recorder`] adapter returned by [`MatrixView::sink`].
pub struct ViewSink(MatrixView);

impl Recorder for ViewSink {
    fn record(&mut self, event: &Event<'_>) {
        if let Event::Progress { name: "fps.heartbeat", fields, .. } = event {
            let field = |key: &str| fields.iter().find(|(k, _)| *k == key).map(|(_, v)| *v);
            if let Some(cell) = field("cell") {
                let cycles = field("cycles").unwrap_or(0.0).max(0.0) as u64;
                let cps = field("cycles_per_s").unwrap_or(0.0);
                self.0.heartbeat(cell as u64, cycles, cps);
            }
        }
    }

    fn finish(&mut self) {
        self.0.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sinks::SharedBuf;

    #[test]
    fn lanes_update_from_direct_calls_and_render() {
        let buf = SharedBuf::default();
        let view = MatrixView::new(Box::new(buf.clone()), false);
        let a = view.add_lane("ecdsa/ibex/O1");
        let b = view.add_lane("hasher/pico/O1");
        view.set_stage(a, "fps", false);
        view.set_stage(b, "ctcheck", true);
        view.heartbeat(a, 12_300_000, 8_100_000.0);
        let table = view.render();
        assert!(table.contains("ecdsa/ibex/O1"), "{table}");
        assert!(table.contains("fps"), "{table}");
        assert!(table.contains("12.3 Mcy"), "{table}");
        assert!(table.contains("8.1 Mcy/s"), "{table}");
        assert!(table.contains("[cached]"), "{table}");
        view.finish_lane(a, true);
        view.finish_lane(b, true);
        let table = view.render();
        assert!(table.contains("ok"), "{table}");
        // Non-ANSI mode logged the completions to the sink.
        let logged = buf.take_string();
        assert!(logged.contains("ecdsa/ibex/O1"), "{logged}");
    }

    #[test]
    fn sink_routes_heartbeats_by_cell_field() {
        let view = MatrixView::new(Box::new(std::io::sink()), false);
        let cell = view.add_lane("ecdsa/ibex/O1");
        view.set_stage(cell, "fps", false);
        let mut sink = view.sink();
        let fields = [("cycles", 2_000_000.0), ("cycles_per_s", 4.5e6), ("cell", cell as f64)];
        sink.record(&Event::Progress { name: "fps.heartbeat", fields: &fields, tid: 0, t_us: 0 });
        // Heartbeats without a cell field are ignored, not misrouted.
        sink.record(&Event::Progress {
            name: "fps.heartbeat",
            fields: &[("cycles", 9e9)],
            tid: 0,
            t_us: 0,
        });
        let table = view.render();
        assert!(table.contains("2.0 Mcy"), "{table}");
        assert!(table.contains("4.5 Mcy/s"), "{table}");
    }

    #[test]
    fn ansi_mode_redraws_in_place() {
        let buf = SharedBuf::default();
        let view = MatrixView::new(Box::new(buf.clone()), true);
        let cell = view.add_lane("ecdsa/ibex/O1");
        view.set_stage(cell, "fps", false);
        view.finish_lane(cell, true);
        view.finish();
        let out = buf.take_string();
        assert!(out.contains("\x1b[2K"), "clears lines: {out:?}");
        assert!(out.contains("\x1b[1A"), "moves cursor up between frames: {out:?}");
        assert!(out.contains("ecdsa/ibex/O1"), "{out}");
    }
}
