//! Run manifests: the provenance record every bin writes via
//! `--metrics <path>`.
//!
//! A [`RunManifest`] answers "what produced this number?" for any bench
//! row or CI artifact: which bin, which build, which env knobs, how
//! many threads, whether the run succeeded — plus the full
//! [`MetricsSnapshot`] of everything the process counted. It is plain
//! canonical JSON (schema-versioned), parsed back by
//! [`RunManifest::from_json`] so tooling like `cachestat
//! --check-metrics` can assert on it without a JSON library.

use std::path::Path;

use crate::json::Json;
use crate::metrics::{Metrics, MetricsSnapshot};

/// Schema version of the manifest JSON encoding.
pub const MANIFEST_SCHEMA: i64 = 1;

/// A build identifier with no dependency on git: crate version plus
/// profile. Stable across rebuilds of the same source, distinct across
/// releases.
pub fn build_id() -> String {
    let profile = if cfg!(debug_assertions) { "debug" } else { "release" };
    format!("parfait-{}-{profile}", env!("CARGO_PKG_VERSION"))
}

/// One run's provenance: identity, environment, outcome, and metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct RunManifest {
    /// Bin name (e.g. `verify`, `bench_fps`).
    pub bin: String,
    /// [`build_id`] of the producing binary.
    pub build_id: String,
    /// Worker threads the run used.
    pub threads: usize,
    /// Process exit status the run is about to report.
    pub exit_code: i32,
    /// Every [`crate::env::KNOBS`] entry and its value at capture time
    /// (`None` = unset).
    pub env: Vec<(String, Option<String>)>,
    /// Frozen copy of the metrics registry at capture time.
    pub metrics: MetricsSnapshot,
}

impl RunManifest {
    /// Capture a manifest from the given registry and the current
    /// process environment.
    pub fn capture(bin: &str, threads: usize, exit_code: i32, metrics: &Metrics) -> RunManifest {
        let env = crate::env::KNOBS
            .iter()
            .map(|k| (k.to_string(), std::env::var_os(k).map(|v| v.to_string_lossy().into_owned())))
            .collect();
        RunManifest {
            bin: bin.to_string(),
            build_id: build_id(),
            threads,
            exit_code,
            env,
            metrics: metrics.snapshot(),
        }
    }

    /// Canonical JSON encoding.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Int(MANIFEST_SCHEMA)),
            ("bin", Json::str(&self.bin)),
            ("build_id", Json::str(&self.build_id)),
            ("threads", Json::Int(self.threads as i64)),
            ("exit_code", Json::Int(self.exit_code as i64)),
            (
                "env",
                Json::Obj(
                    self.env
                        .iter()
                        .map(|(k, v)| {
                            (k.clone(), v.as_deref().map(Json::str).unwrap_or(Json::Null))
                        })
                        .collect(),
                ),
            ),
            ("metrics", self.metrics.to_json()),
        ])
    }

    /// Parse the [`to_json`](Self::to_json) encoding.
    pub fn from_json(j: &Json) -> Result<RunManifest, String> {
        if j.get("schema").and_then(|v| v.as_i64()) != Some(MANIFEST_SCHEMA) {
            return Err("run manifest: missing or unsupported schema".into());
        }
        let field_str = |name: &str| -> Result<String, String> {
            j.get(name)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("run manifest: missing {name}"))
        };
        let field_int = |name: &str| -> Result<i64, String> {
            j.get(name)
                .and_then(|v| v.as_i64())
                .ok_or_else(|| format!("run manifest: missing {name}"))
        };
        let mut env = Vec::new();
        for (k, v) in
            j.get("env").and_then(|v| v.as_object()).ok_or("run manifest: missing env object")?
        {
            let value = match v {
                Json::Null => None,
                other => {
                    Some(other.as_str().ok_or("run manifest: non-string env value")?.to_string())
                }
            };
            env.push((k.clone(), value));
        }
        let metrics =
            MetricsSnapshot::from_json(j.get("metrics").ok_or("run manifest: missing metrics")?)?;
        Ok(RunManifest {
            bin: field_str("bin")?,
            build_id: field_str("build_id")?,
            threads: field_int("threads")? as usize,
            exit_code: field_int("exit_code")? as i32,
            env,
            metrics,
        })
    }

    /// Write the manifest as pretty JSON to `path`. Failures are loud
    /// (stderr + exit 2): the user asked for this file by flag.
    pub fn write(&self, path: &Path) {
        let body = self.to_json().to_pretty_string();
        if let Err(e) = std::fs::write(path, body + "\n") {
            eprintln!("error: cannot write metrics manifest {}: {e}", path.display());
            std::process::exit(2);
        }
    }
}

/// Parse a file that is either a full [`RunManifest`] or a bare
/// [`MetricsSnapshot`], returning the snapshot in both cases. The
/// discriminator is the `bin` field only a manifest has.
pub fn snapshot_from_file(path: &Path) -> Result<MetricsSnapshot, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let j = crate::json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    if j.get("bin").is_some() {
        Ok(RunManifest::from_json(&j)?.metrics)
    } else {
        MetricsSnapshot::from_json(&j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_roundtrips_through_json() {
        let m = Metrics::new();
        m.counter_with("certcache_disk_hit", &[("stage", "fps")]).add(4);
        m.histogram_with("pipeline_stage_wall_us", &[("stage", "fps")]).record(1234);
        let manifest = RunManifest::capture("verify", 8, 0, &m);
        let text = manifest.to_json().to_pretty_string();
        let back = RunManifest::from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, manifest);
        assert_eq!(back.bin, "verify");
        assert_eq!(back.threads, 8);
        assert!(back.env.iter().any(|(k, _)| k == "PARFAIT_CACHE_DIR"));
        assert_eq!(back.metrics.counter_total("certcache_disk_hit"), 4);
    }

    #[test]
    fn build_id_names_version_and_profile() {
        let id = build_id();
        assert!(id.starts_with("parfait-"), "{id}");
        assert!(id.ends_with("-debug") || id.ends_with("-release"), "{id}");
    }
}
