//! A minimal JSON value type with a compact serializer and a
//! recursive-descent parser.
//!
//! This exists so the telemetry sinks can emit valid JSON and the test
//! suite can verify it round-trips, without any external dependency.
//! Object key order is preserved (a `Vec` of pairs, not a map), which
//! keeps emitted event fields in a stable, readable order.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integers are kept exact (cycle counts exceed f64's 2^53 mantissa
    /// in principle).
    Int(i64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            Json::Num(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    /// Non-negative integer accessor, for counter and byte-count
    /// fields whose domain is `u64`. Returns `None` for negatives and
    /// non-integral numbers instead of making callers chain
    /// `as_i64` + `try_from`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => u64::try_from(*n).ok(),
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Render with 2-space indentation. Deterministic (object key order
    /// is insertion order, and the scalar forms match [`Display`]), so
    /// two structurally equal values always pretty-print to identical
    /// bytes — the proof pipeline relies on this when it writes
    /// certificates to the artifact cache.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.pretty_into(&mut out, 0);
        out
    }

    fn pretty_into(&self, out: &mut String, depth: usize) {
        const INDENT: &str = "  ";
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&INDENT.repeat(depth + 1));
                    item.pretty_into(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&INDENT.repeat(depth));
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&INDENT.repeat(depth + 1));
                    out.push('"');
                    escape_into(out, k);
                    out.push_str("\": ");
                    v.pretty_into(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&INDENT.repeat(depth));
                out.push('}');
            }
            // Scalars and empty containers use the compact form.
            other => out.push_str(&other.to_string()),
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::Num(n) => {
                if n.is_finite() {
                    // `{:?}` on f64 always includes a decimal point or
                    // exponent, so the value reparses as Num, not Int.
                    write!(f, "{n:?}")
                } else {
                    // JSON has no inf/nan; null is the conventional
                    // fallback.
                    f.write_str("null")
                }
            }
            Json::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                escape_into(&mut buf, s);
                write!(f, "\"{buf}\"")
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut buf = String::with_capacity(k.len() + 2);
                    escape_into(&mut buf, k);
                    write!(f, "\"{buf}\":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parse a complete JSON document (surrounding whitespace allowed).
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut fractional = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                fractional = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() || text == "-" {
        return Err(format!("invalid number at byte {start}"));
    }
    if fractional {
        text.parse::<f64>().map(Json::Num).map_err(|e| format!("bad number '{text}': {e}"))
    } else {
        text.parse::<i64>().map(Json::Int).map_err(|e| format!("bad number '{text}': {e}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs are not emitted by our
                        // serializer; map lone surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a &str, so
                // boundaries are valid).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        pairs.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Json::obj([
            ("name", Json::str("fps.run\n\"quoted\"")),
            ("cycles", Json::Int(123_456_789_012)),
            ("rate", Json::Num(1.5e6)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("items", Json::Arr(vec![Json::Int(1), Json::Int(-2), Json::Num(0.5)])),
        ]);
        let text = v.to_string();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn as_u64_accepts_exactly_the_non_negative_integers() {
        assert_eq!(Json::Int(0).as_u64(), Some(0));
        assert_eq!(Json::Int(i64::MAX).as_u64(), Some(i64::MAX as u64));
        assert_eq!(Json::Int(-1).as_u64(), None);
        // Integral non-negative floats count (parsers may produce Num
        // for large values); fractional and negative ones don't.
        assert_eq!(Json::Num(42.0).as_u64(), Some(42));
        assert_eq!(Json::Num(0.5).as_u64(), None);
        assert_eq!(Json::Num(-2.0).as_u64(), None);
        assert_eq!(Json::str("7").as_u64(), None);
        assert_eq!(Json::Null.as_u64(), None);
        assert_eq!(Json::Bool(true).as_u64(), None);
    }

    #[test]
    fn parses_whitespace_and_empty_containers() {
        let v = parse("  { \"a\" : [ ] , \"b\" : { } }\n").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 0);
        assert_eq!(v.get("b").unwrap().as_object().unwrap().len(), 0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn integers_stay_exact() {
        let v = parse("9007199254740993").unwrap();
        assert_eq!(v.as_i64(), Some(9_007_199_254_740_993));
    }

    #[test]
    fn pretty_roundtrips_and_is_deterministic() {
        let v = Json::obj([
            ("stage", Json::str("fps")),
            ("stats", Json::obj([("cycles", Json::Int(42))])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
            ("items", Json::Arr(vec![Json::Int(1), Json::str("two")])),
        ]);
        let pretty = v.to_pretty_string();
        assert_eq!(parse(&pretty).unwrap(), v);
        assert_eq!(pretty, v.to_pretty_string());
        assert!(pretty.contains("\"empty_arr\": []"));
        assert!(pretty.contains("  \"stage\": \"fps\""));
        assert!(pretty.contains("    \"cycles\": 42"));
    }
}
