//! Recorder implementations: human-readable log, JSONL event stream,
//! Chrome trace-event JSON, a fan-out combinator, and an in-memory
//! buffer for tests.
//!
//! Sinks swallow I/O errors: telemetry must never take down the
//! pipeline it is observing.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::json::Json;
use crate::{Event, Recorder};

/// Human-readable indented log.
///
/// ```text
/// [   0.000123s] > fps.run
/// [   0.000150s]   > fps.command
/// [   0.000200s]   < fps.command (50us)
/// [   0.000210s] # fps.spec_queries +1 = 5
/// [   0.000230s] * fps.heartbeat cycles=100000 cycles_per_s=1512345
/// [   0.000250s] < fps.run (127us)
/// ```
///
/// `>`/`<` open and close spans (indented by nesting depth), `#` is a
/// counter increment, `~` a gauge, `*` a progress heartbeat.
pub struct LogSink<W: Write + Send> {
    out: W,
}

impl<W: Write + Send> LogSink<W> {
    pub fn new(out: W) -> Self {
        LogSink { out }
    }
}

impl LogSink<io::Stderr> {
    /// Log to standard error.
    pub fn stderr() -> Self {
        LogSink::new(io::stderr())
    }
}

fn stamp(t_us: u64) -> String {
    format!("[{:>10.6}s]", t_us as f64 / 1e6)
}

impl<W: Write + Send> Recorder for LogSink<W> {
    fn record(&mut self, event: &Event<'_>) {
        let _ = match event {
            Event::SpanBegin { name, depth, t_us, .. } => {
                writeln!(self.out, "{} {:indent$}> {name}", stamp(*t_us), "", indent = depth * 2)
            }
            Event::SpanEnd { name, depth, t_us, dur_us, .. } => {
                writeln!(
                    self.out,
                    "{} {:indent$}< {name} ({dur_us}us)",
                    stamp(*t_us),
                    "",
                    indent = depth * 2
                )
            }
            Event::Count { name, delta, total, t_us, .. } => {
                writeln!(self.out, "{} # {name} +{delta} = {total}", stamp(*t_us))
            }
            Event::Gauge { name, value, t_us, .. } => {
                writeln!(self.out, "{} ~ {name} = {value}", stamp(*t_us))
            }
            Event::Progress { name, fields, t_us, .. } => {
                let mut line = format!("{} * {name}", stamp(*t_us));
                for (k, v) in *fields {
                    line.push_str(&format!(" {k}={v:.0}"));
                }
                writeln!(self.out, "{line}")
            }
        };
    }

    fn finish(&mut self) {
        let _ = self.out.flush();
    }
}

fn common_fields(ev: &str, name: &str, tid: u64, t_us: u64) -> Vec<(String, Json)> {
    vec![
        ("ev".into(), Json::str(ev)),
        ("name".into(), Json::str(name)),
        ("tid".into(), Json::Int(tid as i64)),
        ("t_us".into(), Json::Int(t_us as i64)),
    ]
}

fn event_to_jsonl(event: &Event<'_>) -> Json {
    match event {
        Event::SpanBegin { id, parent, depth, tid, name, t_us } => {
            let mut f = common_fields("span_begin", name, *tid, *t_us);
            f.push(("id".into(), Json::Int(*id as i64)));
            f.push(("parent".into(), Json::Int(*parent as i64)));
            f.push(("depth".into(), Json::Int(*depth as i64)));
            Json::Obj(f)
        }
        Event::SpanEnd { id, parent, depth, tid, name, t_us, dur_us } => {
            let mut f = common_fields("span_end", name, *tid, *t_us);
            f.push(("id".into(), Json::Int(*id as i64)));
            f.push(("parent".into(), Json::Int(*parent as i64)));
            f.push(("depth".into(), Json::Int(*depth as i64)));
            f.push(("dur_us".into(), Json::Int(*dur_us as i64)));
            Json::Obj(f)
        }
        Event::Count { name, delta, total, tid, t_us } => {
            let mut f = common_fields("count", name, *tid, *t_us);
            f.push(("delta".into(), Json::Int(*delta as i64)));
            f.push(("total".into(), Json::Int(*total as i64)));
            Json::Obj(f)
        }
        Event::Gauge { name, value, tid, t_us } => {
            let mut f = common_fields("gauge", name, *tid, *t_us);
            f.push(("value".into(), Json::Int(*value as i64)));
            Json::Obj(f)
        }
        Event::Progress { name, fields, tid, t_us } => {
            let mut f = common_fields("progress", name, *tid, *t_us);
            let fields =
                fields.iter().map(|(k, v)| (k.to_string(), Json::Num(*v))).collect::<Vec<_>>();
            f.push(("fields".into(), Json::Obj(fields)));
            Json::Obj(f)
        }
    }
}

/// One JSON object per line — easy to grep, stream, and post-process.
pub struct JsonlSink<W: Write + Send> {
    out: W,
}

impl<W: Write + Send> JsonlSink<W> {
    pub fn new(out: W) -> Self {
        JsonlSink { out }
    }
}

impl JsonlSink<BufWriter<File>> {
    /// Stream events to a file.
    pub fn to_file(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write + Send> Recorder for JsonlSink<W> {
    fn record(&mut self, event: &Event<'_>) {
        let _ = writeln!(self.out, "{}", event_to_jsonl(event));
    }

    fn finish(&mut self) {
        let _ = self.out.flush();
    }
}

/// Chrome trace-event JSON (the array form), loadable in Perfetto
/// (<https://ui.perfetto.dev>) or `chrome://tracing`.
///
/// Spans become `B`/`E` duration events, counters and gauges become
/// `C` counter tracks, progress heartbeats become `i` instants.
pub struct ChromeTraceSink<W: Write + Send> {
    out: W,
    wrote_any: bool,
    closed: bool,
}

impl<W: Write + Send> ChromeTraceSink<W> {
    pub fn new(out: W) -> Self {
        ChromeTraceSink { out, wrote_any: false, closed: false }
    }
}

impl ChromeTraceSink<BufWriter<File>> {
    /// Stream a trace to a file.
    pub fn to_file(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(ChromeTraceSink::new(BufWriter::new(File::create(path)?)))
    }
}

fn chrome_entry(event: &Event<'_>) -> Json {
    let base = |name: &str, ph: &str, tid: u64, t_us: u64| {
        vec![
            ("name".to_string(), Json::str(name)),
            ("cat".to_string(), Json::str("parfait")),
            ("ph".to_string(), Json::str(ph)),
            ("pid".to_string(), Json::Int(1)),
            ("tid".to_string(), Json::Int(tid as i64)),
            ("ts".to_string(), Json::Int(t_us as i64)),
        ]
    };
    match event {
        Event::SpanBegin { tid, name, t_us, .. } => Json::Obj(base(name, "B", *tid, *t_us)),
        Event::SpanEnd { tid, name, t_us, .. } => Json::Obj(base(name, "E", *tid, *t_us)),
        Event::Count { name, total, tid, t_us, .. } => {
            let mut f = base(name, "C", *tid, *t_us);
            f.push(("args".into(), Json::obj([("total", Json::Int(*total as i64))])));
            Json::Obj(f)
        }
        Event::Gauge { name, value, tid, t_us } => {
            let mut f = base(name, "C", *tid, *t_us);
            f.push(("args".into(), Json::obj([("value", Json::Int(*value as i64))])));
            Json::Obj(f)
        }
        Event::Progress { name, fields, tid, t_us } => {
            let mut f = base(name, "i", *tid, *t_us);
            f.push(("s".into(), Json::str("t")));
            let fields =
                fields.iter().map(|(k, v)| (k.to_string(), Json::Num(*v))).collect::<Vec<_>>();
            f.push(("args".into(), Json::Obj(fields)));
            Json::Obj(f)
        }
    }
}

impl<W: Write + Send> Recorder for ChromeTraceSink<W> {
    fn record(&mut self, event: &Event<'_>) {
        if self.closed {
            return;
        }
        let sep = if self.wrote_any { "," } else { "[" };
        self.wrote_any = true;
        let _ = writeln!(self.out, "{sep}{}", chrome_entry(event));
    }

    fn finish(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        let _ = if self.wrote_any { writeln!(self.out, "]") } else { writeln!(self.out, "[]") };
        let _ = self.out.flush();
    }
}

/// Duplicate every event to several sinks (e.g. a terminal log plus a
/// trace file).
pub struct Fanout {
    sinks: Vec<Box<dyn Recorder>>,
}

impl Fanout {
    pub fn new(sinks: Vec<Box<dyn Recorder>>) -> Self {
        Fanout { sinks }
    }
}

impl Recorder for Fanout {
    fn record(&mut self, event: &Event<'_>) {
        for sink in &mut self.sinks {
            sink.record(event);
        }
    }

    fn finish(&mut self) {
        for sink in &mut self.sinks {
            sink.finish();
        }
    }
}

/// A clonable in-memory byte buffer implementing [`Write`], for tests
/// that want to inspect sink output after the run.
#[derive(Clone, Default)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    pub fn new() -> Self {
        SharedBuf::default()
    }

    /// A writer handle feeding this buffer (give it to a sink).
    pub fn writer(&self) -> SharedBuf {
        self.clone()
    }

    /// Snapshot the buffered bytes as UTF-8 and clear the buffer.
    pub fn take_string(&self) -> String {
        let mut buf = self.0.lock().unwrap();
        String::from_utf8(std::mem::take(&mut *buf)).expect("sinks emit UTF-8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::Telemetry;

    fn demo_run(tel: &Telemetry) {
        let _run = tel.span("demo.run");
        for i in 0..3 {
            let _op = tel.span("demo.op");
            tel.count("demo.queries", 1 + i);
        }
        tel.gauge_max("demo.hwm", 5);
        tel.progress("demo.heartbeat", &[("cycles", 1e6), ("cycles_per_s", 2.5e6)]);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_matched_begin_end() {
        let buf = SharedBuf::new();
        let tel = Telemetry::new(Box::new(ChromeTraceSink::new(buf.writer())));
        demo_run(&tel);
        tel.finish();
        let text = buf.take_string();
        let doc = json::parse(&text).expect("chrome trace must be one valid JSON document");
        let entries = doc.as_array().expect("array form");
        let phase = |p: &str| {
            entries.iter().filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some(p)).count()
        };
        assert_eq!(phase("B"), 4, "demo.run + 3×demo.op");
        assert_eq!(phase("B"), phase("E"), "every span closes");
        assert_eq!(phase("C"), 4, "3 counter bumps + 1 gauge");
        assert_eq!(phase("i"), 1, "one heartbeat instant");
        for e in entries {
            assert_eq!(e.get("pid").and_then(|v| v.as_i64()), Some(1));
            assert!(e.get("ts").and_then(|v| v.as_i64()).is_some());
            assert!(e.get("name").and_then(|v| v.as_str()).is_some());
        }
    }

    #[test]
    fn chrome_trace_empty_run_is_valid() {
        let buf = SharedBuf::new();
        let tel = Telemetry::new(Box::new(ChromeTraceSink::new(buf.writer())));
        tel.finish();
        let doc = json::parse(&buf.take_string()).unwrap();
        assert_eq!(doc.as_array().unwrap().len(), 0);
    }

    #[test]
    fn jsonl_lines_parse_individually_with_correct_parentage() {
        let buf = SharedBuf::new();
        let tel = Telemetry::new(Box::new(JsonlSink::new(buf.writer())));
        demo_run(&tel);
        tel.finish();
        let text = buf.take_string();
        let events: Vec<json::Json> = text
            .lines()
            .map(|line| json::parse(line).expect("each JSONL line parses alone"))
            .collect();
        assert_eq!(events.len(), 13, "4 begin + 4 end + 3 count + 1 gauge + 1 progress");
        // demo.op spans are children of demo.run.
        let run_id = events
            .iter()
            .find(|e| e.get("name").and_then(|v| v.as_str()) == Some("demo.run"))
            .and_then(|e| e.get("id"))
            .and_then(|v| v.as_i64())
            .unwrap();
        let op_parents: Vec<i64> = events
            .iter()
            .filter(|e| {
                e.get("ev").and_then(|v| v.as_str()) == Some("span_begin")
                    && e.get("name").and_then(|v| v.as_str()) == Some("demo.op")
            })
            .map(|e| e.get("parent").unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(op_parents, vec![run_id; 3]);
        // Counter totals accumulate 1+2+3.
        let totals: Vec<i64> = events
            .iter()
            .filter(|e| e.get("ev").and_then(|v| v.as_str()) == Some("count"))
            .map(|e| e.get("total").unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(totals, vec![1, 3, 6]);
        // The progress event carries its fields.
        let hb = events
            .iter()
            .find(|e| e.get("ev").and_then(|v| v.as_str()) == Some("progress"))
            .unwrap();
        assert_eq!(hb.get("fields").unwrap().get("cycles_per_s").unwrap().as_f64(), Some(2.5e6));
    }

    #[test]
    fn log_sink_indents_by_depth() {
        let buf = SharedBuf::new();
        let tel = Telemetry::new(Box::new(LogSink::new(buf.writer())));
        {
            let _a = tel.span("outer");
            let _b = tel.span("inner");
        }
        tel.finish();
        let text = buf.take_string();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].ends_with("> outer"), "{}", lines[0]);
        assert!(lines[1].ends_with("  > inner"), "{}", lines[1]);
        assert!(lines[2].contains("< inner ("), "{}", lines[2]);
        assert!(lines[3].contains("< outer ("), "{}", lines[3]);
    }

    #[test]
    fn fanout_duplicates_events() {
        let a = SharedBuf::new();
        let b = SharedBuf::new();
        let tel = Telemetry::new(Box::new(Fanout::new(vec![
            Box::new(JsonlSink::new(a.writer())),
            Box::new(JsonlSink::new(b.writer())),
        ])));
        tel.count("x", 1);
        tel.finish();
        assert_eq!(a.take_string(), b.take_string());
    }
}
