//! Centralized parsing of the `PARFAIT_*` environment knobs.
//!
//! Every knob used to be parsed where it was consumed — four crates,
//! four slightly different failure behaviors, two of which silently
//! fell back to a default on garbage. This module is the one place a
//! knob's grammar and default live. Each knob has a **pure** parser
//! (`parse_*(Option<&str>) -> Result<_, String>`, unit-testable) and a
//! **loud** reader (`*_loud()`) that reads the process environment and,
//! on a malformed value, prints one uniform `error:` line and exits 2 —
//! exiting loudly beats a multi-hour verification run with a silently
//! wrong knob.
//!
//! The error message shape is uniform across knobs:
//! `"{VAR} expects {what}, got {value:?}"`.

use std::path::PathBuf;

/// Every knob captured into a [`crate::manifest::RunManifest`], so a
/// bench row records the environment that produced it.
pub const KNOBS: &[&str] = &[
    "PARFAIT_THREADS",
    "PARFAIT_TIMEOUT",
    "PARFAIT_SEGMENT_CYCLES",
    "PARFAIT_CACHE_DIR",
    "PARFAIT_HEARTBEAT",
    "PARFAIT_VCD_WINDOW",
    "PARFAIT_VCD_DIR",
    "PARFAIT_TRACE",
    "PARFAIT_DECODE_CACHE",
    "PARFAIT_SOCKET",
];

fn loud<T>(result: Result<T, String>) -> T {
    match result {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

fn read(var: &str) -> Option<String> {
    std::env::var_os(var).map(|v| v.to_string_lossy().into_owned())
}

/// Parse a positive integer with optional `_` separators (`8`,
/// `8_000_000`). The shared grammar of the numeric knobs.
fn parse_positive_u64(var: &str, what: &str, raw: Option<&str>) -> Result<Option<u64>, String> {
    match raw {
        None => Ok(None),
        Some(v) => match v.trim().replace('_', "").parse::<u64>() {
            Ok(n) if n > 0 => Ok(Some(n)),
            _ => Err(format!("{var} expects {what}, got {v:?}")),
        },
    }
}

/// `PARFAIT_THREADS`: positive worker count; `None` when unset.
pub fn parse_threads(raw: Option<&str>) -> Result<Option<usize>, String> {
    Ok(parse_positive_u64("PARFAIT_THREADS", "a positive thread count", raw)?
        .map(|n| n.min(usize::MAX as u64) as usize))
}

/// Loud reader for [`parse_threads`]; `None` when unset.
pub fn threads_loud() -> Option<usize> {
    loud(parse_threads(read("PARFAIT_THREADS").as_deref()))
}

/// `PARFAIT_TIMEOUT`: positive cycle count; `None` when unset (callers
/// apply their own base timeout).
pub fn parse_timeout(raw: Option<&str>) -> Result<Option<u64>, String> {
    parse_positive_u64("PARFAIT_TIMEOUT", "a positive cycle count", raw)
}

/// Loud reader for [`parse_timeout`]; `None` when unset.
pub fn timeout_loud() -> Option<u64> {
    loud(parse_timeout(read("PARFAIT_TIMEOUT").as_deref()))
}

/// Default segment length for the parallel FPS checker (cycles).
pub const DEFAULT_SEGMENT_CYCLES: u64 = 100_000;

/// `PARFAIT_SEGMENT_CYCLES`: positive cycle count per segment; default
/// [`DEFAULT_SEGMENT_CYCLES`].
pub fn parse_segment_cycles(raw: Option<&str>) -> Result<u64, String> {
    Ok(parse_positive_u64("PARFAIT_SEGMENT_CYCLES", "a positive cycle count", raw)?
        .unwrap_or(DEFAULT_SEGMENT_CYCLES))
}

/// Loud reader for [`parse_segment_cycles`].
pub fn segment_cycles_loud() -> u64 {
    loud(parse_segment_cycles(read("PARFAIT_SEGMENT_CYCLES").as_deref()))
}

/// Default heartbeat cadence (simulated cycles between progress
/// events).
pub const DEFAULT_HEARTBEAT: u64 = 100_000;

/// `PARFAIT_HEARTBEAT`: cycles between FPS heartbeats; `0` disables
/// heartbeats entirely; default [`DEFAULT_HEARTBEAT`].
pub fn parse_heartbeat(raw: Option<&str>) -> Result<u64, String> {
    match raw {
        None => Ok(DEFAULT_HEARTBEAT),
        Some(v) => match v.trim().replace('_', "").parse::<u64>() {
            Ok(n) => Ok(n),
            _ => Err(format!(
                "PARFAIT_HEARTBEAT expects a cycle count (0 disables heartbeats), got {v:?}"
            )),
        },
    }
}

/// Loud reader for [`parse_heartbeat`].
pub fn heartbeat_loud() -> u64 {
    loud(parse_heartbeat(read("PARFAIT_HEARTBEAT").as_deref()))
}

/// Default VCD capture window (cycles retained before a failure).
pub const DEFAULT_VCD_WINDOW: usize = 1 << 16;

/// `PARFAIT_VCD_WINDOW`: positive retained-cycle count; default
/// [`DEFAULT_VCD_WINDOW`].
pub fn parse_vcd_window(raw: Option<&str>) -> Result<usize, String> {
    Ok(parse_positive_u64("PARFAIT_VCD_WINDOW", "a positive cycle count", raw)?
        .map(|n| n.min(usize::MAX as u64) as usize)
        .unwrap_or(DEFAULT_VCD_WINDOW))
}

/// Loud reader for [`parse_vcd_window`].
pub fn vcd_window_loud() -> usize {
    loud(parse_vcd_window(read("PARFAIT_VCD_WINDOW").as_deref()))
}

/// `PARFAIT_CACHE_DIR`: cache root; unset or empty means "no on-disk
/// cache". (Whether the directory is *usable* is checked by the cache
/// itself when it opens the directory — see `CertCache::at`.)
pub fn parse_cache_dir(raw: Option<&str>) -> Result<Option<PathBuf>, String> {
    match raw {
        None => Ok(None),
        Some(v) if v.trim().is_empty() => Ok(None),
        Some(v) => Ok(Some(PathBuf::from(v))),
    }
}

/// Loud reader for [`parse_cache_dir`]; `None` when unset or empty.
pub fn cache_dir_loud() -> Option<PathBuf> {
    loud(parse_cache_dir(read("PARFAIT_CACHE_DIR").as_deref()))
}

/// `PARFAIT_DECODE_CACHE`: the pre-decoded instruction cache escape
/// hatch. `on`/`1`/`true` (and unset) enable it, `off`/`0`/`false`
/// disable it so a suspected cache bug can be bisected at runtime.
pub fn parse_decode_cache(raw: Option<&str>) -> Result<bool, String> {
    match raw {
        None => Ok(true),
        Some(v) => match v.trim().to_ascii_lowercase().as_str() {
            "on" | "1" | "true" => Ok(true),
            "off" | "0" | "false" => Ok(false),
            _ => Err(format!("PARFAIT_DECODE_CACHE expects on|off, got {v:?}")),
        },
    }
}

/// Loud reader for [`parse_decode_cache`].
pub fn decode_cache_loud() -> bool {
    loud(parse_decode_cache(read("PARFAIT_DECODE_CACHE").as_deref()))
}

/// `PARFAIT_SOCKET`: path for the serve daemon's Unix socket; unset or
/// empty means "stdin/stdout only".
pub fn parse_socket(raw: Option<&str>) -> Result<Option<PathBuf>, String> {
    match raw {
        None => Ok(None),
        Some(v) if v.trim().is_empty() => Ok(None),
        Some(v) => Ok(Some(PathBuf::from(v))),
    }
}

/// Loud reader for [`parse_socket`]; `None` when unset or empty.
pub fn socket_loud() -> Option<PathBuf> {
    loud(parse_socket(read("PARFAIT_SOCKET").as_deref()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_accepts_positive_and_rejects_garbage() {
        assert_eq!(parse_threads(None), Ok(None));
        assert_eq!(parse_threads(Some("8")), Ok(Some(8)));
        assert_eq!(parse_threads(Some(" 4 ")), Ok(Some(4)));
        for bad in ["0", "-1", "eight", "1.5", ""] {
            let e = parse_threads(Some(bad)).unwrap_err();
            assert!(e.contains("PARFAIT_THREADS expects"), "{e}");
            assert!(e.contains(&format!("{bad:?}")), "{e}");
        }
    }

    #[test]
    fn timeout_allows_underscores() {
        assert_eq!(parse_timeout(Some("8_000_000")), Ok(Some(8_000_000)));
        assert_eq!(parse_timeout(None), Ok(None));
        assert!(parse_timeout(Some("0")).is_err());
    }

    #[test]
    fn segment_cycles_defaults_and_rejects_zero() {
        assert_eq!(parse_segment_cycles(None), Ok(DEFAULT_SEGMENT_CYCLES));
        assert_eq!(parse_segment_cycles(Some("1")), Ok(1));
        let e = parse_segment_cycles(Some("0")).unwrap_err();
        assert!(e.contains("PARFAIT_SEGMENT_CYCLES expects"), "{e}");
    }

    #[test]
    fn heartbeat_zero_disables_but_garbage_errors() {
        assert_eq!(parse_heartbeat(None), Ok(DEFAULT_HEARTBEAT));
        assert_eq!(parse_heartbeat(Some("0")), Ok(0));
        assert_eq!(parse_heartbeat(Some("250_000")), Ok(250_000));
        let e = parse_heartbeat(Some("fast")).unwrap_err();
        assert!(e.contains("PARFAIT_HEARTBEAT expects"), "{e}");
    }

    #[test]
    fn decode_cache_grammar() {
        assert_eq!(parse_decode_cache(None), Ok(true));
        for on in ["on", "1", "true", " ON "] {
            assert_eq!(parse_decode_cache(Some(on)), Ok(true), "{on}");
        }
        for off in ["off", "0", "false", "OFF"] {
            assert_eq!(parse_decode_cache(Some(off)), Ok(false), "{off}");
        }
        let e = parse_decode_cache(Some("maybe")).unwrap_err();
        assert!(e.contains("PARFAIT_DECODE_CACHE expects"), "{e}");
        assert!(e.contains("\"maybe\""), "{e}");
    }

    #[test]
    fn socket_empty_means_stdio_only() {
        assert_eq!(parse_socket(None), Ok(None));
        assert_eq!(parse_socket(Some("")), Ok(None));
        assert_eq!(parse_socket(Some("/tmp/s.sock")), Ok(Some(PathBuf::from("/tmp/s.sock"))));
    }

    #[test]
    fn cache_dir_empty_means_disabled() {
        assert_eq!(parse_cache_dir(None), Ok(None));
        assert_eq!(parse_cache_dir(Some("")), Ok(None));
        assert_eq!(parse_cache_dir(Some("  ")), Ok(None));
        assert_eq!(parse_cache_dir(Some("/tmp/c")), Ok(Some(PathBuf::from("/tmp/c"))));
    }
}
